//! Workspace smoke test: the facade re-exports compose into the full
//! WarpGate flow — build a two-database warehouse, index it, run a top-3
//! discovery, and check that the semantically joinable column wins.

use warpgate::prelude::*;

/// Two databases in different "teams": a CRM with customer names and a
/// finance mart holding the same companies in SHOUTING CASE plus decoys.
fn two_database_warehouse() -> Warehouse {
    let companies =
        ["Acme Corp", "Globex Inc", "Initech LLC", "Hooli Co", "Stark Industries", "Wayne Corp"];
    let mut warehouse = Warehouse::new("smoke");
    warehouse.database_mut("crm").add_table(
        Table::new(
            "accounts",
            vec![
                Column::text("name", companies),
                Column::ints("employees", (0..companies.len() as i64).map(|i| i * 11).collect()),
            ],
        )
        .unwrap(),
    );
    warehouse.database_mut("finance").add_table(
        Table::new(
            "industries",
            vec![
                Column::text(
                    "company",
                    companies.iter().map(|c| c.to_uppercase()).collect::<Vec<_>>(),
                ),
                Column::text(
                    "sector",
                    ["Manufacturing", "Energy", "Software", "Media", "Biotech", "Defense"],
                ),
            ],
        )
        .unwrap(),
    );
    warehouse.database_mut("finance").add_table(
        Table::new(
            "quotes",
            vec![Column::floats("close", (0..40).map(|i| 10.0 + i as f64).collect())],
        )
        .unwrap(),
    );
    warehouse
}

#[test]
fn facade_discovers_the_join_target_first() {
    let backend: BackendHandle =
        std::sync::Arc::new(CdwConnector::with_defaults(two_database_warehouse()));
    let wg = WarpGate::with_backend(WarpGateConfig::default(), backend);

    let report = wg.index_warehouse().unwrap();
    assert!(report.columns_indexed >= 4, "indexed {}", report.columns_indexed);

    let query = ColumnRef::new("crm", "accounts", "name");
    let discovery = wg.discover(&query, 3).unwrap();

    assert!(!discovery.candidates.is_empty(), "no candidates at all");
    assert!(discovery.candidates.len() <= 3, "k=3 overflowed");
    let top = &discovery.candidates[0];
    assert_eq!(top.reference, ColumnRef::new("finance", "industries", "company"));
    assert!(top.score > 0.9, "format variant should score high, got {}", top.score);

    // Ranked output is sorted best-first.
    for pair in discovery.candidates.windows(2) {
        assert!(pair[0].score >= pair[1].score);
    }
}

#[test]
fn facade_augments_via_lookup_join() {
    let connector = std::sync::Arc::new(CdwConnector::with_defaults(two_database_warehouse()));
    let wg = WarpGate::with_backend(WarpGateConfig::default(), connector.clone());
    wg.index_warehouse().unwrap();

    let base = connector.warehouse().table("crm", "accounts").unwrap().clone();
    let candidate = ColumnRef::new("finance", "industries", "company");
    let augmented =
        wg.augment_via_lookup(&base, "name", &candidate, &["sector"], KeyNorm::CaseFold).unwrap();
    assert_eq!(augmented.num_rows(), base.num_rows());
    assert!(!augmented.column("sector").unwrap().get(0).is_null());
}

#[test]
fn facade_serves_the_same_warehouse_from_a_csv_directory() {
    // The same warehouse exported to disk and served through the CSV
    // backend must produce the same top recommendation.
    let root = std::env::temp_dir().join(format!("wg_smoke_csv_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    CsvBackend::export_warehouse(&two_database_warehouse(), &root).unwrap();
    let backend: BackendHandle =
        std::sync::Arc::new(CsvBackend::open(&root, CdwConfig::default()).unwrap());
    let wg = WarpGate::with_backend(WarpGateConfig::default(), backend);
    wg.index_warehouse().unwrap();
    let discovery = wg.discover(&ColumnRef::new("crm", "accounts", "name"), 3).unwrap();
    assert_eq!(
        discovery.candidates[0].reference,
        ColumnRef::new("finance", "industries", "company")
    );
    std::fs::remove_dir_all(&root).ok();
}
