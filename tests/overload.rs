//! Overload-resilience acceptance (DESIGN.md §12): a saturated loopback
//! WGRP server answers every request correctly or fails it *typed* — no
//! hangs, no panics, no partially billed work; expired deadlines stop
//! billing at the phase boundary; an over-quota tenant is rejected while
//! every other tenant's results stay bit-identical to an unloaded run.

use std::sync::{Arc, Barrier};

use warpgate::prelude::*;

fn warehouse() -> Warehouse {
    let mut w = Warehouse::new("overload");
    w.database_mut("crm").add_table(
        Table::new(
            "accounts",
            vec![
                Column::text("name", (0..60).map(|i| format!("Company {i}")).collect::<Vec<_>>()),
                Column::ints("employees", (0..60).map(|i| i * 3).collect()),
            ],
        )
        .unwrap(),
    );
    w.database_mut("crm").add_table(
        Table::new(
            "leads",
            vec![Column::text(
                "company",
                (0..50).map(|i| format!("company {i}")).collect::<Vec<_>>(),
            )],
        )
        .unwrap(),
    );
    w.database_mut("finance").add_table(
        Table::new(
            "industries",
            vec![Column::text(
                "company_name",
                (0..55).map(|i| format!("COMPANY {i}")).collect::<Vec<_>>(),
            )],
        )
        .unwrap(),
    );
    w
}

/// Saturate a bounded WGRP server far past its in-flight cap: every
/// request either completes correctly or fails with the typed retryable
/// `Overloaded` — and the served backend bills exactly the admitted
/// scans, never the shed ones.
#[test]
fn saturated_server_sheds_typed_and_never_bills_shed_requests() {
    let connector = Arc::new(CdwConnector::new(warehouse(), CdwConfig::free()));
    let inner: BackendHandle = connector.clone();
    // Every scan stalls 250ms for real, so a burst of 12 requests against
    // 2 slots cannot trickle through one by one.
    let slow: BackendHandle = Arc::new(FaultInjector::new(inner, FaultPlan::hang(0.25)));
    let server = RemoteBackendServer::serve_with(
        slow,
        "127.0.0.1:0",
        RemoteServerConfig { max_connections: 16, max_in_flight: 2, ..Default::default() },
    )
    .expect("loopback server");
    let addr = server.local_addr().to_string();

    // Connect sequentially (the handshake must not race the storm), then
    // release every scan at once.
    let clients: Vec<Arc<RemoteBackend>> =
        (0..12).map(|_| Arc::new(RemoteBackend::connect(addr.clone()).expect("connect"))).collect();
    let barrier = Arc::new(Barrier::new(clients.len()));
    let q = ColumnRef::new("crm", "accounts", "name");
    let handles: Vec<_> = clients
        .into_iter()
        .map(|client| {
            let barrier = barrier.clone();
            let q = q.clone();
            std::thread::spawn(move || {
                barrier.wait();
                client.scan_column(&q, SampleSpec::Full)
            })
        })
        .collect();

    let mut ok = 0u64;
    let mut shed = 0u64;
    for h in handles {
        // A panic or hang here fails the whole suite — "no hangs, no
        // panics" is exactly this join.
        match h.join().expect("client thread must not panic") {
            Ok(col) => {
                assert_eq!(col.len(), 60, "admitted answers must be correct, not partial");
                ok += 1;
            }
            Err(e) => {
                assert!(matches!(e, StoreError::Overloaded { .. }), "untyped failure: {e:?}");
                assert!(e.is_retryable(), "shed requests must invite a retry");
                shed += 1;
            }
        }
    }
    assert_eq!(ok + shed, 12);
    assert!(ok >= 1, "an idle slot must admit");
    assert!(shed >= 1, "a 12-deep burst over 2 slots must shed");
    assert_eq!(
        connector.costs().requests,
        ok,
        "shed requests must never reach the backend (no partial bills)"
    );
    let stats = server.stats();
    assert_eq!(stats.shed_requests, shed, "every client-visible shed is counted");
    server.shutdown();
}

/// An expired request deadline bills zero further scans past the expiry
/// phase — in-process, through the public `discover_opts` path.
#[test]
fn expired_deadline_discover_bills_zero_further_scans() {
    let connector = Arc::new(CdwConnector::new(warehouse(), CdwConfig::free()));
    let wg = WarpGate::with_backend(WarpGateConfig::default(), connector.clone());
    wg.index_warehouse().expect("index");

    let q = ColumnRef::new("crm", "accounts", "name");
    let before = connector.costs();
    let expired = QueryOptions { deadline: Deadline::within_ms(0), ..Default::default() };
    let err = wg.discover_opts(&q, 5, &expired).unwrap_err();
    assert!(matches!(err, StoreError::DeadlineExceeded { phase: Phase::Validate }), "{err:?}");
    assert!(!err.is_retryable(), "the clock is dead either way");
    assert_eq!(connector.costs().since(&before).requests, 0, "expiry must stop billing");

    // A live budget serves normally through the same path.
    let live = QueryOptions { deadline: Deadline::within_ms(30_000), ..Default::default() };
    let d = wg.discover_opts(&q, 5, &live).expect("live budget serves");
    assert!(!d.candidates.is_empty());
    assert!(!d.timing.degraded);
}

/// The WGRP context frame carries deadline and tenant across the wire:
/// an expired budget is shed server-side before any billed work, and the
/// server accounts requests per tenant token.
#[test]
fn wire_context_sheds_expired_deadlines_and_accounts_tenants() {
    let connector = Arc::new(CdwConnector::new(warehouse(), CdwConfig::free()));
    let served: BackendHandle = connector.clone();
    let server = RemoteBackendServer::serve(served, "127.0.0.1:0").expect("server");
    let remote =
        Arc::new(RemoteBackend::connect(server.local_addr().to_string()).expect("connect"));
    remote.set_tenant(Some("acme".to_string()));

    let q = ColumnRef::new("crm", "accounts", "name");
    remote.scan_column(&q, SampleSpec::Full).expect("healthy scan under tenant");
    let billed_before_expiry = connector.costs().requests;

    remote.set_deadline(Deadline::within_ms(0));
    let err = remote.scan_column(&q, SampleSpec::Full).unwrap_err();
    assert!(matches!(err, StoreError::DeadlineExceeded { phase: Phase::Validate }), "{err:?}");
    assert_eq!(
        connector.costs().requests,
        billed_before_expiry,
        "the server must shed before touching the backend"
    );
    assert!(server.stats().deadline_shed >= 1);

    // Clearing the budget resumes service; the tenant ledger saw both.
    remote.set_deadline(Deadline::none());
    remote.scan_column(&q, SampleSpec::Full).expect("cleared budget serves");
    let tenants = server.tenant_requests();
    assert_eq!(tenants.first().map(|(name, _)| name.as_str()), Some("acme"));
    assert!(tenants[0].1 >= 3, "shed requests are accounted too: {tenants:?}");
    server.shutdown();
}

/// Exhausting one tenant's quota rejects that tenant (typed, retryable)
/// while every other tenant's answers stay bit-identical to a system
/// that never saw the noisy neighbor.
#[test]
fn quota_exhausted_tenant_is_isolated_and_others_stay_bit_identical() {
    // The unloaded control: same content, never quota-stressed.
    let control = WarpGate::with_backend(
        WarpGateConfig::default(),
        Arc::new(CdwConnector::new(warehouse(), CdwConfig::free())) as BackendHandle,
    );
    control.index_warehouse().expect("index control");

    let loaded = WarpGate::with_backend(
        WarpGateConfig::default(),
        Arc::new(CdwConnector::new(warehouse(), CdwConfig::free())) as BackendHandle,
    );
    loaded.index_warehouse().expect("index loaded");

    let noisy = TenantId::intern("overload-noisy");
    let polite = TenantId::intern("overload-polite");
    // One scan token, no refill: the second cache-miss discovery trips.
    loaded.quotas().set_quota(noisy, TenantQuota::scans(1.0, 0.0));
    loaded.quotas().set_quota(polite, TenantQuota::scans(100.0, 0.0));

    let noisy_opts = QueryOptions { tenant: Some(noisy), ..Default::default() };
    loaded
        .discover_opts(&ColumnRef::new("crm", "accounts", "name"), 5, &noisy_opts)
        .expect("first call fits the bucket");
    let err = loaded
        .discover_opts(&ColumnRef::new("crm", "accounts", "employees"), 5, &noisy_opts)
        .unwrap_err();
    assert!(matches!(err, StoreError::QuotaExceeded { .. }), "{err:?}");
    assert!(err.is_retryable(), "quota rejections invite a backoff-retry");

    // Every other tenant's results match the unloaded control exactly —
    // same candidates, same f32 scores.
    let polite_opts = QueryOptions { tenant: Some(polite), ..Default::default() };
    for q in [
        ColumnRef::new("crm", "leads", "company"),
        ColumnRef::new("finance", "industries", "company_name"),
    ] {
        let under_load = loaded.discover_opts(&q, 5, &polite_opts).expect("polite tenant serves");
        let unloaded = control.discover(&q, 5).expect("control serves");
        assert_eq!(
            under_load.candidates, unloaded.candidates,
            "a neighbor's quota pressure must not perturb results for {q}"
        );
        assert!(!under_load.timing.degraded);
    }
    // And the noisy tenant stays rejected until its bucket refills.
    let err = loaded
        .discover_opts(&ColumnRef::new("finance", "industries", "company_name"), 5, &noisy_opts)
        .unwrap_err();
    assert!(matches!(err, StoreError::QuotaExceeded { .. }), "{err:?}");
}
