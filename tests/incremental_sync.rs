//! Incremental-sync acceptance suite (ISSUE 3): after mutating 1 of 32
//! tables, `WarpGate::sync()` must re-embed only that table's columns —
//! proven through the CDW cost meter (bytes + requests) and the embed
//! counter — and the synced index must rank identically to a from-scratch
//! rebuild.

use std::sync::Arc;

use warpgate::prelude::*;

const TABLES: usize = 32;
const COLUMNS_PER_TABLE: usize = 3;

fn warehouse() -> Warehouse {
    let mut w = Warehouse::new("sync-acceptance");
    for t in 0..TABLES {
        let cols: Vec<Column> = (0..COLUMNS_PER_TABLE)
            .map(|c| {
                Column::text(
                    format!("col{c}"),
                    (0..60).map(|r| format!("entity {t} {c} {r}")).collect::<Vec<_>>(),
                )
            })
            .collect();
        w.database_mut(&format!("db{}", t % 4))
            .add_table(Table::new(format!("t{t}"), cols).unwrap());
    }
    w
}

fn mutated_table(generation: usize) -> Table {
    let cols: Vec<Column> = (0..COLUMNS_PER_TABLE)
        .map(|c| {
            Column::text(
                format!("col{c}"),
                (0..60).map(|r| format!("fresh {generation} {c} {r}")).collect::<Vec<_>>(),
            )
        })
        .collect();
    Table::new("t5", cols).unwrap()
}

#[test]
fn sync_after_mutating_1_of_32_tables_rescans_only_that_table() {
    let connector = Arc::new(CdwConnector::new(warehouse(), CdwConfig::free()));
    let wg = WarpGate::with_backend(
        WarpGateConfig { threads: 2, ..Default::default() },
        connector.clone(),
    );
    let initial = wg.index_warehouse().unwrap();
    assert_eq!(initial.columns_indexed, TABLES * COLUMNS_PER_TABLE);

    // Mutate exactly one of the 32 tables.
    connector.warehouse_mut().database_mut("db1").add_table(mutated_table(1));

    // Expected scan bill for the change set: the mutated table's columns
    // under the system's own sample spec, measured on the same meter.
    connector.reset_costs();
    for c in 0..COLUMNS_PER_TABLE {
        connector
            .scan_column(&ColumnRef::new("db1", "t5", format!("col{c}")), wg.config().sample)
            .unwrap();
    }
    let expected = connector.costs();
    connector.reset_costs();

    let embeds_before = wg.embedder().embed_count();
    let report = wg.sync().unwrap();
    let billed = connector.costs();

    assert_eq!(report.tables_updated, 1);
    assert_eq!(report.tables_added, 0);
    assert_eq!(report.tables_removed, 0);
    assert_eq!(report.columns_indexed, COLUMNS_PER_TABLE);
    // CostMeter proof: exactly the mutated table's columns were scanned.
    assert_eq!(billed.requests, COLUMNS_PER_TABLE as u64);
    assert_eq!(
        billed.bytes_scanned, expected.bytes_scanned,
        "sync scanned more bytes than the changed table costs"
    );
    // Embed-counter proof: exactly those columns were re-embedded.
    assert_eq!(wg.embedder().embed_count() - embeds_before, COLUMNS_PER_TABLE as u64);
    assert_eq!(wg.len(), TABLES * COLUMNS_PER_TABLE, "sync must not grow or shrink the index");
}

#[test]
fn synced_rankings_match_a_from_scratch_rebuild() {
    let connector = Arc::new(CdwConnector::new(warehouse(), CdwConfig::free()));
    let wg = WarpGate::with_backend(WarpGateConfig::default(), connector.clone());
    wg.index_warehouse().unwrap();

    connector.warehouse_mut().database_mut("db1").add_table(mutated_table(2));
    wg.sync().unwrap();

    // A brand-new system over the mutated warehouse is ground truth.
    let fresh = WarpGate::with_backend(WarpGateConfig::default(), connector.clone());
    fresh.index_warehouse().unwrap();

    // Compare rankings (ref + score) over a spread of queries, including
    // the mutated table itself.
    let mut queries = vec![
        ColumnRef::new("db1", "t5", "col0"),
        ColumnRef::new("db1", "t5", "col2"),
        ColumnRef::new("db0", "t0", "col0"),
        ColumnRef::new("db3", "t31", "col1"),
    ];
    queries.push(ColumnRef::new("db2", "t14", "col1"));
    for q in &queries {
        let synced: Vec<(ColumnRef, f32)> = wg
            .discover(q, 10)
            .unwrap()
            .candidates
            .into_iter()
            .map(|c| (c.reference, c.score))
            .collect();
        let rebuilt: Vec<(ColumnRef, f32)> = fresh
            .discover(q, 10)
            .unwrap()
            .candidates
            .into_iter()
            .map(|c| (c.reference, c.score))
            .collect();
        assert_eq!(synced, rebuilt, "sync diverged from a from-scratch rebuild on {q}");
    }
}

#[test]
fn repeated_syncs_converge_and_stay_cheap() {
    let connector = Arc::new(CdwConnector::new(warehouse(), CdwConfig::free()));
    let wg = WarpGate::with_backend(WarpGateConfig::default(), connector.clone());
    wg.index_warehouse().unwrap();

    for generation in 0..3 {
        connector.warehouse_mut().database_mut("db1").add_table(mutated_table(generation));
        let report = wg.sync().unwrap();
        assert_eq!(report.tables_updated, 1);
        assert_eq!(report.cost.requests, COLUMNS_PER_TABLE as u64);
        // Immediately syncing again is free: versions now match.
        let again = wg.sync().unwrap();
        assert!(again.is_noop(), "second sync must be a no-op: {again:?}");
        assert_eq!(again.cost.requests, 0);
    }
}

#[test]
fn sync_tracks_churn_on_a_csv_backend() {
    // The same incremental story over the file-backed backend: editing one
    // CSV file re-indexes only that table.
    let root = std::env::temp_dir().join(format!("wg_sync_csv_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    CsvBackend::export_warehouse(&warehouse(), &root).unwrap();
    let backend: BackendHandle = Arc::new(CsvBackend::open(&root, CdwConfig::free()).unwrap());
    let wg = WarpGate::with_backend(WarpGateConfig::default(), backend.clone());
    wg.index_warehouse().unwrap();
    assert_eq!(wg.len(), TABLES * COLUMNS_PER_TABLE);

    // Overwrite one table's file; add a new one; delete a third.
    std::fs::write(
        root.join("db1").join("t5.csv"),
        "col0,col1\nalpha one,beta one\nalpha two,beta two\n",
    )
    .unwrap();
    std::fs::write(root.join("db0").join("brand_new.csv"), "fresh_col\nvalue a\nvalue b\n")
        .unwrap();
    std::fs::remove_file(root.join("db2").join("t2.csv")).unwrap();

    backend.reset_costs();
    let report = wg.sync().unwrap();
    assert_eq!(report.tables_updated, 1, "{report:?}");
    assert_eq!(report.tables_added, 1, "{report:?}");
    assert_eq!(report.tables_removed, 1, "{report:?}");
    // t5 shrank from 3 columns to 2 (one vanished) and t2's 3 dropped.
    assert_eq!(report.columns_removed, 1 + COLUMNS_PER_TABLE, "{report:?}");
    assert_eq!(report.columns_indexed, 2 + 1, "changed + new columns only");
    assert_eq!(report.cost.requests, 3, "only changed/new columns are billed");
    // 96 initial − 3 (deleted t2) − 1 (t5's vanished column) + 1 (new
    // table); t5's two surviving columns re-indexed in place.
    assert_eq!(wg.len(), TABLES * COLUMNS_PER_TABLE - COLUMNS_PER_TABLE - 1 + 1);
    std::fs::remove_dir_all(&root).ok();
}
