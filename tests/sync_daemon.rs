//! Service-loop acceptance: a `SyncDaemon` against a mutating backend
//! converges the index to the rebuilt-from-scratch state without any
//! manual `sync()` call, with retries and circuit-breaker transitions
//! visible in its report.

use std::sync::Arc;
use std::time::{Duration, Instant};

use warpgate::prelude::*;

fn warehouse() -> Warehouse {
    let mut w = Warehouse::new("live");
    w.database_mut("crm").add_table(
        Table::new(
            "accounts",
            vec![
                Column::text("name", (0..50).map(|i| format!("Company {i}")).collect::<Vec<_>>()),
                Column::ints("employees", (0..50).map(|i| i * 7).collect()),
            ],
        )
        .unwrap(),
    );
    w.database_mut("crm").add_table(
        Table::new(
            "leads",
            vec![Column::text(
                "company",
                (0..40).map(|i| format!("company {i}")).collect::<Vec<_>>(),
            )],
        )
        .unwrap(),
    );
    w.database_mut("finance").add_table(
        Table::new(
            "industries",
            vec![Column::text(
                "company_name",
                (0..45).map(|i| format!("COMPANY {i}")).collect::<Vec<_>>(),
            )],
        )
        .unwrap(),
    );
    w
}

fn fast_daemon_config() -> SyncDaemonConfig {
    SyncDaemonConfig {
        interval: Duration::from_millis(5),
        failure_threshold: 2,
        open_intervals: 2,
        schedule: SyncSchedule::All,
        checkpoint: None,
        tick_deadline: None,
    }
}

/// Poll the daemon's report until `pred` holds (waking it each round so
/// wall-clock stays short) or fail loudly.
fn wait_for(daemon: &SyncDaemon, pred: impl Fn(&DaemonReport) -> bool) -> DaemonReport {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let r = daemon.report();
        if pred(&r) {
            return r;
        }
        assert!(Instant::now() < deadline, "daemon never reached the expected state: {r:?}");
        daemon.wake();
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn daemon_converges_to_the_rebuilt_from_scratch_state() {
    let connector = Arc::new(CdwConnector::new(warehouse(), CdwConfig::free()));
    let backend: BackendHandle = connector.clone();
    let config = WarpGateConfig { threads: 1, ..WarpGateConfig::default() };

    let wg = Arc::new(WarpGate::with_backend(config, backend.clone()));
    wg.index_warehouse().expect("initial index");
    let daemon = SyncDaemon::spawn(wg.clone(), fast_daemon_config());

    // The warehouse mutates in every way sync must handle: changed
    // content, a brand-new table, a dropped table.
    {
        let mut w = connector.warehouse_mut();
        w.database_mut("crm").add_table(
            Table::new(
                "leads",
                vec![Column::text(
                    "company",
                    (0..30).map(|i| format!("Fresh Lead {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        w.database_mut("ops").add_table(
            Table::new(
                "tickets",
                vec![Column::text(
                    "subject",
                    (0..25).map(|i| format!("Ticket {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        w.database_mut("finance").remove_table("industries");
    }

    // No manual sync(): the daemon must pick all of it up.
    let r = wait_for(&daemon, |r| {
        r.tables_updated >= 1 && r.tables_added >= 1 && r.tables_removed >= 1
    });
    assert!(r.is_healthy(), "daemon unhealthy after converging: {r:?}");
    let final_report = daemon.shutdown();
    assert_eq!(final_report.syncs_failed, 0);
    assert_eq!(final_report.circuit, CircuitState::Closed);

    // The daemon-maintained index must rank identically to a system
    // rebuilt from scratch over the mutated warehouse.
    let fresh = WarpGate::with_backend(config, backend);
    fresh.index_warehouse().expect("fresh rebuild");
    assert_eq!(wg.len(), fresh.len(), "index sizes diverged");
    for q in [
        ColumnRef::new("crm", "accounts", "name"),
        ColumnRef::new("crm", "leads", "company"),
        ColumnRef::new("ops", "tickets", "subject"),
    ] {
        let via_daemon = wg.discover(&q, 5).expect("daemon-maintained discover").candidates;
        let via_fresh = fresh.discover(&q, 5).expect("fresh discover").candidates;
        assert_eq!(via_daemon, via_fresh, "daemon-converged index diverged on {q}");
    }
}

#[test]
fn daemon_report_shows_retries_from_the_middleware_stack() {
    // Stack: RetryBackend(FaultInjector(CdwConnector)). Every 3rd scan
    // faults; the retry layer absorbs the faults, so the daemon's syncs
    // succeed — but the retries surface in its cumulative cost.
    let connector = Arc::new(CdwConnector::new(warehouse(), CdwConfig::free()));
    let inner: BackendHandle = connector.clone();
    let flaky: BackendHandle = Arc::new(FaultInjector::new(inner, FaultPlan::fail_every(3)));
    let resilient: BackendHandle = Arc::new(RetryBackend::new(
        flaky,
        RetryPolicy { base_delay_secs: 0.001, ..RetryPolicy::default() },
    ));

    // Nothing indexed yet: the daemon's first sync does the full load
    // (scans → faults → retries).
    let wg = Arc::new(WarpGate::with_backend(
        WarpGateConfig { threads: 1, ..WarpGateConfig::default() },
        resilient,
    ));
    let daemon = SyncDaemon::spawn(wg.clone(), fast_daemon_config());
    let r = wait_for(&daemon, |r| r.syncs_ok >= 1);
    assert_eq!(r.tables_added as usize, 3, "first sync indexes the whole warehouse");
    assert!(r.cost.retries >= 1, "retries must be visible in the daemon report: {r:?}");
    assert!(r.cost.virtual_secs > 0.0, "backoff latency must be charged: {r:?}");
    assert_eq!(wg.len(), 4, "all columns indexed despite the faults");
    daemon.shutdown();
}

#[test]
fn circuit_breaker_transitions_are_visible_and_recoverable() {
    // A backend that fails *every* scan, behind a retry layer whose
    // budget is too small to save it: syncs fail, the circuit opens. Then
    // the backend heals and the half-open probe closes the circuit.
    let connector = Arc::new(CdwConnector::new(warehouse(), CdwConfig::free()));
    let healthy: BackendHandle = connector.clone();
    let dead: BackendHandle =
        Arc::new(FaultInjector::new(healthy.clone(), FaultPlan::fail_every(1)));
    let stack: BackendHandle = Arc::new(RetryBackend::new(
        dead,
        RetryPolicy { max_attempts: 2, base_delay_secs: 0.001, ..RetryPolicy::default() },
    ));

    let wg = Arc::new(WarpGate::with_backend(
        WarpGateConfig { threads: 1, ..WarpGateConfig::default() },
        stack,
    ));
    let daemon = SyncDaemon::spawn(wg.clone(), fast_daemon_config());

    // Failures mount; the circuit opens; open ticks skip syncing.
    let r = wait_for(&daemon, |r| r.circuit_opened >= 1 && r.skipped_while_open >= 1);
    assert!(r.syncs_failed >= 2, "threshold is 2: {r:?}");
    let err = r.last_error.as_deref().unwrap_or("");
    assert!(err.contains("retries exhausted"), "retry exhaustion must be reported: {err}");

    // Heal: swap in the healthy backend. The next probe closes the
    // circuit and the index converges.
    wg.attach(healthy);
    let r = wait_for(&daemon, |r| r.circuit == CircuitState::Closed && r.syncs_ok >= 1);
    assert!(r.circuit_closed >= 1, "recovery must pass through half-open: {r:?}");
    assert_eq!(wg.len(), 4, "index converged after recovery");
    daemon.shutdown();
}
