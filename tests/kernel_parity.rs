//! Parity and invariants for the vectorized kernel layer (ISSUE 5).
//!
//! The kernels reassociate float additions, so exact bit-equality with the
//! old scalar loops is not the contract. The contract pinned here is:
//!
//! * kernel `dot`/`gemv` agree with the strict scalar references within a
//!   small relative tolerance, for arbitrary (odd) lengths including the
//!   remainder lanes;
//! * element-wise kernels (`axpy`) are bit-exact;
//! * SimHash signing is self-consistent (insert-side and query-side use
//!   the same kernel) and agrees with the scalar reference away from the
//!   sign boundary;
//! * `VectorArena` slot management behaves (insert/remove/reuse/iteration);
//! * WGLX snapshots round-trip unchanged across the HashMap → arena
//!   migration: bytes written by the old encoder load into the new index
//!   with identical rankings, and re-encoding reproduces the bytes.

use proptest::prelude::*;
use warpgate::lsh::{LshParams, ShardedLshIndex, SimHashLshIndex, SimHasher, VectorArena};
use warpgate::util::kernel::{self, reference};
use warpgate::util::rng::{Rng64, Xoshiro256pp};
use warpgate::util::{codec, TopK};

// ---------------------------------------------------------------------------
// Kernel vs. scalar reference
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Kernel dot tracks the strict scalar dot over odd lengths, which
    /// exercises both the 8-lane body and the remainder tail.
    #[test]
    fn dot_parity(values in prop::collection::vec((-8.0f32..8.0, -8.0f32..8.0), 0..70)) {
        let a: Vec<f32> = values.iter().map(|(x, _)| *x).collect();
        let b: Vec<f32> = values.iter().map(|(_, y)| *y).collect();
        let got = kernel::dot(&a, &b);
        let want = reference::dot(&a, &b);
        let tol = 1e-3 * (1.0 + want.abs());
        prop_assert!((got - want).abs() <= tol, "{got} vs {want} over {} lanes", a.len());
    }

    /// Blocked GEMV tracks the per-column strict reference for arbitrary
    /// shapes, including row counts that leave 1–3 remainder rows.
    #[test]
    fn gemv_parity(
        x in prop::collection::vec(-4.0f32..4.0, 1..14),
        cols in 1usize..20,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256pp::new(seed);
        let m: Vec<f32> = (0..x.len() * cols).map(|_| rng.gen_gaussian() as f32).collect();
        let mut got = vec![0.0f32; cols];
        let mut want = vec![0.0f32; cols];
        kernel::gemv(&x, &m, cols, &mut got);
        reference::gemv(&x, &m, cols, &mut want);
        for (g, w) in got.iter().zip(&want) {
            let tol = 1e-3 * (1.0 + w.abs());
            prop_assert!((g - w).abs() <= tol, "{g} vs {w} ({}x{cols})", x.len());
        }
    }

    /// axpy is element-wise: bit-exact against the scalar loop.
    #[test]
    fn axpy_exact(
        pairs in prop::collection::vec((-8.0f32..8.0, -8.0f32..8.0), 0..70),
        alpha in -4.0f32..4.0,
    ) {
        let x: Vec<f32> = pairs.iter().map(|(v, _)| *v).collect();
        let mut y: Vec<f32> = pairs.iter().map(|(_, v)| *v).collect();
        let mut y_ref = y.clone();
        kernel::axpy(&mut y, alpha, &x);
        reference::axpy(&mut y_ref, alpha, &x);
        prop_assert_eq!(y, y_ref);
    }

    /// Signing is deterministic and self-consistent with the scalar
    /// reference away from the sign boundary: projections agree within
    /// tolerance, and every bit whose reference projection clears the
    /// tolerance matches exactly.
    #[test]
    fn sign_parity(seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::new(seed);
        let dim = 48;
        let hasher = SimHasher::new(dim, 128, seed ^ 0xC0FFEE);
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_gaussian() as f32).collect();
        prop_assert!(hasher.sign(&v) == hasher.sign(&v), "signing must be deterministic");
        let fast = hasher.project(&v);
        let slow = hasher.project_scalar(&v);
        let sig = hasher.sign(&v);
        let sig_ref = hasher.sign_scalar(&v);
        for (b, (f, s)) in fast.iter().zip(&slow).enumerate() {
            let tol = 1e-3 * (1.0 + s.abs());
            prop_assert!((f - s).abs() <= tol, "bit {b}: {f} vs {s}");
            if s.abs() > tol {
                prop_assert!(sig.bit(b) == sig_ref.bit(b), "stable bit {b} flipped");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// VectorArena
// ---------------------------------------------------------------------------

#[test]
fn arena_insert_remove_reuse_and_iteration_order() {
    let mut arena = VectorArena::new(4);
    let mut rng = Xoshiro256pp::new(5);
    let vecs: Vec<Vec<f32>> =
        (0..6).map(|_| (0..4).map(|_| rng.gen_gaussian() as f32).collect()).collect();
    for (id, v) in vecs.iter().enumerate() {
        assert_eq!(arena.insert(id as u32, v), id as u32, "fresh ids fill slots in order");
    }
    assert_eq!(arena.len(), 6);

    // Removal frees the slot without disturbing neighbours.
    assert!(arena.remove(2));
    assert!(arena.remove(4));
    assert!(!arena.remove(2));
    assert_eq!(arena.len(), 4);
    assert_eq!(arena.get(3), Some(&vecs[3][..]));
    let live: Vec<u32> = arena.iter().map(|(id, _)| id).collect();
    assert_eq!(live, vec![0, 1, 3, 5], "iteration is slot-ordered, skipping free slots");

    // Free slots recycle LIFO; the slab does not grow.
    assert_eq!(arena.insert(7, &vecs[0]), 4);
    assert_eq!(arena.insert(8, &vecs[1]), 2);
    assert_eq!(arena.insert(9, &vecs[2]), 6, "exhausted free list appends");
    assert_eq!(arena.slot_count(), 7);

    // In-place replacement keeps the slot and refreshes norm + data.
    let before = arena.slot(7).unwrap();
    arena.insert(7, &vecs[5]);
    assert_eq!(arena.slot(7), Some(before));
    assert_eq!(arena.get(7), Some(&vecs[5][..]));
    let expected_norm = vecs[5].iter().map(|x| x * x).sum::<f32>().sqrt();
    assert!((arena.norm_at(before) - expected_norm).abs() < 1e-6);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arena contents always match a straightforward model map, whatever
    /// the interleaving of inserts, replacements and removals.
    #[test]
    fn arena_matches_model_map(ops in prop::collection::vec((0u32..12, any::<bool>()), 1..60)) {
        let mut arena = VectorArena::new(2);
        let mut model = std::collections::BTreeMap::new();
        for (step, (id, is_insert)) in ops.into_iter().enumerate() {
            if is_insert {
                let v = [step as f32, id as f32];
                arena.insert(id, &v);
                model.insert(id, v.to_vec());
            } else {
                prop_assert_eq!(arena.remove(id), model.remove(&id).is_some());
            }
        }
        prop_assert_eq!(arena.len(), model.len());
        for (id, v) in &model {
            prop_assert_eq!(arena.get(*id), Some(&v[..]));
        }
        let mut live: Vec<u32> = arena.iter().map(|(id, _)| id).collect();
        live.sort_unstable();
        let want: Vec<u32> = model.keys().copied().collect();
        prop_assert_eq!(live, want);
    }
}

// ---------------------------------------------------------------------------
// WGLX snapshot compatibility across the HashMap → arena migration
// ---------------------------------------------------------------------------

fn random_unit(dim: usize, rng: &mut Xoshiro256pp) -> Vec<f32> {
    let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_gaussian() as f32).collect();
    let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    for x in &mut v {
        *x /= n;
    }
    v
}

/// Bytes exactly as the pre-arena encoder wrote them: header, geometry,
/// seed, probes, then `(id, vector)` pairs sorted by id.
fn old_format_snapshot(
    dim: usize,
    params: LshParams,
    seed: u64,
    probes: usize,
    items: &[(u32, Vec<f32>)],
) -> Vec<u8> {
    let mut buf = Vec::new();
    codec::put_header(&mut buf, *b"WGLX", 1);
    codec::put_u32(&mut buf, dim as u32);
    codec::put_u32(&mut buf, params.bands as u32);
    codec::put_u32(&mut buf, params.rows as u32);
    codec::put_u64(&mut buf, seed);
    codec::put_u32(&mut buf, probes as u32);
    codec::put_len(&mut buf, items.len());
    let mut sorted: Vec<&(u32, Vec<f32>)> = items.iter().collect();
    sorted.sort_unstable_by_key(|(id, _)| *id);
    for (id, v) in sorted {
        codec::put_u32(&mut buf, *id);
        codec::put_f32_slice(&mut buf, v);
    }
    buf
}

#[test]
fn old_snapshot_bytes_load_with_identical_rankings() {
    let dim = 32;
    let params = LshParams::for_threshold(0.7, 128);
    let seed = 21;
    let mut rng = Xoshiro256pp::new(8);
    let items: Vec<(u32, Vec<f32>)> = (0..120).map(|id| (id, random_unit(dim, &mut rng))).collect();

    // A snapshot written by the pre-arena code...
    let old_bytes = old_format_snapshot(dim, params, seed, 1, &items);

    // ...loads into the arena-backed index...
    let mut r = &old_bytes[..];
    let mut loaded = SimHashLshIndex::decode(&mut r).expect("old bytes must decode");
    assert!(r.is_empty());
    assert_eq!(loaded.len(), items.len());
    assert_eq!(loaded.probes(), 1);

    // ...and into the sharded index at any shard count...
    let mut r = &old_bytes[..];
    let sharded = ShardedLshIndex::decode(&mut r, 5).expect("old bytes must decode sharded");
    assert_eq!(sharded.len(), items.len());

    // ...with rankings identical to an index built fresh from the vectors.
    let mut fresh = SimHashLshIndex::new(dim, params, seed);
    fresh.set_probes(1);
    for (id, v) in &items {
        assert!(fresh.insert(*id, v));
    }
    for _ in 0..20 {
        let q = random_unit(dim, &mut rng);
        let want = fresh.search(&q, 5, |_| false);
        assert_eq!(loaded.search(&q, 5, |_| false), want);
        assert_eq!(sharded.search(&q, 5, |_| false), want);
    }

    // Re-encoding reproduces the old byte stream exactly: new snapshots
    // remain loadable by old readers.
    let mut new_bytes = Vec::new();
    loaded.encode(&mut new_bytes);
    assert_eq!(new_bytes, old_bytes, "WGLX byte layout must not change");

    // Round-trip survives arena slot churn (remove + reinsert reuses
    // slots; the encoder still writes id-sorted output).
    assert!(loaded.remove(7));
    assert!(loaded.remove(40));
    let replacement = random_unit(dim, &mut rng);
    assert!(loaded.insert(7, &replacement));
    let mut churned = Vec::new();
    loaded.encode(&mut churned);
    let mut r = &churned[..];
    let reloaded = SimHashLshIndex::decode(&mut r).expect("churned snapshot decodes");
    assert_eq!(reloaded.len(), loaded.len());
    let q = random_unit(dim, &mut rng);
    assert_eq!(reloaded.search(&q, 5, |_| false), loaded.search(&q, 5, |_| false));
}

// ---------------------------------------------------------------------------
// Re-rank equivalence: arena streaming vs. a straightforward scorer
// ---------------------------------------------------------------------------

#[test]
fn arena_rerank_matches_bruteforce_scoring() {
    let dim = 48;
    let mut rng = Xoshiro256pp::new(13);
    let mut index = SimHashLshIndex::for_threshold(dim, 0.6, 3);
    let base = random_unit(dim, &mut rng);
    let mut stored: Vec<(u32, Vec<f32>)> = Vec::new();
    for id in 0..300u32 {
        let mut v: Vec<f32> = base.iter().map(|x| x + 0.4 * rng.gen_gaussian() as f32).collect();
        let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter_mut().for_each(|x| *x /= n);
        index.insert(id, &v);
        stored.push((id, v));
    }
    for _ in 0..10 {
        let q = random_unit(dim, &mut rng);
        let candidates = index.candidates(&q);
        assert!(candidates.windows(2).all(|w| w[0] < w[1]), "candidates sorted + deduped");
        // Score the same candidate set with the plain reference cosine.
        let mut topk = TopK::new(5);
        for &id in &candidates {
            let v = &stored[id as usize].1;
            topk.push(reference::cosine(&q, v) as f64, id);
        }
        let want: Vec<u32> = topk.into_sorted().into_iter().map(|(_, id)| id).collect();
        let got: Vec<u32> = index.search(&q, 5, |_| false).into_iter().map(|(id, _)| id).collect();
        assert_eq!(got, want, "arena streaming re-rank must rank like the reference");
    }
}
