//! Backend-parity suite: the same warehouse served through every
//! `WarehouseBackend` implementation must produce identical discovery
//! rankings.
//!
//! Covered backends:
//!
//! * `CdwConnector` — the simulated cloud data warehouse;
//! * `CsvBackend` — the warehouse exported to `<db>/<table>.csv` files;
//! * `FaultInjector` — the wrapper backend (transparent plan for parity,
//!   plus dedicated resilience checks);
//! * `RetryBackend` — the retry middleware (transparent over a healthy
//!   inner backend; resilience scenarios live in `retry_backend.rs`);
//! * `RemoteBackend` — the wire-protocol client talking to a loopback
//!   `RemoteBackendServer` (deeper protocol checks in
//!   `remote_backend.rs`).

use std::sync::Arc;

use warpgate::prelude::*;

/// A warehouse whose columns round-trip CSV exactly: text that never
/// parses as numbers, integers, and floats with fractional parts.
fn parity_warehouse() -> Warehouse {
    let mut w = Warehouse::new("parity");
    w.database_mut("crm").add_table(
        Table::new(
            "accounts",
            vec![
                Column::text("name", (0..50).map(|i| format!("Company {i}")).collect::<Vec<_>>()),
                Column::ints("employees", (0..50).map(|i| i * 7).collect()),
            ],
        )
        .unwrap(),
    );
    w.database_mut("crm").add_table(
        Table::new(
            "leads",
            vec![Column::text(
                "company",
                (0..40).map(|i| format!("company {i}")).collect::<Vec<_>>(),
            )],
        )
        .unwrap(),
    );
    w.database_mut("finance").add_table(
        Table::new(
            "industries",
            vec![
                Column::text(
                    "company_name",
                    (0..45).map(|i| format!("COMPANY {i}")).collect::<Vec<_>>(),
                ),
                Column::text(
                    "sector",
                    (0..45).map(|i| format!("Sector {}", i % 5)).collect::<Vec<_>>(),
                ),
            ],
        )
        .unwrap(),
    );
    w.database_mut("finance").add_table(
        Table::new(
            "metrics",
            vec![
                Column::floats("revenue", (0..30).map(|i| 1000.5 + i as f64).collect()),
                Column::floats("income", (0..30).map(|i| 1010.25 + i as f64).collect()),
            ],
        )
        .unwrap(),
    );
    w
}

fn queries() -> Vec<ColumnRef> {
    vec![
        ColumnRef::new("crm", "accounts", "name"),
        ColumnRef::new("crm", "leads", "company"),
        ColumnRef::new("finance", "industries", "company_name"),
        ColumnRef::new("finance", "metrics", "revenue"),
    ]
}

fn rankings(backend: BackendHandle) -> Vec<Vec<(ColumnRef, f32)>> {
    let wg = WarpGate::with_backend(WarpGateConfig::default(), backend);
    let report = wg.index_warehouse().unwrap();
    assert_eq!(report.columns_indexed, 7);
    queries()
        .iter()
        .map(|q| {
            wg.discover(q, 5)
                .unwrap()
                .candidates
                .into_iter()
                .map(|c| (c.reference, c.score))
                .collect()
        })
        .collect()
}

fn csv_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("wg_parity_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

#[test]
fn all_backends_produce_identical_rankings() {
    let w = parity_warehouse();

    // 1. Simulated CDW.
    let cdw: BackendHandle = Arc::new(CdwConnector::new(w.clone(), CdwConfig::free()));
    let cdw_rankings = rankings(cdw);

    // 2. CSV directory serving the exported warehouse.
    let root = csv_root("rank");
    CsvBackend::export_warehouse(&w, &root).unwrap();
    let csv: BackendHandle = Arc::new(CsvBackend::open(&root, CdwConfig::free()).unwrap());
    let csv_rankings = rankings(csv);

    // 3. Fault injector with a transparent plan around a fresh CDW.
    let inner: BackendHandle = Arc::new(CdwConnector::new(w.clone(), CdwConfig::free()));
    let wrapped: BackendHandle = Arc::new(FaultInjector::new(inner, FaultPlan::default()));
    let fault_rankings = rankings(wrapped);

    // 4. Retry middleware around a healthy CDW (no faults → transparent).
    let inner: BackendHandle = Arc::new(CdwConnector::new(w.clone(), CdwConfig::free()));
    let retry: BackendHandle = Arc::new(RetryBackend::with_defaults(inner));
    let retry_rankings = rankings(retry);

    // 5. The same warehouse served over loopback TCP.
    let served: BackendHandle = Arc::new(CdwConnector::new(w, CdwConfig::free()));
    let server = RemoteBackendServer::serve(served, "127.0.0.1:0").expect("loopback server");
    let remote: BackendHandle =
        Arc::new(RemoteBackend::connect(server.local_addr().to_string()).expect("connect"));
    let remote_rankings = rankings(remote);
    server.shutdown();

    for (qi, q) in queries().iter().enumerate() {
        assert_eq!(
            cdw_rankings[qi], csv_rankings[qi],
            "CSV backend diverged from the simulated CDW on {q}"
        );
        assert_eq!(
            cdw_rankings[qi], fault_rankings[qi],
            "fault-wrapped backend diverged from the simulated CDW on {q}"
        );
        assert_eq!(
            cdw_rankings[qi], retry_rankings[qi],
            "retry-wrapped backend diverged from the simulated CDW on {q}"
        );
        assert_eq!(
            cdw_rankings[qi], remote_rankings[qi],
            "remote (TCP) backend diverged from the simulated CDW on {q}"
        );
        // The float query (metrics.revenue) may legitimately come back
        // empty — its only numeric peer is same-table and excluded; what
        // matters is that every backend agrees. Text queries must hit.
        if q.database == "crm" || q.table == "industries" {
            assert!(!cdw_rankings[qi].is_empty(), "no candidates for {q}");
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn joinability_agrees_across_backends() {
    let w = parity_warehouse();
    let root = csv_root("join");
    CsvBackend::export_warehouse(&w, &root).unwrap();

    let a = ColumnRef::new("crm", "accounts", "name");
    let b = ColumnRef::new("finance", "industries", "company_name");
    let mut scores = Vec::new();
    let backends: Vec<BackendHandle> = vec![
        Arc::new(CdwConnector::new(w, CdwConfig::free())),
        Arc::new(CsvBackend::open(&root, CdwConfig::free()).unwrap()),
    ];
    for backend in backends {
        let wg = WarpGate::with_backend(WarpGateConfig::default(), backend);
        wg.index_warehouse().unwrap();
        scores.push(wg.joinability(&a, &b).unwrap());
    }
    assert_eq!(scores[0], scores[1], "joinability must not depend on the backend");
    assert!(scores[0] > 0.8);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn injected_faults_abort_indexing_without_billing_everything() {
    let inner: BackendHandle = Arc::new(CdwConnector::new(parity_warehouse(), CdwConfig::free()));
    let faulty = Arc::new(FaultInjector::new(inner, FaultPlan::fail_every(2)));
    let backend: BackendHandle = faulty.clone();
    let wg = WarpGate::with_backend(WarpGateConfig { threads: 1, ..Default::default() }, backend);
    let err = wg.index_warehouse().expect_err("every 2nd scan fails");
    assert!(err.to_string().contains("injected fault"), "unexpected error: {err}");
    assert!(faulty.faults_injected() >= 1);
    // The abort flag keeps the run from scanning (and billing) the whole
    // warehouse after the first failure: 7 columns exist, the fault fires
    // on scan #2, so at most a couple of requests ever reach the meter.
    assert!(
        faulty.costs().requests < 7,
        "indexing kept billing after the injected failure: {:?}",
        faulty.costs()
    );
}

#[test]
fn recovery_after_faults_via_sync() {
    // A flaky link fails mid-index; re-attaching a healthy handle to the
    // same warehouse and syncing must converge to the full index.
    let inner: BackendHandle = Arc::new(CdwConnector::new(parity_warehouse(), CdwConfig::free()));
    let flaky: BackendHandle =
        Arc::new(FaultInjector::new(inner.clone(), FaultPlan::fail_every(3)));
    let wg = WarpGate::with_backend(WarpGateConfig { threads: 1, ..Default::default() }, flaky);
    wg.index_warehouse().expect_err("flaky link fails the bulk load");

    wg.attach(inner);
    let report = wg.sync().unwrap();
    assert_eq!(report.columns_indexed, 7, "sync over the healthy link completes the index");
    let d = wg.discover(&ColumnRef::new("crm", "accounts", "name"), 3).unwrap();
    assert!(!d.candidates.is_empty());
}

/// Split the parity warehouse into three single-database warehouses —
/// the federated counterpart of the merged fixture.
fn split_warehouses() -> Vec<Warehouse> {
    let merged = parity_warehouse();
    merged
        .databases()
        .iter()
        .map(|db| {
            let mut w = Warehouse::new(db.name());
            for table in db.tables() {
                w.database_mut(db.name()).add_table(table.clone());
            }
            w
        })
        .collect()
}

#[test]
fn three_named_backends_rank_like_one_merged_backend() {
    // Oracle: the whole corpus behind one default backend.
    let merged: BackendHandle = Arc::new(CdwConnector::new(parity_warehouse(), CdwConfig::free()));
    let oracle = WarpGate::with_backend(WarpGateConfig::default(), merged);
    oracle.index_warehouse().unwrap();

    // Federation: each database attached as its own named warehouse.
    let federated = WarpGate::new(WarpGateConfig::default());
    let mut ids = Vec::new();
    for w in split_warehouses() {
        let name = format!("parity-fed-{}", w.name());
        let backend: BackendHandle = Arc::new(CdwConnector::new(w, CdwConfig::free()));
        ids.push(federated.attach_named(&name, backend));
    }
    federated.index_warehouse().unwrap();
    assert_eq!(federated.len(), oracle.len());

    for q in queries() {
        let id = ids[split_warehouses().iter().position(|w| w.name() == q.database).unwrap()];
        let scoped = q.clone().with_backend(id);
        let got: Vec<(String, f32)> = federated
            .discover(&scoped, 5)
            .unwrap()
            .candidates
            .into_iter()
            .map(|c| {
                (
                    format!(
                        "{}.{}.{}",
                        c.reference.database, c.reference.table, c.reference.column
                    ),
                    c.score,
                )
            })
            .collect();
        let want: Vec<(String, f32)> = oracle
            .discover(&q, 5)
            .unwrap()
            .candidates
            .into_iter()
            .map(|c| (c.reference.to_string(), c.score))
            .collect();
        assert_eq!(got, want, "federated all-scope ranking diverged from the merged oracle on {q}");
    }
}

#[test]
fn scope_filters_rankings_without_billing_excluded_backends() {
    let federated = WarpGate::new(WarpGateConfig::default());
    let mut backends = Vec::new();
    for w in split_warehouses() {
        let name = format!("parity-scope-{}", w.name());
        let conn = Arc::new(CdwConnector::new(w, CdwConfig::free()));
        let id = federated.attach_named(&name, conn.clone());
        backends.push((id, conn));
    }
    federated.index_warehouse().unwrap();
    let (crm, _) = backends[0];
    let (finance, finance_conn) = (backends[1].0, backends[1].1.clone());

    let q = ColumnRef::scoped(crm, "crm", "accounts", "name");
    finance_conn.reset_costs();
    let included =
        federated.discover_scoped(&q, 10, &DiscoverScope::include([finance.bits()])).unwrap();
    assert!(!included.candidates.is_empty(), "finance holds a joinable variant");
    assert!(included.candidates.iter().all(|c| c.reference.backend == finance));
    let excluded =
        federated.discover_scoped(&q, 10, &DiscoverScope::exclude([finance.bits()])).unwrap();
    assert!(excluded.candidates.iter().all(|c| c.reference.backend != finance));
    assert_eq!(
        finance_conn.costs().requests,
        0,
        "scoped discovery must never scan (or bill) a non-query backend"
    );
}

#[test]
fn degraded_link_latency_shows_up_in_query_timing() {
    let inner: BackendHandle = Arc::new(CdwConnector::new(parity_warehouse(), CdwConfig::free()));
    let slow: BackendHandle = Arc::new(FaultInjector::new(inner, FaultPlan::slow(0.05)));
    let wg = WarpGate::with_backend(WarpGateConfig::default(), slow);
    wg.index_warehouse().unwrap();
    let d = wg.discover(&ColumnRef::new("crm", "accounts", "name"), 3).unwrap();
    assert!(
        d.timing.virtual_load_secs >= 0.05,
        "injected latency missing from query timing: {:?}",
        d.timing
    );
}
