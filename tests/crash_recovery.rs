//! Crash-safety acceptance suite (ISSUE 7): kill-and-restart recovery
//! over a federated fixture, the torn-write/bit-flip chaos sweeps, and
//! the daemon's checkpoint lifecycle.
//!
//! The bar:
//!
//! * a restarted node recovered from a checkpoint syncs like the node
//!   that died — only genuinely changed tables re-scan, CostMeter-proved
//!   per backend, and rankings match a from-scratch rebuild;
//! * replaying a checkpoint write crashed at *every byte offset* (plus
//!   every single-bit flip of the published file) always recovers a
//!   complete old or new state — never an error-free load of garbage;
//! * the snapshot loader survives bit-flip and truncation fuzzing with
//!   typed errors, no panics, and no partial mutation;
//! * a failed `save_to_file` (full disk, blocked temp) leaves the
//!   existing snapshot intact and loadable — the `File::create`
//!   truncation regression;
//! * `SyncDaemon` checkpoints on policy, flushes a final checkpoint on
//!   shutdown, and records (never panics on) an unwritable path.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use warpgate::prelude::*;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wg_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_warehouse(tag: &str) -> Warehouse {
    let mut w = Warehouse::new(tag);
    // Case variants of the same values: joinable well above the LSH
    // threshold, so discovery produces a non-empty, score-sensitive
    // ranking to compare across recoveries.
    w.database_mut("db").add_table(
        Table::new(
            "a",
            vec![Column::text("x", (0..24).map(|i| format!("val {i}")).collect::<Vec<_>>())],
        )
        .unwrap(),
    );
    w.database_mut("db").add_table(
        Table::new(
            "b",
            vec![Column::text("x", (0..24).map(|i| format!("VAL {i}")).collect::<Vec<_>>())],
        )
        .unwrap(),
    );
    w
}

/// Shift table `b`'s value window: the version token changes (a re-scan
/// is due) and the embedding moves (the ranking score shifts), but the
/// columns stay joinable — both generations produce a real ranking.
fn mutate_table_b(c: &CdwConnector) {
    c.warehouse_mut().database_mut("db").add_table(
        Table::new(
            "b",
            vec![Column::text("x", (6..30).map(|i| format!("VAL {i}")).collect::<Vec<_>>())],
        )
        .unwrap(),
    );
}

// ---------------------------------------------------------------------
// Kill-and-restart acceptance over a three-backend federation.
// ---------------------------------------------------------------------

fn federated_warehouse(name: &str, rows: usize, fmt: impl Fn(usize) -> String) -> Warehouse {
    let mut w = Warehouse::new(name);
    w.database_mut(name).add_table(
        Table::new("items", vec![Column::text("company", (0..rows).map(fmt).collect::<Vec<_>>())])
            .unwrap(),
    );
    w
}

#[test]
fn kill_and_restart_bills_only_the_mutated_table() {
    let dir = tmp_dir("restart");
    let ckpt = Checkpointer::new(dir.join("snapshot.bin"));
    let config = WarpGateConfig { threads: 1, ..Default::default() };

    let cdw = Arc::new(CdwConnector::new(
        federated_warehouse("cdw", 40, |i| format!("Company {i}")),
        CdwConfig::free(),
    ));
    let lake = Arc::new(CdwConnector::new(
        federated_warehouse("lake", 35, |i| format!("COMPANY {i}")),
        CdwConfig::free(),
    ));
    let partners = Arc::new(CdwConnector::new(
        federated_warehouse("partners", 30, |i| format!("company {i} inc")),
        CdwConfig::free(),
    ));

    // First life: attach, index, checkpoint, die.
    {
        let node = WarpGate::new(config);
        node.attach_named("crash-restart-cdw", cdw.clone());
        node.attach_named("crash-restart-lake", lake.clone());
        node.attach_named("crash-restart-partners", partners.clone());
        let report = node.index_warehouse().unwrap();
        assert_eq!(report.columns_indexed, 3);
        ckpt.checkpoint(&node).unwrap();
    } // node dropped — the process "crashed" with only the files left.

    // Second life: attach the same backends, recover from disk.
    let mut node = WarpGate::new(config);
    let cdw_id = node.attach_named("crash-restart-cdw", cdw.clone());
    node.attach_named("crash-restart-lake", lake.clone());
    node.attach_named("crash-restart-partners", partners.clone());
    let recovery = ckpt.recover(&mut node).unwrap();
    assert_eq!(recovery.source, RecoverySource::Primary);
    assert_eq!(recovery.columns, 3);
    assert!(recovery.primary_error.is_none());

    // One table on one backend changes while the node was down-ish: the
    // value window shifts, so the content (and its version token) is new
    // but the cross-backend joinability survives.
    cdw.warehouse_mut().database_mut("cdw").add_table(
        Table::new(
            "items",
            vec![Column::text(
                "company",
                (5..45).map(|i| format!("Company {i}")).collect::<Vec<_>>(),
            )],
        )
        .unwrap(),
    );

    cdw.reset_costs();
    lake.reset_costs();
    partners.reset_costs();
    let sync = node.sync().unwrap();
    assert_eq!(sync.tables_updated, 1, "only the mutated table re-scans: {sync:?}");
    assert_eq!(sync.tables_added, 0, "restored tokens must not look like first contact");
    assert_eq!(sync.columns_indexed, 1);
    assert_eq!(cdw.costs().requests, 1, "one column scan on the mutated warehouse");
    assert_eq!(lake.costs().requests, 0, "unchanged lake must not be billed");
    assert_eq!(partners.costs().requests, 0, "unchanged partners must not be billed");

    // Rankings equal a from-scratch rebuild over the current content.
    let oracle = WarpGate::new(config);
    oracle.attach_named("crash-restart-cdw", cdw.clone());
    oracle.attach_named("crash-restart-lake", lake.clone());
    oracle.attach_named("crash-restart-partners", partners.clone());
    oracle.index_warehouse().unwrap();
    let q = ColumnRef::scoped(cdw_id, "cdw", "items", "company");
    let recovered = node.discover(&q, 5).unwrap().candidates;
    let rebuilt = oracle.discover(&q, 5).unwrap().candidates;
    assert!(!recovered.is_empty());
    assert_eq!(recovered, rebuilt, "recovered + synced node diverged from a fresh rebuild");

    // And the unchanged-content case is a complete no-op.
    assert!(node.sync().unwrap().is_noop());
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Torn-write and bit-flip chaos sweeps through the Checkpointer.
// ---------------------------------------------------------------------

/// Single-backend fixture with two snapshot generations (`old`, `new`)
/// and their expected discovery rankings.
struct TwoGenerations {
    node: WarpGate,
    old: Vec<u8>,
    new: Vec<u8>,
    old_rank: Vec<JoinCandidate>,
    new_rank: Vec<JoinCandidate>,
    query: ColumnRef,
}

fn two_generations(tag: &str) -> TwoGenerations {
    let config = WarpGateConfig { dim: 64, threads: 1, ..Default::default() };
    let c = Arc::new(CdwConnector::new(small_warehouse(tag), CdwConfig::free()));
    let wg = WarpGate::with_backend(config, c.clone());
    wg.index_warehouse().unwrap();
    let old = wg.to_bytes();
    mutate_table_b(&c);
    wg.sync().unwrap();
    let new = wg.to_bytes();
    assert_ne!(old, new);

    let query = ColumnRef::new("db", "a", "x");
    let mut node = WarpGate::with_backend(config, c);
    node.load_bytes(&old).unwrap();
    let old_rank = node.discover(&query, 3).unwrap().candidates;
    node.load_bytes(&new).unwrap();
    let new_rank = node.discover(&query, 3).unwrap().candidates;
    assert_ne!(old_rank, new_rank, "generations must be distinguishable by ranking");
    TwoGenerations { node, old, new, old_rank, new_rank, query }
}

#[test]
fn torn_checkpoint_recovers_old_or_new_at_every_crash_offset() {
    let mut fx = two_generations("torn");
    let dir = tmp_dir("torn");
    let ckpt = Checkpointer::new(dir.join("snapshot.bin"));
    let torn = TornWriter::new(Some(fx.old.clone()), fx.new.clone());

    let states = torn.crash_states();
    assert!(states.len() > fx.new.len(), "every byte offset plus the rename states");
    for state in &states {
        state.materialize(ckpt.path()).unwrap();
        let report = ckpt
            .recover(&mut fx.node)
            .unwrap_or_else(|e| panic!("{}: recovery must succeed, got {e}", state.label));
        let got = fx.node.discover(&fx.query, 3).unwrap().candidates;
        assert!(
            got == fx.old_rank || got == fx.new_rank,
            "{}: recovered state is neither generation",
            state.label
        );
        // A complete published `new` must win; every torn/absent-primary
        // state must land on the old generation.
        if state.primary.as_deref() == Some(&fx.new[..]) {
            assert_eq!(got, fx.new_rank, "{}", state.label);
            assert_eq!(report.source, RecoverySource::Primary, "{}", state.label);
        } else {
            assert_eq!(got, fx.old_rank, "{}", state.label);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn first_checkpoint_crashes_fail_cleanly_without_a_previous_generation() {
    let mut fx = two_generations("first");
    let dir = tmp_dir("first");
    let ckpt = Checkpointer::new(dir.join("snapshot.bin"));
    // No old generation: a crash before the rename leaves nothing
    // published, and recovery must say so with a typed error — garbage
    // or panic would both be bugs.
    let torn = TornWriter::new(None, fx.new.clone());
    for state in torn.crash_states() {
        state.materialize(ckpt.path()).unwrap();
        match ckpt.recover(&mut fx.node) {
            Ok(_) => {
                assert_eq!(state.primary.as_deref(), Some(&fx.new[..]), "{}", state.label);
                assert_eq!(fx.node.discover(&fx.query, 3).unwrap().candidates, fx.new_rank);
            }
            Err(StoreError::NotFound(_)) => {
                assert!(state.primary.is_none(), "{}", state.label);
            }
            Err(e) => panic!("{}: unexpected error class {e}", state.label),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_newest_generation_falls_back_to_previous() {
    let mut fx = two_generations("flip");
    let dir = tmp_dir("flip");
    let ckpt = Checkpointer::new(dir.join("snapshot.bin"));
    let torn = TornWriter::new(Some(fx.old.clone()), fx.new.clone());

    for state in torn.bit_flip_states() {
        state.materialize(ckpt.path()).unwrap();
        let report = ckpt
            .recover(&mut fx.node)
            .unwrap_or_else(|e| panic!("{}: prev generation must recover, got {e}", state.label));
        assert_eq!(
            report.source,
            RecoverySource::Previous,
            "{}: a flipped primary may never load",
            state.label
        );
        assert!(
            matches!(report.primary_error, Some(StoreError::SnapshotCorrupt(_))),
            "{}: the primary's failure must be typed corruption, got {:?}",
            state.label,
            report.primary_error
        );
        assert_eq!(fx.node.discover(&fx.query, 3).unwrap().candidates, fx.old_rank);
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Loader-level fuzz: typed errors, no panics, no partial mutation.
// ---------------------------------------------------------------------

#[test]
fn loader_rejects_every_bit_flip_without_partial_mutation() {
    let fx = two_generations("fuzz-flip");
    let config = WarpGateConfig { dim: 64, threads: 1, ..Default::default() };
    let mut probe = WarpGate::new(config);
    for offset in 0..fx.new.len() {
        let mut broken = fx.new.clone();
        broken[offset] ^= 1 << (offset % 8);
        let err = probe.load_bytes(&broken).unwrap_err();
        assert!(
            matches!(err, StoreError::SnapshotCorrupt(_)),
            "flip at byte {offset} produced the wrong error class: {err}"
        );
        assert_eq!(probe.len(), 0, "flip at byte {offset} partially mutated the system");
    }
}

#[test]
fn loader_survives_truncation_at_every_length() {
    let mut fx = two_generations("fuzz-trunc");
    for len in 0..fx.new.len() {
        match fx.node.load_bytes(&fx.new[..len]) {
            // Two benign boundaries exist: truncating exactly at the end
            // of a complete frame set (dropping only the footer, or the
            // footer plus the optional sync frame) yields a complete
            // state — old readers see exactly these layouts. Anything
            // else must be a typed error.
            Ok(()) => {
                let got = fx.node.discover(&fx.query, 3).unwrap().candidates;
                assert_eq!(got, fx.new_rank, "truncation to {len} loaded a non-complete state");
            }
            Err(StoreError::SnapshotCorrupt(msg)) => {
                assert!(!msg.is_empty());
            }
            Err(e) => panic!("truncation to {len}: unexpected error class {e}"),
        }
    }
}

// ---------------------------------------------------------------------
// save_to_file atomicity regression.
// ---------------------------------------------------------------------

#[test]
fn failed_save_leaves_the_existing_snapshot_intact() {
    let fx = two_generations("save");
    let dir = tmp_dir("save");
    let path = dir.join("snapshot.bin");
    let config = WarpGateConfig { dim: 64, threads: 1, ..Default::default() };

    std::fs::write(&path, &fx.old).unwrap();
    // Block the temp sibling with a directory: the new write fails before
    // the destination is touched. The historical writer opened the
    // destination itself with `File::create`, truncating the old snapshot
    // before the first byte landed — a crash or full disk then lost both
    // generations at once.
    std::fs::create_dir_all(dir.join("snapshot.bin.tmp")).unwrap();
    assert!(fx.node.save_to_file(&path).is_err());
    assert_eq!(std::fs::read(&path).unwrap(), fx.old, "failed save must not touch the old file");
    let mut check = WarpGate::new(config);
    check.load_from_file(&path).unwrap();
    assert_eq!(check.len(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Daemon checkpoint lifecycle.
// ---------------------------------------------------------------------

fn wait_for(daemon: &SyncDaemon, pred: impl Fn(&DaemonReport) -> bool) -> DaemonReport {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let r = daemon.report();
        if pred(&r) {
            return r;
        }
        assert!(Instant::now() < deadline, "daemon never reached the expected state: {r:?}");
        daemon.wake();
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn daemon_checkpoints_periodically_and_recovery_sees_the_latest_sync() {
    let dir = tmp_dir("daemon");
    let path = dir.join("snapshot.bin");
    let config = WarpGateConfig { threads: 1, ..Default::default() };
    let c = Arc::new(CdwConnector::new(small_warehouse("daemon-periodic"), CdwConfig::free()));
    let wg = Arc::new(WarpGate::with_backend(config, c.clone()));

    let daemon = SyncDaemon::spawn(
        wg.clone(),
        SyncDaemonConfig::default()
            .with_interval(Duration::from_millis(2))
            .with_checkpoint(&path, 1),
    );
    let r = wait_for(&daemon, |r| r.checkpoints_written >= 1);
    assert_eq!(r.checkpoint_failures, 0);

    mutate_table_b(&c);
    let before = daemon.report().checkpoints_written;
    wait_for(&daemon, |r| r.tables_updated >= 1 && r.checkpoints_written > before);
    let fin = daemon.shutdown();
    assert!(fin.checkpoints_written > before);

    // A fresh node recovered from the daemon's checkpoint already knows
    // the mutated content: its first sync is a no-op.
    let mut fresh = WarpGate::with_backend(config, c);
    let report = Checkpointer::new(&path).recover(&mut fresh).unwrap();
    assert_eq!(report.columns, 2);
    assert!(fresh.sync().unwrap().is_noop(), "checkpoint must carry the post-mutation tokens");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn daemon_shutdown_flushes_a_final_checkpoint() {
    let dir = tmp_dir("daemon-flush");
    let path = dir.join("snapshot.bin");
    let config = WarpGateConfig { threads: 1, ..Default::default() };
    let c = Arc::new(CdwConnector::new(small_warehouse("daemon-flush"), CdwConfig::free()));
    let wg = Arc::new(WarpGate::with_backend(config, c));

    // Interval threshold far beyond the test's sync count: only the
    // shutdown flush can write.
    let daemon = SyncDaemon::spawn(
        wg,
        SyncDaemonConfig::default()
            .with_interval(Duration::from_millis(2))
            .with_checkpoint(&path, 10_000),
    );
    wait_for(&daemon, |r| r.syncs_ok >= 2);
    assert!(!path.exists(), "threshold not reached: no periodic checkpoint yet");
    let fin = daemon.shutdown();
    assert_eq!(fin.checkpoints_written, 1, "shutdown must flush exactly one final checkpoint");
    assert!(path.exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn daemon_records_unwritable_checkpoint_paths_instead_of_panicking() {
    let config = WarpGateConfig { threads: 1, ..Default::default() };
    let c = Arc::new(CdwConnector::new(small_warehouse("daemon-unwritable"), CdwConfig::free()));
    let wg = Arc::new(WarpGate::with_backend(config, c));
    let daemon = SyncDaemon::spawn(
        wg,
        SyncDaemonConfig::default()
            .with_interval(Duration::from_millis(2))
            .with_checkpoint("/nonexistent/dir/snapshot.bin", 1),
    );
    let r = wait_for(&daemon, |r| r.checkpoint_failures >= 1);
    assert_eq!(r.checkpoints_written, 0);
    assert!(
        r.last_error.as_deref().unwrap_or("").contains("checkpoint"),
        "the failure must be attributed: {:?}",
        r.last_error
    );
    // Drop (not shutdown) must also be panic-free with the final flush
    // failing against the same unwritable path.
    drop(daemon);
}

// ---------------------------------------------------------------------
// Metadata-call fault injection at the sync seam.
// ---------------------------------------------------------------------

#[test]
fn metadata_faults_fail_sync_cleanly_and_tokens_survive() {
    let config = WarpGateConfig { threads: 1, ..Default::default() };
    let c = Arc::new(CdwConnector::new(small_warehouse("meta-fault"), CdwConfig::free()));
    let healthy: BackendHandle = c.clone();
    let wg = WarpGate::with_backend(config, healthy.clone());
    wg.index_warehouse().unwrap();

    // Every metadata call faults: sync can't even list versions. The
    // failure must be transient-classified and leave the index (and its
    // recorded tokens) untouched.
    let flaky: BackendHandle =
        Arc::new(FaultInjector::new(healthy.clone(), FaultPlan::fail_metadata_every(1)));
    wg.attach(flaky);
    let err = wg.sync().unwrap_err();
    assert!(err.is_retryable(), "metadata faults are transient: {err}");
    assert_eq!(wg.len(), 2, "failed sync must not disturb the index");

    // Heal: re-attach bumps the epoch, so one full re-scan reconciles and
    // the steady state goes back to no-op syncs.
    wg.attach(healthy);
    assert!(!wg.sync().unwrap().is_noop());
    assert!(wg.sync().unwrap().is_noop());
}

// ---------------------------------------------------------------------
// Paged-segment chaos: torn block writes and media rot (ISSUE 9).
// ---------------------------------------------------------------------

/// Two paged generations of the same corpus shape: directories `old_dir`
/// and `new_dir` each hold a matching (manifest, segment) pair, plus the
/// rankings each generation serves.
struct PagedGenerations {
    config: WarpGateConfig,
    connector: Arc<CdwConnector>,
    old_dir: PathBuf,
    new_dir: PathBuf,
    old_rank: Vec<JoinCandidate>,
    new_rank: Vec<JoinCandidate>,
    query: ColumnRef,
}

fn paged_generations(tag: &str) -> PagedGenerations {
    // One shard and one-row blocks: a single segment file whose every row
    // is its own block, so torn writes can tear *between* blocks.
    let config = WarpGateConfig { dim: 64, threads: 1, ..Default::default() }
        .with_shards(1)
        .with_block_rows(1);
    let c = Arc::new(CdwConnector::new(small_warehouse(tag), CdwConfig::free()));
    let wg = WarpGate::with_backend(config, c.clone());
    wg.index_warehouse().unwrap();
    let old_dir = tmp_dir(&format!("{tag}-gen-old"));
    wg.save_paged(&old_dir).unwrap();
    mutate_table_b(&c);
    wg.sync().unwrap();
    let new_dir = tmp_dir(&format!("{tag}-gen-new"));
    wg.save_paged(&new_dir).unwrap();

    let query = ColumnRef::new("db", "a", "x");
    let mut node = WarpGate::with_backend(config, c.clone());
    node.load_paged(&old_dir).unwrap();
    let old_rank = node.discover(&query, 3).unwrap().candidates;
    node.load_paged(&new_dir).unwrap();
    let new_rank = node.discover(&query, 3).unwrap().candidates;
    assert_ne!(old_rank, new_rank, "generations must be distinguishable by ranking");
    PagedGenerations { config, connector: c, old_dir, new_dir, old_rank, new_rank, query }
}

/// A scratch paged directory holding `manifest_from`'s manifest with the
/// given segment bytes (or no segment file at all).
fn stage_paged(dir: &Path, manifest_from: &Path, seg: Option<&[u8]>) {
    std::fs::copy(
        manifest_from.join(warpgate_core::persist::PAGED_MANIFEST),
        dir.join(warpgate_core::persist::PAGED_MANIFEST),
    )
    .unwrap();
    let seg_path = dir.join("seg-0.seg");
    match seg {
        Some(bytes) => std::fs::write(&seg_path, bytes).unwrap(),
        None => {
            let _ = std::fs::remove_file(&seg_path);
        }
    }
}

#[test]
fn torn_segment_writes_never_expose_a_partial_block_set() {
    let fx = paged_generations("seg-torn");
    let old_seg = std::fs::read(fx.old_dir.join("seg-0.seg")).unwrap();
    let new_seg = std::fs::read(fx.new_dir.join("seg-0.seg")).unwrap();
    let dir = tmp_dir("seg-torn-live");
    let torn = TornWriter::new(Some(old_seg.clone()), new_seg.clone());

    for state in torn.crash_states() {
        // Map the checkpoint-rotation state onto the segment file: what
        // the publish path (`<dir>/seg-0.seg`) holds in that state, with
        // the manifest generation it was sealed against.
        let (seg, manifest_dir, want) = match &state.primary {
            Some(bytes) if bytes == &new_seg => {
                (Some(&new_seg[..]), &fx.new_dir, Some(&fx.new_rank))
            }
            Some(bytes) => (Some(&bytes[..]), &fx.old_dir, Some(&fx.old_rank)),
            None => (None, &fx.old_dir, None),
        };
        stage_paged(&dir, manifest_dir, seg);
        let mut node = WarpGate::with_backend(fx.config, fx.connector.clone());
        match (node.load_paged(&dir), want) {
            (Ok(()), Some(rank)) => {
                let got = node.discover(&fx.query, 3).unwrap().candidates;
                assert_eq!(&got, rank, "{}: must serve a complete generation", state.label);
            }
            (Err(e), None) => {
                // The mid-rotation window (publish path momentarily
                // absent): a typed error, never a guess.
                assert!(matches!(e, StoreError::SnapshotCorrupt(_)), "{}: {e}", state.label);
                assert_eq!(node.len(), 0, "{}: no partial state", state.label);
            }
            (Ok(()), None) => panic!("{}: loaded with no published segment", state.label),
            (Err(e), Some(_)) => panic!("{}: complete generation must load: {e}", state.label),
        }
    }

    // An in-place torn write (no atomic rename underneath, or a filesystem
    // that reorders data vs rename): the publish path itself holds a bare
    // prefix of the new segment. The directory frame is written last and
    // validated first, so every prefix must fail at open — a subset of the
    // new blocks may never masquerade as a complete set.
    for cut in (0..new_seg.len()).step_by(41).chain([new_seg.len() - 1]) {
        stage_paged(&dir, &fx.new_dir, Some(&new_seg[..cut]));
        let mut node = WarpGate::with_backend(fx.config, fx.connector.clone());
        let err = node.load_paged(&dir).unwrap_err();
        assert!(
            matches!(err, StoreError::SnapshotCorrupt(_)),
            "segment prefix {cut}: unexpected error class {err}"
        );
        assert_eq!(node.len(), 0, "segment prefix {cut}: partial state installed");
    }

    for d in [&fx.old_dir, &fx.new_dir, &dir] {
        std::fs::remove_dir_all(d).ok();
    }
}

#[test]
fn bit_flipped_segments_fail_at_open_or_first_read_never_silently() {
    let fx = paged_generations("seg-flip");
    let new_seg = std::fs::read(fx.new_dir.join("seg-0.seg")).unwrap();
    let dir = tmp_dir("seg-flip-live");
    let torn = TornWriter::new(None, new_seg.clone());

    for state in torn.bit_flip_states() {
        let flipped = state.primary.as_ref().expect("flip states publish a primary");
        stage_paged(&dir, &fx.new_dir, Some(flipped));
        let mut node = WarpGate::with_backend(fx.config, fx.connector.clone());
        match node.load_paged(&dir) {
            Err(e) => {
                // Metadata rot: the segment's own checksums reject it at
                // open, before any state installs.
                assert!(matches!(e, StoreError::SnapshotCorrupt(_)), "{}: {e}", state.label);
                assert_eq!(node.len(), 0, "{}: no partial state", state.label);
            }
            Ok(()) => {
                // Payload rot: lazy loading means open can't see it, so
                // the block CRC must refuse the read — or the flipped
                // block is provably never consulted and the ranking is
                // exactly the sealed generation's. Silently serving an
                // altered vector is the one forbidden outcome.
                let label = state.label.clone();
                let got = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    node.discover(&fx.query, 3).unwrap().candidates
                }));
                if let Ok(candidates) = got {
                    assert_eq!(candidates, fx.new_rank, "{label}: flipped payload served");
                }
            }
        }
    }

    for d in [&fx.old_dir, &fx.new_dir, &dir] {
        std::fs::remove_dir_all(d).ok();
    }
}
