//! Loopback tests of the wire-protocol remote backend: a WarpGate node
//! indexing and syncing a warehouse it only reaches over TCP, the
//! resilient `RetryBackend(RemoteBackend)` stack riding out server
//! restarts, and error/metering propagation across the wire.
//!
//! Ranking parity with in-process backends is pinned in
//! `backend_parity.rs`; this suite covers the service behaviors the
//! protocol adds.

use std::sync::Arc;

use warpgate::prelude::*;

fn warehouse() -> Warehouse {
    let mut w = Warehouse::new("remote");
    w.database_mut("crm").add_table(
        Table::new(
            "accounts",
            vec![
                Column::text("name", (0..50).map(|i| format!("Company {i}")).collect::<Vec<_>>()),
                Column::ints("employees", (0..50).map(|i| i * 3).collect()),
            ],
        )
        .unwrap(),
    );
    w.database_mut("finance").add_table(
        Table::new(
            "industries",
            vec![Column::text(
                "company_name",
                (0..45).map(|i| format!("COMPANY {i}")).collect::<Vec<_>>(),
            )],
        )
        .unwrap(),
    );
    w
}

fn serve(connector: &Arc<CdwConnector>) -> (RemoteBackendServer, BackendHandle) {
    let served: BackendHandle = connector.clone();
    let server = RemoteBackendServer::serve(served, "127.0.0.1:0").expect("loopback server");
    let remote: BackendHandle =
        Arc::new(RemoteBackend::connect(server.local_addr().to_string()).expect("connect"));
    (server, remote)
}

#[test]
fn index_and_sync_over_the_wire() {
    let connector = Arc::new(CdwConnector::new(warehouse(), CdwConfig::free()));
    let (server, remote) = serve(&connector);

    let wg = WarpGate::with_backend(WarpGateConfig::default(), remote);
    let report = wg.index_warehouse().expect("index over TCP");
    assert_eq!(report.columns_indexed, 3);
    // Billing happened on the server side and is visible through the wire.
    assert!(report.cost.requests >= 3, "server-side billing missing: {:?}", report.cost);

    // Mutate the warehouse *behind the server*; sync over the wire picks
    // up exactly the changed table.
    connector.warehouse_mut().database_mut("crm").add_table(
        Table::new(
            "leads",
            vec![Column::text(
                "company",
                (0..40).map(|i| format!("company {i}")).collect::<Vec<_>>(),
            )],
        )
        .unwrap(),
    );
    let sync = wg.sync().expect("sync over TCP");
    assert_eq!(sync.tables_added, 1);
    assert_eq!(sync.tables_updated, 0);
    assert_eq!(sync.columns_indexed, 1, "only the new table scans");

    let d = wg.discover(&ColumnRef::new("crm", "accounts", "name"), 5).expect("discover");
    let refs: Vec<String> = d.candidates.iter().map(|c| c.reference.to_string()).collect();
    assert!(refs.contains(&"crm.leads.company".to_string()), "synced table missing: {refs:?}");
    server.shutdown();
}

#[test]
fn retry_stack_rides_out_a_server_restart() {
    let connector = Arc::new(CdwConnector::new(warehouse(), CdwConfig::free()));
    let served: BackendHandle = connector.clone();
    let server = RemoteBackendServer::serve(served.clone(), "127.0.0.1:0").expect("server");
    let addr = server.local_addr();
    let remote: BackendHandle =
        Arc::new(RemoteBackend::connect(addr.to_string()).expect("connect"));
    let resilient = Arc::new(RetryBackend::new(
        remote,
        RetryPolicy { base_delay_secs: 0.001, ..RetryPolicy::default() },
    ));
    let stack: BackendHandle = resilient.clone();

    let wg = WarpGate::with_backend(WarpGateConfig::default(), stack);
    wg.index_warehouse().expect("initial index");

    // Bounce the server between queries. The pooled connection dies; the
    // bare client would fail, but the retry layer reconnects silently.
    server.shutdown();
    let server = RemoteBackendServer::serve(served, addr).expect("restart on same port");

    let q = ColumnRef::new("crm", "accounts", "name");
    let d = wg.discover(&q, 3).expect("discovery across the restart");
    assert!(!d.candidates.is_empty());
    // The broken first attempt shows up in the timing's retry count
    // (unless the embedding cache absorbed the scan — force a cold read).
    let sync = wg.sync().expect("sync across the restart");
    assert!(sync.is_noop());
    server.shutdown();
}

#[test]
fn bare_client_fails_retryably_when_the_server_dies() {
    let connector = Arc::new(CdwConnector::new(warehouse(), CdwConfig::free()));
    let (server, remote) = serve(&connector);
    let wg = WarpGate::with_backend(
        WarpGateConfig { cache_capacity: 0, ..WarpGateConfig::default() },
        remote,
    );
    wg.index_warehouse().expect("index while the server lives");
    server.shutdown();

    let err = wg.discover(&ColumnRef::new("crm", "accounts", "name"), 3).unwrap_err();
    assert!(err.is_retryable(), "transport failure must be retryable, got {err:?}");
}

#[test]
fn fatal_errors_cross_the_wire_unwrapped() {
    let connector = Arc::new(CdwConnector::new(warehouse(), CdwConfig::free()));
    let (server, remote) = serve(&connector);
    // The whole stack, remote included: a NotFound from the served
    // backend must re-raise as NotFound (fatal, no retry burned).
    let resilient = Arc::new(RetryBackend::with_defaults(remote));
    let stack: BackendHandle = resilient.clone();
    let wg = WarpGate::with_backend(WarpGateConfig::default(), stack);
    wg.index_warehouse().expect("index");
    let err = wg.discover(&ColumnRef::new("nope", "t", "c"), 3).unwrap_err();
    assert!(matches!(err, StoreError::NotFound(_)), "got {err:?}");
    assert_eq!(resilient.retries(), 0, "fatal errors must not be retried");
    server.shutdown();
}

#[test]
fn degraded_remote_link_latency_reaches_query_timing() {
    // Server side: fault injector adds virtual latency; the client reads
    // costs over the wire, so QueryTiming sees the degradation exactly as
    // with an in-process backend.
    let connector = Arc::new(CdwConnector::new(warehouse(), CdwConfig::free()));
    let inner: BackendHandle = connector.clone();
    let slow: BackendHandle = Arc::new(FaultInjector::new(inner, FaultPlan::slow(0.05)));
    let server = RemoteBackendServer::serve(slow, "127.0.0.1:0").expect("server");
    let remote: BackendHandle =
        Arc::new(RemoteBackend::connect(server.local_addr().to_string()).expect("connect"));
    let wg = WarpGate::with_backend(WarpGateConfig::default(), remote);
    wg.index_warehouse().expect("index");
    let d = wg.discover(&ColumnRef::new("crm", "accounts", "name"), 3).expect("discover");
    assert!(
        d.timing.virtual_load_secs >= 0.05,
        "server-side latency missing from timing: {:?}",
        d.timing
    );
    server.shutdown();
}
