//! Resilient-stack integration: `RetryBackend(FaultInjector(CdwConnector))`
//! completes a full `index_warehouse` + `sync()` despite fail-every-Nth
//! scans, with billed-scan counts pinned.
//!
//! Single-threaded indexing keeps the fault sequence deterministic, so
//! every count below is exact, not a bound.

use std::sync::Arc;

use warpgate::prelude::*;

/// 4 tables / 7 columns, mirroring the parity fixture.
fn warehouse() -> Warehouse {
    let mut w = Warehouse::new("flaky");
    w.database_mut("crm").add_table(
        Table::new(
            "accounts",
            vec![
                Column::text("name", (0..50).map(|i| format!("Company {i}")).collect::<Vec<_>>()),
                Column::ints("employees", (0..50).map(|i| i * 7).collect()),
            ],
        )
        .unwrap(),
    );
    w.database_mut("crm").add_table(
        Table::new(
            "leads",
            vec![Column::text(
                "company",
                (0..40).map(|i| format!("company {i}")).collect::<Vec<_>>(),
            )],
        )
        .unwrap(),
    );
    w.database_mut("finance").add_table(
        Table::new(
            "industries",
            vec![
                Column::text(
                    "company_name",
                    (0..45).map(|i| format!("COMPANY {i}")).collect::<Vec<_>>(),
                ),
                Column::text(
                    "sector",
                    (0..45).map(|i| format!("Sector {}", i % 5)).collect::<Vec<_>>(),
                ),
            ],
        )
        .unwrap(),
    );
    w.database_mut("finance").add_table(
        Table::new(
            "metrics",
            vec![
                Column::floats("revenue", (0..30).map(|i| 1000.5 + i as f64).collect()),
                Column::floats("income", (0..30).map(|i| 1010.25 + i as f64).collect()),
            ],
        )
        .unwrap(),
    );
    w
}

struct Stack {
    connector: Arc<CdwConnector>,
    fault: Arc<FaultInjector>,
    retry: Arc<RetryBackend>,
    wg: WarpGate,
}

/// `RetryBackend(FaultInjector(CdwConnector))`, fail-every-`n`, 1 thread.
fn stack(n: u64) -> Stack {
    let connector = Arc::new(CdwConnector::new(warehouse(), CdwConfig::free()));
    let inner: BackendHandle = connector.clone();
    let fault = Arc::new(FaultInjector::new(inner, FaultPlan::fail_every(n)));
    let fault_handle: BackendHandle = fault.clone();
    let retry = Arc::new(RetryBackend::new(
        fault_handle,
        RetryPolicy { base_delay_secs: 0.001, ..RetryPolicy::default() },
    ));
    let retry_handle: BackendHandle = retry.clone();
    let wg = WarpGate::with_backend(
        WarpGateConfig { threads: 1, ..WarpGateConfig::default() },
        retry_handle,
    );
    Stack { connector, fault, retry, wg }
}

#[test]
fn full_index_and_sync_complete_despite_faults_with_pinned_billing() {
    let s = stack(3);

    // --- index_warehouse over the flaky link -------------------------
    //
    // 7 columns need 7 successful scans. With every 3rd gate attempt
    // failing, the attempt sequence is S S F S S F S S F S: 10 attempts,
    // 3 faults, 3 retries — and exactly 7 scans ever reach the inner
    // connector's meter (failed attempts are rejected before any byte
    // moves).
    let report = s.wg.index_warehouse().expect("indexing must survive fail-every-3rd");
    assert_eq!(report.columns_indexed, 7);
    assert_eq!(s.fault.faults_injected(), 3, "deterministic fault sequence");
    assert_eq!(s.retry.retries(), 3, "every fault costs exactly one retry");
    assert_eq!(s.connector.costs().requests, 7, "failed attempts must not bill the warehouse");
    // The report's cost view carries the retry count and backoff charge.
    assert_eq!(report.cost.requests, 7);
    assert_eq!(report.cost.retries, 3);
    assert!(report.cost.virtual_secs > 0.0, "backoff must be charged as virtual latency");

    // --- incremental sync over the same flaky link -------------------
    s.connector.warehouse_mut().database_mut("crm").add_table(
        Table::new(
            "accounts",
            vec![
                Column::text("name", (0..20).map(|i| format!("Fresh {i}")).collect::<Vec<_>>()),
                Column::ints("employees", (0..20).collect()),
            ],
        )
        .unwrap(),
    );
    s.connector.reset_costs();
    let sync = s.wg.sync().expect("sync must survive the flaky link");
    assert_eq!(sync.tables_updated, 1);
    assert_eq!(sync.columns_indexed, 2, "only the mutated table re-scans");
    // Gate attempts 11..: S F S → 2 billed scans, 1 fault, 1 retry.
    assert_eq!(s.connector.costs().requests, 2, "sync bills only the change set");
    assert_eq!(s.fault.faults_injected(), 4);
    assert_eq!(sync.cost.retries, 1, "the sync-phase retry is attributed to the sync");

    // The resilient stack converges to the same rankings as a clean
    // rebuild over the final warehouse state.
    let clean: BackendHandle =
        Arc::new(CdwConnector::new(s.connector.warehouse().clone(), CdwConfig::free()));
    let fresh =
        WarpGate::with_backend(WarpGateConfig { threads: 1, ..WarpGateConfig::default() }, clean);
    fresh.index_warehouse().expect("clean rebuild");
    for q in [
        ColumnRef::new("crm", "accounts", "name"),
        ColumnRef::new("finance", "industries", "company_name"),
    ] {
        let a = s.wg.discover(&q, 5).expect("flaky-stack discover").candidates;
        let b = fresh.discover(&q, 5).expect("clean discover").candidates;
        assert_eq!(a, b, "resilient stack diverged from the clean rebuild on {q}");
    }
}

#[test]
fn discovery_queries_retry_and_report_it_in_timing() {
    let s = stack(2);
    s.wg.index_warehouse().expect("every fault is followed by a good retry");

    // Cold query on an always-flapping link: the scan's first attempt may
    // fault, the retry completes, and QueryTiming carries the count.
    let mut saw_retry = false;
    for q in [
        ColumnRef::new("crm", "accounts", "name"),
        ColumnRef::new("crm", "leads", "company"),
        ColumnRef::new("finance", "industries", "sector"),
    ] {
        let d = s.wg.discover(&q, 3).expect("discover over flaky link");
        saw_retry |= d.timing.retries > 0;
    }
    assert!(saw_retry, "at least one cold query must have hit a fault and retried");
}

#[test]
fn budget_exhaustion_fails_cleanly_and_stops_billing() {
    // A dead link (every scan faults) behind a 2-attempt retry layer:
    // indexing fails with RetriesExhausted, and the abort path keeps the
    // run from hammering the dead backend for every remaining column.
    let connector = Arc::new(CdwConnector::new(warehouse(), CdwConfig::free()));
    let inner: BackendHandle = connector.clone();
    let dead: BackendHandle = Arc::new(FaultInjector::new(inner, FaultPlan::fail_every(1)));
    let retry: BackendHandle = Arc::new(RetryBackend::new(
        dead,
        RetryPolicy { max_attempts: 2, base_delay_secs: 0.001, ..RetryPolicy::default() },
    ));
    let wg =
        WarpGate::with_backend(WarpGateConfig { threads: 1, ..WarpGateConfig::default() }, retry);
    let err = wg.index_warehouse().expect_err("a dead link cannot index");
    assert!(matches!(err, StoreError::RetriesExhausted { attempts: 2, .. }), "got {err:?}");
    assert_eq!(connector.costs().requests, 0, "no scan ever succeeded, none may bill");
    assert_eq!(wg.len(), 0);
}
