//! Concurrency stress tests for the sharded hot path: threads mixing
//! `discover`, `discover_batch`, `index_table`, and `remove_table` against
//! one shared system. The invariants under test:
//!
//! * **no lost inserts** — after the churn settles and every table is
//!   (re-)indexed, the index holds exactly one entry per warehouse column;
//! * **no stale candidates** — once a table is removed (and the churn has
//!   stopped), it never comes back in results, and re-indexed content is
//!   discovered under its new embedding (the cache must not serve stale
//!   vectors);
//! * **no deadlocks/panics** — the mixed workload completes.

use warpgate::prelude::*;

/// A warehouse with a stable core (queried throughout) plus dedicated
/// churn tables that writer threads refresh and drop concurrently.
fn churn_warehouse(churn_tables: usize) -> Warehouse {
    let mut w = Warehouse::new("stress");
    w.database_mut("core").add_table(
        Table::new(
            "accounts",
            vec![
                Column::text("name", (0..60).map(|i| format!("Company {i}")).collect::<Vec<_>>()),
                Column::ints("employees", (0..60).map(|i| i * 3).collect()),
            ],
        )
        .unwrap(),
    );
    w.database_mut("core").add_table(
        Table::new(
            "industries",
            vec![Column::text(
                "company_name",
                (0..50).map(|i| format!("COMPANY {i}")).collect::<Vec<_>>(),
            )],
        )
        .unwrap(),
    );
    for t in 0..churn_tables {
        w.database_mut("churn").add_table(
            Table::new(
                format!("t{t}"),
                vec![Column::text(
                    "company",
                    (0..40).map(|i| format!("company {i} v{t}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
    }
    w
}

#[test]
fn mixed_discover_index_remove_stress() {
    const CHURN_TABLES: usize = 3;
    const ROUNDS: usize = 8;
    const READER_THREADS: usize = 4;

    let connector = std::sync::Arc::new(CdwConnector::with_defaults(churn_warehouse(CHURN_TABLES)));
    let wg = WarpGate::with_backend(
        WarpGateConfig { threads: 2, ..Default::default() },
        connector.clone(),
    );
    wg.index_warehouse().unwrap();
    let total_columns = connector.warehouse().iter_columns().count();
    assert_eq!(wg.len(), total_columns);

    let query = ColumnRef::new("core", "accounts", "name");
    std::thread::scope(|scope| {
        // Readers: discover + joinability + batch against the stable core.
        for r in 0..READER_THREADS {
            let wg = &wg;
            let query = &query;
            scope.spawn(move || {
                let other = ColumnRef::new("core", "industries", "company_name");
                for i in 0..ROUNDS * 4 {
                    let d = wg.discover(query, 5).unwrap();
                    // The stable cross-database variant must always be
                    // present no matter what the writers are doing.
                    assert!(
                        d.candidates.iter().any(|c| c.reference == other),
                        "reader {r} lost the stable candidate at iteration {i}: {:?}",
                        d.candidates
                    );
                    if i % 3 == 0 {
                        let j = wg.joinability(query, &other).unwrap();
                        assert!(j > 0.8, "joinability collapsed to {j}");
                    }
                    if i % 5 == 0 {
                        let batch = wg.discover_batch(&[query.clone(), other.clone()], 3).unwrap();
                        assert_eq!(batch.len(), 2);
                    }
                }
            });
        }
        // Writers: each owns one churn table and repeatedly removes and
        // re-indexes it (the CDW-with-high-update-rate pattern).
        for t in 0..CHURN_TABLES {
            let wg = &wg;
            scope.spawn(move || {
                let table = format!("t{t}");
                for _ in 0..ROUNDS {
                    assert_eq!(wg.remove_table("churn", &table), 1);
                    let report = wg.index_table("churn", &table).unwrap();
                    assert_eq!(report.columns_indexed, 1);
                }
            });
        }
    });

    // No lost inserts: every churn round ended with an index_table, so the
    // index must hold exactly one live entry per warehouse column.
    assert_eq!(wg.len(), total_columns, "inserts lost or duplicated under churn");

    // Steady state answers are exact.
    let d = wg.discover(&query, 10).unwrap();
    assert!(d
        .candidates
        .iter()
        .any(|c| c.reference == ColumnRef::new("core", "industries", "company_name")));
}

#[test]
fn removed_tables_never_resurface() {
    let connector = std::sync::Arc::new(CdwConnector::with_defaults(churn_warehouse(4)));
    let wg = WarpGate::with_backend(WarpGateConfig::default(), connector.clone());
    wg.index_warehouse().unwrap();
    let query = ColumnRef::new("core", "accounts", "name");

    std::thread::scope(|scope| {
        // Concurrent removals of all churn tables while readers query.
        for t in 0..4 {
            let wg = &wg;
            scope.spawn(move || {
                assert_eq!(wg.remove_table("churn", &format!("t{t}")), 1);
            });
        }
        for _ in 0..2 {
            let wg = &wg;
            let query = &query;
            scope.spawn(move || {
                for _ in 0..10 {
                    wg.discover(query, 10).unwrap();
                }
            });
        }
    });

    // After every removal has completed, no stale candidate may survive —
    // neither from the index nor via a stale cached query embedding.
    for _ in 0..2 {
        let d = wg.discover(&query, 10).unwrap();
        assert!(
            d.candidates.iter().all(|c| c.reference.database != "churn"),
            "removed table resurfaced: {:?}",
            d.candidates
        );
    }
    assert_eq!(wg.len(), connector.warehouse().iter_columns().count() - 4);
}

#[test]
fn concurrent_batch_indexing_loses_nothing() {
    // Many small tables indexed from parallel callers (not just parallel
    // workers inside one call): the batched registry + shard routing must
    // neither drop nor double-count columns.
    let mut w = Warehouse::new("fanout");
    for t in 0..12 {
        w.database_mut("db").add_table(
            Table::new(
                format!("t{t}"),
                vec![
                    Column::text(
                        "a",
                        (0..20).map(|i| format!("value {t} {i}")).collect::<Vec<_>>(),
                    ),
                    Column::ints("b", (0..20).map(|i| i + t as i64).collect()),
                ],
            )
            .unwrap(),
        );
    }
    let connector = std::sync::Arc::new(CdwConnector::with_defaults(w));
    let wg = WarpGate::with_backend(WarpGateConfig { threads: 2, ..Default::default() }, connector);
    std::thread::scope(|scope| {
        for t in 0..12 {
            let wg = &wg;
            scope.spawn(move || {
                wg.index_table("db", &format!("t{t}")).unwrap();
            });
        }
    });
    assert_eq!(wg.len(), 24, "12 tables × 2 columns must all be indexed exactly once");
}
