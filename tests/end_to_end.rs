//! End-to-end integration: the full discovery pipeline over a generated
//! corpus, quality floors versus the baselines, persistence through the
//! whole system, and incremental index maintenance.

use warpgate::baselines::{Aurum, AurumConfig, D3l, D3lConfig};
use warpgate::corpora::{build_testbed, TestbedSpec};
use warpgate::eval::metrics::precision_recall_at_k;
use warpgate::prelude::*;

fn corpus() -> warpgate::corpora::Corpus {
    build_testbed(&TestbedSpec::xs(0.1))
}

fn free_connector(w: Warehouse) -> std::sync::Arc<CdwConnector> {
    std::sync::Arc::new(CdwConnector::new(w, CdwConfig::free()))
}

fn mean_pr(
    corpus: &warpgate::corpora::Corpus,
    mut rank: impl FnMut(&ColumnRef) -> Vec<ColumnRef>,
    k: usize,
) -> (f64, f64) {
    let mut p = 0.0;
    let mut r = 0.0;
    for q in &corpus.queries {
        let hits = rank(q);
        let (pi, ri) = precision_recall_at_k(&hits, corpus.truth.answers(q), k);
        p += pi;
        r += ri;
    }
    let n = corpus.queries.len() as f64;
    (p / n, r / n)
}

#[test]
fn warpgate_beats_syntactic_baseline_on_semantic_corpus() {
    let corpus = corpus();
    let connector = free_connector(corpus.warehouse.clone());

    let wg = WarpGate::with_backend(WarpGateConfig::default(), connector.clone());
    wg.index_warehouse().unwrap();
    let aurum = Aurum::build(connector.as_ref(), AurumConfig::default()).unwrap();

    let (wg_p, wg_r) = mean_pr(
        &corpus,
        |q| wg.discover(q, 10).unwrap().candidates.into_iter().map(|c| c.reference).collect(),
        10,
    );
    let (au_p, au_r) = mean_pr(
        &corpus,
        |q| aurum.neighbors(q, 10).unwrap().into_iter().map(|(r, _)| r).collect(),
        10,
    );
    assert!(wg_r > au_r + 0.2, "WarpGate recall {wg_r:.3} should clearly beat Aurum {au_r:.3}");
    assert!(wg_p >= au_p, "WarpGate precision {wg_p:.3} vs Aurum {au_p:.3}");
    assert!(wg_r > 0.5, "absolute recall floor: {wg_r:.3}");
}

#[test]
fn warpgate_at_least_matches_d3l() {
    let corpus = corpus();
    let connector = free_connector(corpus.warehouse.clone());
    let wg = WarpGate::with_backend(WarpGateConfig::default(), connector.clone());
    wg.index_warehouse().unwrap();
    let d3l = D3l::build(connector.as_ref(), D3lConfig::default()).unwrap();

    let (wg_p, wg_r) = mean_pr(
        &corpus,
        |q| wg.discover(q, 5).unwrap().candidates.into_iter().map(|c| c.reference).collect(),
        5,
    );
    let (d3_p, d3_r) = mean_pr(
        &corpus,
        |q| {
            d3l.query(connector.as_ref(), q, 5)
                .unwrap()
                .0
                .into_iter()
                .map(|h| h.reference)
                .collect()
        },
        5,
    );
    // XS is the smallest fixture, so allow a modest wobble here; the
    // reproduce binary enforces strict dominance on the full S/M panels.
    assert!(wg_r + 0.07 >= d3_r, "WarpGate recall {wg_r:.3} vs D3L {d3_r:.3}");
    assert!(wg_p + 0.07 >= d3_p, "WarpGate precision {wg_p:.3} vs D3L {d3_p:.3}");
}

#[test]
fn persistence_round_trips_through_full_system() {
    let corpus = corpus();
    let connector = free_connector(corpus.warehouse.clone());
    let wg = WarpGate::with_backend(WarpGateConfig::default(), connector.clone());
    wg.index_warehouse().unwrap();

    let q = &corpus.queries[0];
    let before: Vec<_> =
        wg.discover(q, 5).unwrap().candidates.into_iter().map(|c| (c.reference, c.score)).collect();

    let path = std::env::temp_dir().join(format!("wg_e2e_{}.idx", std::process::id()));
    wg.save_to_file(&path).unwrap();
    let mut restored = WarpGate::with_backend(WarpGateConfig::default(), connector.clone());
    restored.load_from_file(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let after: Vec<_> = restored
        .discover(q, 5)
        .unwrap()
        .candidates
        .into_iter()
        .map(|c| (c.reference, c.score))
        .collect();
    assert_eq!(before, after, "discovery changed across persistence");
}

#[test]
fn incremental_updates_are_visible_to_discovery() {
    let corpus = corpus();
    let connector = free_connector(corpus.warehouse.clone());
    let wg = WarpGate::with_backend(WarpGateConfig::default(), connector.clone());
    wg.index_warehouse().unwrap();

    // Pick a query and clone one of its answers into a brand-new table.
    let q = corpus.queries[0].clone();
    let answer = corpus.truth.answers(&q)[0].clone();
    let answer_col = connector.warehouse().column(&answer).unwrap().clone();
    connector
        .warehouse_mut()
        .database_mut("nextiajd")
        .add_table(Table::new("fresh_table", vec![answer_col.renamed("fresh_copy")]).unwrap());
    wg.index_table("nextiajd", "fresh_table").unwrap();

    let hits = wg.discover(&q, 10).unwrap();
    assert!(
        hits.candidates
            .iter()
            .any(|c| c.reference == ColumnRef::new("nextiajd", "fresh_table", "fresh_copy")),
        "newly indexed copy of an answer column should rank: {:?}",
        hits.candidates
    );

    // Remove it again; it must disappear from results.
    assert_eq!(wg.remove_table("nextiajd", "fresh_table"), 1);
    let hits = wg.discover(&q, 10).unwrap();
    assert!(hits.candidates.iter().all(|c| c.reference.table != "fresh_table"));
}

#[test]
fn indexing_is_deterministic_across_thread_counts() {
    let corpus = corpus();
    let connector = free_connector(corpus.warehouse.clone());
    let one = WarpGate::with_backend(
        WarpGateConfig { threads: 1, ..Default::default() },
        connector.clone(),
    );
    one.index_warehouse().unwrap();
    let many =
        WarpGate::with_backend(WarpGateConfig { threads: 4, ..Default::default() }, connector);
    many.index_warehouse().unwrap();
    assert_eq!(one.len(), many.len());
    for q in corpus.queries.iter().take(5) {
        let a = one.discover(q, 5).unwrap().candidates;
        let b = many.discover(q, 5).unwrap().candidates;
        assert_eq!(a, b, "thread count changed results for {q}");
    }
}

#[test]
fn scan_costs_accumulate_across_the_pipeline() {
    let corpus = corpus();
    let connector = std::sync::Arc::new(CdwConnector::with_defaults(corpus.warehouse.clone()));
    let wg = WarpGate::with_backend(WarpGateConfig::default(), connector.clone());
    let report = wg.index_warehouse().unwrap();
    assert_eq!(report.cost.requests as usize, 257, "one scan per column");
    assert!(report.cost.usd > 0.0);

    connector.reset_costs();
    wg.discover(&corpus.queries[0], 5).unwrap();
    let query_cost = connector.costs();
    assert_eq!(query_cost.requests, 1, "a query scans exactly its own column");
}
