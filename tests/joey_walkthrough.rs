//! The paper's narrative (§1, §3.2, §4.3.3) as an executable test: every
//! step of Joey's sales-campaign walkthrough must hold on the generated
//! Sigma corpus.

use warpgate::corpora::build_sigma;
use warpgate::prelude::*;

#[test]
fn joey_walkthrough_end_to_end() {
    let corpus = build_sigma(0.02, 0x51);
    let connector = std::sync::Arc::new(CdwConnector::new(corpus.warehouse, CdwConfig::free()));
    let wg = WarpGate::with_backend(WarpGateConfig::default(), connector.clone());
    wg.index_warehouse().unwrap();

    // Step 1-2: recommendations for ACCOUNT.Name include both the
    // same-database LEAD.Company and the cross-database INDUSTRIES variant.
    let query = ColumnRef::new("SALESFORCE", "ACCOUNT", "Name");
    let discovery = wg.discover(&query, 3).unwrap();
    let tables: Vec<&str> =
        discovery.candidates.iter().map(|c| c.reference.table.as_str()).collect();
    assert!(tables.contains(&"LEAD"), "LEAD.Company not in top-3: {tables:?}");
    assert!(tables.contains(&"INDUSTRIES"), "INDUSTRIES not in top-3: {tables:?}");
    for c in &discovery.candidates {
        assert!(c.score > 0.5, "weak recommendation {c:?}");
    }

    // Step 3: enrich with Industry Group + Ticker; cardinality preserved.
    let industries = discovery
        .candidates
        .iter()
        .map(|c| &c.reference)
        .find(|r| r.table == "INDUSTRIES")
        .unwrap();
    let account = connector.scan_table("SALESFORCE", "ACCOUNT", SampleSpec::Full).unwrap();
    let enriched = wg
        .augment_via_lookup(
            &account,
            "Name",
            industries,
            &["Industry Group", "Ticker"],
            KeyNorm::AlphaNum,
        )
        .unwrap();
    assert_eq!(enriched.num_rows(), account.num_rows(), "cardinality must be preserved");
    let sector = enriched.column("Industry Group").unwrap();
    let filled = (0..sector.len()).filter(|&i| !sector.get(i).is_null()).count();
    assert!(
        filled * 10 >= enriched.num_rows() * 8,
        "sector enrichment coverage too low: {filled}/{}",
        enriched.num_rows()
    );

    // The chained join: Ticker leads to stock prices in the same database.
    let prices = ColumnRef::new("STOCKS", "PRICES", "Ticker");
    let with_prices =
        wg.augment_via_lookup(&enriched, "Ticker", &prices, &["Close"], KeyNorm::Exact).unwrap();
    assert_eq!(with_prices.num_rows(), account.num_rows());
    let close = with_prices.column("Close").unwrap();
    let priced = (0..close.len()).filter(|&i| !close.get(i).is_null()).count();
    assert!(priced > 0, "ticker chain produced no prices");

    // Filtering by sector then works like Joey's customer selection.
    let found_sector = (0..sector.len())
        .filter_map(|i| sector.get(i).as_text().map(str::to_string))
        .next()
        .expect("at least one sector");
    assert!(!found_sector.is_empty());
}

#[test]
fn adhoc_queries_answer_quickly_with_sampling() {
    let corpus = build_sigma(0.02, 0x51);
    let connector = std::sync::Arc::new(CdwConnector::with_defaults(corpus.warehouse));
    let wg = WarpGate::with_backend(WarpGateConfig::default(), connector.clone());
    wg.index_warehouse().unwrap();
    for q in &corpus.queries {
        let d = wg.discover(q, 3).unwrap();
        assert!(
            d.timing.response_secs() < 0.5,
            "{q} answered in {:.3}s — not interactive",
            d.timing.response_secs()
        );
    }
}

#[test]
fn discover_values_matches_column_backed_query() {
    // A user pasting values by hand should land in the same neighborhood as
    // querying the backing column.
    let corpus = build_sigma(0.02, 0x51);
    let connector = std::sync::Arc::new(CdwConnector::new(corpus.warehouse, CdwConfig::free()));
    let wg = WarpGate::with_backend(WarpGateConfig::default(), connector.clone());
    wg.index_warehouse().unwrap();

    let pasted: Vec<String> =
        (0..40u64).map(|i| warpgate::corpora::Domain::Company.value(i)).collect();
    let hits = wg.discover_values(&pasted, 5);
    assert!(!hits.is_empty());
    let company_ish = hits.iter().any(|h| {
        h.reference.column.to_lowercase().contains("name")
            || h.reference.column.to_lowercase().contains("company")
    });
    assert!(company_ish, "pasted company names found nothing sensible: {hits:?}");
}
