//! Federated multi-warehouse acceptance suite: one `WarpGate` spanning a
//! simulated CDW, a CSV data lake, and a remote warehouse served over
//! loopback TCP behind retry middleware — three named backends, three
//! namespaces, one index.
//!
//! What must hold (the ISSUE 6 acceptance bar):
//!
//! * all-scope discovery over the federation ranks identically to a
//!   single merged backend holding the union of the warehouses;
//! * scoped discovery restricts results per namespace and never scans
//!   (or bills) excluded backends;
//! * `sync()` attributes per-backend cost slices separately, and
//!   `sync_backend` on a mutated warehouse re-scans only that backend's
//!   changed table — CostMeter-verified on every other backend;
//! * re-attaching a different warehouse under an existing name serves
//!   nothing stale (epoch guard);
//! * pre-federation WGSY snapshots still load, into the default
//!   namespace, and re-encode without a frame upgrade.

use std::sync::Arc;

use warpgate::prelude::*;

/// The CDW's warehouse: two tables in a `crm` database.
fn cdw_warehouse() -> Warehouse {
    let mut w = Warehouse::new("cdw");
    w.database_mut("crm").add_table(
        Table::new(
            "accounts",
            vec![
                Column::text("name", (0..50).map(|i| format!("Company {i}")).collect::<Vec<_>>()),
                Column::ints("employees", (0..50).map(|i| i * 7).collect()),
            ],
        )
        .unwrap(),
    );
    w.database_mut("crm").add_table(
        Table::new(
            "leads",
            vec![Column::text(
                "company",
                (0..40).map(|i| format!("company {i}")).collect::<Vec<_>>(),
            )],
        )
        .unwrap(),
    );
    w
}

/// The data lake's warehouse (exported to CSV): an upper-cased variant of
/// the company names. Text only, so the CSV round trip is exact.
fn lake_warehouse() -> Warehouse {
    let mut w = Warehouse::new("lake");
    w.database_mut("exports").add_table(
        Table::new(
            "dump",
            vec![Column::text(
                "company_name",
                (0..45).map(|i| format!("COMPANY {i}")).collect::<Vec<_>>(),
            )],
        )
        .unwrap(),
    );
    w
}

/// The remote warehouse (served over TCP): partner names, yet another
/// format variant.
fn remote_warehouse() -> Warehouse {
    let mut w = Warehouse::new("partners");
    w.database_mut("ops").add_table(
        Table::new(
            "vendors",
            vec![Column::text(
                "vendor",
                (0..35).map(|i| format!("company {i} inc")).collect::<Vec<_>>(),
            )],
        )
        .unwrap(),
    );
    w
}

/// The union of all three, as one merged single-backend warehouse —
/// the ranking oracle the federation must match.
fn merged_warehouse() -> Warehouse {
    let mut w = cdw_warehouse();
    for source in [lake_warehouse(), remote_warehouse()] {
        for db in source.databases() {
            for table in db.tables() {
                w.database_mut(db.name()).add_table(table.clone());
            }
        }
    }
    w
}

struct Federation {
    wg: WarpGate,
    cdw: BackendId,
    lake: BackendId,
    remote: BackendId,
    cdw_conn: Arc<CdwConnector>,
    lake_backend: Arc<CsvBackend>,
    served_conn: Arc<CdwConnector>,
    server: Option<RemoteBackendServer>,
    csv_root: std::path::PathBuf,
}

impl Federation {
    /// CDW simulator + CSV export + loopback-TCP remote behind retry
    /// middleware, attached as three named backends of one system.
    fn stand_up(tag: &str) -> Self {
        let cdw_conn = Arc::new(CdwConnector::new(cdw_warehouse(), CdwConfig::free()));

        let csv_root =
            std::env::temp_dir().join(format!("wg_federation_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&csv_root);
        CsvBackend::export_warehouse(&lake_warehouse(), &csv_root).unwrap();
        let lake_backend = Arc::new(CsvBackend::open(&csv_root, CdwConfig::free()).unwrap());

        let served_conn = Arc::new(CdwConnector::new(remote_warehouse(), CdwConfig::free()));
        let served: BackendHandle = served_conn.clone();
        let server = RemoteBackendServer::serve(served, "127.0.0.1:0").expect("loopback server");
        let remote_client: BackendHandle =
            Arc::new(RemoteBackend::connect(server.local_addr().to_string()).expect("connect"));
        let resilient: BackendHandle = Arc::new(RetryBackend::with_defaults(remote_client));

        let wg = WarpGate::new(WarpGateConfig { threads: 2, ..WarpGateConfig::default() });
        let cdw = wg.attach_named(&format!("fed-{tag}-cdw"), cdw_conn.clone());
        let lake = wg.attach_named(&format!("fed-{tag}-lake"), lake_backend.clone());
        let remote = wg.attach_named(&format!("fed-{tag}-wgrp"), resilient);
        Self {
            wg,
            cdw,
            lake,
            remote,
            cdw_conn,
            lake_backend,
            served_conn,
            server: Some(server),
            csv_root,
        }
    }
}

impl Drop for Federation {
    fn drop(&mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        std::fs::remove_dir_all(&self.csv_root).ok();
    }
}

/// Candidates with the namespace erased — the shape comparable between a
/// federated system and the merged single-backend oracle.
fn flat(candidates: &[JoinCandidate]) -> Vec<(String, String, String, f32)> {
    candidates
        .iter()
        .map(|c| {
            (
                c.reference.database.clone(),
                c.reference.table.clone(),
                c.reference.column.clone(),
                c.score,
            )
        })
        .collect()
}

#[test]
fn federated_discovery_matches_the_merged_single_backend() {
    let fed = Federation::stand_up("rank");
    let report = fed.wg.index_warehouse().unwrap();
    assert_eq!(report.columns_indexed, 5, "3 CDW + 1 lake + 1 remote columns");

    let merged: BackendHandle = Arc::new(CdwConnector::new(merged_warehouse(), CdwConfig::free()));
    let oracle = WarpGate::with_backend(WarpGateConfig::default(), merged);
    oracle.index_warehouse().unwrap();
    assert_eq!(oracle.len(), fed.wg.len());

    // Same logical query against both systems: the federation's all-scope
    // ranking must equal the merged oracle's, across namespaces.
    for (backend, db, table, column) in [
        (fed.cdw, "crm", "accounts", "name"),
        (fed.cdw, "crm", "leads", "company"),
        (fed.lake, "exports", "dump", "company_name"),
        (fed.remote, "ops", "vendors", "vendor"),
    ] {
        let scoped_query = ColumnRef::scoped(backend, db, table, column);
        let federated = fed.wg.discover(&scoped_query, 5).unwrap();
        let want = oracle.discover(&ColumnRef::new(db, table, column), 5).unwrap();
        assert!(!want.candidates.is_empty(), "oracle found nothing for {db}.{table}.{column}");
        assert_eq!(
            flat(&federated.candidates),
            flat(&want.candidates),
            "federated ranking diverged from the merged oracle on {db}.{table}.{column}"
        );
        assert_eq!(federated.timing.backend, Some(backend), "scan attribution");
    }
}

#[test]
fn scoped_discovery_restricts_results_and_bills_no_excluded_backend() {
    let fed = Federation::stand_up("scope");
    fed.wg.index_warehouse().unwrap();
    let q = ColumnRef::scoped(fed.cdw, "crm", "accounts", "name");

    // Include: only the lake's namespace may answer.
    fed.lake_backend.reset_costs();
    fed.served_conn.reset_costs();
    let only_lake =
        fed.wg.discover_scoped(&q, 10, &DiscoverScope::include([fed.lake.bits()])).unwrap();
    assert!(!only_lake.candidates.is_empty(), "the lake holds a joinable variant");
    assert!(only_lake.candidates.iter().all(|c| c.reference.backend == fed.lake));

    // Exclude: everything but the lake.
    let not_lake =
        fed.wg.discover_scoped(&q, 10, &DiscoverScope::exclude([fed.lake.bits()])).unwrap();
    assert!(!not_lake.candidates.is_empty());
    assert!(not_lake.candidates.iter().all(|c| c.reference.backend != fed.lake));

    // Only the query's own backend was ever scanned: zero billed requests
    // on the lake and the remote warehouse across both queries.
    assert_eq!(fed.lake_backend.costs().requests, 0, "excluded lake must not be billed");
    assert_eq!(fed.served_conn.costs().requests, 0, "remote warehouse must not be billed");

    // The scoped union re-composes the all-scope answer.
    let all = fed.wg.discover(&q, 10).unwrap();
    assert_eq!(
        all.candidates.len(),
        only_lake.candidates.len() + not_lake.candidates.len(),
        "include + exclude must partition the all-scope candidates"
    );
}

#[test]
fn sync_attributes_costs_per_backend_and_sync_backend_stays_scoped() {
    let fed = Federation::stand_up("sync");

    // First sync does the full federated load; each namespace's slice
    // bills exactly its own columns.
    let report = fed.wg.sync().unwrap();
    assert_eq!(report.per_backend.len(), 3);
    let slice = |id: BackendId| {
        report.per_backend.iter().find(|(b, _)| *b == id).map(|(_, r)| r.clone()).unwrap()
    };
    assert_eq!(slice(fed.cdw).columns_indexed, 3);
    assert_eq!(slice(fed.lake).columns_indexed, 1);
    assert_eq!(slice(fed.remote).columns_indexed, 1);
    assert!(slice(fed.cdw).cost.requests >= 3);
    assert!(slice(fed.lake).cost.requests >= 1);
    let total: usize = report.per_backend.iter().map(|(_, r)| r.columns_indexed).sum();
    assert_eq!(report.columns_indexed, total, "slices must sum to the aggregate");

    // Mutate ONE table in ONE warehouse (the CDW), then sync only it:
    // exactly one column re-scans, and the other warehouses' meters do
    // not move at all.
    fed.cdw_conn.warehouse_mut().database_mut("crm").add_table(
        Table::new(
            "leads",
            vec![Column::text(
                "company",
                (0..30).map(|i| format!("Fresh Lead {i}")).collect::<Vec<_>>(),
            )],
        )
        .unwrap(),
    );
    fed.cdw_conn.reset_costs();
    fed.lake_backend.reset_costs();
    fed.served_conn.reset_costs();
    let cdw_name = fed.cdw.name();
    let incremental = fed.wg.sync_backend(&cdw_name).unwrap();
    assert_eq!(incremental.tables_updated, 1);
    assert_eq!(incremental.columns_indexed, 1, "only the mutated table's column re-embeds");
    assert_eq!(fed.cdw_conn.costs().requests, 1, "one column scan on the mutated CDW");
    assert_eq!(fed.lake_backend.costs().requests, 0, "lake untouched by the CDW's sync");
    assert_eq!(fed.served_conn.costs().requests, 0, "remote untouched by the CDW's sync");

    // A follow-up federated sync is a no-op everywhere.
    let settled = fed.wg.sync().unwrap();
    assert!(settled.is_noop(), "everything reconciled: {settled:?}");
}

#[test]
fn reattaching_a_different_warehouse_serves_nothing_stale() {
    let fed = Federation::stand_up("swap");
    fed.wg.index_warehouse().unwrap();
    let q = ColumnRef::scoped(fed.cdw, "crm", "leads", "company");
    let before = fed.wg.discover(&q, 5).unwrap();
    assert!(fed.wg.discover(&q, 5).unwrap().timing.cache_hit, "embedding cached");

    // A different CDW appears under the same name: same ref paths, new
    // content. The epoch guard must force a full re-scan of the namespace
    // and discard the cached embedding.
    let mut replacement = cdw_warehouse();
    replacement.database_mut("crm").add_table(
        Table::new(
            "leads",
            vec![Column::text(
                "company",
                (0..30).map(|i| format!("Replacement {i}")).collect::<Vec<_>>(),
            )],
        )
        .unwrap(),
    );
    let name = fed.cdw.name();
    let id =
        fed.wg.attach_named(&name, Arc::new(CdwConnector::new(replacement, CdwConfig::free())));
    assert_eq!(id, fed.cdw, "a name keeps its namespace across re-attach");

    let report = fed.wg.sync_backend(&name).unwrap();
    assert_eq!(
        report.tables_added + report.tables_updated,
        2,
        "every table the replacement serves re-scans: {report:?}"
    );
    let after = fed.wg.discover(&q, 5).unwrap();
    assert!(!after.timing.cache_hit, "the old warehouse's cached embedding must not serve");
    assert_ne!(flat(&before.candidates), flat(&after.candidates), "new content, new ranking");

    // The other namespaces were never disturbed: their sync is a no-op.
    assert!(fed.wg.sync_backend(&fed.lake.name()).unwrap().is_noop());
    assert!(fed.wg.sync_backend(&fed.remote.name()).unwrap().is_noop());
}

#[test]
fn legacy_snapshot_loads_into_the_default_namespace() {
    // A pre-federation (single-backend) system writes the v1 WGSY frame;
    // a federated deployment must load it with every ref in the default
    // namespace and not upgrade the frame on re-encode.
    let merged: BackendHandle = Arc::new(CdwConnector::new(merged_warehouse(), CdwConfig::free()));
    let legacy = WarpGate::with_backend(WarpGateConfig::default(), merged.clone());
    legacy.index_warehouse().unwrap();
    let bytes = legacy.to_bytes();
    let mut cursor = &bytes[..];
    assert_eq!(warpgate::util::codec::get_header(&mut cursor, *b"WGSY").unwrap(), 1);

    let mut restored = WarpGate::with_backend(WarpGateConfig::default(), merged);
    restored.load_bytes(&bytes).unwrap();
    assert_eq!(restored.len(), legacy.len());
    let q = ColumnRef::new("crm", "accounts", "name");
    let d = restored.discover(&q, 5).unwrap();
    assert!(!d.candidates.is_empty());
    assert!(
        d.candidates.iter().all(|c| c.reference.backend.is_default()),
        "legacy entries must land in the default namespace"
    );
    assert_eq!(
        flat(&d.candidates),
        flat(&legacy.discover(&q, 5).unwrap().candidates),
        "legacy snapshot must restore the exact ranking"
    );

    let reencoded = restored.to_bytes();
    let mut cursor = &reencoded[..];
    assert_eq!(
        warpgate::util::codec::get_header(&mut cursor, *b"WGSY").unwrap(),
        1,
        "all-default contents must keep writing the v1 frame"
    );
}

#[test]
fn detaching_a_namespace_drops_its_paged_tier() {
    // ISSUE 9 extension of the stale-reattach guarantee: when the index
    // serves from sealed segments, `detach_named` must drop the departing
    // namespace's disk-resident rows too — paged items were sealed from
    // that backend's content, and serving them past the detach would be
    // exactly the staleness the epoch guard exists to prevent.
    let mut fed = Federation::stand_up("paged-detach");
    fed.wg.index_warehouse().unwrap();
    let total = fed.wg.len();

    let dir =
        std::env::temp_dir().join(format!("wg_federation_paged_detach_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    fed.wg.save_paged(&dir).unwrap();
    fed.wg.load_paged(&dir).unwrap();
    assert_eq!(fed.wg.cold_len(), total, "every restored row serves from the paged tier");

    // Warm the block cache and pin that the lake namespace serves.
    let q = ColumnRef::scoped(fed.cdw, "crm", "accounts", "name");
    let lake_scope = DiscoverScope::include([fed.lake.bits()]);
    let before = fed.wg.discover_scoped(&q, 5, &lake_scope).unwrap();
    assert!(!before.candidates.is_empty(), "lake must serve before the detach");
    assert!(fed.wg.block_cache_stats().resident_blocks > 0, "re-rank hydrated blocks");

    // Detach the lake: its paged rows drop immediately.
    let lake_name = fed.lake.name();
    assert!(fed.wg.detach_named(&lake_name).is_some());
    assert_eq!(fed.wg.cold_len(), total - 1, "the lake's cold row must drop");
    assert_eq!(fed.wg.len(), total - 1);
    let after = fed.wg.discover_scoped(&q, 5, &lake_scope).unwrap();
    assert!(after.candidates.is_empty(), "a detached namespace's paged rows must not serve");

    // A different warehouse under the same name: sync serves only the new
    // content (hot), and the old sealed rows stay gone.
    let mut replacement = Warehouse::new("lake2");
    replacement.database_mut("exports").add_table(
        Table::new(
            "dump",
            vec![Column::text(
                "company_name",
                (0..20).map(|i| format!("Fresh {i}")).collect::<Vec<_>>(),
            )],
        )
        .unwrap(),
    );
    let id = fed
        .wg
        .attach_named(&lake_name, Arc::new(CdwConnector::new(replacement, CdwConfig::free())));
    assert_eq!(id, fed.lake, "a name keeps its namespace across re-attach");
    fed.wg.sync_backend(&lake_name).unwrap();
    assert_eq!(fed.wg.cold_len(), total - 1, "re-synced content is hot, not paged");
    let swapped = fed.wg.discover_scoped(&q, 5, &lake_scope).unwrap();
    assert!(
        swapped.candidates.iter().all(|c| c.reference.column == "company_name"),
        "only the replacement's rows may serve: {swapped:?}"
    );
    assert_ne!(flat(&swapped.candidates), flat(&before.candidates), "nothing stale survives");

    // Detach the remaining sealed namespaces: the paged tier drains
    // completely — segments retire and their cached blocks evict.
    assert!(fed.wg.detach_named(&fed.cdw.name()).is_some());
    assert!(fed.wg.detach_named(&fed.remote.name()).is_some());
    assert_eq!(fed.wg.cold_len(), 0, "no cold rows may outlive their backends");
    assert_eq!(fed.wg.cold_segment_count(), 0, "emptied segments must retire");
    assert_eq!(
        fed.wg.block_cache_stats().resident_blocks,
        0,
        "retired segments must evict their cache-resident blocks"
    );
    std::fs::remove_dir_all(&dir).ok();
}
