//! Beyond-RAM eviction-correctness parity suite (ISSUE 9).
//!
//! The bar: a paged system serving a corpus ≥10× its block-cache budget
//! under a pathologically small (two-block) budget must return rankings
//! **bit-identical** to the all-in-RAM system over an identical query
//! stream, with monotone block-read accounting and a resident set that
//! never outgrows the budget — eviction pressure may cost I/O, never
//! correctness.

use std::path::PathBuf;
use std::sync::Arc;

use warpgate::prelude::*;

/// A clustered corpus: `tables × cols_per_table` columns in `families`
/// value families, so most columns have genuinely joinable partners in
/// other tables and discovery produces score-sensitive rankings.
fn clustered_warehouse(tables: usize, cols_per_table: usize, families: usize) -> Warehouse {
    let mut w = Warehouse::new("beyond-ram");
    for t in 0..tables {
        let cols: Vec<Column> = (0..cols_per_table)
            .map(|c| {
                let family = (t * cols_per_table + c) % families;
                // Overlapping value windows within a family: joinable well
                // above the LSH threshold, but shifted so scores differ.
                let shift = (t + c) % 7;
                let values: Vec<String> =
                    (0..40).map(|i| format!("fam{family} item {}", i + shift)).collect();
                Column::text(format!("col{c}"), values)
            })
            .collect();
        w.database_mut("db").add_table(Table::new(format!("t{t}"), cols).unwrap());
    }
    w
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wg_paged_parity_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn two_block_budget_serves_identical_rankings_with_bounded_residency() {
    const DIM: usize = 64;
    const BLOCK_ROWS: usize = 8;
    const BLOCK_BYTES: usize = BLOCK_ROWS * DIM * 4;
    // The pathological budget: exactly two blocks resident at a time.
    const BUDGET: usize = 2 * BLOCK_BYTES;

    let config = WarpGateConfig { dim: DIM, threads: 2, ..Default::default() }
        .with_shards(2)
        .with_block_rows(BLOCK_ROWS)
        .with_block_cache_bytes(BUDGET);
    let connector = Arc::new(CdwConnector::new(clustered_warehouse(50, 4, 16), CdwConfig::free()));

    // Reference: the all-in-RAM system.
    let ram = WarpGate::with_backend(config, connector.clone());
    ram.index_warehouse().unwrap();
    let corpus_bytes = ram.len() * DIM * 4;
    assert!(
        corpus_bytes >= 10 * BUDGET,
        "fixture must be ≥10× the budget: {corpus_bytes} vs {BUDGET}"
    );

    // Identical query stream for both systems: every 11th column.
    let queries: Vec<ColumnRef> = (0..50)
        .flat_map(|t| (0..4).map(move |c| (t, c)))
        .filter(|(t, c)| (t * 4 + c) % 11 == 0)
        .map(|(t, c)| ColumnRef::new("db", format!("t{t}"), format!("col{c}")))
        .collect();
    let want: Vec<Vec<JoinCandidate>> =
        queries.iter().map(|q| ram.discover(q, 5).unwrap().candidates).collect();
    assert!(
        want.iter().filter(|r| !r.is_empty()).count() >= queries.len() / 2,
        "fixture must make most queries productive"
    );

    let dir = tmp_dir("parity");
    ram.save_paged(&dir).unwrap();
    let mut paged = WarpGate::with_backend(config, connector);
    paged.load_paged(&dir).unwrap();
    assert_eq!(paged.len(), ram.len());
    assert_eq!(paged.cold_len(), ram.len(), "every row must serve from disk");
    assert_eq!(
        paged.block_cache_stats().resident_blocks,
        0,
        "restore is lazy: no payload hydrates before the first query"
    );

    // Three passes over the stream: a cold pass and two warm ones, so
    // eviction churn under the two-block budget gets exercised hard.
    let mut total_reads = 0u64;
    let mut total_pruned = 0u64;
    let mut last_traffic = 0u64;
    for pass in 0..3 {
        for (q, expect) in queries.iter().zip(&want) {
            let d = paged.discover(q, 5).unwrap();
            assert_eq!(
                &d.candidates, expect,
                "pass {pass}, query {q}: paged ranking diverged from RAM"
            );
            total_reads += d.timing.blocks_read;
            total_pruned += d.timing.blocks_pruned;
            let stats = paged.block_cache_stats();
            // Monotone accounting: per-query reads all flow through the
            // shared cache, so cumulative traffic never decreases and
            // matches the timing counters exactly.
            let traffic = stats.hits + stats.misses;
            assert!(traffic >= last_traffic, "cache traffic went backwards");
            assert_eq!(
                traffic, total_reads,
                "every counted block read must be a cache hit or miss"
            );
            last_traffic = traffic;
            // Bounded residency: eviction holds the budget after every
            // single query — the resident set never grows with the corpus.
            assert!(
                stats.resident_bytes <= BUDGET,
                "pass {pass}, query {q}: resident {} exceeds the {BUDGET}-byte budget",
                stats.resident_bytes
            );
        }
    }
    let stats = paged.block_cache_stats();
    assert!(total_reads > 0, "cold candidates must be read from disk");
    assert!(total_pruned > 0, "zone maps must prune some blocks under a tight top-k");
    assert!(stats.peak_resident_bytes <= BUDGET, "high-water mark must respect the budget");
    assert!(
        stats.evictions > 0,
        "a 2-block budget over a {}-block working set must evict",
        corpus_bytes / BLOCK_BYTES
    );
    // No hit assertion here: with only two resident blocks and per-query
    // working sets larger than that, thrashing every read is the expected
    // (and correct) behavior — the unbounded control below pins hits.
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unbounded_budget_matches_too_and_stops_evicting() {
    // Control: the same corpus with budget 0 (unbounded) also matches the
    // RAM rankings and never evicts — isolating the eviction machinery as
    // the only variable in the test above.
    const DIM: usize = 64;
    let config = WarpGateConfig { dim: DIM, threads: 2, ..Default::default() }
        .with_shards(2)
        .with_block_rows(8)
        .with_block_cache_bytes(0);
    let connector = Arc::new(CdwConnector::new(clustered_warehouse(12, 3, 6), CdwConfig::free()));
    let ram = WarpGate::with_backend(config, connector.clone());
    ram.index_warehouse().unwrap();
    let queries: Vec<ColumnRef> =
        (0..12).map(|t| ColumnRef::new("db", format!("t{t}"), "col0")).collect();
    let want: Vec<_> = queries.iter().map(|q| ram.discover(q, 5).unwrap().candidates).collect();

    let dir = tmp_dir("unbounded");
    ram.save_paged(&dir).unwrap();
    let mut paged = WarpGate::with_backend(config, connector);
    paged.load_paged(&dir).unwrap();
    for pass in 0..2 {
        for (q, expect) in queries.iter().zip(&want) {
            assert_eq!(&paged.discover(q, 5).unwrap().candidates, expect, "pass {pass}: {q}");
        }
    }
    let stats = paged.block_cache_stats();
    assert_eq!(stats.evictions, 0, "unbounded budget must never evict");
    assert!(stats.resident_blocks > 0, "unbounded budget keeps read blocks resident");
    assert!(stats.hits > 0, "the warm pass must serve from memory");
    std::fs::remove_dir_all(&dir).ok();
}
