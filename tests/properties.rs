//! Cross-crate property-based tests (proptest): invariants that must hold
//! for arbitrary inputs, spanning the store, embedding, and LSH layers.

use proptest::prelude::*;
use warpgate::embed::{Aggregation, ColumnEmbedder, WebTableModel};
use warpgate::lsh::{MinHasher, SimHasher};
use warpgate::prelude::*;
use warpgate::store::csv;
use warpgate::store::Value;
use warpgate::util::rng::{Rng64, Xoshiro256pp};

use std::sync::Arc;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: the store rejects inf/NaN at CSV ingestion.
        (-1e12f64..1e12).prop_map(Value::Float),
        "[ -~]{0,18}".prop_map(Value::Text), // printable ASCII incl. commas/quotes
    ]
}

fn arb_column() -> impl Strategy<Value = Column> {
    (prop::collection::vec(arb_value(), 0..40), "[a-z][a-z0-9_]{0,10}")
        .prop_map(|(values, name)| Column::from_values(name, &values))
}

// ---------------------------------------------------------------------------
// Store invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wire-codec round trip is the identity for arbitrary columns.
    #[test]
    fn column_codec_roundtrip(col in arb_column()) {
        let mut buf = Vec::new();
        col.encode(&mut buf);
        let mut cursor = &buf[..];
        let decoded = Column::decode(&mut cursor).expect("decode");
        prop_assert_eq!(decoded, col);
        prop_assert!(cursor.is_empty());
    }

    /// CSV write → read reproduces every *text* cell exactly (typed columns
    /// may re-infer, so test pure text tables).
    #[test]
    fn csv_roundtrip_text(cells in prop::collection::vec("[ -~]{0,16}", 1..30)) {
        // Cells that are pure whitespace or parse as numbers/bools would
        // legitimately re-type on read; mark them to keep the column text.
        let cells: Vec<String> =
            cells.into_iter().map(|c| format!("v{c}")).collect();
        let table = Table::new("t", vec![Column::text("field", cells.clone())]).unwrap();
        let text = csv::write_table(&table);
        let back = csv::read_table("t", &text).expect("parse");
        prop_assert_eq!(back.column("field").unwrap(), table.column("field").unwrap());
    }

    /// Lookup join always preserves base cardinality, whatever the data.
    #[test]
    fn lookup_join_preserves_cardinality(
        base_keys in prop::collection::vec("[a-c]{1,2}", 1..30),
        lookup_keys in prop::collection::vec("[a-c]{1,2}", 1..30),
    ) {
        let base = Table::new("b", vec![Column::text("k", base_keys.clone())]).unwrap();
        let lk = Table::new(
            "l",
            vec![
                Column::text("k", lookup_keys.clone()),
                Column::ints("v", (0..lookup_keys.len() as i64).collect()),
            ],
        )
        .unwrap();
        let joined =
            warpgate::store::join::lookup_join(&base, "k", &lk, "k", &[], KeyNorm::Exact)
                .expect("join");
        prop_assert_eq!(joined.num_rows(), base.num_rows());
    }

    /// Reservoir sampling returns exactly min(n, len) rows, all from the
    /// source column, without replacement.
    #[test]
    fn reservoir_sample_bounds(len in 0usize..400, n in 1usize..100, seed in any::<u64>()) {
        let col = Column::ints("x", (0..len as i64).collect());
        let sampled = SampleSpec::Reservoir { n, seed }.apply(&col);
        prop_assert_eq!(sampled.len(), n.min(len));
        let mut seen = std::collections::HashSet::new();
        for v in sampled.iter() {
            if let warpgate::store::ValueRef::Int(i) = v {
                prop_assert!((0..len as i64).contains(&i));
                prop_assert!(seen.insert(i), "duplicate {i}");
            } else {
                prop_assert!(false, "non-int value leaked into sample");
            }
        }
    }

    /// Containment is reflexive and bounded for arbitrary text columns.
    #[test]
    fn containment_bounds(values in prop::collection::vec("[a-e]{1,3}", 1..40)) {
        let col = Column::text("c", values);
        let c = warpgate::store::containment(&col, &col, KeyNorm::Exact);
        prop_assert!((c - 1.0).abs() < 1e-12, "self containment {c}");
        let empty = Column::text("e", Vec::<String>::new());
        prop_assert_eq!(warpgate::store::containment(&empty, &col, KeyNorm::Exact), 0.0);
    }
}

// ---------------------------------------------------------------------------
// Embedding invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Column embeddings are invariant to row order.
    #[test]
    fn embedding_row_order_invariant(
        mut values in prop::collection::vec("[a-z]{1,8}( [a-z]{1,8})?", 2..30),
        seed in any::<u64>(),
    ) {
        let embedder = ColumnEmbedder::new(
            Arc::new(WebTableModel::default_model()),
            Aggregation::default(),
        );
        let a = embedder.embed_column(&Column::text("c", values.clone()));
        let mut rng = Xoshiro256pp::new(seed);
        rng.shuffle(&mut values);
        let b = embedder.embed_column(&Column::text("c", values));
        // Identical value multisets must embed identically up to float
        // association order in the accumulator.
        prop_assert!(a.cosine(&b) > 0.9999, "row order changed embedding: {}", a.cosine(&b));
    }

    /// Case and punctuation variants embed onto the same point.
    #[test]
    fn embedding_format_invariant(values in prop::collection::vec("[a-z]{2,8}", 1..20)) {
        let embedder = ColumnEmbedder::new(
            Arc::new(WebTableModel::default_model()),
            Aggregation::MeanDistinct,
        );
        let plain = embedder.embed_column(&Column::text("c", values.clone()));
        let shouty: Vec<String> = values.iter().map(|v| format!("{}!", v.to_uppercase())).collect();
        let loud = embedder.embed_column(&Column::text("c", shouty));
        prop_assert!(plain.cosine(&loud) > 0.999);
    }

    /// Embeddings are unit length or exactly zero.
    #[test]
    fn embedding_norm_invariant(values in prop::collection::vec("[ -~]{0,10}", 0..20)) {
        let embedder = ColumnEmbedder::new(
            Arc::new(WebTableModel::default_model()),
            Aggregation::default(),
        );
        let v = embedder.embed_column(&Column::text("c", values));
        prop_assert!(v.is_zero() || v.is_normalized(), "norm {}", v.norm());
    }
}

// ---------------------------------------------------------------------------
// LSH invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// SimHash cosine estimates stay within a statistical band of truth.
    #[test]
    fn simhash_estimates_cosine(seed in any::<u64>(), alpha in 0.0f32..1.0) {
        let mut rng = Xoshiro256pp::new(seed);
        let dim = 48;
        let unit = |rng: &mut Xoshiro256pp| {
            let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_gaussian() as f32).collect();
            let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            v.iter_mut().for_each(|x| *x /= n);
            v
        };
        let a = unit(&mut rng);
        let b0 = unit(&mut rng);
        let mut b: Vec<f32> =
            a.iter().zip(&b0).map(|(x, y)| alpha * x + (1.0 - alpha) * y).collect();
        let n = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        b.iter_mut().for_each(|x| *x /= n);
        let truth: f64 = a.iter().zip(&b).map(|(x, y)| (x * y) as f64).sum();

        let hasher = SimHasher::new(dim, 1024, seed ^ 0xABCD);
        let est = hasher.sign(&a).cosine_estimate(&hasher.sign(&b));
        // 1024 bits: sampling error well under 0.12 with overwhelming
        // probability.
        prop_assert!((truth - est).abs() < 0.12, "truth {truth:.3} est {est:.3}");
    }

    /// MinHash Jaccard estimates stay within a statistical band of truth.
    #[test]
    fn minhash_estimates_jaccard(overlap in 0usize..100, extra in 1usize..100) {
        let a: Vec<u64> = (0..(overlap + extra) as u64).collect();
        let b: Vec<u64> = (0..overlap as u64)
            .chain(10_000..(10_000 + extra as u64))
            .collect();
        let truth = overlap as f64 / (overlap + 2 * extra) as f64;
        let h = MinHasher::new(512, 99);
        let est = h.sign(a.iter().copied()).jaccard_estimate(&h.sign(b.iter().copied()));
        prop_assert!((truth - est).abs() < 0.12, "truth {truth:.3} est {est:.3}");
    }

    /// LSH top-1 agrees with exact search whenever LSH returns anything,
    /// for near-duplicate queries (which are above any banding threshold).
    #[test]
    fn lsh_top1_matches_exact_for_near_duplicates(seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::new(seed);
        let dim = 32;
        let mut index = warpgate::lsh::SimHashLshIndex::for_threshold(dim, 0.7, 5);
        let mut base: Vec<f32> = (0..dim).map(|_| rng.gen_gaussian() as f32).collect();
        let n = base.iter().map(|x| x * x).sum::<f32>().sqrt();
        base.iter_mut().for_each(|x| *x /= n);
        for id in 0..50u32 {
            let mut v: Vec<f32> =
                base.iter().map(|x| x + 0.02 * rng.gen_gaussian() as f32).collect();
            let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            v.iter_mut().for_each(|x| *x /= n);
            index.insert(id, &v);
        }
        let lsh = index.search(&base, 1, |_| false);
        let exact = index.search_exact(&base, 1, |_| false);
        prop_assert!(!lsh.is_empty(), "near-duplicates must collide");
        prop_assert_eq!(lsh[0].0, exact[0].0);
    }
}
