//! Incremental sync bench (ISSUE 3): after mutating 1 of N tables, how
//! much cheaper is `WarpGate::sync()` than a full re-index?
//!
//! Custom harness (like `concurrent_discover`): builds an N-table
//! warehouse behind the simulated-CDW backend, times a from-scratch
//! `index_warehouse` against a `sync` that reconciles a single changed
//! table, verifies the synced system ranks identically to a fresh
//! rebuild, and records the ratio into the repo-root `BENCH_core.json`
//! (appended as an `"incremental_sync"` section so the
//! `concurrent_discover` numbers survive).
//!
//! `WG_BENCH_QUICK=1` shrinks repetitions for CI smoke runs and leaves
//! the committed snapshot untouched.

use std::sync::Arc;
use std::time::Instant;

use warpgate_core::{WarpGate, WarpGateConfig};
use wg_bench::median;
use wg_store::{BackendHandle, CdwConfig, CdwConnector, Column, ColumnRef, Table, Warehouse};

const TABLES: usize = 32;
const COLUMNS_PER_TABLE: usize = 4;
const ROWS: usize = 120;

fn warehouse() -> Warehouse {
    let mut w = Warehouse::new("sync-bench");
    for t in 0..TABLES {
        let mut cols = Vec::with_capacity(COLUMNS_PER_TABLE);
        for c in 0..COLUMNS_PER_TABLE {
            cols.push(Column::text(
                format!("col{c}"),
                (0..ROWS).map(|r| format!("entity {t} {c} {r}")).collect::<Vec<_>>(),
            ));
        }
        w.database_mut(&format!("db{}", t % 4))
            .add_table(Table::new(format!("t{t}"), cols).unwrap());
    }
    w
}

fn mutate_one_table(connector: &CdwConnector, generation: usize) {
    // New content for table t0 only; everything else stays bit-identical.
    let cols: Vec<Column> = (0..COLUMNS_PER_TABLE)
        .map(|c| {
            Column::text(
                format!("col{c}"),
                (0..ROWS).map(|r| format!("fresh {generation} {c} {r}")).collect::<Vec<_>>(),
            )
        })
        .collect();
    connector.warehouse_mut().database_mut("db0").add_table(Table::new("t0", cols).unwrap());
}

fn main() {
    let quick = std::env::var("WG_BENCH_QUICK").is_ok();
    let reps = if quick { 2 } else { 7 };

    let connector = Arc::new(CdwConnector::new(warehouse(), CdwConfig::free()));
    let backend: BackendHandle = connector.clone();
    let config = WarpGateConfig { threads: 2, ..Default::default() };

    // Steady state: a fully indexed system.
    let wg = WarpGate::with_backend(config, backend.clone());
    wg.index_warehouse().expect("initial indexing");
    let columns_total = wg.len();

    let mut full_secs = Vec::with_capacity(reps);
    let mut sync_secs = Vec::with_capacity(reps);
    let mut sync_cost = None;
    for generation in 0..reps {
        mutate_one_table(&connector, generation);

        // Full re-index from scratch (what a system without sync() does).
        let fresh = WarpGate::with_backend(config, backend.clone());
        let sw = Instant::now();
        fresh.index_warehouse().expect("full re-index");
        full_secs.push(sw.elapsed().as_secs_f64());

        // Incremental sync on the live system.
        connector.reset_costs();
        let sw = Instant::now();
        let report = wg.sync().expect("sync");
        sync_secs.push(sw.elapsed().as_secs_f64());
        assert_eq!(report.tables_updated, 1, "exactly one table changed");
        assert_eq!(report.columns_indexed, COLUMNS_PER_TABLE);
        assert_eq!(
            report.cost.requests as usize, COLUMNS_PER_TABLE,
            "sync must scan only the changed table's columns"
        );
        sync_cost = Some(report.cost);

        // Correctness: the synced index ranks identically to the rebuild.
        let q = ColumnRef::new("db0", "t0", "col0");
        let a = wg.discover(&q, 5).expect("synced discover").candidates;
        let b = fresh.discover(&q, 5).expect("fresh discover").candidates;
        assert_eq!(a, b, "sync diverged from a from-scratch rebuild");
    }

    let full_median = median(&mut full_secs);
    let sync_median = median(&mut sync_secs);
    let ratio = full_median / sync_median.max(1e-12);
    let cost = sync_cost.expect("at least one rep ran");
    println!(
        "bench: incremental_sync/1_of_{TABLES} ... full re-index {:.1}ms, sync {:.1}ms ({ratio:.1}x), sync scanned {} cols / {} bytes (warehouse: {columns_total} cols)",
        full_median * 1e3,
        sync_median * 1e3,
        cost.requests,
        cost.bytes_scanned,
    );

    let section = format!(
        r#"{{
    "bench": "incremental_sync",
    "generated_by": "cargo bench --bench incremental_sync",
    "workload": {{
      "tables": {TABLES},
      "columns_per_table": {COLUMNS_PER_TABLE},
      "rows_per_column": {ROWS},
      "mutated_tables": 1,
      "repetitions": {reps}
    }},
    "full_reindex_secs_median": {full_median:.6},
    "sync_secs_median": {sync_median:.6},
    "speedup": {ratio:.2},
    "sync_scan_requests": {requests},
    "sync_bytes_scanned": {bytes}
  }}"#,
        requests = cost.requests,
        bytes = cost.bytes_scanned,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json");
    if quick {
        println!("bench: incremental_sync ... quick mode, not rewriting {path}");
        return;
    }
    // Replace this bench's section in BENCH_core.json, leaving every
    // other bench's numbers untouched.
    wg_bench::merge_bench_section(path, "incremental_sync", &section);
    println!("bench: incremental_sync ... snapshot written to {path}");
}
