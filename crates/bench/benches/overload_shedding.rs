//! Overload-shedding bench (ISSUE 10): the graceful-degradation curve.
//!
//! One admission slot (`admission_cap: 1`) serves a warehouse whose every
//! scan stalls 2ms of *real* wall-clock (`FaultPlan::hang`), so service
//! time is stall-dominated and stable even on the 1-core CI box. Client
//! threads offering 1x/2x/8x the cap loop over the corpus queries; shed
//! clients honor the `Overloaded` backoff hint. Per load level the bench
//! records goodput (admitted queries/second), offered load, shed rate,
//! and admitted/shed p99 latency — the shedding curve — and enforces the
//! acceptance criteria in-process:
//!
//! * at 8x load, admitted p99 stays within 3x the unloaded p99;
//! * goodput at 8x stays >= 80% of the unloaded (1x) rate;
//! * shed requests fail fast — typed `Overloaded`, never a hang past the
//!   bounded queue wait;
//! * admitted answers under load are bit-identical to the unloaded run;
//! * shed requests never reach the backend (no partial bills).
//!
//! `WG_BENCH_QUICK=1` shrinks the windows and relaxes the *statistical*
//! bounds (sub-second samples on a shared runner are noisy); the
//! structural asserts — typed sheds, billing, bit-identical answers —
//! hold in both modes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use warpgate_core::{JoinCandidate, QueryOptions, WarpGate, WarpGateConfig};
use wg_bench::xs_fixture;
use wg_store::{BackendHandle, ColumnRef, FaultInjector, FaultPlan, StoreError};

/// Real stall per scan — the synthetic "warehouse round-trip".
const STALL_MS: u64 = 2;
const CAP: usize = 1;
const QUEUE: usize = 1;
const WAIT_MS: u64 = 50;
const RETRY_MS: u64 = 2;

/// Nearest-rank percentile (sorts in place).
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of no samples");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN bench sample"));
    let idx = ((samples.len() as f64 - 1.0) * p).ceil() as usize;
    samples[idx]
}

struct LoadResult {
    threads: usize,
    elapsed: f64,
    admitted: u64,
    shed: u64,
    admitted_p99: f64,
    shed_p99: f64,
    max_latency: f64,
}

impl LoadResult {
    fn goodput(&self) -> f64 {
        self.admitted as f64 / self.elapsed
    }
    fn offered(&self) -> f64 {
        (self.admitted + self.shed) as f64 / self.elapsed
    }
}

/// Offer `threads`x the admission cap for `window`: each thread loops
/// over the queries, recording per-request latency; a shed request backs
/// off for the server's hinted interval (which also keeps shed spinning
/// from starving the admitted request's CPU on a 1-core box). The first
/// admitted answer per query lands in `witness` for the bit-identical
/// comparison.
fn run_load(
    wg: &WarpGate,
    queries: &[ColumnRef],
    threads: usize,
    window: Duration,
    witness: &Mutex<HashMap<usize, Vec<JoinCandidate>>>,
) -> LoadResult {
    let stop = AtomicBool::new(false);
    let admitted_lat: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let shed_lat: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let stop = &stop;
            let admitted_lat = &admitted_lat;
            let shed_lat = &shed_lat;
            scope.spawn(move || {
                let mut mine_ok = Vec::new();
                let mut mine_shed = Vec::new();
                let mut i = t; // stagger starting offsets
                while !stop.load(Ordering::Relaxed) {
                    let qi = i % queries.len();
                    i += 1;
                    let sw = Instant::now();
                    match wg.discover_opts(&queries[qi], 10, &QueryOptions::default()) {
                        Ok(d) => {
                            mine_ok.push(sw.elapsed().as_secs_f64());
                            witness.lock().unwrap().entry(qi).or_insert(d.candidates);
                        }
                        Err(StoreError::Overloaded { retry_after_ms }) => {
                            mine_shed.push(sw.elapsed().as_secs_f64());
                            std::thread::sleep(Duration::from_millis(retry_after_ms));
                        }
                        Err(e) => panic!("only typed sheds may fail a request: {e:?}"),
                    }
                }
                admitted_lat.lock().unwrap().extend(mine_ok);
                shed_lat.lock().unwrap().extend(mine_shed);
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = started.elapsed().as_secs_f64();
    let mut admitted = admitted_lat.into_inner().unwrap();
    let mut shed = shed_lat.into_inner().unwrap();
    let max_latency = admitted.iter().chain(shed.iter()).copied().fold(0.0f64, f64::max);
    LoadResult {
        threads,
        elapsed,
        admitted: admitted.len() as u64,
        shed: shed.len() as u64,
        admitted_p99: percentile(&mut admitted, 0.99),
        shed_p99: if shed.is_empty() { 0.0 } else { percentile(&mut shed, 0.99) },
        max_latency,
    }
}

fn main() {
    let quick = std::env::var("WG_BENCH_QUICK").is_ok();
    let window = if quick { Duration::from_millis(400) } else { Duration::from_secs(2) };
    let (p99_limit, goodput_floor) = if quick { (10.0, 0.3) } else { (3.0, 0.8) };

    let (corpus, connector) = xs_fixture();
    let queries: Vec<ColumnRef> = corpus.queries.iter().take(16).cloned().collect();
    assert!(!queries.is_empty(), "corpus has no queries");

    // Index fast against the raw connector, then serve through the
    // stalling wrapper: every *serving* scan blocks STALL_MS for real.
    // The cache is off so every admitted discover pays exactly one scan —
    // which is what makes "shed requests bill nothing" falsifiable.
    let wg = WarpGate::with_backend(
        WarpGateConfig {
            cache_capacity: 0,
            threads: 1,
            admission_cap: CAP,
            admission_queue: QUEUE,
            admission_wait_ms: WAIT_MS,
            admission_retry_after_ms: RETRY_MS,
            ..Default::default()
        },
        connector.clone(),
    );
    wg.index_warehouse().expect("indexing");
    let slow: BackendHandle =
        Arc::new(FaultInjector::new(connector.clone(), FaultPlan::hang(STALL_MS as f64 / 1e3)));
    wg.attach(slow);

    // The unloaded reference answers, computed sequentially (no
    // contention, every request admitted).
    let control: Vec<Vec<JoinCandidate>> =
        queries.iter().map(|q| wg.discover(q, 10).expect("control discover").candidates).collect();

    let mut results: Vec<LoadResult> = Vec::new();
    let mut identical_checks = 0usize;
    for threads in [1usize, 2, 8] {
        let witness = Mutex::new(HashMap::new());
        let before = connector.costs();
        let r = run_load(&wg, &queries, threads, window, &witness);
        assert_eq!(
            connector.costs().since(&before).requests,
            r.admitted,
            "only admitted requests may bill scans at {threads} threads"
        );
        for (qi, cands) in witness.into_inner().unwrap() {
            assert_eq!(
                cands, control[qi],
                "admitted answers under {threads}-thread load must be bit-identical to the \
                 unloaded run ({})",
                queries[qi]
            );
            identical_checks += 1;
        }
        println!(
            "bench: overload_shedding/load_{threads}x ... goodput {:.0}/s, offered {:.0}/s, shed {} ({:.0}%), admitted p99 {:.2}ms, shed p99 {:.2}ms",
            r.goodput(),
            r.offered(),
            r.shed,
            100.0 * r.shed as f64 / (r.admitted + r.shed).max(1) as f64,
            r.admitted_p99 * 1e3,
            r.shed_p99 * 1e3,
        );
        results.push(r);
    }

    // The acceptance criteria, enforced where the numbers are minted.
    let unloaded = &results[0];
    let loaded = &results[2];
    assert_eq!(unloaded.shed, 0, "a single sequential caller can never exceed cap 1");
    assert!(loaded.shed > 0, "8 callers over cap 1 must shed");
    let p99_ratio = loaded.admitted_p99 / unloaded.admitted_p99.max(1e-9);
    assert!(
        p99_ratio <= p99_limit,
        "admitted p99 degraded {p99_ratio:.2}x at 8x load (limit {p99_limit}x): \
         {:.2}ms vs {:.2}ms unloaded",
        loaded.admitted_p99 * 1e3,
        unloaded.admitted_p99 * 1e3,
    );
    let goodput_fraction = loaded.goodput() / unloaded.goodput().max(1e-9);
    assert!(
        goodput_fraction >= goodput_floor,
        "goodput collapsed to {:.0}% of the unloaded rate at 8x load (floor {:.0}%)",
        goodput_fraction * 100.0,
        goodput_floor * 100.0,
    );
    // Fail fast, not hang: no shed outlived the bounded queue wait by more
    // than a scheduler margin, and no request of any kind hung.
    assert!(
        loaded.shed_p99 <= (WAIT_MS as f64 / 1e3) + 0.05,
        "shed requests must fail fast, saw p99 {:.1}ms",
        loaded.shed_p99 * 1e3,
    );
    for r in &results {
        assert!(
            r.max_latency < 1.0,
            "no request may hang: {:.3}s at {} threads",
            r.max_latency,
            r.threads
        );
    }
    assert!(identical_checks > 0, "the bit-identical comparison must actually run");
    println!(
        "bench: overload_shedding/acceptance ... p99 ratio {p99_ratio:.2}x (limit {p99_limit}x), goodput {:.0}% (floor {:.0}%), {identical_checks} bit-identical answers",
        goodput_fraction * 100.0,
        goodput_floor * 100.0,
    );

    let stats = wg.admission_stats().expect("admission is on");
    let loads_json: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                r#"{{"threads": {}, "offered_qps": {:.1}, "goodput_qps": {:.1}, "shed": {}, "shed_fraction": {:.4}, "admitted_p99_ms": {:.3}, "shed_p99_ms": {:.3}, "max_latency_ms": {:.3}}}"#,
                r.threads,
                r.offered(),
                r.goodput(),
                r.shed,
                r.shed as f64 / (r.admitted + r.shed).max(1) as f64,
                r.admitted_p99 * 1e3,
                r.shed_p99 * 1e3,
                r.max_latency * 1e3,
            )
        })
        .collect();
    let section = format!(
        r#"{{
    "bench": "overload_shedding",
    "generated_by": "cargo bench --bench overload_shedding",
    "quick_mode": {quick},
    "config": {{
      "admission_cap": {CAP},
      "admission_queue": {QUEUE},
      "admission_wait_ms": {WAIT_MS},
      "retry_after_ms": {RETRY_MS},
      "scan_stall_ms": {STALL_MS},
      "queries": {nq},
      "window_secs": {window:.3},
      "hardware_threads": {hw}
    }},
    "shedding_curve": [
      {loads}
    ],
    "acceptance": {{
      "admitted_p99_ratio_at_8x": {p99_ratio:.3},
      "admitted_p99_limit": {p99_limit},
      "goodput_fraction_at_8x": {goodput_fraction:.3},
      "goodput_floor": {goodput_floor},
      "bit_identical_answers": {identical_checks}
    }},
    "admission_stats": {{
      "admitted": {admitted},
      "queued_admitted": {queued_admitted},
      "shed_queue_full": {shed_queue_full},
      "shed_timeout": {shed_timeout}
    }}
  }}"#,
        nq = queries.len(),
        window = window.as_secs_f64(),
        hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        loads = loads_json.join(",\n      "),
        admitted = stats.admitted,
        queued_admitted = stats.queued_admitted,
        shed_queue_full = stats.shed_queue_full,
        shed_timeout = stats.shed_timeout,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json");
    if quick {
        println!("bench: overload_shedding ... quick mode, not rewriting {path}");
    } else {
        wg_bench::merge_bench_section(path, "overload_shedding", &section);
        println!("bench: overload_shedding ... section merged into {path}");
    }
}
