//! Concurrency bench for the sharded hot path (ISSUE 2): discover
//! throughput under writer churn, sharded vs. single-lock, plus cold vs.
//! warm (cached) query latency and batched discovery.
//!
//! Unlike the paper-artifact benches this one is a custom harness: it
//! measures sustained queries/second from N reader threads against one
//! shared `WarpGate` while a writer thread continuously drops and
//! re-indexes tables (the CDW-with-high-update-rates pattern), and writes
//! a machine-readable snapshot to `BENCH_core.json` at the repo root so
//! future PRs have a perf trajectory baseline.
//!
//! Scenarios:
//!
//! * `single_lock_baseline` — 1 shard, embedding cache disabled: the
//!   pre-sharding hot path (every query re-scans + re-embeds, every
//!   insert funnels through one lock).
//! * `sharded` — the default configuration (8 shards + cache).
//! * `sharding isolated` — both shard counts with the cache enabled, so
//!   the delta is the lock layer alone.
//!
//! `WG_BENCH_QUICK=1` shrinks measurement windows for CI smoke runs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use warpgate_core::{WarpGate, WarpGateConfig};
use wg_bench::{median, xs_fixture};
use wg_store::{BackendHandle, ColumnRef};

const READER_THREADS: usize = 8;

/// Build and fully index a system with the given knobs.
fn build(backend: &BackendHandle, shards: usize, cache_capacity: usize) -> WarpGate {
    let wg = WarpGate::with_backend(
        WarpGateConfig { shards, cache_capacity, threads: 2, ..Default::default() },
        backend.clone(),
    );
    wg.index_warehouse().expect("indexing");
    wg
}

/// Sustained discover throughput: `READER_THREADS` threads loop over
/// `queries` against one shared system while one writer thread churns
/// `churn_tables` (remove + re-index). Returns queries/second.
fn reader_throughput(
    wg: &WarpGate,
    queries: &[ColumnRef],
    churn_tables: &[(String, String)],
    window: Duration,
) -> f64 {
    let stop = AtomicBool::new(false);
    let completed = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for r in 0..READER_THREADS {
            let wg = &wg;
            let stop = &stop;
            let completed = &completed;
            scope.spawn(move || {
                let mut i = r; // stagger starting offsets
                while !stop.load(Ordering::Relaxed) {
                    let q = &queries[i % queries.len()];
                    wg.discover(q, 10).expect("discover");
                    completed.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        if !churn_tables.is_empty() {
            let wg = &wg;
            let stop = &stop;
            scope.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let (db, table) = &churn_tables[i % churn_tables.len()];
                    wg.remove_table(db, table);
                    wg.index_table(db, table).expect("churn re-index");
                    i += 1;
                }
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    completed.load(Ordering::Relaxed) as f64 / started.elapsed().as_secs_f64()
}

/// Per-query cold and warm latency on a fresh cached system.
fn latency(wg: &WarpGate, queries: &[ColumnRef]) -> (f64, f64) {
    let mut cold = Vec::with_capacity(queries.len());
    let mut warm = Vec::with_capacity(queries.len());
    for q in queries {
        let sw = Instant::now();
        let d = wg.discover(q, 10).expect("cold discover");
        cold.push(sw.elapsed().as_secs_f64());
        assert!(!d.timing.cache_hit, "first query must be cold");

        let sw = Instant::now();
        let d = wg.discover(q, 10).expect("warm discover");
        warm.push(sw.elapsed().as_secs_f64());
        assert!(d.timing.cache_hit, "second query must be warm");
        assert_eq!(d.timing.load_secs, 0.0);
        assert_eq!(d.timing.embed_secs, 0.0);
    }
    (median(&mut cold), median(&mut warm))
}

fn main() {
    let quick = std::env::var("WG_BENCH_QUICK").is_ok();
    let window = if quick { Duration::from_millis(500) } else { Duration::from_secs(3) };
    let (corpus, connector) = xs_fixture();
    let (tables, columns, _, _, _) = corpus.stats();

    // Reader queries: a fixed slice of the corpus query workload. Churn
    // tables: warehouse tables that no reader query touches, so the writer
    // invalidates no reader cache entry and the isolated comparison stays
    // lock-bound.
    let queries: Vec<ColumnRef> = corpus.queries.iter().take(16).cloned().collect();
    assert!(!queries.is_empty(), "corpus has no queries");
    let query_tables: std::collections::HashSet<(String, String)> =
        queries.iter().map(|q| (q.database.clone(), q.table.clone())).collect();
    let mut churn_tables: Vec<(String, String)> = Vec::new();
    for meta in connector.list_tables().expect("list_tables") {
        let key = (meta.database, meta.table);
        if !query_tables.contains(&key) && !churn_tables.contains(&key) {
            churn_tables.push(key);
            if churn_tables.len() == 2 {
                break;
            }
        }
    }
    // The snapshot documents a 1-writer contention workload; refuse to
    // silently measure an uncontended read-only run instead.
    assert_eq!(
        churn_tables.len(),
        2,
        "corpus left no query-free tables to churn; adjust the query slice"
    );

    // Headline: the new hot path (shards + cache) vs. the pre-PR hot path
    // (one lock, no cache), same mixed workload.
    let baseline = build(&connector, 1, 0);
    let baseline_qps = reader_throughput(&baseline, &queries, &churn_tables, window);
    drop(baseline);
    let sharded = build(&connector, 8, 4096);
    // Warm the cache: steady-state serving is the workload under test.
    for q in &queries {
        sharded.discover(q, 10).expect("warm-up");
    }
    let sharded_qps = reader_throughput(&sharded, &queries, &churn_tables, window);
    drop(sharded);
    println!(
        "bench: concurrent_discover/throughput_8t ... single_lock_baseline {baseline_qps:.0} q/s, sharded+cache {sharded_qps:.0} q/s ({:.1}x)",
        sharded_qps / baseline_qps.max(1e-9),
    );

    // Isolated lock-layer comparison: cache on for both sides.
    let single_cached = build(&connector, 1, 4096);
    for q in &queries {
        single_cached.discover(q, 10).expect("warm-up");
    }
    let single_cached_qps = reader_throughput(&single_cached, &queries, &churn_tables, window);
    drop(single_cached);
    let sharded2 = build(&connector, 8, 4096);
    for q in &queries {
        sharded2.discover(q, 10).expect("warm-up");
    }
    let sharded2_qps = reader_throughput(&sharded2, &queries, &churn_tables, window);
    drop(sharded2);
    println!(
        "bench: concurrent_discover/sharding_isolated_8t ... 1 shard {single_cached_qps:.0} q/s, 8 shards {sharded2_qps:.0} q/s ({:.2}x)",
        sharded2_qps / single_cached_qps.max(1e-9),
    );

    // Cold vs. warm latency (the cache in isolation, no writer).
    let fresh = build(&connector, 8, 4096);
    let (cold_median, warm_median) = latency(&fresh, &queries);
    drop(fresh);
    println!(
        "bench: concurrent_discover/query_latency ... cold {:.1}us, warm {:.1}us ({:.0}x)",
        cold_median * 1e6,
        warm_median * 1e6,
        cold_median / warm_median.max(1e-12),
    );

    // Batched discovery vs. a sequential loop over the same cold systems,
    // under the default worker resolution (`threads: 0` = one worker per
    // hardware thread — the serving configuration; pinning more workers
    // than cores is for blocking remote backends, not this in-process
    // fixture). Medians over alternating repetitions (a fresh cold
    // system per measurement, indexing excluded): one-shot timings on
    // this workload are dominated by scheduler noise, which once
    // recorded a phantom 28% batching regression.
    let batch_reps = if quick { 3 } else { 9 };
    let mut sequential_samples = Vec::with_capacity(batch_reps);
    let mut batch_samples = Vec::with_capacity(batch_reps);
    for rep in 0..(2 * batch_reps) {
        let wg = WarpGate::with_backend(
            WarpGateConfig { shards: 8, cache_capacity: 4096, threads: 0, ..Default::default() },
            connector.clone(),
        );
        wg.index_warehouse().expect("indexing");
        let sequential_turn = (rep % 2 == 0) == (rep / 2 % 2 == 0);
        if sequential_turn {
            let sw = Instant::now();
            for q in &queries {
                wg.discover(q, 10).expect("sequential");
            }
            sequential_samples.push(sw.elapsed().as_secs_f64());
        } else {
            let sw = Instant::now();
            let out = wg.discover_batch(&queries, 10).expect("batched");
            batch_samples.push(sw.elapsed().as_secs_f64());
            assert_eq!(out.len(), queries.len());
        }
    }
    let sequential_secs = median(&mut sequential_samples);
    let batch_secs = median(&mut batch_samples);
    println!(
        "bench: concurrent_discover/batch ... sequential {:.1}ms, discover_batch {:.1}ms (medians of {batch_reps})",
        sequential_secs * 1e3,
        batch_secs * 1e3,
    );

    let section = format!(
        r#"{{
    "bench": "concurrent_discover",
    "generated_by": "cargo bench --bench concurrent_discover",
    "quick_mode": {quick},
    "corpus": {{"name": "{name}", "tables": {tables}, "columns": {columns}}},
    "workload": {{
      "reader_threads": {readers},
      "writer_threads": 1,
      "reader_queries": {nq},
      "churn_tables": {nchurn},
      "window_secs": {window:.3},
      "hardware_threads": {hw}
    }},
    "discover_throughput_8t": {{
      "single_lock_baseline_qps": {baseline_qps:.1},
      "sharded_qps": {sharded_qps:.1},
      "speedup": {headline:.2}
    }},
    "sharding_isolated_8t": {{
      "single_lock_qps": {single_cached_qps:.1},
      "sharded_qps": {sharded2_qps:.1},
      "speedup": {iso:.2}
    }},
    "query_latency_secs": {{
      "cold_median": {cold_median:.6},
      "warm_median": {warm_median:.6},
      "speedup": {lat:.1}
    }},
    "batch_discover_secs": {{
      "sequential": {sequential_secs:.4},
      "batched": {batch_secs:.4}
    }}
  }}"#,
        name = corpus.name,
        readers = READER_THREADS,
        nq = queries.len(),
        nchurn = churn_tables.len(),
        window = window.as_secs_f64(),
        hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        headline = sharded_qps / baseline_qps.max(1e-9),
        iso = sharded2_qps / single_cached_qps.max(1e-9),
        lat = cold_median / warm_median.max(1e-12),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json");
    // CI smoke runs exercise the concurrent path but must not dirty the
    // committed perf snapshot with quick-mode numbers.
    if quick {
        println!("bench: concurrent_discover ... quick mode, not rewriting {path}");
    } else {
        // Merged as a named section so re-running this bench never eats
        // the other benches' recorded sections.
        wg_bench::merge_bench_section(path, "concurrent_discover", &section);
        println!("bench: concurrent_discover ... section merged into {path}");
    }
}
