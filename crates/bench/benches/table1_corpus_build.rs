//! Table 1: corpus generation — prints the statistics table once and
//! benchmarks testbed construction (the workload generator itself).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wg_corpora::{build_spider, build_testbed, TestbedSpec};

fn bench(c: &mut Criterion) {
    // Print the Table 1 series once.
    for spec in [TestbedSpec::xs(0.1), TestbedSpec::s(0.002)] {
        let corpus = build_testbed(&spec);
        let (t, cols, rows, q, a) = corpus.stats();
        println!(
            "[table1] {}: {} tables, {} columns, {:.0} avg rows, {} queries, {:.1} avg answers",
            corpus.name, t, cols, rows, q, a
        );
    }
    let spider = build_spider(0.05, 0x5919);
    let (t, cols, rows, q, a) = spider.stats();
    println!(
        "[table1] spider: {t} tables, {cols} columns, {rows:.0} avg rows, {q} queries, {a:.1} avg answers"
    );

    let mut group = c.benchmark_group("table1_corpus_build");
    group.sample_size(10);
    group.bench_function("testbed_xs", |b| {
        b.iter(|| black_box(build_testbed(&TestbedSpec::xs(0.1))))
    });
    group.bench_function("spider", |b| b.iter(|| black_box(build_spider(0.05, 0x5919))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
