//! Retry-middleware overhead bench (ISSUE 4): what does wrapping the
//! backend stack in `RetryBackend` cost — on a healthy link (pure
//! indirection) and on a flaky one (faults absorbed, backoff charged)?
//!
//! Three full `index_warehouse` runs over the same warehouse:
//!
//! * `bare` — `CdwConnector` alone (the pre-middleware stack);
//! * `retry_healthy` — `RetryBackend(CdwConnector)`: the closure +
//!   dispatch overhead of the middleware with zero faults;
//! * `retry_flaky` — `RetryBackend(FaultInjector(CdwConnector))` with
//!   every 5th scan faulting: the resilient path, with retry counts and
//!   charged backoff reported alongside wall-clock.
//!
//! Writes a `"retry_overhead"` section into the repo-root
//! `BENCH_core.json` via the shared section merger. `WG_BENCH_QUICK=1`
//! shrinks repetitions and leaves the committed snapshot untouched.

use std::sync::Arc;
use std::time::Instant;

use warpgate_core::{WarpGate, WarpGateConfig};
use wg_bench::median;
use wg_store::{
    BackendHandle, CdwConfig, CdwConnector, Column, CostSnapshot, FaultInjector, FaultPlan,
    RetryBackend, RetryPolicy, Table, Warehouse,
};

const TABLES: usize = 32;
const COLUMNS_PER_TABLE: usize = 4;
const ROWS: usize = 120;
const FAIL_EVERY: u64 = 5;

fn warehouse() -> Warehouse {
    let mut w = Warehouse::new("retry-bench");
    for t in 0..TABLES {
        let mut cols = Vec::with_capacity(COLUMNS_PER_TABLE);
        for c in 0..COLUMNS_PER_TABLE {
            cols.push(Column::text(
                format!("col{c}"),
                (0..ROWS).map(|r| format!("entity {t} {c} {r}")).collect::<Vec<_>>(),
            ));
        }
        w.database_mut(&format!("db{}", t % 4))
            .add_table(Table::new(format!("t{t}"), cols).unwrap());
    }
    w
}

/// Time `reps` full index runs over `make_backend`'s stack; returns the
/// median seconds and the last run's cost snapshot.
fn index_runs(reps: usize, make_backend: impl Fn() -> BackendHandle) -> (f64, CostSnapshot) {
    let mut secs = Vec::with_capacity(reps);
    let mut cost = CostSnapshot::default();
    for _ in 0..reps {
        let backend = make_backend();
        let wg = WarpGate::with_backend(
            WarpGateConfig { threads: 2, ..Default::default() },
            backend.clone(),
        );
        let sw = Instant::now();
        let report = wg.index_warehouse().expect("indexing");
        secs.push(sw.elapsed().as_secs_f64());
        assert_eq!(report.columns_indexed, TABLES * COLUMNS_PER_TABLE);
        cost = report.cost;
    }
    (median(&mut secs), cost)
}

fn main() {
    let quick = std::env::var("WG_BENCH_QUICK").is_ok();
    let reps = if quick { 2 } else { 7 };
    let w = warehouse();

    let (bare_secs, _bare_cost) = index_runs(reps, || {
        let bare: BackendHandle = Arc::new(CdwConnector::new(w.clone(), CdwConfig::free()));
        bare
    });

    let (healthy_secs, healthy_cost) = index_runs(reps, || {
        let inner: BackendHandle = Arc::new(CdwConnector::new(w.clone(), CdwConfig::free()));
        let wrapped: BackendHandle = Arc::new(RetryBackend::with_defaults(inner));
        wrapped
    });
    assert_eq!(healthy_cost.retries, 0, "a healthy link must never retry");

    // Flaky link: every 5th scan faults; the default policy (4 attempts)
    // absorbs them all, so indexing still completes.
    let (flaky_secs, flaky_cost) = index_runs(reps, || {
        let inner: BackendHandle = Arc::new(CdwConnector::new(w.clone(), CdwConfig::free()));
        let flaky: BackendHandle =
            Arc::new(FaultInjector::new(inner, FaultPlan::fail_every(FAIL_EVERY)));
        let wrapped: BackendHandle = Arc::new(RetryBackend::new(flaky, RetryPolicy::default()));
        wrapped
    });
    assert!(flaky_cost.retries > 0, "the flaky run must have retried");

    let healthy_overhead_pct = (healthy_secs / bare_secs.max(1e-12) - 1.0) * 100.0;
    println!(
        "bench: retry_overhead/healthy ... bare {:.1}ms, retry-wrapped {:.1}ms ({healthy_overhead_pct:+.1}% wall-clock)",
        bare_secs * 1e3,
        healthy_secs * 1e3,
    );
    println!(
        "bench: retry_overhead/flaky_1_in_{FAIL_EVERY} ... {:.1}ms wall-clock, {} scans billed, {} retries, {:.2}s backoff charged (virtual)",
        flaky_secs * 1e3,
        flaky_cost.requests,
        flaky_cost.retries,
        flaky_cost.virtual_secs,
    );

    let section = format!(
        r#"{{
    "bench": "retry_overhead",
    "generated_by": "cargo bench --bench retry_overhead",
    "workload": {{
      "tables": {TABLES},
      "columns_per_table": {COLUMNS_PER_TABLE},
      "rows_per_column": {ROWS},
      "fail_every": {FAIL_EVERY},
      "repetitions": {reps}
    }},
    "bare_index_secs_median": {bare_secs:.6},
    "retry_healthy_index_secs_median": {healthy_secs:.6},
    "retry_healthy_overhead_pct": {healthy_overhead_pct:.2},
    "retry_flaky_index_secs_median": {flaky_secs:.6},
    "retry_flaky_scan_requests": {requests},
    "retry_flaky_retries": {retries},
    "retry_flaky_backoff_virtual_secs": {backoff:.4}
  }}"#,
        requests = flaky_cost.requests,
        retries = flaky_cost.retries,
        backoff = flaky_cost.virtual_secs,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json");
    if quick {
        println!("bench: retry_overhead ... quick mode, not rewriting {path}");
        return;
    }
    wg_bench::merge_bench_section(path, "retry_overhead", &section);
    println!("bench: retry_overhead ... snapshot written to {path}");
}
