//! Figure 4(b): effectiveness at testbedM's shape (fewer, wider-row
//! tables). Uses a reduced-row M corpus; prints the series, benchmarks
//! the per-system query.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use wg_corpora::{build_testbed, TestbedSpec};
use wg_eval::experiments::figure4;
use wg_eval::systems::build_systems;
use wg_store::{BackendHandle, CdwConfig, CdwConnector, SampleSpec};

fn bench(c: &mut Criterion) {
    let corpus = build_testbed(&TestbedSpec::m(0.0005));
    let connector: BackendHandle =
        Arc::new(CdwConnector::new(corpus.warehouse.clone(), CdwConfig::free()));
    let systems =
        build_systems(&connector, SampleSpec::DistinctReservoir { n: 1000, seed: 1 }).unwrap();
    let points = figure4::run_with_systems(&corpus, &connector, &systems);
    println!("{}", figure4::render("b — M stand-in", &points));

    let q = &corpus.queries[0];
    let mut group = c.benchmark_group("fig4_testbed_m/query");
    group.sample_size(20);
    for system in &systems {
        group.bench_function(system.name(), |b| {
            b.iter(|| black_box(system.query(connector.as_ref(), q, 10).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
