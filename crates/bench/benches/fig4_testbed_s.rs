//! Figure 4(a): effectiveness on a NextiaJD-style testbed — prints the
//! P/R series for all three systems, then benchmarks one discovery query
//! per system (the operation behind each curve point).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wg_bench::xs_fixture;
use wg_eval::experiments::figure4;
use wg_eval::systems::build_systems;
use wg_store::SampleSpec;

fn bench(c: &mut Criterion) {
    let (corpus, connector) = xs_fixture();
    let systems =
        build_systems(&connector, SampleSpec::DistinctReservoir { n: 1000, seed: 1 }).unwrap();
    let points = figure4::run_with_systems(&corpus, &connector, &systems);
    println!("{}", figure4::render("a — XS stand-in", &points));

    let q = &corpus.queries[0];
    let mut group = c.benchmark_group("fig4_testbed_s/query");
    for system in &systems {
        group.bench_function(system.name(), |b| {
            b.iter(|| black_box(system.query(connector.as_ref(), q, 10).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
