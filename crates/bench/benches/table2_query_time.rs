//! Table 2: end-to-end query response time at k=10 under full scans.
//! Prints the measured table (with the lookup-share decomposition), then
//! benchmarks the full-scan discovery query per system.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wg_bench::xs_fixture_priced;
use wg_eval::experiments::table2;
use wg_eval::systems::build_systems;
use wg_store::SampleSpec;

fn bench(c: &mut Criterion) {
    let (corpus, connector) = xs_fixture_priced();
    let systems = build_systems(&connector, SampleSpec::Full).unwrap();
    let rows = table2::run_with_systems(&corpus, &connector, &systems);
    println!("{}", table2::render(&rows));
    if let Some(v) = table2::check_ordering(&rows) {
        println!("[table2] ORDERING VIOLATION: {v}");
    }

    let q = &corpus.queries[0];
    let mut group = c.benchmark_group("table2_query_time/full_scan_query");
    for system in &systems {
        group.bench_function(system.name(), |b| {
            b.iter(|| black_box(system.query(connector.as_ref(), q, 10).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
