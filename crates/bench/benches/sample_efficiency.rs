//! §4.4 sample efficiency: prints the P/R + latency sweep, then benchmarks
//! the discovery query at each sample size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wg_bench::xs_fixture_priced;
use wg_eval::experiments::samples;
use wg_eval::systems::{build_warpgate, System};

fn bench(c: &mut Criterion) {
    let (corpus, connector) = xs_fixture_priced();
    let rows = samples::run(&corpus, &connector);
    println!("{}", samples::render(&corpus.name, &rows));

    let q = &corpus.queries[0];
    let mut group = c.benchmark_group("sample_efficiency/query");
    for (label, spec) in samples::sample_specs() {
        let system = build_warpgate(&connector, spec, None).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(&label), &system, |b, sys| {
            b.iter(|| black_box(sys.query(connector.as_ref(), q, 10).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
