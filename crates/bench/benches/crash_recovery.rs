//! Crash-recovery bench (ISSUE 7): what does durability cost, and what
//! does a restart save?
//!
//! Custom harness (like `incremental_sync`): builds an N-table warehouse
//! behind the simulated CDW, then measures the three sides of the
//! durable-node story on the same fixture:
//!
//! * **checkpoint** — serializing the indexed system through the
//!   checksummed atomic writer (`Checkpointer::checkpoint`);
//! * **recover** — a restarted node loading that checkpoint from disk
//!   (`Checkpointer::recover`) versus re-indexing from scratch;
//! * **restart sync** — the first `sync()` after recovery with 1 of N
//!   tables mutated, CostMeter-verified to bill only the mutated table's
//!   columns (against the full warehouse scan a token-less restart pays).
//!
//! Results land in the repo-root `BENCH_core.json` as a
//! `"crash_recovery"` section. `WG_BENCH_QUICK=1` shrinks repetitions and
//! leaves the committed snapshot untouched.

use std::sync::Arc;
use std::time::Instant;

use warpgate_core::{Checkpointer, RecoverySource, WarpGate, WarpGateConfig};
use wg_bench::median;
use wg_store::{BackendHandle, CdwConfig, CdwConnector, Column, ColumnRef, Table, Warehouse};

const TABLES: usize = 32;
const COLUMNS_PER_TABLE: usize = 4;
const ROWS: usize = 120;

fn warehouse() -> Warehouse {
    let mut w = Warehouse::new("crash-bench");
    for t in 0..TABLES {
        let mut cols = Vec::with_capacity(COLUMNS_PER_TABLE);
        for c in 0..COLUMNS_PER_TABLE {
            cols.push(Column::text(
                format!("col{c}"),
                (0..ROWS).map(|r| format!("entity {t} {c} {r}")).collect::<Vec<_>>(),
            ));
        }
        w.database_mut(&format!("db{}", t % 4))
            .add_table(Table::new(format!("t{t}"), cols).unwrap());
    }
    w
}

fn mutate_one_table(connector: &CdwConnector, generation: usize) {
    let cols: Vec<Column> = (0..COLUMNS_PER_TABLE)
        .map(|c| {
            Column::text(
                format!("col{c}"),
                (0..ROWS).map(|r| format!("fresh {generation} {c} {r}")).collect::<Vec<_>>(),
            )
        })
        .collect();
    connector.warehouse_mut().database_mut("db0").add_table(Table::new("t0", cols).unwrap());
}

fn main() {
    let quick = std::env::var("WG_BENCH_QUICK").is_ok();
    let reps = if quick { 2 } else { 7 };

    let connector = Arc::new(CdwConnector::new(warehouse(), CdwConfig::free()));
    let backend: BackendHandle = connector.clone();
    let config = WarpGateConfig { threads: 2, ..Default::default() };

    let dir = std::env::temp_dir().join(format!("wg_bench_crash_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let ckpt = Checkpointer::new(dir.join("snapshot.bin"));

    // Steady state: a fully indexed, checkpointed node.
    let wg = WarpGate::with_backend(config, backend.clone());
    let sw = Instant::now();
    wg.index_warehouse().expect("initial indexing");
    let cold_index_secs = sw.elapsed().as_secs_f64();
    let columns_total = wg.len();
    let snapshot_bytes = wg.to_bytes().len();

    let mut checkpoint_secs = Vec::with_capacity(reps);
    let mut recover_secs = Vec::with_capacity(reps);
    let mut restart_sync_cost = None;
    for generation in 0..reps {
        // Checkpoint the live node (rotation + fsync included).
        let sw = Instant::now();
        ckpt.checkpoint(&wg).expect("checkpoint");
        checkpoint_secs.push(sw.elapsed().as_secs_f64());

        // "Crash": a fresh node recovers from disk instead of re-indexing.
        let mut restarted = WarpGate::with_backend(config, backend.clone());
        let sw = Instant::now();
        let report = ckpt.recover(&mut restarted).expect("recover");
        recover_secs.push(sw.elapsed().as_secs_f64());
        assert_eq!(report.source, RecoverySource::Primary);
        assert_eq!(report.columns, columns_total);

        // The restart-billing story: mutate 1 table, then the recovered
        // node's first sync re-scans only that table. Without persisted
        // tokens it would re-scan all TABLES × COLUMNS_PER_TABLE columns.
        mutate_one_table(&connector, generation);
        connector.reset_costs();
        let sync = restarted.sync().expect("restart sync");
        assert_eq!(sync.tables_updated, 1, "exactly one table changed");
        assert_eq!(
            sync.cost.requests as usize, COLUMNS_PER_TABLE,
            "restart sync must bill only the mutated table's columns"
        );
        restart_sync_cost = Some(sync.cost);

        // Keep the live node current so the next generation's checkpoint
        // reflects the mutation (and rankings stay comparable).
        wg.sync().expect("live node sync");
        let q = ColumnRef::new("db0", "t0", "col0");
        let a = restarted.discover(&q, 5).expect("restarted discover").candidates;
        let b = wg.discover(&q, 5).expect("live discover").candidates;
        assert_eq!(a, b, "recovered node diverged from the live node");
    }

    let checkpoint_median = median(&mut checkpoint_secs);
    let recover_median = median(&mut recover_secs);
    let speedup = cold_index_secs / recover_median.max(1e-12);
    let cost = restart_sync_cost.expect("at least one rep ran");
    println!(
        "bench: crash_recovery/{TABLES}_tables ... checkpoint {:.1}ms, recover {:.1}ms vs cold index {:.1}ms ({speedup:.1}x), restart sync scanned {} cols (warehouse: {columns_total} cols, snapshot {snapshot_bytes} bytes)",
        checkpoint_median * 1e3,
        recover_median * 1e3,
        cold_index_secs * 1e3,
        cost.requests,
    );

    std::fs::remove_dir_all(&dir).ok();

    let section = format!(
        r#"{{
    "bench": "crash_recovery",
    "generated_by": "cargo bench --bench crash_recovery",
    "workload": {{
      "tables": {TABLES},
      "columns_per_table": {COLUMNS_PER_TABLE},
      "rows_per_column": {ROWS},
      "mutated_tables_after_restart": 1,
      "repetitions": {reps}
    }},
    "snapshot_bytes": {snapshot_bytes},
    "checkpoint_secs_median": {checkpoint_median:.6},
    "recover_secs_median": {recover_median:.6},
    "cold_index_secs": {cold_index_secs:.6},
    "recover_vs_cold_index_speedup": {speedup:.2},
    "restart_sync_scan_requests": {requests},
    "restart_sync_bytes_scanned": {bytes}
  }}"#,
        requests = cost.requests,
        bytes = cost.bytes_scanned,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json");
    if quick {
        println!("bench: crash_recovery ... quick mode, not rewriting {path}");
        return;
    }
    wg_bench::merge_bench_section(path, "crash_recovery", &section);
    println!("bench: crash_recovery ... snapshot written to {path}");
}
