//! Federated sync bench (ISSUE 6): three named warehouses behind one
//! system; mutate 1 table in 1 of them and measure what reconciliation
//! costs.
//!
//! Custom harness (like `incremental_sync`): attaches three simulated-CDW
//! warehouses as named backends, then compares a federated `sync()`
//! (diffs all three, re-scans only the change set) against a targeted
//! `sync_backend()` on the mutated warehouse alone, asserting via each
//! backend's CostMeter that the untouched warehouses are never scanned.
//! Records medians and the per-backend scan attribution into the
//! repo-root `BENCH_core.json` as a `"federated_sync"` section.
//!
//! `WG_BENCH_QUICK=1` shrinks repetitions for CI smoke runs and leaves
//! the committed snapshot untouched.

use std::sync::Arc;
use std::time::Instant;

use warpgate_core::{WarpGate, WarpGateConfig};
use wg_bench::median;
use wg_store::{
    BackendHandle, BackendId, CdwConfig, CdwConnector, Column, ColumnRef, Table, Warehouse,
};

const WAREHOUSES: usize = 3;
const TABLES_PER_WAREHOUSE: usize = 12;
const COLUMNS_PER_TABLE: usize = 4;
const ROWS: usize = 120;

fn warehouse(wi: usize) -> Warehouse {
    let mut w = Warehouse::new(format!("wh{wi}"));
    for t in 0..TABLES_PER_WAREHOUSE {
        let mut cols = Vec::with_capacity(COLUMNS_PER_TABLE);
        for c in 0..COLUMNS_PER_TABLE {
            cols.push(Column::text(
                format!("col{c}"),
                (0..ROWS).map(|r| format!("entity {wi} {t} {c} {r}")).collect::<Vec<_>>(),
            ));
        }
        w.database_mut(&format!("db{}", t % 2))
            .add_table(Table::new(format!("t{t}"), cols).unwrap());
    }
    w
}

fn mutate_one_table(connector: &CdwConnector, generation: usize) {
    // New content for warehouse 0's table t0 only.
    let cols: Vec<Column> = (0..COLUMNS_PER_TABLE)
        .map(|c| {
            Column::text(
                format!("col{c}"),
                (0..ROWS).map(|r| format!("fresh {generation} {c} {r}")).collect::<Vec<_>>(),
            )
        })
        .collect();
    connector.warehouse_mut().database_mut("db0").add_table(Table::new("t0", cols).unwrap());
}

fn main() {
    let quick = std::env::var("WG_BENCH_QUICK").is_ok();
    let reps = if quick { 2 } else { 7 };

    let connectors: Vec<Arc<CdwConnector>> = (0..WAREHOUSES)
        .map(|wi| Arc::new(CdwConnector::new(warehouse(wi), CdwConfig::free())))
        .collect();
    let config = WarpGateConfig { threads: 2, ..Default::default() };
    let wg = WarpGate::new(config);
    let names: Vec<String> = (0..WAREHOUSES).map(|wi| format!("bench-wh{wi}")).collect();
    for (name, c) in names.iter().zip(&connectors) {
        let backend: BackendHandle = c.clone();
        wg.attach_named(name, backend);
    }
    wg.index_warehouse().expect("initial federated indexing");
    let columns_total = wg.len();

    let mut federated_secs = Vec::with_capacity(reps);
    let mut targeted_secs = Vec::with_capacity(reps);
    let mut scan_requests = 0u64;
    for generation in 0..reps {
        // Federated sync(): diffs every warehouse, re-scans only the
        // mutated table. The untouched warehouses bill version-token
        // fetches but zero column scans.
        mutate_one_table(&connectors[0], 2 * generation);
        for c in &connectors {
            c.reset_costs();
        }
        let sw = Instant::now();
        let report = wg.sync().expect("federated sync");
        federated_secs.push(sw.elapsed().as_secs_f64());
        assert_eq!(report.tables_updated, 1, "exactly one table changed");
        assert_eq!(report.columns_indexed, COLUMNS_PER_TABLE);
        assert_eq!(connectors[0].costs().requests as usize, COLUMNS_PER_TABLE);
        for c in &connectors[1..] {
            assert_eq!(c.costs().requests, 0, "unchanged warehouses must not re-scan");
        }
        let mutated_slice = report
            .per_backend
            .iter()
            .find(|(_, r)| !r.is_noop())
            .map(|(_, r)| r.clone())
            .expect("the mutated warehouse has a non-noop slice");
        assert_eq!(mutated_slice.cost.requests as usize, COLUMNS_PER_TABLE);
        scan_requests = report.cost.requests;

        // Targeted sync_backend(): skips even the other warehouses'
        // version-token fetches.
        mutate_one_table(&connectors[0], 2 * generation + 1);
        for c in &connectors {
            c.reset_costs();
        }
        let sw = Instant::now();
        let report = wg.sync_backend(&names[0]).expect("targeted sync");
        targeted_secs.push(sw.elapsed().as_secs_f64());
        assert_eq!(report.tables_updated, 1);
        for c in &connectors[1..] {
            assert_eq!(c.costs().requests, 0);
        }
    }

    // Correctness spot check: the converged index ranks like a rebuild.
    let fresh = WarpGate::new(config);
    for (name, c) in names.iter().zip(&connectors) {
        let backend: BackendHandle = c.clone();
        fresh.attach_named(name, backend);
    }
    fresh.index_warehouse().expect("fresh rebuild");
    let q = ColumnRef::scoped(BackendId::named(&names[0]), "db0", "t0", "col0");
    let a = wg.discover(&q, 5).expect("synced discover").candidates;
    let b = fresh.discover(&q, 5).expect("fresh discover").candidates;
    assert_eq!(a, b, "federated sync diverged from a from-scratch rebuild");

    let federated_median = median(&mut federated_secs);
    let targeted_median = median(&mut targeted_secs);
    println!(
        "bench: federated_sync/1_table_of_{WAREHOUSES}_warehouses ... sync() {:.1}ms, sync_backend() {:.1}ms, {scan_requests} cols scanned ({columns_total} cols indexed)",
        federated_median * 1e3,
        targeted_median * 1e3,
    );

    let section = format!(
        r#"{{
    "bench": "federated_sync",
    "generated_by": "cargo bench --bench federated_sync",
    "workload": {{
      "warehouses": {WAREHOUSES},
      "tables_per_warehouse": {TABLES_PER_WAREHOUSE},
      "columns_per_table": {COLUMNS_PER_TABLE},
      "rows_per_column": {ROWS},
      "mutated_tables": 1,
      "repetitions": {reps}
    }},
    "federated_sync_secs_median": {federated_median:.6},
    "targeted_sync_backend_secs_median": {targeted_median:.6},
    "mutated_backend_scan_requests": {scan_requests},
    "unchanged_backend_scan_requests": 0
  }}"#,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json");
    if quick {
        println!("bench: federated_sync ... quick mode, not rewriting {path}");
        return;
    }
    wg_bench::merge_bench_section(path, "federated_sync", &section);
    println!("bench: federated_sync ... snapshot written to {path}");
}
