//! Ablations over the design choices DESIGN.md §3 calls out:
//!
//! * LSH threshold sweep (and multi-probe on/off) — effectiveness plus
//!   lookup latency;
//! * aggregation scheme (mean-distinct / frequency / SIF);
//! * embedding dimension — effectiveness vs query cost;
//! * sampling strategy (head / reservoir / distinct-reservoir) at equal
//!   budget;
//! * LSH vs exact search latency as the vector set grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use warpgate_core::{WarpGate, WarpGateConfig};
use wg_bench::xs_fixture;
use wg_corpora::Corpus;
use wg_embed::{Aggregation, WebTableConfig, WebTableModel};
use wg_eval::metrics::precision_recall_at_k;
use wg_store::SampleSpec;

fn pr_at_5(corpus: &Corpus, wg: &WarpGate) -> (f64, f64) {
    let mut p = 0.0;
    let mut r = 0.0;
    for q in &corpus.queries {
        let hits: Vec<_> =
            wg.discover(q, 5).unwrap().candidates.into_iter().map(|c| c.reference).collect();
        let (pi, ri) = precision_recall_at_k(&hits, corpus.truth.answers(q), 5);
        p += pi;
        r += ri;
    }
    let n = corpus.queries.len() as f64;
    (p / n, r / n)
}

fn ablation_lsh_threshold(c: &mut Criterion) {
    let (corpus, connector) = xs_fixture();
    println!("\n[ablation] LSH threshold sweep (P@5/R@5, XS stand-in):");
    let mut group = c.benchmark_group("ablation_lsh_threshold/query");
    for threshold in [0.5, 0.6, 0.7, 0.8] {
        for probes in [0usize, 1, 2] {
            // Cache off: these loops time the cold discover path; a warm
            // cache would hide the phases the ablation sweeps.
            let wg = WarpGate::with_backend(
                WarpGateConfig {
                    lsh_threshold: threshold,
                    probes,
                    cache_capacity: 0,
                    ..WarpGateConfig::default()
                },
                connector.clone(),
            );
            wg.index_warehouse().unwrap();
            let (p, r) = pr_at_5(&corpus, &wg);
            println!("  threshold {threshold:.1} probes {probes}: P {p:.3} R {r:.3}");
            if probes == 1 {
                let q = corpus.queries[0].clone();
                group.bench_with_input(
                    BenchmarkId::from_parameter(format!("t{threshold:.1}")),
                    &wg,
                    |b, wg| b.iter(|| black_box(wg.discover(&q, 5).unwrap())),
                );
            }
        }
    }
    group.finish();
}

fn ablation_aggregation(c: &mut Criterion) {
    let (corpus, connector) = xs_fixture();
    println!("\n[ablation] aggregation scheme (P@5/R@5):");
    let mut group = c.benchmark_group("ablation_aggregation/index");
    group.sample_size(10);
    for agg in
        [Aggregation::MeanDistinct, Aggregation::FrequencyWeighted, Aggregation::Sif { a: 0.05 }]
    {
        let wg = WarpGate::with_backend(
            WarpGateConfig { aggregation: agg, ..Default::default() },
            connector.clone(),
        );
        wg.index_warehouse().unwrap();
        let (p, r) = pr_at_5(&corpus, &wg);
        println!("  {}: P {p:.3} R {r:.3}", agg.label());
        group.bench_function(agg.label(), |b| {
            b.iter(|| {
                let wg = WarpGate::with_backend(
                    WarpGateConfig { aggregation: agg, ..Default::default() },
                    connector.clone(),
                );
                black_box(wg.index_warehouse().unwrap())
            })
        });
    }
    group.finish();
}

fn ablation_dim(c: &mut Criterion) {
    let (corpus, connector) = xs_fixture();
    println!("\n[ablation] embedding dimension (P@5/R@5):");
    let mut group = c.benchmark_group("ablation_dim/query");
    for dim in [32usize, 64, 128, 256] {
        let model = WebTableModel::new(WebTableConfig { dim, ..WebTableConfig::default() });
        let wg = WarpGate::with_model(
            WarpGateConfig { dim, cache_capacity: 0, ..WarpGateConfig::default() },
            Arc::new(model),
        );
        wg.attach(connector.clone());
        wg.index_warehouse().unwrap();
        let (p, r) = pr_at_5(&corpus, &wg);
        println!("  dim {dim}: P {p:.3} R {r:.3}");
        let q = corpus.queries[0].clone();
        group.bench_with_input(BenchmarkId::from_parameter(dim), &wg, |b, wg| {
            b.iter(|| black_box(wg.discover(&q, 5).unwrap()))
        });
    }
    group.finish();
}

fn ablation_sampling_strategy(c: &mut Criterion) {
    let (corpus, connector) = xs_fixture();
    println!("\n[ablation] sampling strategy at n=100 (P@5/R@5):");
    let mut group = c.benchmark_group("ablation_sampling/query");
    for (label, spec) in [
        ("head", SampleSpec::Head(100)),
        ("reservoir", SampleSpec::Reservoir { n: 100, seed: 7 }),
        ("distinct", SampleSpec::DistinctReservoir { n: 100, seed: 7 }),
    ] {
        let wg = WarpGate::with_backend(
            WarpGateConfig::default().with_sample(spec).with_cache_capacity(0),
            connector.clone(),
        );
        wg.index_warehouse().unwrap();
        let (p, r) = pr_at_5(&corpus, &wg);
        println!("  {label}: P {p:.3} R {r:.3}");
        let q = corpus.queries[0].clone();
        group.bench_with_input(BenchmarkId::from_parameter(label), &wg, |b, wg| {
            b.iter(|| black_box(wg.discover(&q, 5).unwrap()))
        });
    }
    group.finish();
}

fn ablation_lsh_vs_exact(c: &mut Criterion) {
    // Pure index-layer comparison: LSH candidates + re-rank vs brute force,
    // on growing synthetic vector sets.
    use wg_util::rng::{Rng64, Xoshiro256pp};
    let mut group = c.benchmark_group("ablation_lsh_vs_exact/lookup");
    let dim = 128;
    for n in [1_000usize, 10_000] {
        let mut rng = Xoshiro256pp::new(9);
        let mut lsh = wg_lsh::SimHashLshIndex::for_threshold(dim, 0.7, 5);
        let mut exact = wg_lsh::ExactIndex::new(dim);
        for id in 0..n as u32 {
            let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_gaussian() as f32).collect();
            let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            v.iter_mut().for_each(|x| *x /= norm);
            lsh.insert(id, &v);
            exact.insert(id, &v);
        }
        let query: Vec<f32> = {
            let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_gaussian() as f32).collect();
            let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            v.iter_mut().for_each(|x| *x /= norm);
            v
        };
        group.bench_with_input(BenchmarkId::new("lsh", n), &lsh, |b, idx| {
            b.iter(|| black_box(idx.search(&query, 10, |_| false)))
        });
        group.bench_with_input(BenchmarkId::new("exact", n), &exact, |b, idx| {
            b.iter(|| black_box(idx.search(&query, 10, |_| false)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_lsh_threshold,
    ablation_aggregation,
    ablation_dim,
    ablation_sampling_strategy,
    ablation_lsh_vs_exact
);
criterion_main!(benches);
