//! Hot-path kernel bench (ISSUE 5): sign throughput, exact-re-rank
//! throughput, embed latency, and allocations per warm discover.
//!
//! The "before" sides are live replicas of the pre-kernel implementations,
//! measured in the same process on the same data:
//!
//! * **sign baseline** — hyperplanes in the old row-major `bits × dim`
//!   layout, one strict scalar pass over the query per plane (the loop
//!   `SimHasher::sign` used to run 128 times per signature);
//! * **re-rank baseline** — stored vectors in a `FxHashMap<u32, Vec<f32>>`
//!   pointer-chase, candidates collected into a fresh `FxHashSet` per
//!   query, each candidate scored with the old fused strict-scalar cosine
//!   (`wg_util::kernel::reference::cosine`).
//!
//! Both sides consume signatures from the same (new) hasher so the
//! comparison isolates the layer under test; the bench asserts the two
//! sides return identical top-k ids before timing anything.
//!
//! Allocation pressure is measured with `wg_bench::alloc` (the counting
//! global allocator this binary registers): warm `discover` calls against
//! a fully cached system pin the steady-state allocations per query.
//!
//! `WG_BENCH_QUICK=1` shrinks repetition counts for CI smoke runs and
//! leaves `BENCH_core.json` untouched.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use warpgate_core::{WarpGate, WarpGateConfig};
use wg_bench::{median, merge_bench_section, xs_fixture};
use wg_embed::{ColumnEmbedder, EmbeddingModel, MiniBertModel, WebTableConfig, WebTableModel};
use wg_lsh::{LshParams, Signature, SimHashLshIndex, SimHasher};
use wg_store::ColumnRef;
use wg_util::hash::combine64;
use wg_util::kernel::reference;
use wg_util::rng::Rng64;
use wg_util::{FxHashMap, FxHashSet, SplitMix64, TopK};

#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: wg_bench::alloc::CountingAllocator = wg_bench::alloc::CountingAllocator;

const DIM: usize = 128;
const BITS: usize = 128;
const SEED: u64 = 0x5747_4154 ^ 0x1DB5; // the default WarpGate index seed

/// The pre-kernel LSH hot path, reconstructed faithfully for a live
/// baseline: row-major planes, strict scalar signing, hash-map vector
/// storage, hash-set candidate collection, fused scalar cosine.
struct OldIndex {
    planes: Vec<f32>, // bits × dim, row-major by plane
    params: LshParams,
    vectors: FxHashMap<u32, Vec<f32>>,
    bands: Vec<FxHashMap<u64, Vec<u32>>>,
}

impl OldIndex {
    fn new(params: LshParams, seed: u64) -> Self {
        let bits = params.bits();
        let mut planes = Vec::with_capacity(bits * DIM);
        for b in 0..bits {
            let mut rng = SplitMix64::new(combine64(seed, b as u64));
            for _ in 0..DIM {
                planes.push(rng.gen_gaussian() as f32);
            }
        }
        Self {
            planes,
            params,
            vectors: FxHashMap::default(),
            bands: (0..params.bands).map(|_| FxHashMap::default()).collect(),
        }
    }

    fn sign(&self, v: &[f32]) -> Signature {
        let bits = self.params.bits();
        let mut words = vec![0u64; bits.div_ceil(64)];
        for b in 0..bits {
            let plane = &self.planes[b * DIM..(b + 1) * DIM];
            if reference::dot(v, plane) >= 0.0 {
                words[b / 64] |= 1 << (b % 64);
            }
        }
        Signature { words, bits }
    }

    fn insert(&mut self, id: u32, v: &[f32], sig: &Signature) {
        for (band, buckets) in self.bands.iter_mut().enumerate() {
            buckets.entry(sig.band_key(band, self.params.rows)).or_default().push(id);
        }
        self.vectors.insert(id, v.to_vec());
    }

    fn search_signed(&self, query: &[f32], sig: &Signature, k: usize) -> (Vec<(u32, f32)>, usize) {
        let mut candidates = FxHashSet::default();
        for (band, buckets) in self.bands.iter().enumerate() {
            let key = sig.band_key(band, self.params.rows);
            if let Some(ids) = buckets.get(&key) {
                candidates.extend(ids.iter().copied());
            }
            // Probe 1, as the default WarpGate config enables.
            if let Some(ids) = buckets.get(&(key ^ 1)) {
                candidates.extend(ids.iter().copied());
            }
        }
        let scored = candidates.len();
        let mut topk = TopK::new(k);
        for id in candidates {
            topk.push(reference::cosine(query, &self.vectors[&id]) as f64, id);
        }
        (topk.into_sorted().into_iter().map(|(s, id)| (id, s as f32)).collect(), scored)
    }
}

fn main() {
    let quick = std::env::var("WG_BENCH_QUICK").is_ok();
    let reps = if quick { 3 } else { 20 };

    // ---- corpus embeddings ------------------------------------------------
    let (corpus, backend) = xs_fixture();
    let config = WarpGateConfig::default();
    let embedder = ColumnEmbedder::new(
        Arc::new(WebTableModel::new(WebTableConfig {
            dim: DIM,
            seed: config.seed,
            ..WebTableConfig::default()
        })),
        config.aggregation,
    );
    let mut vectors: Vec<Vec<f32>> = Vec::new();
    for meta in backend.list_tables().expect("list_tables") {
        for r in meta.column_refs() {
            let col = backend.scan_column(&r, config.sample).expect("scan");
            let v = embedder.embed_column(&col);
            if !v.is_zero() {
                vectors.push(v.0);
            }
        }
    }
    let queries: Vec<Vec<f32>> = corpus
        .queries
        .iter()
        .map(|r| {
            let col = backend.scan_column(r, config.sample).expect("scan query");
            embedder.embed_column(&col).0
        })
        .filter(|v| v.iter().any(|&x| x != 0.0))
        .collect();
    assert!(!vectors.is_empty() && !queries.is_empty());

    // ---- sign throughput --------------------------------------------------
    let params = LshParams::for_threshold(config.lsh_threshold, BITS);
    let hasher = SimHasher::new(DIM, params.bits(), SEED);
    let mut old = OldIndex::new(params, SEED);
    let mut index = SimHashLshIndex::new(DIM, params, SEED);
    index.set_probes(1); // OldIndex::search_signed probes key^1, the default config
    for (id, v) in vectors.iter().enumerate() {
        let sig = hasher.sign(v);
        old.insert(id as u32, v, &sig);
        index.insert_signed(id as u32, v, sig);
    }
    // Ranking parity under the reassociation contract: rank-for-rank, ids
    // must match unless the two candidates' cosines sit within float
    // tolerance of each other (a genuine tie can legally order either way
    // when strict-scalar and kernel rounding disagree by ~1e-6).
    for q in &queries {
        let sig = hasher.sign(q);
        let (want, _) = old.search_signed(q, &sig, 10);
        let (got, _) = index.search_signed_with_outcome(q, &sig, 10, |_| false);
        assert_eq!(got.len(), want.len(), "arena re-rank returns a different candidate count");
        for (rank, ((gid, gscore), (wid, wscore))) in got.iter().zip(&want).enumerate() {
            assert!(
                gid == wid || (gscore - wscore).abs() <= 1e-5,
                "rank {rank}: arena gave {gid} ({gscore}), baseline gave {wid} ({wscore}) — \
                 divergence beyond float-reassociation tolerance"
            );
        }
    }

    for (v, q) in vectors.iter().zip(&queries) {
        black_box(hasher.sign(v));
        black_box(old.sign(q));
    }
    let time_signs = |f: &dyn Fn(&[f32]) -> Signature| {
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let sw = Instant::now();
            for v in &vectors {
                black_box(f(v));
            }
            samples.push(vectors.len() as f64 / sw.elapsed().as_secs_f64());
        }
        median(&mut samples)
    };
    let scalar_vps = time_signs(&|v| old.sign(v));
    let kernel_vps = time_signs(&|v| hasher.sign(v));
    println!(
        "bench: kernel_hot_path/sign ... scalar {scalar_vps:.0} vec/s, kernel {kernel_vps:.0} vec/s ({:.1}x)",
        kernel_vps / scalar_vps.max(1e-9)
    );

    // ---- re-rank throughput ----------------------------------------------
    let sigs: Vec<Signature> = queries.iter().map(|q| hasher.sign(q)).collect();
    let mut scored_total = 0usize;
    for (q, sig) in queries.iter().zip(&sigs) {
        let (_, o) = index.search_signed_with_outcome(q, sig, 10, |_| false);
        scored_total += o.scored;
        black_box(old.search_signed(q, sig, 10));
    }
    let mean_candidates = scored_total as f64 / queries.len() as f64;

    let rerank_reps = reps * 20;
    let time_rerank = |f: &dyn Fn(&[f32], &Signature) -> usize| {
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let mut scored = 0usize;
            let sw = Instant::now();
            for _ in 0..rerank_reps {
                for (q, sig) in queries.iter().zip(&sigs) {
                    scored += f(q, sig);
                }
            }
            samples.push(scored as f64 / sw.elapsed().as_secs_f64());
        }
        median(&mut samples)
    };
    let baseline_cps = time_rerank(&|q, sig| {
        let (hits, scored) = old.search_signed(q, sig, 10);
        black_box(hits);
        scored
    });
    let arena_cps = time_rerank(&|q, sig| {
        let (hits, o) = index.search_signed_with_outcome(q, sig, 10, |_| false);
        black_box(hits);
        o.scored
    });
    println!(
        "bench: kernel_hot_path/rerank ... hashmap+scalar {baseline_cps:.0} cand/s, arena+kernel {arena_cps:.0} cand/s ({:.1}x, {mean_candidates:.1} cand/query)",
        arena_cps / baseline_cps.max(1e-9)
    );

    // ---- embed latency ----------------------------------------------------
    let bert = MiniBertModel::default_model();
    let web = WebTableModel::default_model();
    let texts: Vec<String> = (0..64).map(|i| format!("Sample Company {i} Incorporated")).collect();
    for t in &texts {
        black_box(bert.embed_text(t));
        black_box(web.embed_text(t));
    }
    let time_embed = |f: &dyn Fn(&str) -> wg_embed::Vector| {
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let sw = Instant::now();
            for t in &texts {
                black_box(f(t));
            }
            samples.push(sw.elapsed().as_secs_f64() / texts.len() as f64);
        }
        median(&mut samples)
    };
    let bert_us = time_embed(&|t| bert.embed_text(t)) * 1e6;
    let web_us = time_embed(&|t| web.embed_text(t)) * 1e6;
    println!("bench: kernel_hot_path/embed ... mini-bert {bert_us:.1} us/text, web-table {web_us:.2} us/text");

    // ---- allocations per warm discover ------------------------------------
    let wg = WarpGate::with_backend(WarpGateConfig::default(), backend.clone());
    wg.index_warehouse().expect("indexing");
    let refs: Vec<ColumnRef> = corpus.queries.clone();
    for q in &refs {
        let d = wg.discover(q, 10).expect("cold discover");
        black_box(d);
    }
    for q in &refs {
        assert!(wg.discover(q, 10).expect("warm discover").timing.cache_hit);
    }
    let alloc_rounds = if quick { 3 } else { 50 };
    #[cfg(feature = "alloc-count")]
    let (allocs_per_discover, bytes_per_discover) = {
        wg_bench::alloc::start();
        for _ in 0..alloc_rounds {
            for q in &refs {
                black_box(wg.discover(q, 10).expect("warm discover"));
            }
        }
        let (a, b) = wg_bench::alloc::stop();
        let n = (alloc_rounds * refs.len()) as f64;
        (a as f64 / n, b as f64 / n)
    };
    #[cfg(not(feature = "alloc-count"))]
    let (allocs_per_discover, bytes_per_discover) = (-1.0f64, -1.0f64);
    println!(
        "bench: kernel_hot_path/allocs ... {allocs_per_discover:.1} allocations ({bytes_per_discover:.0} bytes) per warm discover"
    );

    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let section = format!(
        r#"{{
    "bench": "kernel_hot_path",
    "generated_by": "cargo bench --bench kernel_hot_path",
    "quick_mode": {quick},
    "workload": {{
      "corpus": "{name}",
      "vectors": {nvec},
      "dim": {DIM},
      "bits": {BITS},
      "queries": {nq},
      "mean_candidates_per_query": {mean_candidates:.1},
      "hardware_threads": {hw}
    }},
    "sign_throughput_vps": {{
      "scalar_baseline": {scalar_vps:.0},
      "kernel": {kernel_vps:.0},
      "speedup": {sign_speedup:.2}
    }},
    "rerank_throughput_cps": {{
      "hashmap_scalar_baseline": {baseline_cps:.0},
      "arena_kernel": {arena_cps:.0},
      "speedup": {rerank_speedup:.2}
    }},
    "embed_latency_us": {{
      "mini_bert": {bert_us:.1},
      "web_table": {web_us:.2}
    }},
    "warm_discover_allocations": {{
      "allocations_per_query": {allocs_per_discover:.1},
      "bytes_per_query": {bytes_per_discover:.0}
    }}
  }}"#,
        name = corpus.name,
        nvec = vectors.len(),
        nq = queries.len(),
        sign_speedup = kernel_vps / scalar_vps.max(1e-9),
        rerank_speedup = arena_cps / baseline_cps.max(1e-9),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json");
    if quick {
        println!("bench: kernel_hot_path ... quick mode, not rewriting {path}");
    } else {
        merge_bench_section(path, "kernel_hot_path", &section);
        println!("bench: kernel_hot_path ... section merged into {path}");
    }
}
