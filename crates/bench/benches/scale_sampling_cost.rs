//! §5.1 fleet scale: prints the fleet statistics and cost comparison, then
//! benchmarks fleet sampling and cost accounting.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wg_corpora::{FleetSample, FleetSpec};
use wg_eval::experiments::scale;
use wg_store::CdwConfig;

fn bench(c: &mut Criterion) {
    let result = scale::run(4_000, 7);
    println!("{}", scale::render(&result));

    let mut group = c.benchmark_group("scale_sampling_cost");
    group.sample_size(10);
    group.bench_function("draw_fleet_1000", |b| {
        b.iter(|| black_box(FleetSample::draw(&FleetSpec::paper(1_000, 7))))
    });
    let fleet = FleetSample::draw(&FleetSpec::paper(1_000, 7));
    let pricing = CdwConfig::default();
    group.bench_function("cost_accounting", |b| {
        b.iter(|| {
            black_box(fleet.active_sampling_cost_usd(1_000, &pricing));
            black_box(fleet.full_scan_cost_usd(&pricing));
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
