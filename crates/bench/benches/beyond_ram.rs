//! Beyond-RAM serving bench (ISSUE 9): what does paging cost, and what do
//! zone maps save?
//!
//! Custom harness (like `crash_recovery`): builds a clustered warehouse
//! whose vector payload is ~10× larger than the tightest block-cache
//! budget, snapshots it into paged segments, and serves an identical
//! query stream at three corpus-to-budget ratios (1×, 4×, 10×):
//!
//! * **cold pass** — first touch after a lazy restore, every candidate
//!   block read from disk through the cache;
//! * **warm pass** — the same stream again, hit rate set by the budget;
//! * **zone-map pruning** — candidate blocks skipped because their
//!   padded upper bound provably cannot reach the current top-k; the
//!   bench asserts ≥50% of cold candidate blocks are pruned.
//!
//! Every pass asserts bit-identical rankings against the all-in-RAM
//! system and a peak resident set within the budget. Results land in the
//! repo-root `BENCH_core.json` as a `"beyond_ram"` section.
//! `WG_BENCH_QUICK=1` shrinks repetitions and leaves the committed
//! snapshot untouched.

use std::sync::Arc;
use std::time::Instant;

use warpgate_core::{JoinCandidate, WarpGate, WarpGateConfig};
use wg_bench::median;
use wg_store::{CdwConfig, CdwConnector, Column, ColumnRef, Table, Warehouse};

const DIM: usize = 64;
const BLOCK_ROWS: usize = 8;
const TABLES: usize = 64;
const COLUMNS_PER_TABLE: usize = 4;
const FAMILIES: usize = 8;
const ROWS: usize = 40;
/// Value-window offsets within a family span most of the window, so
/// member overlap runs a gradient from ~100% down to ~15%.
const SHIFT_SPAN: usize = 30;
const TOP_K: usize = 3;

/// Clustered corpus: columns fall into large value families whose
/// members' value windows are shifted across [`SHIFT_SPAN`], giving each
/// query a few near-duplicate partners and a long tail of weak ones —
/// the regime where a tight top-k lets zone maps prune the tail's
/// blocks without reading them.
fn warehouse() -> Warehouse {
    let mut w = Warehouse::new("beyond-ram-bench");
    for t in 0..TABLES {
        let cols: Vec<Column> = (0..COLUMNS_PER_TABLE)
            .map(|c| {
                let ordinal = t * COLUMNS_PER_TABLE + c;
                let family = ordinal % FAMILIES;
                let shift = (ordinal / FAMILIES * 5) % SHIFT_SPAN;
                let values: Vec<String> =
                    (0..ROWS).map(|i| format!("fam{family} item {}", i + shift)).collect();
                Column::text(format!("col{c}"), values)
            })
            .collect();
        w.database_mut("db").add_table(Table::new(format!("t{t}"), cols).unwrap());
    }
    w
}

struct RatioResult {
    ratio: usize,
    budget_bytes: usize,
    cold_query_secs: f64,
    warm_query_secs: f64,
    cold_blocks_read: u64,
    cold_blocks_pruned: u64,
    warm_hit_rate: f64,
    evictions: u64,
    peak_resident_bytes: usize,
}

fn main() {
    let quick = std::env::var("WG_BENCH_QUICK").is_ok();
    let warm_reps = if quick { 1 } else { 3 };

    let config = WarpGateConfig { dim: DIM, threads: 1, ..Default::default() }
        .with_shards(1)
        .with_block_rows(BLOCK_ROWS);
    let connector = Arc::new(CdwConnector::new(warehouse(), CdwConfig::free()));

    // Reference: the all-in-RAM system pins the expected rankings.
    let ram = WarpGate::with_backend(config, connector.clone());
    let sw = Instant::now();
    ram.index_warehouse().expect("indexing");
    let ram_index_secs = sw.elapsed().as_secs_f64();
    let corpus_bytes = ram.len() * DIM * 4;

    let queries: Vec<ColumnRef> = (0..TABLES)
        .flat_map(|t| (0..COLUMNS_PER_TABLE).map(move |c| (t, c)))
        .filter(|(t, c)| (t * COLUMNS_PER_TABLE + c) % 7 == 0)
        .map(|(t, c)| ColumnRef::new("db", format!("t{t}"), format!("col{c}")))
        .collect();
    let want: Vec<Vec<JoinCandidate>> =
        queries.iter().map(|q| ram.discover(q, TOP_K).expect("ram discover").candidates).collect();

    let dir = std::env::temp_dir().join(format!("wg_bench_beyond_ram_{}", std::process::id()));
    let segments = ram.save_paged(&dir).expect("save_paged");

    let mut results = Vec::new();
    for ratio in [1usize, 4, 10] {
        let budget = corpus_bytes / ratio;
        let cfg = config.with_block_cache_bytes(budget);
        let mut paged = WarpGate::with_backend(cfg, connector.clone());
        paged.load_paged(&dir).expect("load_paged");
        assert_eq!(paged.cold_len(), ram.len(), "restore must be fully paged");

        // Cold pass: first touch after the lazy restore.
        let mut cold_secs = Vec::with_capacity(queries.len());
        let mut cold_read = 0u64;
        let mut cold_pruned = 0u64;
        for (q, expect) in queries.iter().zip(&want) {
            let sw = Instant::now();
            let d = paged.discover(q, TOP_K).expect("cold discover");
            cold_secs.push(sw.elapsed().as_secs_f64());
            assert_eq!(&d.candidates, expect, "cold pass diverged from RAM at {q}");
            cold_read += d.timing.blocks_read;
            cold_pruned += d.timing.blocks_pruned;
        }

        // Warm passes: the budget decides the hit rate.
        let before = paged.block_cache_stats();
        let mut warm_secs = Vec::with_capacity(queries.len() * warm_reps);
        for _ in 0..warm_reps {
            for (q, expect) in queries.iter().zip(&want) {
                let sw = Instant::now();
                let d = paged.discover(q, TOP_K).expect("warm discover");
                warm_secs.push(sw.elapsed().as_secs_f64());
                assert_eq!(&d.candidates, expect, "warm pass diverged from RAM at {q}");
            }
        }
        let after = paged.block_cache_stats();
        let warm_traffic = (after.hits + after.misses) - (before.hits + before.misses);
        let warm_hits = after.hits - before.hits;
        assert!(
            after.peak_resident_bytes <= budget,
            "ratio {ratio}: peak {} exceeds the {budget}-byte budget",
            after.peak_resident_bytes
        );

        results.push(RatioResult {
            ratio,
            budget_bytes: budget,
            cold_query_secs: median(&mut cold_secs),
            warm_query_secs: median(&mut warm_secs),
            cold_blocks_read: cold_read,
            cold_blocks_pruned: cold_pruned,
            warm_hit_rate: warm_hits as f64 / warm_traffic.max(1) as f64,
            evictions: after.evictions,
            peak_resident_bytes: after.peak_resident_bytes,
        });
    }
    std::fs::remove_dir_all(&dir).ok();

    // The acceptance bar: zone maps must prune at least half of the cold
    // candidate blocks (pruning is a pre-read decision, so the rate is
    // budget-independent; check the tightest ratio).
    let tight = results.last().expect("three ratios ran");
    let prune_rate = tight.cold_blocks_pruned as f64
        / (tight.cold_blocks_read + tight.cold_blocks_pruned).max(1) as f64;
    assert!(
        prune_rate >= 0.5,
        "zone maps pruned only {:.0}% of cold candidate blocks ({} pruned / {} read)",
        prune_rate * 100.0,
        tight.cold_blocks_pruned,
        tight.cold_blocks_read
    );

    for r in &results {
        println!(
            "bench: beyond_ram/{}x ... cold {:.2}ms, warm {:.2}ms per query, {} read / {} pruned cold blocks, warm hit rate {:.0}%, peak resident {} B (budget {} B)",
            r.ratio,
            r.cold_query_secs * 1e3,
            r.warm_query_secs * 1e3,
            r.cold_blocks_read,
            r.cold_blocks_pruned,
            r.warm_hit_rate * 100.0,
            r.peak_resident_bytes,
            r.budget_bytes,
        );
    }
    println!(
        "bench: beyond_ram ... corpus {corpus_bytes} B in {segments} segments, zone-map prune rate {:.0}%",
        prune_rate * 100.0
    );

    let ratio_sections: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                r#"{{
        "corpus_over_budget": {ratio},
        "budget_bytes": {budget},
        "cold_query_secs_median": {cold:.6},
        "warm_query_secs_median": {warm:.6},
        "cold_blocks_read": {read},
        "cold_blocks_pruned": {pruned},
        "warm_hit_rate": {hit:.3},
        "evictions": {ev},
        "peak_resident_bytes": {peak}
      }}"#,
                ratio = r.ratio,
                budget = r.budget_bytes,
                cold = r.cold_query_secs,
                warm = r.warm_query_secs,
                read = r.cold_blocks_read,
                pruned = r.cold_blocks_pruned,
                hit = r.warm_hit_rate,
                ev = r.evictions,
                peak = r.peak_resident_bytes,
            )
        })
        .collect();
    let section = format!(
        r#"{{
    "bench": "beyond_ram",
    "generated_by": "cargo bench --bench beyond_ram",
    "workload": {{
      "tables": {TABLES},
      "columns_per_table": {COLUMNS_PER_TABLE},
      "families": {FAMILIES},
      "rows_per_column": {ROWS},
      "dim": {DIM},
      "block_rows": {BLOCK_ROWS},
      "queries": {queries},
      "top_k": {TOP_K},
      "warm_repetitions": {warm_reps}
    }},
    "corpus_bytes": {corpus_bytes},
    "segments": {segments},
    "ram_index_secs": {ram_index_secs:.6},
    "zone_map_prune_rate_cold": {prune_rate:.3},
    "ratios": [
      {ratios}
    ]
  }}"#,
        queries = queries.len(),
        ratios = ratio_sections.join(",\n      "),
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json");
    if quick {
        println!("bench: beyond_ram ... quick mode, not rewriting {path}");
        return;
    }
    wg_bench::merge_bench_section(path, "beyond_ram", &section);
    println!("bench: beyond_ram ... snapshot written to {path}");
}
