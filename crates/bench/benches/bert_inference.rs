//! §4.4 BERT comparison: prints the effectiveness/latency table for both
//! models, then benchmarks raw column-embedding inference per model — the
//! cost difference the paper attributes the 10x slowdown to.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use wg_bench::xs_fixture_priced;
use wg_embed::{Aggregation, ColumnEmbedder, EmbeddingModel, MiniBertModel, WebTableModel};
use wg_eval::experiments::bert;
use wg_store::Column;

fn bench(c: &mut Criterion) {
    let (corpus, connector) = xs_fixture_priced();
    let rows = bert::run(&corpus, &connector);
    println!("{}", bert::render(&corpus.name, &rows));
    if let Some(v) = bert::check_claims(&rows, 0.2, 3.0) {
        println!("[bert] CLAIM VIOLATION: {v}");
    }

    let column = Column::text(
        "values",
        (0..200).map(|i| format!("Sample Company {i} Inc")).collect::<Vec<_>>(),
    );
    let mut group = c.benchmark_group("bert_inference/embed_column_200_values");
    group.sample_size(20);
    let models: Vec<(&str, Arc<dyn EmbeddingModel>)> = vec![
        ("web-table", Arc::new(WebTableModel::default_model())),
        ("mini-bert", Arc::new(MiniBertModel::default_model())),
    ];
    for (name, model) in models {
        let embedder = ColumnEmbedder::new(model, Aggregation::default());
        // Warm the token cache so the steady-state cost is measured.
        let _ = embedder.embed_column(&column);
        group.bench_function(name, |b| b.iter(|| black_box(embedder.embed_column(&column))));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
