//! Shared fixtures for the Criterion benches.
//!
//! Benches regenerate the paper's tables/figures (the series are printed
//! once per run; Criterion then times the operation the artifact measures).
//! All corpora here use small row scales so `cargo bench` completes in
//! minutes; set `WG_ROW_SCALE_MULT` to push them up.

use std::sync::Arc;

use wg_corpora::{build_testbed, Corpus, TestbedSpec};
use wg_store::{BackendHandle, CdwConfig, CdwConnector};

/// The XS testbed served through a free simulated-CDW backend — the
/// standard bench fixture (fast to build, representative structure).
pub fn xs_fixture() -> (Corpus, BackendHandle) {
    let corpus = build_testbed(&TestbedSpec::xs(0.1));
    let backend: BackendHandle =
        Arc::new(CdwConnector::new(corpus.warehouse.clone(), CdwConfig::free()));
    (corpus, backend)
}

/// The XS testbed with the priced/latent CDW model (timing benches).
pub fn xs_fixture_priced() -> (Corpus, BackendHandle) {
    let corpus = build_testbed(&TestbedSpec::xs(0.1));
    let backend: BackendHandle =
        Arc::new(CdwConnector::new(corpus.warehouse.clone(), CdwConfig::default()));
    (corpus, backend)
}
