//! Shared fixtures for the Criterion benches.
//!
//! Benches regenerate the paper's tables/figures (the series are printed
//! once per run; Criterion then times the operation the artifact measures).
//! All corpora here use small row scales so `cargo bench` completes in
//! minutes; set `WG_ROW_SCALE_MULT` to push them up.

use std::sync::Arc;

use wg_corpora::{build_testbed, Corpus, TestbedSpec};
use wg_store::{BackendHandle, CdwConfig, CdwConnector};

#[cfg(feature = "alloc-count")]
pub mod alloc;

/// The XS testbed served through a free simulated-CDW backend — the
/// standard bench fixture (fast to build, representative structure).
pub fn xs_fixture() -> (Corpus, BackendHandle) {
    let corpus = build_testbed(&TestbedSpec::xs(0.1));
    let backend: BackendHandle =
        Arc::new(CdwConnector::new(corpus.warehouse.clone(), CdwConfig::free()));
    (corpus, backend)
}

/// The XS testbed with the priced/latent CDW model (timing benches).
pub fn xs_fixture_priced() -> (Corpus, BackendHandle) {
    let corpus = build_testbed(&TestbedSpec::xs(0.1));
    let backend: BackendHandle =
        Arc::new(CdwConnector::new(corpus.warehouse.clone(), CdwConfig::default()));
    (corpus, backend)
}

/// Median of a sample set (sorts in place; the upper-middle element for
/// even lengths). Shared by every custom-harness bench so summary
/// statistics cannot silently diverge between them. Panics on empty
/// input or NaN samples — both are bench bugs, not data conditions.
pub fn median(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN bench sample"));
    samples[samples.len() / 2]
}

/// Merge one named top-level section into the repo's `BENCH_core.json`,
/// replacing any previous section of the same name and leaving every
/// other section untouched (benches run independently and must not eat
/// each other's numbers).
///
/// `section_object` is the JSON object text for the section's value,
/// starting with `{` and indented for a 2-space top level.
pub fn merge_bench_section(path: impl AsRef<std::path::Path>, key: &str, section_object: &str) {
    let path = path.as_ref();
    let existing = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".to_string());
    let cleaned = remove_bench_section(&existing, key);
    let close = cleaned.rfind('}').expect("BENCH_core.json must be a JSON object");
    let head = cleaned[..close].trim_end();
    let sep = if head.ends_with('{') { "\n" } else { ",\n" };
    let merged = format!("{head}{sep}  \"{key}\": {section_object}\n}}\n");
    std::fs::write(path, merged).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

/// Drop the top-level section `key` (and exactly one separating comma)
/// from the JSON object text, if present.
fn remove_bench_section(text: &str, key: &str) -> String {
    // The colon distinguishes the key position from occurrences of the
    // same word as a string *value* (e.g. `"bench": "incremental_sync"`).
    let needle = format!("\"{key}\":");
    let Some(kpos) = text.find(&needle) else {
        return text.to_string();
    };
    let bytes = text.as_bytes();
    let bopen = kpos + text[kpos..].find('{').expect("section must be an object");
    // Brace-count to the section's end, ignoring braces inside JSON
    // string values (a `generated_by` command could legitimately contain
    // one) and honoring backslash escapes within them.
    let mut depth = 0usize;
    let mut bclose = bopen;
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes[bopen..].iter().enumerate() {
        if in_string {
            match b {
                _ if escaped => escaped = false,
                b'\\' => escaped = true,
                b'"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    bclose = bopen + i;
                    break;
                }
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced braces in bench section '{key}'");
    let mut start = kpos;
    while start > 0 && bytes[start - 1].is_ascii_whitespace() {
        start -= 1;
    }
    let mut end = bclose + 1;
    if start > 0 && bytes[start - 1] == b',' {
        // Interior or trailing section: eat the preceding separator.
        start -= 1;
    } else {
        // Leading section: eat the following separator instead, if any.
        let rest = &text[end..];
        let trimmed = rest.trim_start();
        if let Some(stripped) = trimmed.strip_prefix(',') {
            end = text.len() - stripped.len();
        }
    }
    format!("{}{}", &text[..start], &text[end..])
}

#[cfg(test)]
mod tests {
    use super::remove_bench_section;

    const DOC: &str = "{\n  \"a\": {\"x\": 1},\n  \"b\": {\n    \"bench\": \"b\",\n    \"nested\": {\"y\": 2}\n  },\n  \"c\": {\"z\": 3}\n}\n";

    #[test]
    fn removes_interior_section_keeping_neighbors() {
        let out = remove_bench_section(DOC, "b");
        assert!(out.contains("\"a\""), "{out}");
        assert!(out.contains("\"c\""), "{out}");
        assert!(!out.contains("\"nested\""), "{out}");
    }

    #[test]
    fn removes_leading_and_trailing_sections() {
        let no_a = remove_bench_section(DOC, "a");
        assert!(!no_a.contains("\"x\""), "{no_a}");
        assert!(no_a.contains("\"b\"") && no_a.contains("\"c\""), "{no_a}");
        let no_c = remove_bench_section(DOC, "c");
        assert!(!no_c.contains("\"z\""), "{no_c}");
        assert!(no_c.contains("\"a\"") && no_c.contains("\"nested\""), "{no_c}");
    }

    #[test]
    fn missing_key_is_a_noop_and_values_never_match() {
        assert_eq!(remove_bench_section(DOC, "nope"), DOC);
        // "bench": "b" contains the word b as a *value*; only the keyed
        // section must match.
        let out = remove_bench_section(DOC, "b");
        assert!(out.contains("\"a\""));
    }

    #[test]
    fn braces_inside_string_values_do_not_confuse_the_scan() {
        let doc = "{\n  \"a\": {\"cmd\": \"echo {x} \\\" }\", \"n\": 1},\n  \"b\": {\"z\": 2}\n}\n";
        let out = remove_bench_section(doc, "a");
        assert!(!out.contains("cmd"), "{out}");
        assert!(out.contains("\"b\"") && out.contains("\"z\": 2"), "{out}");
        let out = remove_bench_section(doc, "b");
        assert!(out.contains("echo {x}"), "{out}");
        assert!(!out.contains("\"z\""), "{out}");
    }
}
