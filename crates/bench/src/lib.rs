//! Shared fixtures for the Criterion benches.
//!
//! Benches regenerate the paper's tables/figures (the series are printed
//! once per run; Criterion then times the operation the artifact measures).
//! All corpora here use small row scales so `cargo bench` completes in
//! minutes; set `WG_ROW_SCALE_MULT` to push them up.

use wg_corpora::{build_testbed, Corpus, TestbedSpec};
use wg_store::{CdwConfig, CdwConnector};

/// The XS testbed wrapped in a free connector — the standard bench fixture
/// (fast to build, representative structure).
pub fn xs_fixture() -> (Corpus, CdwConnector) {
    let corpus = build_testbed(&TestbedSpec::xs(0.1));
    let connector = CdwConnector::new(corpus.warehouse.clone(), CdwConfig::free());
    (corpus, connector)
}

/// The XS testbed with the priced/latent CDW model (timing benches).
pub fn xs_fixture_priced() -> (Corpus, CdwConnector) {
    let corpus = build_testbed(&TestbedSpec::xs(0.1));
    let connector = CdwConnector::new(corpus.warehouse.clone(), CdwConfig::default());
    (corpus, connector)
}
