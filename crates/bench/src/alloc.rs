//! A counting global allocator for allocation-budget benchmarks.
//!
//! Perf claims like "zero allocations per embed after warmup" rot unless
//! they are measured. A bench binary opts in by registering
//! [`CountingAllocator`] as its `#[global_allocator]`; counting is off by
//! default and costs one relaxed atomic load per allocation until
//! [`start`] flips it on, so warmup and timing sections run undisturbed.
//!
//! Two gates keep this out of everyone else's way: the module only exists
//! under the `alloc-count` cargo feature (on by default for `wg_bench`,
//! disable with `--no-default-features`), and only binaries that register
//! the allocator are affected at all.
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: wg_bench::alloc::CountingAllocator = wg_bench::alloc::CountingAllocator;
//!
//! // ... warm up ...
//! wg_bench::alloc::start();
//! run_measured_section();
//! let (allocations, bytes) = wg_bench::alloc::stop();
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A pass-through wrapper over the system allocator that counts
/// allocations (and allocated bytes) while counting is enabled.
/// Deallocations are not tracked — the metric is allocation *pressure*,
/// not live heap size.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Reset the counters and start counting.
pub fn start() {
    ALLOCATIONS.store(0, Ordering::Relaxed);
    BYTES.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::SeqCst);
}

/// Stop counting; returns `(allocations, bytes)` observed since
/// [`start`]. Without the allocator registered (or between windows) both
/// are 0.
pub fn stop() -> (u64, u64) {
    COUNTING.store(false, Ordering::SeqCst);
    (ALLOCATIONS.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    // Unit tests here intentionally do NOT register the allocator (that
    // would affect the whole test binary); start/stop bookkeeping is all
    // that can be exercised without it.
    use super::*;

    #[test]
    fn start_stop_resets_counters() {
        start();
        let (a, b) = stop();
        assert_eq!((a, b), (0, 0), "no registered allocator, nothing counted");
    }
}
