//! Integration test for the `wg_util` binary codec: a composite frame —
//! header, scalars, strings, and slices — must round-trip exactly, and
//! decoding must fail cleanly (never panic) at every truncation point.

use wg_util::codec::{
    get_bytes, get_f32_vec, get_f64, get_header, get_i64, get_str, get_u32, get_u32_vec, get_u64,
    get_u64_vec, get_u8, put_bytes, put_f32_slice, put_f64, put_header, put_i64, put_str, put_u32,
    put_u32_slice, put_u64, put_u64_slice, put_u8, CodecError,
};

const MAGIC: [u8; 4] = *b"WGRT";

fn composite_frame() -> Vec<u8> {
    let mut buf = Vec::new();
    put_header(&mut buf, MAGIC, 7);
    put_u8(&mut buf, 0x5A);
    put_u32(&mut buf, 123_456_789);
    put_u64(&mut buf, u64::MAX / 3);
    put_i64(&mut buf, i64::MIN + 1);
    put_f64(&mut buf, -std::f64::consts::PI);
    put_str(&mut buf, "héllo wörld — κόσμε");
    put_str(&mut buf, "");
    put_bytes(&mut buf, &[0xFF, 0x00, 0x7F]);
    put_f32_slice(&mut buf, &[0.0, -1.5, f32::MAX, f32::MIN_POSITIVE]);
    put_u64_slice(&mut buf, &[0, 1, u64::MAX]);
    put_u32_slice(&mut buf, &[]);
    buf
}

#[test]
fn composite_frame_roundtrips_exactly() {
    let buf = composite_frame();
    let mut r = &buf[..];
    assert_eq!(get_header(&mut r, MAGIC).unwrap(), 7);
    assert_eq!(get_u8(&mut r).unwrap(), 0x5A);
    assert_eq!(get_u32(&mut r).unwrap(), 123_456_789);
    assert_eq!(get_u64(&mut r).unwrap(), u64::MAX / 3);
    assert_eq!(get_i64(&mut r).unwrap(), i64::MIN + 1);
    assert_eq!(get_f64(&mut r).unwrap(), -std::f64::consts::PI);
    assert_eq!(get_str(&mut r).unwrap(), "héllo wörld — κόσμε");
    assert_eq!(get_str(&mut r).unwrap(), "");
    assert_eq!(get_bytes(&mut r).unwrap(), vec![0xFF, 0x00, 0x7F]);
    assert_eq!(get_f32_vec(&mut r).unwrap(), vec![0.0, -1.5, f32::MAX, f32::MIN_POSITIVE]);
    assert_eq!(get_u64_vec(&mut r).unwrap(), vec![0, 1, u64::MAX]);
    assert_eq!(get_u32_vec(&mut r).unwrap(), Vec::<u32>::new());
    assert!(r.is_empty(), "{} trailing bytes", r.len());
}

#[test]
fn every_truncation_point_errors_cleanly() {
    let buf = composite_frame();
    for cut in 0..buf.len() {
        let mut r = &buf[..cut];
        // Walk the same decode schedule; exactly one step must fail with
        // UnexpectedEof (magic mismatch is impossible on a prefix).
        let outcome = (|| {
            get_header(&mut r, MAGIC)?;
            get_u8(&mut r)?;
            get_u32(&mut r)?;
            get_u64(&mut r)?;
            get_i64(&mut r)?;
            get_f64(&mut r)?;
            get_str(&mut r)?;
            get_str(&mut r)?;
            get_bytes(&mut r)?;
            get_f32_vec(&mut r)?;
            get_u64_vec(&mut r)?;
            get_u32_vec(&mut r)?;
            Ok(())
        })();
        assert_eq!(outcome, Err(CodecError::UnexpectedEof), "cut at {cut}");
    }
}

#[test]
fn corrupt_magic_and_length_are_invalid_not_panics() {
    let mut buf = composite_frame();
    buf[0] ^= 0xFF;
    let mut r = &buf[..];
    assert!(matches!(get_header(&mut r, MAGIC), Err(CodecError::Invalid(_))));

    // A giant length prefix must be rejected before allocation.
    let mut evil = Vec::new();
    put_u32(&mut evil, u32::MAX);
    let mut r = &evil[..];
    assert!(matches!(get_str(&mut r), Err(CodecError::Invalid(_))));
}
