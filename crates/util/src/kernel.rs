//! Vectorized numeric kernels for the embed → sign → re-rank hot path.
//!
//! Every dense `f32` loop in WarpGate funnels through these four kernels:
//! [`dot`], [`norm_sq`], [`axpy`] and [`gemv`]. They operate on contiguous
//! row-major slices and are written so LLVM's auto-vectorizer turns them
//! into packed SIMD: reductions expose eight independent accumulators
//! (breaking the serial float-add dependency chain the naive loop has),
//! and [`gemv`] blocks four rows of the matrix per pass over the output so
//! each output element is loaded once per four multiply-adds.
//!
//! **Parity contract.** Reassociating float additions changes low-order
//! bits, so the kernels do *not* promise bit-equality with the strict
//! left-to-right loops in [`reference`]. What they promise — and what
//! `tests/kernel_parity.rs` pins under proptest — is (a) results within a
//! small relative tolerance of the reference, (b) determinism: the same
//! inputs produce the same outputs on every call, so SimHash signatures
//! computed at insert and at query time are self-consistent, and (c)
//! exactness for element-wise kernels ([`axpy`], [`scale`]), which have no
//! reassociation at all.
//!
//! [`scratch`] provides thread-local buffer pools so steady-state callers
//! (signing, the MiniBert forward pass, candidate collection) allocate
//! nothing after warmup.

/// Dot product over equal-length slices, eight accumulator lanes.
///
/// Panics in debug builds on length mismatch; in release the shorter
/// length wins (callers in this workspace always pass equal lengths).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut chunks_a = a.chunks_exact(8);
    let mut chunks_b = b.chunks_exact(8);
    let mut acc = [0.0f32; 8];
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        for i in 0..8 {
            acc[i] += ca[i] * cb[i];
        }
    }
    let mut sum: f32 = acc.iter().sum();
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        sum += x * y;
    }
    sum
}

/// Sum of squares (`dot(a, a)`), eight accumulator lanes.
#[inline]
pub fn norm_sq(a: &[f32]) -> f32 {
    dot(a, a)
}

/// `y[i] += alpha * x[i]` — element-wise, so exactly equal to the scalar
/// loop (no reassociation).
#[inline]
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    debug_assert_eq!(y.len(), x.len());
    for (o, &v) in y.iter_mut().zip(x) {
        *o += alpha * v;
    }
}

/// `y[i] *= s` — element-wise.
#[inline]
pub fn scale(y: &mut [f32], s: f32) {
    for v in y.iter_mut() {
        *v *= s;
    }
}

/// Row-vector × matrix: `out = x · M` for a row-major `M` with `x.len()`
/// rows and `out.len()` columns (`m.len() == x.len() * out.len()`).
///
/// This is the one-pass signing kernel: with the SimHash hyperplanes
/// stored as a contiguous `dim × bits` matrix, a single call computes all
/// `bits` projections while streaming the query and the matrix exactly
/// once. Rows are blocked four at a time so each `out` element serves
/// four fused multiply-adds per load.
pub fn gemv(x: &[f32], m: &[f32], cols: usize, out: &mut [f32]) {
    let rows = x.len();
    assert_eq!(m.len(), rows * cols, "matrix shape mismatch");
    assert_eq!(out.len(), cols, "output length mismatch");
    if cols == 0 {
        return;
    }
    out.fill(0.0);
    let mut blocks = x.chunks_exact(4);
    let mut mrows = m.chunks_exact(4 * cols);
    for (xb, mb) in (&mut blocks).zip(&mut mrows) {
        let (x0, x1, x2, x3) = (xb[0], xb[1], xb[2], xb[3]);
        let (r0, rest) = mb.split_at(cols);
        let (r1, rest) = rest.split_at(cols);
        let (r2, r3) = rest.split_at(cols);
        for (j, o) in out.iter_mut().enumerate() {
            *o += x0 * r0[j] + x1 * r1[j] + x2 * r2[j] + x3 * r3[j];
        }
    }
    for (r, &xv) in blocks.remainder().iter().enumerate() {
        let row = &mrows.remainder()[r * cols..(r + 1) * cols];
        axpy(out, xv, row);
    }
}

/// Strict scalar reference implementations: the exact summation orders the
/// pre-kernel code used. Property tests compare the kernels against these;
/// the `kernel_hot_path` bench uses them as the honest "before" baseline.
pub mod reference {
    /// Left-to-right scalar dot product.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        let mut sum = 0.0f32;
        for (x, y) in a.iter().zip(b) {
            sum += x * y;
        }
        sum
    }

    /// Per-column strict GEMV: `out[j] = Σ_r x[r] · m[r·cols + j]`, each
    /// output accumulated independently in ascending-`r` order (the
    /// summation order of the old one-plane-at-a-time signing loop).
    pub fn gemv(x: &[f32], m: &[f32], cols: usize, out: &mut [f32]) {
        assert_eq!(m.len(), x.len() * cols);
        assert_eq!(out.len(), cols);
        for (j, o) in out.iter_mut().enumerate() {
            let mut sum = 0.0f32;
            for (r, &xv) in x.iter().enumerate() {
                sum += xv * m[r * cols + j];
            }
            *o = sum;
        }
    }

    /// Scalar `y += alpha·x`.
    pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
        for (o, &v) in y.iter_mut().zip(x) {
            *o += alpha * v;
        }
    }

    /// The pre-arena exact-cosine scorer: one fused strict pass computing
    /// dot and both norms, `(na·nb).sqrt()` denominator.
    pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
        let mut dot = 0.0f32;
        let mut na = 0.0f32;
        let mut nb = 0.0f32;
        for (x, y) in a.iter().zip(b) {
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        let denom = (na * nb).sqrt();
        if denom <= f32::MIN_POSITIVE {
            0.0
        } else {
            (dot / denom).clamp(-1.0, 1.0)
        }
    }
}

/// Thread-local buffer pools for the hot paths.
///
/// `take_*` hands out a buffer of the requested length (zero-filled for
/// `f32`, cleared for ids); `put_*` returns it for reuse. Buffers keep
/// their capacity across the pool, so a steady-state caller that takes and
/// puts the same shapes performs no heap allocation after its first call
/// on each thread. Forgetting to `put_*` (or unwinding past it) merely
/// leaks the buffer back to the allocator — correctness never depends on
/// the pool.
pub mod scratch {
    use std::cell::RefCell;

    thread_local! {
        static F32_POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
        static ID_POOL: RefCell<Vec<Vec<u32>>> = const { RefCell::new(Vec::new()) };
    }

    /// A zero-filled `f32` buffer of length `len` from this thread's pool.
    pub fn take_f32(len: usize) -> Vec<f32> {
        let mut buf = F32_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Return an `f32` buffer to this thread's pool.
    pub fn put_f32(buf: Vec<f32>) {
        F32_POOL.with(|p| p.borrow_mut().push(buf));
    }

    /// An empty `u32` buffer (id scratch) from this thread's pool.
    pub fn take_ids() -> Vec<u32> {
        let mut buf = ID_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
        buf.clear();
        buf
    }

    /// Return an id buffer to this thread's pool.
    pub fn put_ids(buf: Vec<u32>) {
        ID_POOL.with(|p| p.borrow_mut().push(buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng64, Xoshiro256pp};

    fn randvec(n: usize, rng: &mut Xoshiro256pp) -> Vec<f32> {
        (0..n).map(|_| rng.gen_gaussian() as f32).collect()
    }

    #[test]
    fn dot_matches_reference_within_tolerance() {
        let mut rng = Xoshiro256pp::new(1);
        for n in [0, 1, 7, 8, 9, 15, 16, 17, 64, 127, 128, 129] {
            let a = randvec(n, &mut rng);
            let b = randvec(n, &mut rng);
            let got = dot(&a, &b);
            let want = reference::dot(&a, &b);
            let tol = 1e-4 * (1.0 + want.abs());
            assert!((got - want).abs() <= tol, "n={n}: {got} vs {want}");
        }
    }

    #[test]
    fn dot_exact_on_small_integers() {
        let a: Vec<f32> = (1..=11).map(|i| i as f32).collect();
        let b = vec![1.0f32; 11];
        assert_eq!(dot(&a, &b), 66.0);
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
    }

    #[test]
    fn axpy_and_scale_are_exact() {
        let mut rng = Xoshiro256pp::new(2);
        let x = randvec(37, &mut rng);
        let mut y = randvec(37, &mut rng);
        let mut y_ref = y.clone();
        axpy(&mut y, 0.75, &x);
        reference::axpy(&mut y_ref, 0.75, &x);
        assert_eq!(y, y_ref, "element-wise kernels must be bit-exact");
        scale(&mut y, 2.0);
        for (a, b) in y.iter().zip(&y_ref) {
            assert_eq!(*a, b * 2.0);
        }
    }

    #[test]
    fn gemv_matches_reference_odd_shapes() {
        let mut rng = Xoshiro256pp::new(3);
        for (rows, cols) in [(1, 1), (3, 5), (4, 8), (5, 7), (8, 128), (13, 33), (128, 128)] {
            let x = randvec(rows, &mut rng);
            let m = randvec(rows * cols, &mut rng);
            let mut got = vec![0.0f32; cols];
            let mut want = vec![0.0f32; cols];
            gemv(&x, &m, cols, &mut got);
            reference::gemv(&x, &m, cols, &mut want);
            for (g, w) in got.iter().zip(&want) {
                let tol = 1e-4 * (1.0 + w.abs());
                assert!((g - w).abs() <= tol, "{rows}x{cols}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn gemv_zero_rows_zeroes_output() {
        let mut out = vec![7.0f32; 4];
        gemv(&[], &[], 4, &mut out);
        assert_eq!(out, vec![0.0; 4]);
    }

    #[test]
    fn gemv_zero_cols_is_a_noop() {
        let mut out: Vec<f32> = vec![];
        gemv(&[1.0, 2.0, 3.0, 4.0, 5.0], &[], 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "matrix shape mismatch")]
    fn gemv_rejects_bad_shapes() {
        let mut out = vec![0.0f32; 2];
        gemv(&[1.0, 2.0], &[1.0, 2.0, 3.0], 2, &mut out);
    }

    #[test]
    fn scratch_reuses_capacity() {
        let a = scratch::take_f32(64);
        assert!(a.iter().all(|&v| v == 0.0));
        let ptr = a.as_ptr();
        scratch::put_f32(a);
        let b = scratch::take_f32(32);
        assert_eq!(b.as_ptr(), ptr, "pool must hand the same buffer back");
        assert_eq!(b.len(), 32);
        scratch::put_f32(b);

        let mut ids = scratch::take_ids();
        ids.extend([3u32, 1, 2]);
        scratch::put_ids(ids);
        let ids = scratch::take_ids();
        assert!(ids.is_empty(), "id scratch must come back cleared");
        scratch::put_ids(ids);
    }

    #[test]
    fn reference_cosine_bounds() {
        assert_eq!(reference::cosine(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert_eq!(reference::cosine(&[1.0, 0.0], &[2.0, 0.0]), 1.0);
        assert_eq!(reference::cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }
}
