//! Process-wide backend-name interning.
//!
//! Federated discovery addresses columns as `warehouse:db.table.col`. The
//! warehouse component is carried everywhere — inside every `ColumnRef`,
//! inside every LSH item id, inside every cache key — so it must be a
//! small copyable integer, not a `String`. This module is the single
//! name ↔ id table behind that integer.
//!
//! Properties:
//!
//! * **Global and append-only.** A name, once seen, keeps its id for the
//!   process lifetime; ids are never reused. That is what makes the id
//!   safe to embed in the high bits of an LSH item id (`wg_lsh`): two
//!   live handles can never collide on bits, and a *re-attached* name
//!   maps back onto its old id so its indexed items remain addressable.
//! * **`"default"` is pinned to id 0.** Bits 0 is therefore both "the
//!   legacy single-backend namespace" and the namespace every
//!   pre-federation snapshot or un-namespaced `ColumnRef` lands in —
//!   no translation step needed for old data.
//! * **Capped at 256 names** ([`MAX_NAMES`]) because the LSH item-id
//!   layout reserves 8 bits for the backend (see `wg_lsh`). The cap is a
//!   per-process ceiling on *distinct names ever used*, not on
//!   simultaneously attached backends.

use std::sync::{Mutex, OnceLock};

/// Hard ceiling on distinct interned names per process: the LSH item-id
/// layout gives the backend 8 bits.
pub const MAX_NAMES: usize = 256;

/// The name every un-namespaced reference belongs to, pinned to id 0.
pub const DEFAULT_NAME: &str = "default";

fn table() -> &'static Mutex<Vec<String>> {
    static TABLE: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(vec![DEFAULT_NAME.to_string()]))
}

/// Intern a name, returning its stable id. Idempotent; `"default"` always
/// returns 0.
///
/// # Panics
///
/// Panics when a *new* name would exceed [`MAX_NAMES`] — that means the
/// process churned through 256 distinct backend names, which is a
/// misuse (e.g. generating a fresh name per sync tick), not a workload.
pub fn intern(name: &str) -> u16 {
    let mut t = table().lock().expect("name table lock");
    if let Some(pos) = t.iter().position(|n| n == name) {
        return pos as u16;
    }
    assert!(
        t.len() < MAX_NAMES,
        "backend name table full ({MAX_NAMES} distinct names): names are interned for the \
         process lifetime, so generate stable backend names, not fresh ones"
    );
    t.push(name.to_string());
    (t.len() - 1) as u16
}

/// The id for a name, if it was ever interned. Does not intern.
pub fn lookup(name: &str) -> Option<u16> {
    let t = table().lock().expect("name table lock");
    t.iter().position(|n| n == name).map(|p| p as u16)
}

/// The name behind an id. Ids only come from [`intern`], so an unknown id
/// means corrupted data (e.g. a snapshot decoded without remapping); it
/// resolves to a diagnostic placeholder rather than panicking in Display
/// paths.
pub fn resolve(id: u16) -> String {
    let t = table().lock().expect("name table lock");
    t.get(id as usize).cloned().unwrap_or_else(|| format!("backend#{id}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_pinned_to_zero() {
        assert_eq!(intern(DEFAULT_NAME), 0);
        assert_eq!(lookup(DEFAULT_NAME), Some(0));
        assert_eq!(resolve(0), DEFAULT_NAME);
    }

    #[test]
    fn interning_is_idempotent_and_stable() {
        let a = intern("names-test-cdw");
        let b = intern("names-test-lake");
        assert_ne!(a, b);
        assert_ne!(a, 0);
        assert_eq!(intern("names-test-cdw"), a, "same name must keep its id");
        assert_eq!(resolve(a), "names-test-cdw");
        assert_eq!(lookup("names-test-lake"), Some(b));
    }

    #[test]
    fn lookup_does_not_intern() {
        assert_eq!(lookup("names-test-never-interned"), None);
    }

    #[test]
    fn unknown_id_resolves_to_placeholder() {
        assert_eq!(resolve(u16::MAX), format!("backend#{}", u16::MAX));
    }
}
