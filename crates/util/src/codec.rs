//! Length-prefixed binary encoding.
//!
//! The workspace deliberately ships no serde *format* crate, so persisted
//! artifacts (LSH indexes, column wire frames in the simulated CDW protocol)
//! use this small hand-rolled codec: little-endian fixed-width integers,
//! IEEE-754 floats, and `u32`-length-prefixed byte strings. Every `put_*`
//! has a matching `get_*`; decoding is bounds-checked and never panics on
//! truncated or corrupt input.

use bytes::{Buf, BufMut};

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value could be read.
    UnexpectedEof,
    /// Structurally valid bytes with an invalid meaning (bad magic, bad
    /// enum tag, non-UTF-8 string, implausible length).
    Invalid(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::Invalid(msg) => write!(f, "invalid encoding: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Decoding result.
pub type CodecResult<T> = Result<T, CodecError>;

/// Maximum accepted length prefix (1 GiB): rejects absurd lengths from
/// corrupt input before any allocation is attempted.
const MAX_LEN: u32 = 1 << 30;

#[inline]
fn need(buf: &impl Buf, n: usize) -> CodecResult<()> {
    if buf.remaining() < n {
        Err(CodecError::UnexpectedEof)
    } else {
        Ok(())
    }
}

/// Write a `u8`.
#[inline]
pub fn put_u8(buf: &mut impl BufMut, v: u8) {
    buf.put_u8(v);
}

/// Read a `u8`.
#[inline]
pub fn get_u8(buf: &mut impl Buf) -> CodecResult<u8> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

/// Write a `u32` (little-endian).
#[inline]
pub fn put_u32(buf: &mut impl BufMut, v: u32) {
    buf.put_u32_le(v);
}

/// Read a `u32`.
#[inline]
pub fn get_u32(buf: &mut impl Buf) -> CodecResult<u32> {
    need(buf, 4)?;
    Ok(buf.get_u32_le())
}

/// Write a `u64` (little-endian).
#[inline]
pub fn put_u64(buf: &mut impl BufMut, v: u64) {
    buf.put_u64_le(v);
}

/// Read a `u64`.
#[inline]
pub fn get_u64(buf: &mut impl Buf) -> CodecResult<u64> {
    need(buf, 8)?;
    Ok(buf.get_u64_le())
}

/// Write an `i64` (little-endian, two's complement).
#[inline]
pub fn put_i64(buf: &mut impl BufMut, v: i64) {
    buf.put_i64_le(v);
}

/// Read an `i64`.
#[inline]
pub fn get_i64(buf: &mut impl Buf) -> CodecResult<i64> {
    need(buf, 8)?;
    Ok(buf.get_i64_le())
}

/// Write an `f32` (IEEE-754 bits, little-endian).
#[inline]
pub fn put_f32(buf: &mut impl BufMut, v: f32) {
    buf.put_f32_le(v);
}

/// Read an `f32`.
#[inline]
pub fn get_f32(buf: &mut impl Buf) -> CodecResult<f32> {
    need(buf, 4)?;
    Ok(buf.get_f32_le())
}

/// Write an `f64`.
#[inline]
pub fn put_f64(buf: &mut impl BufMut, v: f64) {
    buf.put_f64_le(v);
}

/// Read an `f64`.
#[inline]
pub fn get_f64(buf: &mut impl Buf) -> CodecResult<f64> {
    need(buf, 8)?;
    Ok(buf.get_f64_le())
}

/// Write a length prefix. Panics if `len` exceeds [`MAX_LEN`] — encoders
/// control their own lengths, so this indicates a bug, not bad input.
#[inline]
pub fn put_len(buf: &mut impl BufMut, len: usize) {
    assert!(len as u64 <= MAX_LEN as u64, "encoded length {len} exceeds limit");
    buf.put_u32_le(len as u32);
}

/// Read a length prefix, rejecting implausible values.
#[inline]
pub fn get_len(buf: &mut impl Buf) -> CodecResult<usize> {
    let len = get_u32(buf)?;
    if len > MAX_LEN {
        return Err(CodecError::Invalid(format!("length {len} exceeds limit")));
    }
    Ok(len as usize)
}

/// Write a byte string with a length prefix.
pub fn put_bytes(buf: &mut impl BufMut, bytes: &[u8]) {
    put_len(buf, bytes.len());
    buf.put_slice(bytes);
}

/// Read a length-prefixed byte string.
pub fn get_bytes(buf: &mut impl Buf) -> CodecResult<Vec<u8>> {
    let len = get_len(buf)?;
    need(buf, len)?;
    let mut out = vec![0u8; len];
    buf.copy_to_slice(&mut out);
    Ok(out)
}

/// Write a UTF-8 string with a length prefix.
pub fn put_str(buf: &mut impl BufMut, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// Read a length-prefixed UTF-8 string.
pub fn get_str(buf: &mut impl Buf) -> CodecResult<String> {
    let bytes = get_bytes(buf)?;
    String::from_utf8(bytes).map_err(|_| CodecError::Invalid("non-UTF-8 string".into()))
}

/// Write a `Vec<f32>` with a length prefix.
pub fn put_f32_slice(buf: &mut impl BufMut, xs: &[f32]) {
    put_len(buf, xs.len());
    for &x in xs {
        buf.put_f32_le(x);
    }
}

/// Read a length-prefixed `Vec<f32>`.
pub fn get_f32_vec(buf: &mut impl Buf) -> CodecResult<Vec<f32>> {
    let len = get_len(buf)?;
    need(buf, len.checked_mul(4).ok_or(CodecError::UnexpectedEof)?)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(buf.get_f32_le());
    }
    Ok(out)
}

/// Write a `&[u64]` with a length prefix.
pub fn put_u64_slice(buf: &mut impl BufMut, xs: &[u64]) {
    put_len(buf, xs.len());
    for &x in xs {
        buf.put_u64_le(x);
    }
}

/// Read a length-prefixed `Vec<u64>`.
pub fn get_u64_vec(buf: &mut impl Buf) -> CodecResult<Vec<u64>> {
    let len = get_len(buf)?;
    need(buf, len.checked_mul(8).ok_or(CodecError::UnexpectedEof)?)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(buf.get_u64_le());
    }
    Ok(out)
}

/// Write a `&[u32]` with a length prefix.
pub fn put_u32_slice(buf: &mut impl BufMut, xs: &[u32]) {
    put_len(buf, xs.len());
    for &x in xs {
        buf.put_u32_le(x);
    }
}

/// Read a length-prefixed `Vec<u32>`.
pub fn get_u32_vec(buf: &mut impl Buf) -> CodecResult<Vec<u32>> {
    let len = get_len(buf)?;
    need(buf, len.checked_mul(4).ok_or(CodecError::UnexpectedEof)?)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(buf.get_u32_le());
    }
    Ok(out)
}

/// Write a 4-byte magic plus a format version.
pub fn put_header(buf: &mut impl BufMut, magic: [u8; 4], version: u32) {
    buf.put_slice(&magic);
    buf.put_u32_le(version);
}

/// Read and validate a 4-byte magic plus version; returns the version.
pub fn get_header(buf: &mut impl Buf, magic: [u8; 4]) -> CodecResult<u32> {
    need(buf, 8)?;
    let mut got = [0u8; 4];
    buf.copy_to_slice(&mut got);
    if got != magic {
        return Err(CodecError::Invalid(format!("bad magic {:?}, expected {:?}", got, magic)));
    }
    Ok(buf.get_u32_le())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX);
        put_i64(&mut buf, -42);
        put_f32(&mut buf, 1.5);
        put_f64(&mut buf, -2.25);
        let mut r = &buf[..];
        assert_eq!(get_u8(&mut r).unwrap(), 7);
        assert_eq!(get_u32(&mut r).unwrap(), 0xdead_beef);
        assert_eq!(get_u64(&mut r).unwrap(), u64::MAX);
        assert_eq!(get_i64(&mut r).unwrap(), -42);
        assert_eq!(get_f32(&mut r).unwrap(), 1.5);
        assert_eq!(get_f64(&mut r).unwrap(), -2.25);
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn string_roundtrip() {
        let mut buf = Vec::new();
        put_str(&mut buf, "héllo, wörld");
        put_str(&mut buf, "");
        let mut r = &buf[..];
        assert_eq!(get_str(&mut r).unwrap(), "héllo, wörld");
        assert_eq!(get_str(&mut r).unwrap(), "");
    }

    #[test]
    fn slice_roundtrips() {
        let mut buf = Vec::new();
        put_f32_slice(&mut buf, &[1.0, -2.0, 3.5]);
        put_u64_slice(&mut buf, &[1, 2, 3]);
        put_u32_slice(&mut buf, &[9, 8]);
        let mut r = &buf[..];
        assert_eq!(get_f32_vec(&mut r).unwrap(), vec![1.0, -2.0, 3.5]);
        assert_eq!(get_u64_vec(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(get_u32_vec(&mut r).unwrap(), vec![9, 8]);
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        let mut r = &buf[..buf.len() - 1];
        assert_eq!(get_str(&mut r), Err(CodecError::UnexpectedEof));
        let mut empty: &[u8] = &[];
        assert_eq!(get_u64(&mut empty), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn implausible_length_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        let mut r = &buf[..];
        assert!(matches!(get_len(&mut r), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn header_roundtrip_and_mismatch() {
        let mut buf = Vec::new();
        put_header(&mut buf, *b"WGIX", 3);
        let mut r = &buf[..];
        assert_eq!(get_header(&mut r, *b"WGIX").unwrap(), 3);
        let mut r = &buf[..];
        assert!(matches!(get_header(&mut r, *b"NOPE"), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn non_utf8_string_rejected() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, &[0xff, 0xfe]);
        let mut r = &buf[..];
        assert!(matches!(get_str(&mut r), Err(CodecError::Invalid(_))));
    }
}
