//! Length-prefixed binary encoding.
//!
//! The workspace deliberately ships no serde *format* crate, so persisted
//! artifacts (LSH indexes, column wire frames in the simulated CDW protocol)
//! use this small hand-rolled codec: little-endian fixed-width integers,
//! IEEE-754 floats, and `u32`-length-prefixed byte strings. Every `put_*`
//! has a matching `get_*`; decoding is bounds-checked and never panics on
//! truncated or corrupt input.

pub use bytes::{Buf, BufMut};

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value could be read.
    UnexpectedEof,
    /// Structurally valid bytes with an invalid meaning (bad magic, bad
    /// enum tag, non-UTF-8 string, implausible length).
    Invalid(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::Invalid(msg) => write!(f, "invalid encoding: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Decoding result.
pub type CodecResult<T> = Result<T, CodecError>;

/// Maximum accepted length prefix (1 GiB): rejects absurd lengths from
/// corrupt input before any allocation is attempted.
const MAX_LEN: u32 = 1 << 30;

#[inline]
fn need(buf: &impl Buf, n: usize) -> CodecResult<()> {
    if buf.remaining() < n {
        Err(CodecError::UnexpectedEof)
    } else {
        Ok(())
    }
}

/// Write a `u8`.
#[inline]
pub fn put_u8(buf: &mut impl BufMut, v: u8) {
    buf.put_u8(v);
}

/// Read a `u8`.
#[inline]
pub fn get_u8(buf: &mut impl Buf) -> CodecResult<u8> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

/// Write a `u32` (little-endian).
#[inline]
pub fn put_u32(buf: &mut impl BufMut, v: u32) {
    buf.put_u32_le(v);
}

/// Read a `u32`.
#[inline]
pub fn get_u32(buf: &mut impl Buf) -> CodecResult<u32> {
    need(buf, 4)?;
    Ok(buf.get_u32_le())
}

/// Write a `u64` (little-endian).
#[inline]
pub fn put_u64(buf: &mut impl BufMut, v: u64) {
    buf.put_u64_le(v);
}

/// Read a `u64`.
#[inline]
pub fn get_u64(buf: &mut impl Buf) -> CodecResult<u64> {
    need(buf, 8)?;
    Ok(buf.get_u64_le())
}

/// Write an `i64` (little-endian, two's complement).
#[inline]
pub fn put_i64(buf: &mut impl BufMut, v: i64) {
    buf.put_i64_le(v);
}

/// Read an `i64`.
#[inline]
pub fn get_i64(buf: &mut impl Buf) -> CodecResult<i64> {
    need(buf, 8)?;
    Ok(buf.get_i64_le())
}

/// Write an `f32` (IEEE-754 bits, little-endian).
#[inline]
pub fn put_f32(buf: &mut impl BufMut, v: f32) {
    buf.put_f32_le(v);
}

/// Read an `f32`.
#[inline]
pub fn get_f32(buf: &mut impl Buf) -> CodecResult<f32> {
    need(buf, 4)?;
    Ok(buf.get_f32_le())
}

/// Write an `f64`.
#[inline]
pub fn put_f64(buf: &mut impl BufMut, v: f64) {
    buf.put_f64_le(v);
}

/// Read an `f64`.
#[inline]
pub fn get_f64(buf: &mut impl Buf) -> CodecResult<f64> {
    need(buf, 8)?;
    Ok(buf.get_f64_le())
}

/// Write a length prefix. Panics if `len` exceeds [`MAX_LEN`] — encoders
/// control their own lengths, so this indicates a bug, not bad input.
#[inline]
pub fn put_len(buf: &mut impl BufMut, len: usize) {
    assert!(len as u64 <= MAX_LEN as u64, "encoded length {len} exceeds limit");
    buf.put_u32_le(len as u32);
}

/// Read a length prefix, rejecting implausible values.
#[inline]
pub fn get_len(buf: &mut impl Buf) -> CodecResult<usize> {
    let len = get_u32(buf)?;
    if len > MAX_LEN {
        return Err(CodecError::Invalid(format!("length {len} exceeds limit")));
    }
    Ok(len as usize)
}

/// Write a byte string with a length prefix.
pub fn put_bytes(buf: &mut impl BufMut, bytes: &[u8]) {
    put_len(buf, bytes.len());
    buf.put_slice(bytes);
}

/// Read a length-prefixed byte string.
pub fn get_bytes(buf: &mut impl Buf) -> CodecResult<Vec<u8>> {
    let len = get_len(buf)?;
    need(buf, len)?;
    let mut out = vec![0u8; len];
    buf.copy_to_slice(&mut out);
    Ok(out)
}

/// Write a UTF-8 string with a length prefix.
pub fn put_str(buf: &mut impl BufMut, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// Read a length-prefixed UTF-8 string.
pub fn get_str(buf: &mut impl Buf) -> CodecResult<String> {
    let bytes = get_bytes(buf)?;
    String::from_utf8(bytes).map_err(|_| CodecError::Invalid("non-UTF-8 string".into()))
}

/// Write a `Vec<f32>` with a length prefix.
pub fn put_f32_slice(buf: &mut impl BufMut, xs: &[f32]) {
    put_len(buf, xs.len());
    for &x in xs {
        buf.put_f32_le(x);
    }
}

/// Read a length-prefixed `Vec<f32>`.
pub fn get_f32_vec(buf: &mut impl Buf) -> CodecResult<Vec<f32>> {
    let len = get_len(buf)?;
    need(buf, len.checked_mul(4).ok_or(CodecError::UnexpectedEof)?)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(buf.get_f32_le());
    }
    Ok(out)
}

/// Write a `&[u64]` with a length prefix.
pub fn put_u64_slice(buf: &mut impl BufMut, xs: &[u64]) {
    put_len(buf, xs.len());
    for &x in xs {
        buf.put_u64_le(x);
    }
}

/// Read a length-prefixed `Vec<u64>`.
pub fn get_u64_vec(buf: &mut impl Buf) -> CodecResult<Vec<u64>> {
    let len = get_len(buf)?;
    need(buf, len.checked_mul(8).ok_or(CodecError::UnexpectedEof)?)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(buf.get_u64_le());
    }
    Ok(out)
}

/// Write a `&[u32]` with a length prefix.
pub fn put_u32_slice(buf: &mut impl BufMut, xs: &[u32]) {
    put_len(buf, xs.len());
    for &x in xs {
        buf.put_u32_le(x);
    }
}

/// Read a length-prefixed `Vec<u32>`.
pub fn get_u32_vec(buf: &mut impl Buf) -> CodecResult<Vec<u32>> {
    let len = get_len(buf)?;
    need(buf, len.checked_mul(4).ok_or(CodecError::UnexpectedEof)?)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(buf.get_u32_le());
    }
    Ok(out)
}

/// Write a 4-byte magic plus a format version.
pub fn put_header(buf: &mut impl BufMut, magic: [u8; 4], version: u32) {
    buf.put_slice(&magic);
    buf.put_u32_le(version);
}

/// Read and validate a 4-byte magic plus version; returns the version.
pub fn get_header(buf: &mut impl Buf, magic: [u8; 4]) -> CodecResult<u32> {
    need(buf, 8)?;
    let mut got = [0u8; 4];
    buf.copy_to_slice(&mut got);
    if got != magic {
        return Err(CodecError::Invalid(format!("bad magic {:?}, expected {:?}", got, magic)));
    }
    Ok(buf.get_u32_le())
}

/// A bounded, streaming [`Buf`] over any [`std::io::Read`].
///
/// Lets the snapshot loaders run the exact same frame-parsing code over a
/// file handle that they run over an in-memory slice, without ever holding
/// the whole body resident: bytes are pulled through a fixed 64 KiB window
/// as the parser consumes them.
///
/// [`Buf`] methods cannot return errors, so a mid-parse I/O failure is
/// handled by zero-filling the remaining bytes and latching a flag; the
/// zeros make the structured parse fail fast, and the caller checks
/// [`ReaderBuf::io_error`] afterwards to report the real cause instead of
/// a misleading decode error.
pub struct ReaderBuf<R: std::io::Read> {
    reader: R,
    /// Unconsumed bytes: window remainder plus unread reader bytes.
    remaining: usize,
    window: Vec<u8>,
    pos: usize,
    io_error: Option<std::io::Error>,
}

/// Window size for [`ReaderBuf`] refills.
const READER_WINDOW: usize = 64 * 1024;

impl<R: std::io::Read> ReaderBuf<R> {
    /// Wrap `reader`, exposing exactly `len` bytes through the [`Buf`]
    /// interface.
    pub fn new(reader: R, len: usize) -> Self {
        ReaderBuf { reader, remaining: len, window: Vec::new(), pos: 0, io_error: None }
    }

    /// The first I/O error hit while refilling, if any. A successful-looking
    /// parse is only trustworthy when this is `None`.
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.io_error.as_ref()
    }

    fn refill(&mut self) {
        debug_assert_eq!(self.pos, self.window.len());
        let want = READER_WINDOW.min(self.remaining);
        self.window.resize(want, 0);
        self.pos = 0;
        if let Err(e) = self.reader.read_exact(&mut self.window) {
            if self.io_error.is_none() {
                self.io_error = Some(e);
            }
            self.window.clear();
        }
    }
}

impl<R: std::io::Read> Buf for ReaderBuf<R> {
    fn remaining(&self) -> usize {
        self.remaining
    }

    fn chunk(&self) -> &[u8] {
        &self.window[self.pos..]
    }

    fn advance(&mut self, mut cnt: usize) {
        assert!(cnt <= self.remaining, "advance past end of ReaderBuf");
        while cnt > 0 {
            if self.pos == self.window.len() {
                self.refill();
                if self.io_error.is_some() {
                    self.remaining -= cnt;
                    return;
                }
            }
            let take = cnt.min(self.window.len() - self.pos);
            self.pos += take;
            self.remaining -= take;
            cnt -= take;
        }
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining, "read past end of ReaderBuf");
        let mut filled = 0;
        while filled < dst.len() {
            if self.pos == self.window.len() {
                self.refill();
                if self.io_error.is_some() {
                    dst[filled..].fill(0);
                    self.remaining -= dst.len() - filled;
                    return;
                }
            }
            let take = (dst.len() - filled).min(self.window.len() - self.pos);
            dst[filled..filled + take].copy_from_slice(&self.window[self.pos..self.pos + take]);
            self.pos += take;
            self.remaining -= take;
            filled += take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX);
        put_i64(&mut buf, -42);
        put_f32(&mut buf, 1.5);
        put_f64(&mut buf, -2.25);
        let mut r = &buf[..];
        assert_eq!(get_u8(&mut r).unwrap(), 7);
        assert_eq!(get_u32(&mut r).unwrap(), 0xdead_beef);
        assert_eq!(get_u64(&mut r).unwrap(), u64::MAX);
        assert_eq!(get_i64(&mut r).unwrap(), -42);
        assert_eq!(get_f32(&mut r).unwrap(), 1.5);
        assert_eq!(get_f64(&mut r).unwrap(), -2.25);
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn string_roundtrip() {
        let mut buf = Vec::new();
        put_str(&mut buf, "héllo, wörld");
        put_str(&mut buf, "");
        let mut r = &buf[..];
        assert_eq!(get_str(&mut r).unwrap(), "héllo, wörld");
        assert_eq!(get_str(&mut r).unwrap(), "");
    }

    #[test]
    fn slice_roundtrips() {
        let mut buf = Vec::new();
        put_f32_slice(&mut buf, &[1.0, -2.0, 3.5]);
        put_u64_slice(&mut buf, &[1, 2, 3]);
        put_u32_slice(&mut buf, &[9, 8]);
        let mut r = &buf[..];
        assert_eq!(get_f32_vec(&mut r).unwrap(), vec![1.0, -2.0, 3.5]);
        assert_eq!(get_u64_vec(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(get_u32_vec(&mut r).unwrap(), vec![9, 8]);
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        let mut r = &buf[..buf.len() - 1];
        assert_eq!(get_str(&mut r), Err(CodecError::UnexpectedEof));
        let mut empty: &[u8] = &[];
        assert_eq!(get_u64(&mut empty), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn implausible_length_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        let mut r = &buf[..];
        assert!(matches!(get_len(&mut r), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn header_roundtrip_and_mismatch() {
        let mut buf = Vec::new();
        put_header(&mut buf, *b"WGIX", 3);
        let mut r = &buf[..];
        assert_eq!(get_header(&mut r, *b"WGIX").unwrap(), 3);
        let mut r = &buf[..];
        assert!(matches!(get_header(&mut r, *b"NOPE"), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn non_utf8_string_rejected() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, &[0xff, 0xfe]);
        let mut r = &buf[..];
        assert!(matches!(get_str(&mut r), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn reader_buf_parses_identically_to_slice() {
        let mut buf = Vec::new();
        put_header(&mut buf, *b"WGIX", 2);
        put_str(&mut buf, "streaming");
        put_u64(&mut buf, 0xfeed_face_cafe_f00d);
        put_f32_slice(&mut buf, &[1.0, -2.5, 3.25]);
        // A payload long enough to straddle refills when the window is
        // artificially small is covered by the chunked-reader test below;
        // here the window (64 KiB) swallows everything in one refill.
        let mut r = ReaderBuf::new(std::io::Cursor::new(buf.clone()), buf.len());
        assert_eq!(get_header(&mut r, *b"WGIX").unwrap(), 2);
        assert_eq!(get_str(&mut r).unwrap(), "streaming");
        assert_eq!(get_u64(&mut r).unwrap(), 0xfeed_face_cafe_f00d);
        assert_eq!(get_f32_vec(&mut r).unwrap(), vec![1.0, -2.5, 3.25]);
        assert_eq!(r.remaining(), 0);
        assert!(r.io_error().is_none());
    }

    #[test]
    fn reader_buf_survives_window_straddling_reads() {
        // A byte string bigger than one refill window forces copy_to_slice
        // to loop across refills.
        let big = vec![0x5Au8; READER_WINDOW * 2 + 17];
        let mut buf = Vec::new();
        put_bytes(&mut buf, &big);
        put_u32(&mut buf, 7);
        let mut r = ReaderBuf::new(std::io::Cursor::new(buf.clone()), buf.len());
        assert_eq!(get_bytes(&mut r).unwrap(), big);
        assert_eq!(get_u32(&mut r).unwrap(), 7);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reader_buf_truncated_source_latches_io_error() {
        let mut buf = Vec::new();
        put_str(&mut buf, "short body");
        // Claim more bytes than the reader holds: the refill hits EOF,
        // the error latches, and remaining still drains to zero.
        let claimed = buf.len() + 100;
        let mut r = ReaderBuf::new(std::io::Cursor::new(buf), claimed);
        let _ = get_str(&mut r);
        let mut sink = vec![0u8; r.remaining()];
        r.copy_to_slice(&mut sink);
        assert_eq!(r.remaining(), 0);
        assert!(r.io_error().is_some());
    }
}
