//! Deterministic pseudo-random number generation.
//!
//! The embedding models derive token vectors by seeding a generator with the
//! token's stable hash; the corpus generators derive whole warehouses from a
//! single seed. Both require generators whose output is fixed forever, which
//! rules out `rand`'s `StdRng` (explicitly documented as unstable across
//! versions). We implement two tiny, well-known generators:
//!
//! * [`SplitMix64`] — one multiplication + shifts per value; perfect for
//!   "stream a few hundred values from this hash" (token vectors, LSH
//!   hyperplanes).
//! * [`Xoshiro256pp`] — a higher-quality generator for the corpus machinery,
//!   seeded via SplitMix64 as its authors recommend.

/// SplitMix64: minimal, fast, full-period 2^64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Every distinct seed yields an
    /// independent-looking stream.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Xoshiro256++: the general-purpose generator used for corpus synthesis.
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed via SplitMix64 (the initialization recommended by the xoshiro
    /// authors; avoids the all-zero state).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derive an independent child generator; used to give each table /
    /// column its own stream so that adding a column never perturbs the data
    /// generated for its neighbours.
    pub fn fork(&mut self, tag: u64) -> Self {
        let mixed = crate::hash::combine64(self.next_u64(), tag);
        Self::new(mixed)
    }
}

/// Common sampling operations shared by both generators.
pub trait Rng64 {
    /// Next raw 64-bit value.
    fn gen_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    fn gen_f64(&mut self) -> f64 {
        (self.gen_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    fn gen_f32(&mut self) -> f32 {
        (self.gen_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method: unbiased and only one
    /// multiplication in the common case.
    #[inline]
    fn gen_range(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "gen_range bound must be non-zero");
        let mut x = self.gen_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.gen_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` index in `[0, len)`.
    #[inline]
    fn gen_index(&mut self, len: usize) -> usize {
        self.gen_range(len as u64) as usize
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Standard normal deviate via the Box–Muller transform (the sine branch
    /// is discarded — simplicity over throughput; this is not on the query
    /// hot path).
    #[inline]
    fn gen_gaussian(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.gen_f64().max(f64::MIN_POSITIVE);
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal deviate with the given parameters of the underlying normal.
    #[inline]
    fn gen_log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.gen_gaussian()).exp()
    }

    /// Zipf-like rank sampler over `[0, n)` with exponent `s` (rejection-free
    /// approximation via inverse CDF of the continuous analogue). Used to
    /// give generated categorical columns realistic skew.
    fn gen_zipf(&mut self, n: usize, s: f64) -> usize {
        debug_assert!(n > 0);
        if s <= 0.0 {
            return self.gen_index(n);
        }
        let u = self.gen_f64();
        if (s - 1.0).abs() < 1e-9 {
            // H(x) = ln(x+1); inverse: exp(u * ln(n+1)) - 1
            let x = ((n as f64 + 1.0).ln() * u).exp() - 1.0;
            (x as usize).min(n - 1)
        } else {
            // H(x) = ((x+1)^(1-s) - 1) / (1-s)
            let one_minus = 1.0 - s;
            let hmax = ((n as f64 + 1.0).powf(one_minus) - 1.0) / one_minus;
            let x = (one_minus * u * hmax + 1.0).powf(1.0 / one_minus) - 1.0;
            (x as usize).min(n - 1)
        }
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Choose one element of a non-empty slice.
    fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.gen_index(xs.len())]
    }

    /// Sample `k` distinct indices from `[0, n)` (k <= n), in random order.
    fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        debug_assert!(k <= n);
        // Partial Fisher–Yates over an index vector; O(n) setup is fine for
        // corpus-generation use.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.gen_index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }
}

impl Rng64 for Xoshiro256pp {
    #[inline]
    fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_golden_values() {
        // Reference values from the public SplitMix64 implementation with
        // seed 1234567.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn deterministic_streams() {
        let mut a = Xoshiro256pp::new(42);
        let mut b = Xoshiro256pp::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = Xoshiro256pp::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(r.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gaussian_moments_roughly_standard() {
        let mut r = Xoshiro256pp::new(11);
        let n = 50_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let g = r.gen_gaussian();
            sum += g;
            sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut r = Xoshiro256pp::new(5);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.gen_zipf(10, 1.2)] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "head {} tail {}", counts[0], counts[9]);
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256pp::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Xoshiro256pp::new(3);
        let s = r.sample_indices(50, 20);
        assert_eq!(s.len(), 20);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 20);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    fn fork_streams_differ() {
        let mut root = Xoshiro256pp::new(1);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
