//! Bounded top-k selection.
//!
//! The search pipelines (WarpGate's LSH re-rank, D3L's ensemble merge) all
//! end with "keep the k best-scoring candidates". [`TopK`] is a fixed-size
//! min-heap on score: pushing is `O(log k)` and candidates worse than the
//! current k-th best are rejected with a single comparison.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scored entry. Ordered by score ascending (so the heap root is the
/// *worst* retained entry); ties broken by `item` ordering for determinism.
#[derive(Debug, Clone, PartialEq)]
struct Entry<T> {
    score: f64,
    item: T,
}

impl<T: Eq> Eq for Entry<T> {}

impl<T: Ord> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Ord> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on score: BinaryHeap is a max-heap, we want the minimum
        // score at the root so it can be evicted first.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            // Among equal scores the *largest* item must sit at the heap
            // root so it is evicted first: smaller items win ties and
            // results are deterministic.
            .then_with(|| self.item.cmp(&other.item))
    }
}

/// A bounded collector of the `k` highest-scoring items.
#[derive(Debug, Clone)]
pub struct TopK<T> {
    k: usize,
    heap: BinaryHeap<Entry<T>>,
}

impl<T: Ord> TopK<T> {
    /// Create a collector retaining at most `k` items. `k == 0` is allowed
    /// and collects nothing.
    pub fn new(k: usize) -> Self {
        Self { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// Offer an item; keeps it only if it ranks among the best `k` so far.
    /// NaN scores are rejected outright.
    pub fn push(&mut self, score: f64, item: T) {
        if self.k == 0 || score.is_nan() {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(Entry { score, item });
            return;
        }
        // Worst retained score sits at the root.
        let worst = self.heap.peek().expect("non-empty at capacity");
        if score > worst.score || (score == worst.score && item < worst.item) {
            self.heap.pop();
            self.heap.push(Entry { score, item });
        }
    }

    /// Lowest score currently retained, if at capacity — candidates below
    /// this bound cannot enter and callers may skip scoring them exactly.
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|e| e.score)
        } else {
            None
        }
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consume the collector, returning `(score, item)` pairs sorted by
    /// descending score (ties: ascending item).
    pub fn into_sorted(self) -> Vec<(f64, T)> {
        let mut v: Vec<(f64, T)> = self.heap.into_iter().map(|e| (e.score, e.item)).collect();
        v.sort_by(|a, b| {
            b.0.partial_cmp(&a.0).unwrap_or(Ordering::Equal).then_with(|| a.1.cmp(&b.1))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let mut tk = TopK::new(3);
        for (s, i) in [(0.1, 1u32), (0.9, 2), (0.5, 3), (0.7, 4), (0.2, 5)] {
            tk.push(s, i);
        }
        let got = tk.into_sorted();
        assert_eq!(got, vec![(0.9, 2), (0.7, 4), (0.5, 3)]);
    }

    #[test]
    fn zero_k_collects_nothing() {
        let mut tk = TopK::new(0);
        tk.push(1.0, 1u32);
        assert!(tk.is_empty());
        assert!(tk.into_sorted().is_empty());
    }

    #[test]
    fn fewer_items_than_k() {
        let mut tk = TopK::new(10);
        tk.push(0.3, 7u32);
        tk.push(0.6, 8);
        assert_eq!(tk.threshold(), None);
        assert_eq!(tk.into_sorted(), vec![(0.6, 8), (0.3, 7)]);
    }

    #[test]
    fn rejects_nan() {
        let mut tk = TopK::new(2);
        tk.push(f64::NAN, 1u32);
        tk.push(0.5, 2);
        assert_eq!(tk.into_sorted(), vec![(0.5, 2)]);
    }

    #[test]
    fn ties_break_deterministically_by_item() {
        let mut tk = TopK::new(2);
        tk.push(0.5, 30u32);
        tk.push(0.5, 10);
        tk.push(0.5, 20);
        // Smallest items win ties.
        assert_eq!(tk.into_sorted(), vec![(0.5, 10), (0.5, 20)]);
    }

    #[test]
    fn threshold_tracks_worst_retained() {
        let mut tk = TopK::new(2);
        assert_eq!(tk.threshold(), None);
        tk.push(0.4, 1u32);
        tk.push(0.8, 2);
        assert_eq!(tk.threshold(), Some(0.4));
        tk.push(0.6, 3);
        assert_eq!(tk.threshold(), Some(0.6));
    }

    #[test]
    fn matches_exact_sort_on_random_input() {
        use crate::rng::{Rng64, Xoshiro256pp};
        let mut r = Xoshiro256pp::new(99);
        for _ in 0..50 {
            let n = 1 + r.gen_index(200);
            let k = 1 + r.gen_index(20);
            let scores: Vec<f64> = (0..n).map(|_| (r.gen_index(50) as f64) / 10.0).collect();
            let mut tk = TopK::new(k);
            for (i, &s) in scores.iter().enumerate() {
                tk.push(s, i);
            }
            let got = tk.into_sorted();
            let mut want: Vec<(f64, usize)> =
                scores.iter().copied().enumerate().map(|(i, s)| (s, i)).collect();
            want.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then_with(|| a.1.cmp(&b.1)));
            want.truncate(k);
            assert_eq!(got, want);
        }
    }
}
