//! Wall-clock timing helpers for the evaluation harness.
//!
//! The paper reports *seconds per query averaged over all queries* and
//! decomposes end-to-end response time into loading, embedding-inference and
//! index-lookup components. [`Stopwatch`] measures one span; [`DurationStats`]
//! accumulates per-query samples and reports mean / min / max / percentiles.

use std::time::{Duration, Instant};

/// A started wall-clock timer.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Self { start: Instant::now() }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as `f64`.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Time a closure, returning its result and the elapsed duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let sw = Stopwatch::start();
    let out = f();
    (out, sw.elapsed())
}

/// Accumulator of duration samples (one per query, typically).
#[derive(Debug, Clone, Default)]
pub struct DurationStats {
    samples: Vec<f64>, // seconds
}

impl DurationStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, d: Duration) {
        self.samples.push(d.as_secs_f64());
    }

    /// Record a sample expressed in seconds (used for *virtual* durations
    /// produced by the simulated CDW latency model).
    pub fn record_secs(&mut self, secs: f64) {
        self.samples.push(secs);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean seconds (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Total seconds across samples.
    pub fn total(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Minimum sample (0.0 when empty).
    pub fn min(&self) -> f64 {
        let m = self.samples.iter().copied().fold(f64::INFINITY, f64::min);
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    /// Maximum sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Percentile in `[0, 100]` via nearest-rank on a sorted copy.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

/// Render seconds with adaptive units for reports (e.g. `35 ms`, `3.12 s`).
pub fn fmt_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.2} s")
    } else if secs >= 1e-3 {
        format!("{:.2} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.2} µs", secs * 1e6)
    } else {
        format!("{:.0} ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_mean_min_max() {
        let mut s = DurationStats::new();
        for secs in [1.0, 2.0, 3.0] {
            s.record_secs(secs);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert!((s.total() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = DurationStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut s = DurationStats::new();
        for i in 1..=100 {
            s.record_secs(i as f64);
        }
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        let p50 = s.percentile(50.0);
        assert!((49.0..=51.0).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn timed_measures_something() {
        let (v, d) = timed(|| {
            let mut x = 0u64;
            for i in 0..10_000 {
                x = x.wrapping_add(i);
            }
            x
        });
        assert_eq!(v, 49995000);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn fmt_units() {
        assert_eq!(fmt_secs(3.123), "3.12 s");
        assert_eq!(fmt_secs(0.0351), "35.10 ms");
        assert_eq!(fmt_secs(12e-6), "12.00 µs");
        assert_eq!(fmt_secs(5e-8), "50 ns");
    }
}
