//! Cooperative request deadlines.
//!
//! A [`Deadline`] is a wall-clock budget a request carries through the
//! pipeline. It is *cooperative*: nothing preempts a running phase, but
//! every phase boundary (validate → scan → embed → candidate-gen →
//! re-rank → paged block read) checks the budget before starting the
//! next unit of billable or expensive work. That gives the two
//! properties overload control needs:
//!
//! * an expired request stops **before** its next billed warehouse scan
//!   or cold block read, so a deadline bounds spend, not just latency;
//! * the phase that hit the wall is reported (see [`Phase`]), so callers
//!   can tell "never even validated" from "died re-ranking".
//!
//! `Deadline` is a `Copy` wrapper over `Option<Instant>`; the
//! [`Deadline::none`] value never expires and costs one branch to
//! check, so unbudgeted callers pay effectively nothing.

use std::time::{Duration, Instant};

/// Pipeline phase at which a deadline check runs. Carried inside
/// `StoreError::DeadlineExceeded` and query timings so an expired
/// request reports *where* its budget ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Resolving and validating the query column / backend.
    Validate,
    /// A billed warehouse scan (`scan_column` / `scan_table`).
    Scan,
    /// Embedding scanned values into the vector space.
    Embed,
    /// LSH bucket probing / candidate generation.
    CandidateGen,
    /// Exact re-ranking of in-memory (hot) candidates.
    Rerank,
    /// Reading a cold block from the paged storage tier.
    BlockRead,
}

impl Phase {
    /// Stable wire tag (see the WGRP error codec in `wg_store::remote`).
    pub fn to_wire(self) -> u8 {
        match self {
            Phase::Validate => 0,
            Phase::Scan => 1,
            Phase::Embed => 2,
            Phase::CandidateGen => 3,
            Phase::Rerank => 4,
            Phase::BlockRead => 5,
        }
    }

    /// Inverse of [`Phase::to_wire`]; `None` for an unknown tag.
    pub fn from_wire(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => Phase::Validate,
            1 => Phase::Scan,
            2 => Phase::Embed,
            3 => Phase::CandidateGen,
            4 => Phase::Rerank,
            5 => Phase::BlockRead,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Phase::Validate => "validate",
            Phase::Scan => "scan",
            Phase::Embed => "embed",
            Phase::CandidateGen => "candidate-gen",
            Phase::Rerank => "re-rank",
            Phase::BlockRead => "block-read",
        };
        f.write_str(s)
    }
}

/// A cooperative wall-clock budget. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// The unlimited budget: never expires. This is the `Default`.
    pub fn none() -> Self {
        Self { at: None }
    }

    /// A budget expiring `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Self { at: Some(Instant::now() + budget) }
    }

    /// A budget expiring `ms` milliseconds from now.
    pub fn within_ms(ms: u64) -> Self {
        Self::within(Duration::from_millis(ms))
    }

    /// A budget expiring at an explicit instant.
    pub fn at(instant: Instant) -> Self {
        Self { at: Some(instant) }
    }

    /// True when this deadline carries a finite budget.
    pub fn is_some(&self) -> bool {
        self.at.is_some()
    }

    /// True when the budget has run out. [`Deadline::none`] never expires.
    pub fn expired(&self) -> bool {
        match self.at {
            None => false,
            Some(at) => Instant::now() >= at,
        }
    }

    /// Time left in the budget; `None` for an unlimited deadline, zero
    /// when already expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.at.map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Phase-boundary check: `Err(phase)` when the budget ran out, to be
    /// mapped into `StoreError::DeadlineExceeded { phase }` by the
    /// caller (this crate sits below the error taxonomy).
    pub fn check(&self, phase: Phase) -> Result<(), Phase> {
        if self.expired() {
            Err(phase)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        assert!(!d.is_some());
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
        assert_eq!(d.check(Phase::Scan), Ok(()));
        assert_eq!(Deadline::default(), Deadline::none());
    }

    #[test]
    fn generous_budget_not_expired() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(d.is_some());
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3500));
        assert_eq!(d.check(Phase::Embed), Ok(()));
    }

    #[test]
    fn elapsed_budget_expires_with_phase() {
        let d = Deadline::within(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        assert_eq!(d.check(Phase::BlockRead), Err(Phase::BlockRead));
    }

    #[test]
    fn explicit_instant_in_past_expires() {
        let d = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(d.expired());
    }

    #[test]
    fn phase_wire_tags_round_trip() {
        let all = [
            Phase::Validate,
            Phase::Scan,
            Phase::Embed,
            Phase::CandidateGen,
            Phase::Rerank,
            Phase::BlockRead,
        ];
        for p in all {
            assert_eq!(Phase::from_wire(p.to_wire()), Some(p));
        }
        assert_eq!(Phase::from_wire(6), None);
        assert_eq!(Phase::from_wire(255), None);
    }

    #[test]
    fn phase_display_names() {
        assert_eq!(Phase::Validate.to_string(), "validate");
        assert_eq!(Phase::BlockRead.to_string(), "block-read");
        assert_eq!(Phase::CandidateGen.to_string(), "candidate-gen");
    }
}
