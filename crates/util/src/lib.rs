//! Shared low-level utilities for the WarpGate workspace.
//!
//! Everything in this crate is deterministic and dependency-free so that the
//! embedding models, corpus generators and LSH indexes built on top of it are
//! bit-reproducible across runs and platforms:
//!
//! * [`hash`] — stable 64-bit hashing (FNV-1a plus a SplitMix64 finalizer)
//!   and a fast `FxHash`-style hasher for in-memory maps.
//! * [`rng`] — seedable [`SplitMix64`](rng::SplitMix64) and
//!   [`Xoshiro256pp`](rng::Xoshiro256pp) generators with uniform, range and
//!   Gaussian sampling.
//! * [`topk`] — a bounded max-result heap for top-k selection.
//! * [`timing`] — tiny wall-clock timers and summary statistics used by the
//!   evaluation harness.

pub mod codec;
pub mod hash;
pub mod rng;
pub mod timing;
pub mod topk;

pub use hash::{fx_hash_map, fx_hash_set, stable_hash64, stable_hash_str, FxHashMap, FxHashSet};
pub use rng::{SplitMix64, Xoshiro256pp};
pub use topk::TopK;
