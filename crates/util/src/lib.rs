//! Shared low-level utilities for the WarpGate workspace.
//!
//! Everything in this crate is deterministic and dependency-free so that the
//! embedding models, corpus generators and LSH indexes built on top of it are
//! bit-reproducible across runs and platforms:
//!
//! * [`hash`] — stable 64-bit hashing (FNV-1a plus a SplitMix64 finalizer)
//!   and a fast `FxHash`-style hasher for in-memory maps.
//! * [`rng`] — seedable [`SplitMix64`](rng::SplitMix64) and
//!   [`Xoshiro256pp`](rng::Xoshiro256pp) generators with uniform, range and
//!   Gaussian sampling.
//! * [`topk`] — a bounded max-result heap for top-k selection.
//! * [`timing`] — tiny wall-clock timers and summary statistics used by the
//!   evaluation harness.
//! * [`kernel`] — vectorization-friendly `dot`/`axpy`/`gemv` kernels over
//!   contiguous buffers, scalar reference implementations, and
//!   thread-local scratch pools (the embed → sign → re-rank hot path).
//! * [`names`] — the process-wide backend-name interner behind federated
//!   namespaces (`"default"` pinned to id 0, 256-name cap matching the
//!   LSH item-id bit budget).
//! * [`checksum`] — table-driven CRC-32 and the fixed-size snapshot
//!   integrity footer (magic + body length + checksum) that lets loaders
//!   reject torn or bit-rotted files before interpreting a single body
//!   byte.
//! * [`deadline`] — cooperative request deadlines ([`Deadline`]) and the
//!   pipeline [`Phase`] vocabulary that overload control reports expiry
//!   against.
//! * [`segment`] — checksummed block-addressed segment files: the on-disk
//!   container behind the paged storage tier, read with positioned I/O so
//!   cold blocks never need to be resident.

pub mod checksum;
pub mod codec;
pub mod deadline;
pub mod hash;
pub mod kernel;
pub mod names;
pub mod rng;
pub mod segment;
pub mod timing;
pub mod topk;

pub use deadline::{Deadline, Phase};
pub use hash::{fx_hash_map, fx_hash_set, stable_hash64, stable_hash_str, FxHashMap, FxHashSet};
pub use rng::{SplitMix64, Xoshiro256pp};
pub use topk::TopK;

/// The machine's hardware thread count, resolved once and cached.
///
/// `std::thread::available_parallelism()` is not free — on Linux it
/// re-reads the cgroup CPU quota files on every call (≈ 10 µs in a
/// container), which is real money on a per-query path. The value cannot
/// change meaningfully for our purposes (thread-pool and shard sizing),
/// so hot paths should use this cached resolution.
pub fn hardware_threads() -> usize {
    use std::sync::OnceLock;
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}
