//! Stable and fast hashing.
//!
//! Two distinct needs are served here:
//!
//! * **Stability** — embedding vectors, LSH hyperplanes and synthetic corpora
//!   are all derived from hashes of strings. Those hashes must never change
//!   across Rust versions or platforms, so we implement FNV-1a with a
//!   SplitMix64 finalizer ourselves instead of relying on
//!   [`std::hash::DefaultHasher`] (whose algorithm is unspecified).
//! * **Speed** — hot in-memory maps (token caches, LSH buckets) do not need
//!   HashDoS resistance; [`FxHasher`] is a port of the `rustc-hash`
//!   multiply-xor hasher which is much faster than SipHash for short keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Stable FNV-1a hash of a byte slice, passed through a SplitMix64 finalizer
/// so that the high bits are as well-mixed as the low bits (plain FNV has
/// weak avalanche behaviour in the upper bits, which matters because the LSH
/// banding code slices hashes into bit groups).
#[inline]
pub fn stable_hash64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    mix64(h)
}

/// Stable hash of a string slice. Convenience wrapper over [`stable_hash64`].
#[inline]
pub fn stable_hash_str(s: &str) -> u64 {
    stable_hash64(s.as_bytes())
}

/// Combine two 64-bit hashes into one, order-sensitively.
#[inline]
pub fn combine64(a: u64, b: u64) -> u64 {
    // Boost-style combiner adapted to 64 bits, then finalized.
    mix64(a ^ b.wrapping_add(0x9e37_79b9_7f4a_7c15).wrapping_add(a << 6).wrapping_add(a >> 2))
}

/// SplitMix64 finalizer: a cheap bijective mixer with good avalanche.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `rustc-hash`-style multiply-xor hasher. Not HashDoS resistant; use only
/// for in-process maps whose keys are not attacker controlled.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Finalize so that the low bits (used by HashMap bucketing) depend on
        // every input bit.
        mix64(self.hash)
    }
}

/// `HashMap` keyed with the fast [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with the fast [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Create an empty [`FxHashMap`].
#[inline]
pub fn fx_hash_map<K, V>() -> FxHashMap<K, V> {
    FxHashMap::default()
}

/// Create an empty [`FxHashSet`].
#[inline]
pub fn fx_hash_set<T>() -> FxHashSet<T> {
    FxHashSet::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_hash_is_stable() {
        // Golden values: these must never change, or every persisted index
        // and generated corpus changes under users' feet.
        assert_eq!(stable_hash_str(""), mix64(FNV_OFFSET));
        let a = stable_hash_str("warpgate");
        let b = stable_hash_str("warpgate");
        assert_eq!(a, b);
        assert_ne!(stable_hash_str("warpgate"), stable_hash_str("warpgatf"));
    }

    #[test]
    fn stable_hash_differs_on_prefix() {
        assert_ne!(stable_hash_str("abc"), stable_hash_str("abcd"));
        assert_ne!(stable_hash64(b"\x00"), stable_hash64(b"\x00\x00"));
    }

    #[test]
    fn mix64_is_bijective_on_samples() {
        // Spot check: distinct inputs map to distinct outputs.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = stable_hash_str("left");
        let b = stable_hash_str("right");
        assert_ne!(combine64(a, b), combine64(b, a));
    }

    #[test]
    fn fx_hasher_handles_all_lengths() {
        for len in 0..32 {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut h1 = FxHasher::default();
            h1.write(&bytes);
            let mut h2 = FxHasher::default();
            h2.write(&bytes);
            assert_eq!(h1.finish(), h2.finish());
        }
    }

    #[test]
    fn fx_map_works_as_map() {
        let mut m: FxHashMap<String, u32> = fx_hash_map();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        assert_eq!(m.len(), 2);
    }
}
