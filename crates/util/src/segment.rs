//! Checksummed, block-addressed segment files.
//!
//! A **segment** is the on-disk unit of the paged storage tier: an
//! append-once container of opaque byte blocks, each independently
//! CRC-32-checked, plus a directory that carries per-block metadata
//! (offsets, lengths, checksums, and an opaque caller-defined meta blob
//! such as a zone map). Readers open the directory once and then fetch
//! individual blocks with positioned reads — no mmap, no full-file
//! residency:
//!
//! ```text
//! ┌ preamble (8 bytes) ──────────────────────────────────────────────┐
//! │ magic "WGSG" │ version u32                                       │
//! ├ blocks ──────────────────────────────────────────────────────────┤
//! │ block 0 payload … │ crc32(payload) u32                           │
//! │ block 1 payload … │ crc32(payload) u32                           │
//! │ …                                                                │
//! ├ directory ───────────────────────────────────────────────────────┤
//! │ magic "WGSD" │ version u32 │ header_meta bytes │ n_blocks        │
//! │ per block: offset u64 │ payload_len u32 │ crc u32 │ meta bytes   │
//! ├ trailer (24 bytes) ──────────────────────────────────────────────┤
//! │ magic "WGSE" │ version u32 │ dir_offset u64 │ dir_len u32 │      │
//! │ crc32(directory) u32                                             │
//! └──────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Integrity story: the trailer is fixed-size and self-checking (magic +
//! version + a CRC over the directory), the directory holds every block's
//! CRC, and each block read re-verifies its CRC before the payload is
//! interpreted. A torn write therefore fails at `open` (bad trailer or
//! directory), and a bit flip fails either at `open` or at the first read
//! of the damaged block — a partially-visible block set is impossible
//! because the directory is written last and validated first.

use crate::checksum::{crc32, Crc32};
use crate::codec::{self, CodecError};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic opening a segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"WGSG";
/// Magic opening the directory frame.
pub const DIRECTORY_MAGIC: [u8; 4] = *b"WGSD";
/// Magic opening the fixed-size trailer.
pub const TRAILER_MAGIC: [u8; 4] = *b"WGSE";
/// Segment format version.
pub const SEGMENT_VERSION: u32 = 1;
/// Preamble size: magic (4) + version (4).
pub const PREAMBLE_LEN: usize = 8;
/// Trailer size: magic (4) + version (4) + dir_offset (8) + dir_len (4) +
/// dir_crc (4).
pub const TRAILER_LEN: usize = 24;

/// Failure opening or reading a segment.
#[derive(Debug)]
pub enum SegmentError {
    /// The underlying file could not be read.
    Io(std::io::Error),
    /// The bytes on disk are not a complete, intact segment.
    Corrupt(String),
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Io(e) => write!(f, "segment I/O error: {e}"),
            SegmentError::Corrupt(msg) => write!(f, "corrupt segment: {msg}"),
        }
    }
}

impl std::error::Error for SegmentError {}

impl From<std::io::Error> for SegmentError {
    fn from(e: std::io::Error) -> Self {
        SegmentError::Io(e)
    }
}

impl From<CodecError> for SegmentError {
    fn from(e: CodecError) -> Self {
        SegmentError::Corrupt(e.to_string())
    }
}

/// Location and integrity data for one block, parsed from the directory.
#[derive(Debug, Clone)]
struct BlockInfo {
    /// Payload start, absolute file offset.
    offset: u64,
    /// Payload length in bytes (excluding the trailing CRC word).
    payload_len: u32,
    /// Expected CRC-32 of the payload.
    crc: u32,
    /// Opaque caller metadata (zone maps, id lists, …).
    meta: Vec<u8>,
}

/// Incremental writer: push blocks, then [`SegmentBuilder::finish`] into
/// the complete byte image (written atomically by the caller).
pub struct SegmentBuilder {
    bytes: Vec<u8>,
    directory: Vec<u8>,
    n_blocks: u32,
}

impl SegmentBuilder {
    /// Start a segment whose directory carries `header_meta` (an opaque
    /// caller blob describing the whole segment, e.g. geometry).
    pub fn new(header_meta: &[u8]) -> Self {
        let mut bytes = Vec::new();
        codec::put_header(&mut bytes, SEGMENT_MAGIC, SEGMENT_VERSION);
        let mut directory = Vec::new();
        codec::put_header(&mut directory, DIRECTORY_MAGIC, SEGMENT_VERSION);
        codec::put_bytes(&mut directory, header_meta);
        SegmentBuilder { bytes, directory, n_blocks: 0 }
    }

    /// Append one block with its payload and opaque per-block metadata.
    pub fn push_block(&mut self, payload: &[u8], meta: &[u8]) {
        let offset = self.bytes.len() as u64;
        let crc = crc32(payload);
        self.bytes.extend_from_slice(payload);
        self.bytes.extend_from_slice(&crc.to_le_bytes());
        codec::put_u64(&mut self.directory, offset);
        codec::put_len(&mut self.directory, payload.len());
        codec::put_u32(&mut self.directory, crc);
        codec::put_bytes(&mut self.directory, meta);
        self.n_blocks += 1;
    }

    /// Seal the segment: directory + trailer appended, full image returned.
    pub fn finish(mut self) -> Vec<u8> {
        // Block count goes right after the header meta; the directory was
        // built block-by-block, so splice the count in before the entries.
        let mut directory = Vec::with_capacity(self.directory.len() + 4);
        let entries_at = {
            // header (8) + length-prefixed header_meta
            let mut r = &self.directory[PREAMBLE_LEN..];
            let before = r.len();
            let _ = codec::get_bytes(&mut r).expect("builder wrote header meta");
            PREAMBLE_LEN + (before - r.len())
        };
        directory.extend_from_slice(&self.directory[..entries_at]);
        codec::put_u32(&mut directory, self.n_blocks);
        directory.extend_from_slice(&self.directory[entries_at..]);

        let dir_offset = self.bytes.len() as u64;
        let dir_crc = crc32(&directory);
        let dir_len = directory.len() as u32;
        self.bytes.extend_from_slice(&directory);
        self.bytes.extend_from_slice(&TRAILER_MAGIC);
        self.bytes.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
        self.bytes.extend_from_slice(&dir_offset.to_le_bytes());
        self.bytes.extend_from_slice(&dir_len.to_le_bytes());
        self.bytes.extend_from_slice(&dir_crc.to_le_bytes());
        self.bytes
    }
}

/// An open segment: directory resident, payloads fetched on demand with
/// positioned reads and re-verified per block.
pub struct Segment {
    path: PathBuf,
    file: Mutex<File>,
    header_meta: Vec<u8>,
    blocks: Vec<BlockInfo>,
}

impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Segment")
            .field("path", &self.path)
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

impl Segment {
    /// Open a segment file, validating preamble, trailer, and directory.
    /// Block payloads are *not* read here.
    pub fn open(path: &Path) -> Result<Segment, SegmentError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < (PREAMBLE_LEN + TRAILER_LEN) as u64 {
            return Err(SegmentError::Corrupt(format!(
                "{} bytes is too short to be a segment",
                file_len
            )));
        }

        let mut preamble = [0u8; PREAMBLE_LEN];
        file.read_exact(&mut preamble)?;
        if preamble[..4] != SEGMENT_MAGIC {
            return Err(SegmentError::Corrupt("bad segment magic".into()));
        }
        let version = u32::from_le_bytes(preamble[4..8].try_into().expect("4 bytes"));
        if version != SEGMENT_VERSION {
            return Err(SegmentError::Corrupt(format!("unsupported segment version {version}")));
        }

        let mut trailer = [0u8; TRAILER_LEN];
        file.seek(SeekFrom::End(-(TRAILER_LEN as i64)))?;
        file.read_exact(&mut trailer)?;
        if trailer[..4] != TRAILER_MAGIC {
            return Err(SegmentError::Corrupt("bad trailer magic (torn write?)".into()));
        }
        let tver = u32::from_le_bytes(trailer[4..8].try_into().expect("4 bytes"));
        if tver != SEGMENT_VERSION {
            return Err(SegmentError::Corrupt(format!("unsupported trailer version {tver}")));
        }
        let dir_offset = u64::from_le_bytes(trailer[8..16].try_into().expect("8 bytes"));
        let dir_len = u32::from_le_bytes(trailer[16..20].try_into().expect("4 bytes")) as u64;
        let dir_crc = u32::from_le_bytes(trailer[20..24].try_into().expect("4 bytes"));
        if dir_offset < PREAMBLE_LEN as u64
            || dir_offset.checked_add(dir_len).and_then(|end| end.checked_add(TRAILER_LEN as u64))
                != Some(file_len)
        {
            return Err(SegmentError::Corrupt(format!(
                "directory at {dir_offset}+{dir_len} does not fit a {file_len}-byte file"
            )));
        }

        let mut directory = vec![0u8; dir_len as usize];
        file.seek(SeekFrom::Start(dir_offset))?;
        file.read_exact(&mut directory)?;
        if crc32(&directory) != dir_crc {
            return Err(SegmentError::Corrupt("directory checksum mismatch".into()));
        }

        let mut r = &directory[..];
        let dver = codec::get_header(&mut r, DIRECTORY_MAGIC)?;
        if dver != SEGMENT_VERSION {
            return Err(SegmentError::Corrupt(format!("unsupported directory version {dver}")));
        }
        let header_meta = codec::get_bytes(&mut r)?;
        let n_blocks = codec::get_u32(&mut r)?;
        let mut blocks = Vec::with_capacity(n_blocks as usize);
        for i in 0..n_blocks {
            let offset = codec::get_u64(&mut r)?;
            let payload_len = codec::get_len(&mut r)? as u32;
            let crc = codec::get_u32(&mut r)?;
            let meta = codec::get_bytes(&mut r)?;
            let end = offset
                .checked_add(payload_len as u64)
                .and_then(|e| e.checked_add(4))
                .ok_or_else(|| SegmentError::Corrupt(format!("block {i} offset overflow")))?;
            if offset < PREAMBLE_LEN as u64 || end > dir_offset {
                return Err(SegmentError::Corrupt(format!(
                    "block {i} at {offset}+{payload_len} escapes the data region"
                )));
            }
            blocks.push(BlockInfo { offset, payload_len, crc, meta });
        }
        if !r.is_empty() {
            return Err(SegmentError::Corrupt(format!("{} trailing directory bytes", r.len())));
        }

        Ok(Segment { path: path.to_path_buf(), file: Mutex::new(file), header_meta, blocks })
    }

    /// The segment-wide metadata blob the writer stored.
    pub fn header_meta(&self) -> &[u8] {
        &self.header_meta
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Per-block metadata blob (resident since `open`).
    pub fn block_meta(&self, block: usize) -> &[u8] {
        &self.blocks[block].meta
    }

    /// Payload length of one block in bytes.
    pub fn block_payload_len(&self, block: usize) -> usize {
        self.blocks[block].payload_len as usize
    }

    /// The file this segment was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read one block's payload with a positioned read, verifying its
    /// CRC-32 before returning.
    pub fn read_block(&self, block: usize) -> Result<Vec<u8>, SegmentError> {
        let info = self
            .blocks
            .get(block)
            .ok_or_else(|| SegmentError::Corrupt(format!("block {block} out of range")))?;
        let mut payload = vec![0u8; info.payload_len as usize + 4];
        {
            let mut file = self.file.lock().expect("segment file lock");
            file.seek(SeekFrom::Start(info.offset))?;
            file.read_exact(&mut payload)?;
        }
        let stored =
            u32::from_le_bytes(payload[info.payload_len as usize..].try_into().expect("4 bytes"));
        payload.truncate(info.payload_len as usize);
        if stored != info.crc || crc32(&payload) != info.crc {
            return Err(SegmentError::Corrupt(format!(
                "block {block} checksum mismatch at offset {}",
                info.offset
            )));
        }
        Ok(payload)
    }
}

/// Write `bytes` to `path` atomically: temp sibling, fsync, rename, then a
/// best-effort fsync of the parent directory so the rename itself is
/// durable. Readers either see the old file or the complete new one.
pub fn atomic_write_bytes(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = path.with_file_name(format!("{file_name}.tmp"));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Streaming CRC-32 over an already-open reader, in bounded chunks.
/// Returns the digest of exactly `len` bytes.
pub fn crc32_reader(reader: &mut impl Read, len: u64) -> std::io::Result<u32> {
    let mut crc = Crc32::new();
    let mut buf = vec![0u8; 64 * 1024];
    let mut left = len;
    while left > 0 {
        let take = buf.len().min(left as usize);
        reader.read_exact(&mut buf[..take])?;
        crc.update(&buf[..take]);
        left -= take as u64;
    }
    Ok(crc.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wg-segment-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn build_sample() -> Vec<u8> {
        let mut b = SegmentBuilder::new(b"header-meta");
        b.push_block(b"first block payload", b"meta-0");
        b.push_block(b"", b"meta-empty");
        b.push_block(&[0xAB; 1000], b"");
        b.finish()
    }

    #[test]
    fn roundtrip_blocks_and_meta() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("seg.wgs");
        atomic_write_bytes(&path, &build_sample()).expect("write");
        let seg = Segment::open(&path).expect("open");
        assert_eq!(seg.header_meta(), b"header-meta");
        assert_eq!(seg.block_count(), 3);
        assert_eq!(seg.block_meta(0), b"meta-0");
        assert_eq!(seg.block_meta(1), b"meta-empty");
        assert_eq!(seg.read_block(0).expect("block 0"), b"first block payload");
        assert_eq!(seg.read_block(1).expect("block 1"), b"");
        assert_eq!(seg.read_block(2).expect("block 2"), vec![0xAB; 1000]);
        assert!(seg.read_block(3).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_truncation_fails_open() {
        let dir = temp_dir("trunc");
        let bytes = build_sample();
        let path = dir.join("seg.wgs");
        for len in 0..bytes.len() {
            atomic_write_bytes(&path, &bytes[..len]).expect("write");
            assert!(Segment::open(&path).is_err(), "truncation to {len} bytes opened");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_bit_flip_is_caught_at_open_or_read() {
        let dir = temp_dir("flip");
        let bytes = build_sample();
        let path = dir.join("seg.wgs");
        for i in 0..bytes.len() {
            let mut broken = bytes.clone();
            broken[i] ^= 1 << (i % 8);
            atomic_write_bytes(&path, &broken).expect("write");
            match Segment::open(&path) {
                Err(_) => {}
                Ok(seg) => {
                    let damaged = (0..seg.block_count()).any(|b| seg.read_block(b).is_err());
                    assert!(damaged, "flip at byte {i} went undetected");
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_segment_roundtrips() {
        let dir = temp_dir("empty");
        let path = dir.join("seg.wgs");
        atomic_write_bytes(&path, &SegmentBuilder::new(b"").finish()).expect("write");
        let seg = Segment::open(&path).expect("open");
        assert_eq!(seg.block_count(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_crc_matches_one_shot() {
        let dir = temp_dir("crc");
        let path = dir.join("blob");
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        atomic_write_bytes(&path, &data).expect("write");
        let mut f = File::open(&path).expect("open");
        assert_eq!(crc32_reader(&mut f, data.len() as u64).expect("crc"), crc32(&data));
        std::fs::remove_dir_all(&dir).ok();
    }
}
