//! Content checksums and the snapshot integrity footer.
//!
//! Persisted artifacts (WGSY snapshots) end with a fixed-size **footer
//! frame** that lets a loader distinguish "this is the complete file the
//! writer produced" from "this is a torn or bit-rotted impostor" before a
//! single body byte is interpreted:
//!
//! ```text
//! ┌────────────────────────────── body ─────────────────────────────┐
//! │ WGSY header │ entries │ index frame │ optional sync-state frame │
//! └─────────────────────────────────────────────────────────────────┘
//! ┌──────────────────────── footer (20 bytes) ──────────────────────┐
//! │ magic "WGFT" │ version u32 │ body_len u64 │ crc32(body) u32     │
//! └─────────────────────────────────────────────────────────────────┘
//! ```
//!
//! The checksum is CRC-32 (IEEE 802.3, reflected, the `cksum`/zlib
//! polynomial) implemented here table-driven and dependency-free — the
//! whole workspace is offline, and CRC32's burst-error detection is
//! exactly what torn writes and single-bit flips look like. It is **not**
//! cryptographic and does not pretend to be: the threat model is storage
//! corruption, not adversaries.
//!
//! Back-compat is structural: pre-footer files simply do not end with the
//! magic/length pattern, so [`split_footer`] classifies them as
//! [`FooterCheck::Absent`] and loaders fall back to the legacy
//! (unchecked) parse. A footer whose magic and length match but whose
//! checksum does not is *corruption*, never "legacy".

use crate::codec::CodecError;

/// Reflected IEEE CRC-32 polynomial (zlib, PNG, `cksum -o 3`).
const CRC32_POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, generated at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ CRC32_POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Streaming CRC-32 state: feed bytes with [`Crc32::update`], read the
/// digest with [`Crc32::finalize`]. One-shot hashing goes through
/// [`crc32`].
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state (the standard all-ones preset).
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Absorb a chunk. Chunking never changes the digest:
    /// `update(a); update(b)` equals `update(ab)`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The digest of everything absorbed so far (final xor applied; the
    /// state itself is untouched, so more updates may follow).
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finalize()
}

/// Magic opening the integrity footer frame.
pub const FOOTER_MAGIC: [u8; 4] = *b"WGFT";
/// Footer frame version.
pub const FOOTER_VERSION: u32 = 1;
/// Exact encoded footer size: magic (4) + version (4) + body_len (8) +
/// crc32 (4).
pub const FOOTER_LEN: usize = 20;

/// Outcome of [`split_footer`] when the bytes are *not* corrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FooterCheck {
    /// A footer was present and the body checksum verified.
    Verified,
    /// No footer: a pre-footer (legacy) artifact. The caller gets the
    /// whole input back as the body and must parse it unchecked.
    Absent,
}

/// Append the integrity footer over everything currently in `buf`.
pub fn append_footer(buf: &mut Vec<u8>) {
    let crc = crc32(buf);
    let body_len = buf.len() as u64;
    buf.extend_from_slice(&FOOTER_MAGIC);
    buf.extend_from_slice(&FOOTER_VERSION.to_le_bytes());
    buf.extend_from_slice(&body_len.to_le_bytes());
    buf.extend_from_slice(&crc.to_le_bytes());
}

/// Classify and strip the integrity footer.
///
/// * Footer present and checksum verifies → `Ok((body, Verified))`.
/// * No plausible footer (too short, wrong magic, or a length field that
///   does not match the file — e.g. a legacy artifact, or a footer'd file
///   truncated mid-body) → `Ok((input, Absent))`: the caller parses the
///   whole input with legacy (bounds-checked but unchecksummed) rules,
///   which rejects truncations on its own.
/// * Footer structurally present (magic *and* matching length) but the
///   checksum or version disagrees → `Err`: the body was altered after it
///   was written. This is never reinterpreted as legacy — downgrading a
///   checksum failure to an unchecked parse would defeat the footer.
pub fn split_footer(bytes: &[u8]) -> Result<(&[u8], FooterCheck), CodecError> {
    if bytes.len() < FOOTER_LEN {
        return Ok((bytes, FooterCheck::Absent));
    }
    let foot = &bytes[bytes.len() - FOOTER_LEN..];
    if foot[..4] != FOOTER_MAGIC {
        return Ok((bytes, FooterCheck::Absent));
    }
    let version = u32::from_le_bytes(foot[4..8].try_into().expect("4 bytes"));
    let body_len = u64::from_le_bytes(foot[8..16].try_into().expect("8 bytes"));
    let stored_crc = u32::from_le_bytes(foot[16..20].try_into().expect("4 bytes"));
    if body_len != (bytes.len() - FOOTER_LEN) as u64 {
        // Magic collided but the length disagrees: either a legacy body
        // that happens to end in "WGFT" or a truncated footer'd file. The
        // legacy parse handles both (truncations fail its bounds checks).
        return Ok((bytes, FooterCheck::Absent));
    }
    if version != FOOTER_VERSION {
        return Err(CodecError::Invalid(format!(
            "snapshot footer version {version} is not supported (expected {FOOTER_VERSION})"
        )));
    }
    let body = &bytes[..bytes.len() - FOOTER_LEN];
    let actual = crc32(body);
    if actual != stored_crc {
        return Err(CodecError::Invalid(format!(
            "snapshot checksum mismatch over {} body bytes: stored {stored_crc:#010x}, \
             computed {actual:#010x}",
            body.len()
        )));
    }
    Ok((body, FooterCheck::Verified))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_standard_check_value() {
        // The canonical CRC-32/ISO-HDLC check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot_at_every_split() {
        let data: Vec<u8> = (0..100u8).collect();
        let want = crc32(&data);
        for split in 0..=data.len() {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn footer_roundtrip() {
        let mut buf = b"hello snapshot body".to_vec();
        let body_len = buf.len();
        append_footer(&mut buf);
        assert_eq!(buf.len(), body_len + FOOTER_LEN);
        let (body, check) = split_footer(&buf).unwrap();
        assert_eq!(check, FooterCheck::Verified);
        assert_eq!(body, b"hello snapshot body");
    }

    #[test]
    fn footerless_bytes_classify_as_absent() {
        for bytes in [&b""[..], b"short", b"a body long enough to hold a footer but without one"] {
            let (body, check) = split_footer(bytes).unwrap();
            assert_eq!(check, FooterCheck::Absent);
            assert_eq!(body, bytes);
        }
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let mut buf = b"the quick brown fox jumps over the lazy dog".to_vec();
        append_footer(&mut buf);
        let body_end = buf.len() - FOOTER_LEN;
        for i in 0..buf.len() {
            for bit in 0..8 {
                let mut broken = buf.clone();
                broken[i] ^= 1 << bit;
                match split_footer(&broken) {
                    // Body or checksum-field damage must be detected.
                    Err(_) => {}
                    // Magic/length damage makes the footer unrecognizable;
                    // that downgrades to Absent (the legacy parser then
                    // rejects the stray tail bytes) but may never verify.
                    Ok((_, FooterCheck::Absent)) => {
                        assert!(i >= body_end, "flip inside the body at {i} slipped through");
                    }
                    Ok((_, FooterCheck::Verified)) => {
                        panic!("bit {bit} of byte {i} flipped yet the checksum verified")
                    }
                }
            }
        }
    }

    #[test]
    fn truncations_never_verify() {
        let mut buf = vec![7u8; 64];
        append_footer(&mut buf);
        for len in 0..buf.len() {
            match split_footer(&buf[..len]) {
                Ok((_, FooterCheck::Verified)) => panic!("truncation to {len} verified"),
                Ok((_, FooterCheck::Absent)) | Err(_) => {}
            }
        }
    }

    #[test]
    fn unsupported_footer_version_is_an_error_not_legacy() {
        let mut buf = b"body".to_vec();
        append_footer(&mut buf);
        let version_at = buf.len() - FOOTER_LEN + 4;
        buf[version_at] = 9;
        assert!(split_footer(&buf).is_err());
    }
}
