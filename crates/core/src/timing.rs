//! Query timing decomposition.

use wg_store::BackendId;

/// Wall-clock decomposition of one discovery query.
///
/// The paper's Table 2 analysis rests on exactly this split: index lookup
/// is a minority of end-to-end response time; loading data out of the CDW
/// and embedding inference dominate, which is what makes sampling (not
/// faster index structures) the effective lever.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryTiming {
    /// Real seconds spent scanning the query column (wire round trip).
    pub load_secs: f64,
    /// Real seconds spent on embedding inference.
    pub embed_secs: f64,
    /// Real seconds spent in the LSH lookup + exact re-rank.
    pub lookup_secs: f64,
    /// Virtual CDW network latency charged for the load (not slept; see
    /// `wg_store::cdw`). Includes any backoff delay charged by retry
    /// middleware in the backend stack.
    pub virtual_load_secs: f64,
    /// Scan attempts repeated by retry middleware while loading the query
    /// column (0 on a healthy link or a bare backend). Sums through
    /// [`Self::add`].
    pub retries: u64,
    /// Segment blocks the lookup read from the paged tier (0 when every
    /// candidate was RAM-resident). Sums through [`Self::add`].
    pub blocks_read: u64,
    /// Segment blocks the lookup skipped because their zone map proved
    /// they could not reach the running top-k. Sums through [`Self::add`].
    pub blocks_pruned: u64,
    /// True when the query embedding came out of the system's embedding
    /// cache: the scan and embed phases were skipped entirely, so
    /// `load_secs`, `embed_secs`, and `virtual_load_secs` are all zero.
    pub cache_hit: bool,
    /// True when this answer was served **degraded**: admission pressure
    /// shed the request and the caller's [`crate::QueryOptions`] opted
    /// into a warm-cache-only answer instead of the `Overloaded` error.
    /// Degradation is never silent — this flag is the contract. ORs
    /// through [`Self::add`] like `cache_hit`.
    pub degraded: bool,
    /// The backend namespace whose scan these costs bill to, when a single
    /// one is attributable: the query column's backend for `discover`, the
    /// synced backend for a per-backend [`crate::SyncReport`] slice.
    /// `None` when the timing aggregates across backends (see
    /// [`Self::add`]) or predates attribution.
    pub backend: Option<BackendId>,
}

impl QueryTiming {
    /// Real compute time (load + embed + lookup).
    pub fn total_secs(&self) -> f64 {
        self.load_secs + self.embed_secs + self.lookup_secs
    }

    /// End-to-end response time including simulated network latency — the
    /// number comparable to the paper's "query response time".
    pub fn response_secs(&self) -> f64 {
        self.total_secs() + self.virtual_load_secs
    }

    /// Fraction of the response attributable to index lookup (the paper
    /// reports <25% on testbedS, <13% on testbedM).
    pub fn lookup_fraction(&self) -> f64 {
        let total = self.response_secs();
        if total <= 0.0 {
            0.0
        } else {
            self.lookup_secs / total
        }
    }

    /// Component-wise sum (used to average over a query workload). The
    /// cache flag ORs: an accumulated timing is "cached" if any constituent
    /// query was.
    pub fn add(&mut self, other: &QueryTiming) {
        self.load_secs += other.load_secs;
        self.embed_secs += other.embed_secs;
        self.lookup_secs += other.lookup_secs;
        self.virtual_load_secs += other.virtual_load_secs;
        self.retries += other.retries;
        self.blocks_read += other.blocks_read;
        self.blocks_pruned += other.blocks_pruned;
        self.cache_hit |= other.cache_hit;
        self.degraded |= other.degraded;
        // Attribution survives only while every constituent billed the
        // same namespace; mixing backends yields an unattributed total.
        if self.backend != other.backend {
            self.backend = None;
        }
    }

    /// Component-wise division by a count. The retry and block counters
    /// stay totals (an integer mean would round to uselessness at low
    /// rates), and the cache flag keeps its accumulated OR.
    pub fn divide(&self, n: usize) -> QueryTiming {
        if n == 0 {
            return *self;
        }
        let d = n as f64;
        QueryTiming {
            load_secs: self.load_secs / d,
            embed_secs: self.embed_secs / d,
            lookup_secs: self.lookup_secs / d,
            virtual_load_secs: self.virtual_load_secs / d,
            retries: self.retries,
            blocks_read: self.blocks_read,
            blocks_pruned: self.blocks_pruned,
            cache_hit: self.cache_hit,
            degraded: self.degraded,
            backend: self.backend,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let t = QueryTiming {
            load_secs: 1.0,
            embed_secs: 2.0,
            lookup_secs: 0.5,
            virtual_load_secs: 0.25,
            ..QueryTiming::default()
        };
        assert!((t.total_secs() - 3.5).abs() < 1e-12);
        assert!((t.response_secs() - 3.75).abs() < 1e-12);
        assert!((t.lookup_fraction() - 0.5 / 3.75).abs() < 1e-12);
    }

    #[test]
    fn add_then_divide_is_mean() {
        let mut acc = QueryTiming::default();
        for _ in 0..4 {
            acc.add(&QueryTiming {
                load_secs: 2.0,
                embed_secs: 4.0,
                lookup_secs: 1.0,
                virtual_load_secs: 0.4,
                ..QueryTiming::default()
            });
        }
        let mean = acc.divide(4);
        assert!((mean.load_secs - 2.0).abs() < 1e-12);
        assert!((mean.embed_secs - 4.0).abs() < 1e-12);
    }

    #[test]
    fn retries_sum_through_add_and_survive_divide() {
        let mut acc = QueryTiming::default();
        acc.add(&QueryTiming { retries: 2, ..QueryTiming::default() });
        acc.add(&QueryTiming { retries: 1, ..QueryTiming::default() });
        assert_eq!(acc.retries, 3);
        assert_eq!(acc.divide(2).retries, 3, "divide keeps the total retry count");
    }

    #[test]
    fn block_counters_sum_through_add_and_survive_divide() {
        let mut acc = QueryTiming::default();
        acc.add(&QueryTiming { blocks_read: 3, blocks_pruned: 5, ..QueryTiming::default() });
        acc.add(&QueryTiming { blocks_read: 1, blocks_pruned: 2, ..QueryTiming::default() });
        assert_eq!(acc.blocks_read, 4);
        assert_eq!(acc.blocks_pruned, 7);
        let mean = acc.divide(2);
        assert_eq!(mean.blocks_read, 4, "divide keeps block totals");
        assert_eq!(mean.blocks_pruned, 7);
    }

    #[test]
    fn cache_hit_flag_ors_through_add() {
        let mut acc = QueryTiming::default();
        assert!(!acc.cache_hit);
        acc.add(&QueryTiming { cache_hit: true, ..QueryTiming::default() });
        acc.add(&QueryTiming::default());
        assert!(acc.cache_hit);
        assert!(acc.divide(2).cache_hit);
    }

    #[test]
    fn degraded_flag_ors_through_add_and_survives_divide() {
        let mut acc = QueryTiming::default();
        assert!(!acc.degraded);
        acc.add(&QueryTiming { degraded: true, ..QueryTiming::default() });
        acc.add(&QueryTiming::default());
        assert!(acc.degraded, "one degraded constituent flags the aggregate");
        assert!(acc.divide(2).degraded);
    }

    #[test]
    fn backend_attribution_survives_same_backend_sums_only() {
        let wh = Some(BackendId::named("timing-test-wh"));
        let mut acc = QueryTiming { backend: wh, ..QueryTiming::default() };
        acc.add(&QueryTiming { backend: wh, load_secs: 1.0, ..QueryTiming::default() });
        assert_eq!(acc.backend, wh, "same-backend sums stay attributed");
        assert_eq!(acc.divide(2).backend, wh);
        acc.add(&QueryTiming::default());
        assert_eq!(acc.backend, None, "mixing namespaces drops attribution");
    }

    #[test]
    fn zero_cases() {
        let t = QueryTiming::default();
        assert_eq!(t.lookup_fraction(), 0.0);
        assert_eq!(t.divide(0), t);
    }
}
