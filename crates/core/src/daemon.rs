//! Scheduled-sync daemon: the service loop that keeps a [`WarpGate`]
//! index fresh without anyone calling [`WarpGate::sync`] by hand.
//!
//! A [`SyncDaemon`] owns one background thread that periodically
//! reconciles the system against its attached backend. Around the bare
//! `sync()` call it adds what a production refresh loop needs:
//!
//! * **Retry-aware error handling** — a failed sync records nothing (the
//!   system's token-commit discipline guarantees that), so the daemon
//!   simply counts the failure and lets the next tick retry the same
//!   change set. Transient-failure *retrying within* a single sync is the
//!   backend middleware's job (`wg_store::RetryBackend`); the daemon
//!   handles the case where a whole sync still failed.
//! * **Circuit breaking** — after [`SyncDaemonConfig::failure_threshold`]
//!   consecutive failures the circuit *opens*: syncs are skipped for
//!   [`SyncDaemonConfig::open_intervals`] ticks (no pointless load on a
//!   down backend), then one *half-open* probe runs. A successful probe
//!   closes the circuit; a failed one re-opens it for another cooldown.
//! * **Observability** — every counter, the circuit state, cumulative
//!   scan costs and retry counts, the last error, and the last
//!   [`SyncReport`] are visible through [`SyncDaemon::report`] at any
//!   time.
//! * **Clean shutdown** — [`SyncDaemon::shutdown`] (or dropping the
//!   daemon) wakes the loop immediately, joins the thread, and returns
//!   the final report. A sync in flight completes first; none is ever
//!   torn mid-run.
//!
//! The state machine (see DESIGN.md §7):
//!
//! ```text
//!          sync ok                       sync failed, consecutive < threshold
//!        ┌─────────┐                     ┌─────────┐
//!        ▼         │                     ▼         │
//!      CLOSED ─────┴──── failures ≥ threshold ──▶ OPEN ◀────────┐
//!        ▲                                         │ cooldown   │ probe
//!        │                                         ▼ elapsed    │ failed
//!        └────────────── probe ok ──────────── HALF-OPEN ───────┘
//! ```

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use wg_store::CostSnapshot;

use crate::system::{SyncReport, WarpGate};

/// Tunables of a [`SyncDaemon`].
#[derive(Debug, Clone, Copy)]
pub struct SyncDaemonConfig {
    /// Time between sync ticks.
    pub interval: Duration,
    /// Consecutive sync failures that open the circuit.
    pub failure_threshold: u32,
    /// Ticks the circuit stays open before a half-open probe.
    pub open_intervals: u32,
}

impl Default for SyncDaemonConfig {
    fn default() -> Self {
        Self { interval: Duration::from_secs(30), failure_threshold: 3, open_intervals: 4 }
    }
}

impl SyncDaemonConfig {
    /// Same config with a different tick interval.
    pub fn with_interval(self, interval: Duration) -> Self {
        Self { interval, ..self }
    }
}

/// Circuit-breaker state of the daemon's sync loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CircuitState {
    /// Healthy: every tick syncs.
    #[default]
    Closed,
    /// Tripped: ticks skip syncing until the cooldown elapses.
    Open,
    /// Cooldown over: the next tick runs a single probe sync.
    HalfOpen,
}

/// Point-in-time view of everything the daemon has done. Cheap to clone;
/// obtained via [`SyncDaemon::report`].
#[derive(Debug, Clone, Default)]
pub struct DaemonReport {
    /// Scheduler wakeups processed (interval expiries + explicit wakes).
    pub ticks: u64,
    /// Syncs actually started (ticks minus circuit-open skips).
    pub syncs_attempted: u64,
    /// Syncs that completed successfully.
    pub syncs_ok: u64,
    /// Syncs that returned an error.
    pub syncs_failed: u64,
    /// Ticks skipped because the circuit was open.
    pub skipped_while_open: u64,
    /// Current run of back-to-back failures (resets on success).
    pub consecutive_failures: u32,
    /// Current circuit state.
    pub circuit: CircuitState,
    /// Transitions *into* Open: initial Closed → Open trips plus failed
    /// half-open probes that re-open (a backend that stays down keeps
    /// incrementing this once per probe cycle).
    pub circuit_opened: u64,
    /// Half-open probes that succeeded and closed the circuit.
    pub circuit_closed: u64,
    /// Cumulative tables added across successful syncs.
    pub tables_added: u64,
    /// Cumulative tables re-indexed across successful syncs.
    pub tables_updated: u64,
    /// Cumulative tables dropped across successful syncs.
    pub tables_removed: u64,
    /// Cumulative columns (re-)indexed.
    pub columns_indexed: u64,
    /// Cumulative columns removed.
    pub columns_removed: u64,
    /// Cumulative scan costs of the daemon's syncs; `cost.retries` is the
    /// total retry count the backend middleware reported through them.
    pub cost: CostSnapshot,
    /// Message of the most recent sync error, if any ever occurred.
    pub last_error: Option<String>,
    /// The most recent successful sync's report.
    pub last_report: Option<SyncReport>,
}

impl DaemonReport {
    /// True when the daemon has observed the backend at least once and the
    /// latest observation was healthy.
    pub fn is_healthy(&self) -> bool {
        self.circuit == CircuitState::Closed && self.syncs_ok > 0
    }
}

struct Inner {
    stop: bool,
    wake: bool,
    /// Ticks left before an open circuit half-opens.
    cooldown_remaining: u32,
    report: DaemonReport,
}

struct Shared {
    wg: Arc<WarpGate>,
    config: SyncDaemonConfig,
    inner: Mutex<Inner>,
    cv: Condvar,
}

/// Handle to a running scheduled-sync loop. See the module docs.
pub struct SyncDaemon {
    shared: Arc<Shared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for SyncDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncDaemon").field("config", &self.shared.config).finish_non_exhaustive()
    }
}

impl SyncDaemon {
    /// Start the daemon over `wg`. The first sync runs one interval after
    /// spawn (call [`Self::wake`] for an immediate tick).
    pub fn spawn(wg: Arc<WarpGate>, config: SyncDaemonConfig) -> Self {
        assert!(config.failure_threshold >= 1, "failure_threshold must be at least 1");
        let shared = Arc::new(Shared {
            wg,
            config,
            inner: Mutex::new(Inner {
                stop: false,
                wake: false,
                cooldown_remaining: 0,
                report: DaemonReport::default(),
            }),
            cv: Condvar::new(),
        });
        let loop_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("wg-sync-daemon".into())
            .spawn(move || run_loop(&loop_shared))
            .expect("spawn sync daemon thread");
        Self { shared, handle: Some(handle) }
    }

    /// Snapshot of the daemon's counters and circuit state.
    pub fn report(&self) -> DaemonReport {
        self.shared.inner.lock().expect("daemon state lock").report.clone()
    }

    /// Trigger a tick now instead of waiting out the interval. (The tick
    /// still honors the circuit breaker.)
    pub fn wake(&self) {
        let mut inner = self.shared.inner.lock().expect("daemon state lock");
        inner.wake = true;
        drop(inner);
        self.shared.cv.notify_all();
    }

    /// Stop the loop, join the thread, and return the final report. A sync
    /// in flight completes before the daemon exits.
    pub fn shutdown(mut self) -> DaemonReport {
        self.stop_and_join();
        self.shared.inner.lock().expect("daemon state lock").report.clone()
    }

    fn stop_and_join(&mut self) {
        {
            let mut inner = self.shared.inner.lock().expect("daemon state lock");
            inner.stop = true;
        }
        self.cv_notify();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }

    fn cv_notify(&self) {
        self.shared.cv.notify_all();
    }
}

impl Drop for SyncDaemon {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn run_loop(shared: &Shared) {
    loop {
        // Sleep until the interval elapses, a wake is requested, or
        // shutdown begins. Predicate loop: condvars may wake spuriously,
        // and an early wakeup must re-wait the *remaining* interval
        // rather than tick off-schedule.
        {
            let mut inner = shared.inner.lock().expect("daemon state lock");
            let deadline = std::time::Instant::now() + shared.config.interval;
            while !inner.stop && !inner.wake {
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                if remaining.is_zero() {
                    break;
                }
                let (guard, _) =
                    shared.cv.wait_timeout(inner, remaining).expect("daemon state lock");
                inner = guard;
            }
            if inner.stop {
                return;
            }
            inner.wake = false;
            inner.report.ticks += 1;
        }
        tick(shared);
    }
}

/// One scheduler tick: advance the circuit breaker and, unless the
/// circuit is open, run a sync. The sync itself runs without holding the
/// state lock, so `report()` and `wake()` stay responsive mid-sync.
fn tick(shared: &Shared) {
    let attempt = {
        let mut inner = shared.inner.lock().expect("daemon state lock");
        match inner.report.circuit {
            CircuitState::Closed | CircuitState::HalfOpen => true,
            CircuitState::Open => {
                inner.report.skipped_while_open += 1;
                inner.cooldown_remaining = inner.cooldown_remaining.saturating_sub(1);
                if inner.cooldown_remaining == 0 {
                    inner.report.circuit = CircuitState::HalfOpen;
                }
                false
            }
        }
    };
    if !attempt {
        return;
    }

    let outcome = shared.wg.sync();

    let mut inner = shared.inner.lock().expect("daemon state lock");
    let report = &mut inner.report;
    report.syncs_attempted += 1;
    match outcome {
        Ok(sync) => {
            report.syncs_ok += 1;
            report.consecutive_failures = 0;
            if report.circuit == CircuitState::HalfOpen {
                report.circuit = CircuitState::Closed;
                report.circuit_closed += 1;
            }
            report.tables_added += sync.tables_added as u64;
            report.tables_updated += sync.tables_updated as u64;
            report.tables_removed += sync.tables_removed as u64;
            report.columns_indexed += sync.columns_indexed as u64;
            report.columns_removed += sync.columns_removed as u64;
            report.cost = report.cost.plus(&sync.cost);
            report.last_report = Some(sync);
        }
        Err(e) => {
            report.syncs_failed += 1;
            report.consecutive_failures += 1;
            report.last_error = Some(e.to_string());
            let trip = match report.circuit {
                // A failed half-open probe re-opens immediately.
                CircuitState::HalfOpen => true,
                CircuitState::Closed => {
                    report.consecutive_failures >= shared.config.failure_threshold
                }
                CircuitState::Open => false,
            };
            if trip {
                report.circuit = CircuitState::Open;
                report.circuit_opened += 1;
                inner.cooldown_remaining = shared.config.open_intervals;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WarpGateConfig;
    use std::time::Instant;
    use wg_store::{
        BackendHandle, CdwConfig, CdwConnector, Column, Database, FaultInjector, FaultPlan, Table,
        Warehouse,
    };

    fn connector() -> std::sync::Arc<CdwConnector> {
        let mut w = Warehouse::new("w");
        let mut db = Database::new("db");
        db.add_table(
            Table::new(
                "t",
                vec![Column::text("c", (0..30).map(|i| format!("v{i}")).collect::<Vec<_>>())],
            )
            .unwrap(),
        );
        w.add_database(db);
        std::sync::Arc::new(CdwConnector::new(w, CdwConfig::free()))
    }

    fn fast_config() -> SyncDaemonConfig {
        SyncDaemonConfig {
            interval: Duration::from_millis(2),
            failure_threshold: 2,
            open_intervals: 2,
        }
    }

    /// Poll `report()` until `pred` holds or a generous deadline passes.
    fn wait_for(daemon: &SyncDaemon, pred: impl Fn(&DaemonReport) -> bool) -> DaemonReport {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let r = daemon.report();
            if pred(&r) {
                return r;
            }
            assert!(Instant::now() < deadline, "daemon never reached state: {r:?}");
            daemon.wake();
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn daemon_syncs_periodically_and_shuts_down_cleanly() {
        let c = connector();
        let backend: BackendHandle = c.clone();
        let wg = Arc::new(WarpGate::with_backend(
            WarpGateConfig { threads: 1, ..Default::default() },
            backend,
        ));
        let daemon = SyncDaemon::spawn(wg.clone(), fast_config());
        let r = wait_for(&daemon, |r| r.syncs_ok >= 2);
        assert!(r.is_healthy());
        // First sync indexed the whole warehouse; later ones were no-ops.
        assert_eq!(r.tables_added, 1);
        assert_eq!(wg.len(), 1);
        let fin = daemon.shutdown();
        assert!(fin.syncs_ok >= r.syncs_ok);
        // After shutdown the thread is gone; the report is final.
    }

    #[test]
    fn circuit_opens_after_threshold_and_recovers() {
        let c = connector();
        let healthy: BackendHandle = c.clone();
        let flaky: BackendHandle =
            Arc::new(FaultInjector::new(healthy.clone(), FaultPlan::fail_every(1)));
        // Nothing indexed yet, so every sync must scan — and every scan
        // fails: consecutive failures mount until the circuit opens.
        let wg = Arc::new(WarpGate::with_backend(
            WarpGateConfig { threads: 1, ..Default::default() },
            flaky,
        ));
        let daemon = SyncDaemon::spawn(wg.clone(), fast_config());

        let r = wait_for(&daemon, |r| r.circuit == CircuitState::Open);
        assert!(r.syncs_failed >= 2, "threshold is 2: {r:?}");
        assert_eq!(r.circuit_opened, 1);
        assert!(r.last_error.as_deref().unwrap_or("").contains("injected fault"));

        // While open, ticks skip (no new sync attempts pile up against the
        // dead backend).
        let r = wait_for(&daemon, |r| r.skipped_while_open >= 1);
        assert!(r.syncs_attempted <= r.ticks);

        // Heal the backend: attach the raw connector. The next half-open
        // probe succeeds and closes the circuit; the index converges.
        wg.attach(healthy);
        let r = wait_for(&daemon, |r| r.circuit == CircuitState::Closed && r.syncs_ok >= 1);
        assert_eq!(r.circuit_closed, 1, "recovery must come through a half-open probe");
        assert_eq!(wg.len(), 1, "index converged after recovery");
        daemon.shutdown();
    }

    #[test]
    fn failed_probe_reopens_the_circuit() {
        let c = connector();
        let inner: BackendHandle = c;
        let flaky: BackendHandle = Arc::new(FaultInjector::new(inner, FaultPlan::fail_every(1)));
        let wg = Arc::new(WarpGate::with_backend(
            WarpGateConfig { threads: 1, ..Default::default() },
            flaky,
        ));
        let daemon = SyncDaemon::spawn(wg, fast_config());
        // Backend never heals: open → half-open probe fails → open again.
        let r = wait_for(&daemon, |r| r.circuit_opened >= 2);
        assert_eq!(r.circuit_closed, 0);
        assert!(r.syncs_failed >= 3, "threshold failures plus a failed probe: {r:?}");
        daemon.shutdown();
    }

    #[test]
    fn wake_triggers_an_immediate_tick() {
        let c = connector();
        let backend: BackendHandle = c;
        let wg = Arc::new(WarpGate::with_backend(
            WarpGateConfig { threads: 1, ..Default::default() },
            backend,
        ));
        // An hour-long interval: only wake() can drive ticks.
        let daemon = SyncDaemon::spawn(
            wg,
            SyncDaemonConfig::default().with_interval(Duration::from_secs(3600)),
        );
        assert_eq!(daemon.report().ticks, 0);
        daemon.wake();
        let r = wait_for(&daemon, |r| r.syncs_ok >= 1);
        assert!(r.ticks >= 1);
        let report = daemon.shutdown();
        assert!(report.is_healthy());
    }
}
