//! Scheduled-sync daemon: the service loop that keeps a [`WarpGate`]
//! index fresh without anyone calling [`WarpGate::sync`] by hand.
//!
//! A [`SyncDaemon`] owns one background thread that periodically
//! reconciles the system against its attached backends. Around the bare
//! per-backend sync call it adds what a production refresh loop needs:
//!
//! * **Retry-aware error handling** — a failed sync records nothing (the
//!   system's token-commit discipline guarantees that), so the daemon
//!   simply counts the failure and lets the next tick retry the same
//!   change set. Transient-failure *retrying within* a single sync is the
//!   backend middleware's job (`wg_store::RetryBackend`); the daemon
//!   handles the case where a whole sync still failed.
//! * **Per-backend circuit breaking** — each attached backend gets its own
//!   breaker: after [`SyncDaemonConfig::failure_threshold`] consecutive
//!   failures *of that backend* its circuit opens and its syncs are
//!   skipped for [`SyncDaemonConfig::open_intervals`] ticks (no pointless
//!   load on a down warehouse), then one half-open probe runs. A dead data
//!   lake never stops the CDW's refresh loop. The aggregate
//!   [`DaemonReport::circuit`] is the worst state across breakers;
//!   [`SyncDaemon::backend_report`] exposes each one.
//! * **Scheduling** — [`SyncSchedule::All`] reconciles every backend each
//!   tick; [`SyncSchedule::RoundRobin`] visits one backend per tick in
//!   rotation, spreading scan load across intervals for deployments with
//!   many warehouses.
//! * **Observability** — every counter, the circuit states, cumulative
//!   scan costs and retry counts, the last error, and the last
//!   [`SyncReport`] are visible through [`SyncDaemon::report`] at any
//!   time.
//! * **Checkpointing** — with a [`CheckpointPolicy`] (set via
//!   [`SyncDaemonConfig::with_checkpoint`]) the daemon persists the system
//!   through a rotating [`crate::durability::Checkpointer`] after every N
//!   successful syncs, and flushes one final checkpoint on shutdown. A
//!   failed checkpoint (unwritable path, full disk) never panics the loop
//!   — it is counted in [`DaemonReport::checkpoint_failures`] and surfaces
//!   through [`DaemonReport::last_error`].
//! * **Clean shutdown** — [`SyncDaemon::shutdown`] (or dropping the
//!   daemon) wakes the loop immediately, joins the thread, and returns
//!   the final report. A sync in flight completes first; none is ever
//!   torn mid-run.
//!
//! The per-breaker state machine (see DESIGN.md §7):
//!
//! ```text
//!          sync ok                       sync failed, consecutive < threshold
//!        ┌─────────┐                     ┌─────────┐
//!        ▼         │                     ▼         │
//!      CLOSED ─────┴──── failures ≥ threshold ──▶ OPEN ◀────────┐
//!        ▲                                         │ cooldown   │ probe
//!        │                                         ▼ elapsed    │ failed
//!        └────────────── probe ok ──────────── HALF-OPEN ───────┘
//! ```

use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use wg_store::{BackendId, CostSnapshot};
use wg_util::FxHashMap;

use crate::durability::Checkpointer;
use crate::system::{SyncReport, WarpGate};

/// Which attached backends a daemon tick reconciles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncSchedule {
    /// Every attached backend, every tick.
    #[default]
    All,
    /// One backend per tick, rotating through the attach set in id order.
    /// With N backends each gets probed every N intervals — same steady
    /// state coverage, scan load spread out in time.
    RoundRobin,
}

/// Periodic durable snapshots of the synced system (see
/// [`crate::durability::Checkpointer`] for the on-disk rotation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Newest-generation snapshot path; the previous generation rotates
    /// to `<path>.prev`.
    pub path: PathBuf,
    /// Checkpoint after this many successful syncs (minimum 1). Shutdown
    /// always flushes a final checkpoint if any sync succeeded since the
    /// last one.
    pub every_n_syncs: u32,
}

/// Tunables of a [`SyncDaemon`].
#[derive(Debug, Clone)]
pub struct SyncDaemonConfig {
    /// Time between sync ticks.
    pub interval: Duration,
    /// Consecutive failures of one backend that open its circuit.
    pub failure_threshold: u32,
    /// Ticks a backend's circuit stays open before a half-open probe.
    pub open_intervals: u32,
    /// Which backends each tick reconciles.
    pub schedule: SyncSchedule,
    /// Durable snapshot policy; `None` (the default) never checkpoints.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Per-sync time budget; `None` (the default) lets a sync run as long
    /// as it takes. With a budget, each backend sync runs under a
    /// cooperative [`wg_util::Deadline`]: expiry stops it *between* column
    /// scans (zero further scans billed, nothing recorded — the next tick
    /// retries the same change set), fails the sync with
    /// `DeadlineExceeded`, and counts in
    /// [`DaemonReport::deadline_exceeded`]. A slow warehouse can then
    /// never pin the refresh loop past its interval; the breaker treats
    /// the timeout as an ordinary failure.
    pub tick_deadline: Option<Duration>,
}

impl Default for SyncDaemonConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_secs(30),
            failure_threshold: 3,
            open_intervals: 4,
            schedule: SyncSchedule::All,
            checkpoint: None,
            tick_deadline: None,
        }
    }
}

impl SyncDaemonConfig {
    /// Same config with a different tick interval.
    pub fn with_interval(self, interval: Duration) -> Self {
        Self { interval, ..self }
    }

    /// Same config with a different schedule.
    pub fn with_schedule(self, schedule: SyncSchedule) -> Self {
        Self { schedule, ..self }
    }

    /// Same config, checkpointing to `path` after every `every_n_syncs`
    /// successful syncs (clamped to at least 1).
    pub fn with_checkpoint(self, path: impl Into<PathBuf>, every_n_syncs: u32) -> Self {
        let policy = CheckpointPolicy { path: path.into(), every_n_syncs: every_n_syncs.max(1) };
        Self { checkpoint: Some(policy), ..self }
    }

    /// Same config with a per-sync time budget (see
    /// [`Self::tick_deadline`]).
    pub fn with_tick_deadline(self, budget: Duration) -> Self {
        Self { tick_deadline: Some(budget), ..self }
    }
}

/// Circuit-breaker state of one backend's sync loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CircuitState {
    /// Healthy: every scheduled tick syncs.
    #[default]
    Closed,
    /// Tripped: ticks skip this backend until the cooldown elapses.
    Open,
    /// Cooldown over: the next scheduled tick runs a single probe sync.
    HalfOpen,
}

impl CircuitState {
    /// Severity order for the aggregate report (Open > HalfOpen > Closed).
    fn severity(self) -> u8 {
        match self {
            CircuitState::Closed => 0,
            CircuitState::HalfOpen => 1,
            CircuitState::Open => 2,
        }
    }
}

/// One backend's breaker: its circuit state plus the per-backend slice of
/// the daemon's counters. Exposed through [`DaemonReport::backends`] and
/// [`SyncDaemon::backend_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct BackendCircuit {
    /// The backend namespace this breaker guards.
    pub backend: BackendId,
    /// Current circuit state.
    pub circuit: CircuitState,
    /// Current run of back-to-back failures (resets on success).
    pub consecutive_failures: u32,
    /// This backend's successful syncs.
    pub syncs_ok: u64,
    /// This backend's failed syncs.
    pub syncs_failed: u64,
    /// Scheduled attempts skipped because this circuit was open.
    pub skipped_while_open: u64,
    /// Transitions *into* Open (initial trips plus failed probes).
    pub circuit_opened: u64,
    /// Half-open probes that succeeded and closed the circuit.
    pub circuit_closed: u64,
    /// Message of this backend's most recent sync error, if any.
    pub last_error: Option<String>,
}

impl BackendCircuit {
    fn new(backend: BackendId) -> Self {
        Self {
            backend,
            circuit: CircuitState::Closed,
            consecutive_failures: 0,
            syncs_ok: 0,
            syncs_failed: 0,
            skipped_while_open: 0,
            circuit_opened: 0,
            circuit_closed: 0,
            last_error: None,
        }
    }
}

/// Point-in-time view of everything the daemon has done. Cheap to clone;
/// obtained via [`SyncDaemon::report`]. Counters aggregate across
/// backends; [`Self::backends`] carries the per-backend slices.
#[derive(Debug, Clone, Default)]
pub struct DaemonReport {
    /// Scheduler wakeups processed (interval expiries + explicit wakes).
    pub ticks: u64,
    /// Syncs actually started (scheduled attempts minus circuit-open skips).
    pub syncs_attempted: u64,
    /// Syncs that completed successfully.
    pub syncs_ok: u64,
    /// Syncs that returned an error.
    pub syncs_failed: u64,
    /// Scheduled attempts skipped because the backend's circuit was open.
    pub skipped_while_open: u64,
    /// Worst current failure run across backends (resets on success).
    pub consecutive_failures: u32,
    /// Worst current circuit state across backends: Open if any backend's
    /// breaker is open, HalfOpen if any is probing, Closed otherwise.
    pub circuit: CircuitState,
    /// Transitions *into* Open across all breakers: initial Closed → Open
    /// trips plus failed half-open probes that re-open (a backend that
    /// stays down keeps incrementing this once per probe cycle).
    pub circuit_opened: u64,
    /// Half-open probes that succeeded and closed a circuit.
    pub circuit_closed: u64,
    /// Cumulative tables added across successful syncs.
    pub tables_added: u64,
    /// Cumulative tables re-indexed across successful syncs.
    pub tables_updated: u64,
    /// Cumulative tables dropped across successful syncs.
    pub tables_removed: u64,
    /// Cumulative columns (re-)indexed.
    pub columns_indexed: u64,
    /// Cumulative columns removed.
    pub columns_removed: u64,
    /// Cumulative scan costs of the daemon's syncs; `cost.retries` is the
    /// total retry count the backend middleware reported through them.
    pub cost: CostSnapshot,
    /// Checkpoints written successfully (periodic plus the shutdown flush).
    pub checkpoints_written: u64,
    /// Checkpoints that failed to write; the error is in `last_error`.
    pub checkpoint_failures: u64,
    /// Syncs that ran out of their [`SyncDaemonConfig::tick_deadline`]
    /// budget (a subset of `syncs_failed`; always 0 without a budget).
    pub deadline_exceeded: u64,
    /// Message of the most recent sync error, if any ever occurred.
    pub last_error: Option<String>,
    /// The most recent successful sync's report.
    pub last_report: Option<SyncReport>,
    /// Per-backend breaker states and counters, in [`BackendId`] order.
    pub backends: Vec<BackendCircuit>,
}

impl DaemonReport {
    /// True when the daemon has observed its backends at least once and
    /// every breaker is currently healthy.
    pub fn is_healthy(&self) -> bool {
        self.circuit == CircuitState::Closed && self.syncs_ok > 0
    }
}

struct Breaker {
    stats: BackendCircuit,
    /// Ticks left before this open circuit half-opens.
    cooldown_remaining: u32,
}

impl Breaker {
    fn new(backend: BackendId) -> Self {
        Self { stats: BackendCircuit::new(backend), cooldown_remaining: 0 }
    }
}

struct Inner {
    stop: bool,
    wake: bool,
    /// Round-robin position across ticks (index into the attach set).
    rr_cursor: usize,
    /// Successful syncs since the last checkpoint (only tracked when a
    /// [`CheckpointPolicy`] is configured).
    syncs_since_checkpoint: u64,
    breakers: FxHashMap<BackendId, Breaker>,
    report: DaemonReport,
}

struct Shared {
    wg: Arc<WarpGate>,
    config: SyncDaemonConfig,
    inner: Mutex<Inner>,
    cv: Condvar,
}

/// Handle to a running scheduled-sync loop. See the module docs.
pub struct SyncDaemon {
    shared: Arc<Shared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for SyncDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncDaemon").field("config", &self.shared.config).finish_non_exhaustive()
    }
}

impl SyncDaemon {
    /// Start the daemon over `wg`. The first sync runs one interval after
    /// spawn (call [`Self::wake`] for an immediate tick).
    pub fn spawn(wg: Arc<WarpGate>, config: SyncDaemonConfig) -> Self {
        assert!(config.failure_threshold >= 1, "failure_threshold must be at least 1");
        let shared = Arc::new(Shared {
            wg,
            config,
            inner: Mutex::new(Inner {
                stop: false,
                wake: false,
                rr_cursor: 0,
                syncs_since_checkpoint: 0,
                breakers: FxHashMap::default(),
                report: DaemonReport::default(),
            }),
            cv: Condvar::new(),
        });
        let loop_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("wg-sync-daemon".into())
            .spawn(move || run_loop(&loop_shared))
            .expect("spawn sync daemon thread");
        Self { shared, handle: Some(handle) }
    }

    /// Snapshot of the daemon's counters and circuit states.
    pub fn report(&self) -> DaemonReport {
        self.shared.inner.lock().expect("daemon state lock").report.clone()
    }

    /// One named backend's breaker state and counters, if the daemon has
    /// scheduled it at least once.
    pub fn backend_report(&self, name: &str) -> Option<BackendCircuit> {
        let id = wg_util::names::lookup(name).map(BackendId::from_bits)?;
        self.shared
            .inner
            .lock()
            .expect("daemon state lock")
            .breakers
            .get(&id)
            .map(|b| b.stats.clone())
    }

    /// Trigger a tick now instead of waiting out the interval. (The tick
    /// still honors the circuit breakers.)
    pub fn wake(&self) {
        let mut inner = self.shared.inner.lock().expect("daemon state lock");
        inner.wake = true;
        drop(inner);
        self.shared.cv.notify_all();
    }

    /// Stop the loop, join the thread, and return the final report. A sync
    /// in flight completes before the daemon exits.
    pub fn shutdown(mut self) -> DaemonReport {
        self.stop_and_join();
        self.shared.inner.lock().expect("daemon state lock").report.clone()
    }

    fn stop_and_join(&mut self) {
        {
            let mut inner = self.shared.inner.lock().expect("daemon state lock");
            inner.stop = true;
        }
        self.cv_notify();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }

    fn cv_notify(&self) {
        self.shared.cv.notify_all();
    }
}

impl Drop for SyncDaemon {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn run_loop(shared: &Shared) {
    loop {
        // Sleep until the interval elapses, a wake is requested, or
        // shutdown begins. Predicate loop: condvars may wake spuriously,
        // and an early wakeup must re-wait the *remaining* interval
        // rather than tick off-schedule.
        {
            let mut inner = shared.inner.lock().expect("daemon state lock");
            let deadline = std::time::Instant::now() + shared.config.interval;
            while !inner.stop && !inner.wake {
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                if remaining.is_zero() {
                    break;
                }
                let (guard, _) =
                    shared.cv.wait_timeout(inner, remaining).expect("daemon state lock");
                inner = guard;
            }
            if inner.stop {
                // Final flush: the index the daemon maintained must not
                // die with the process if anything changed since the last
                // checkpoint. Runs on the daemon thread so `Drop` only
                // ever joins — an unwritable path is recorded, not thrown.
                drop(inner);
                maybe_checkpoint(shared, true);
                return;
            }
            inner.wake = false;
            inner.report.ticks += 1;
        }
        tick(shared);
        maybe_checkpoint(shared, false);
    }
}

/// Write a checkpoint if the policy says so: every `every_n_syncs`
/// successful syncs, or on shutdown (`force`) whenever any sync succeeded
/// since the last one. The snapshot is taken without holding the state
/// lock, so `report()`/`wake()` stay responsive during large writes.
fn maybe_checkpoint(shared: &Shared, force: bool) {
    let Some(policy) = &shared.config.checkpoint else { return };
    {
        let inner = shared.inner.lock().expect("daemon state lock");
        let due = if force {
            inner.syncs_since_checkpoint > 0
        } else {
            inner.syncs_since_checkpoint >= u64::from(policy.every_n_syncs)
        };
        if !due {
            return;
        }
    }
    let result = Checkpointer::new(&policy.path).checkpoint(&shared.wg);
    let mut inner = shared.inner.lock().expect("daemon state lock");
    match result {
        Ok(()) => {
            inner.syncs_since_checkpoint = 0;
            inner.report.checkpoints_written += 1;
        }
        Err(e) => {
            inner.report.checkpoint_failures += 1;
            inner.report.last_error = Some(format!("checkpoint to {:?}: {e}", policy.path));
        }
    }
}

/// One scheduler tick: pick the scheduled backends, advance each one's
/// circuit breaker, and run its sync unless the circuit is open. Each
/// sync runs without holding the state lock, so `report()` and `wake()`
/// stay responsive mid-sync.
fn tick(shared: &Shared) {
    let targets: Vec<BackendId> = {
        let mut inner = shared.inner.lock().expect("daemon state lock");
        let attached = shared.wg.attached_backends();
        if attached.is_empty() {
            // Nothing attached: still attempt the default namespace so the
            // failure (and its error message) surfaces in the report, as
            // the single-backend daemon always did.
            vec![BackendId::DEFAULT]
        } else {
            match shared.config.schedule {
                SyncSchedule::All => attached,
                SyncSchedule::RoundRobin => {
                    let pick = attached[inner.rr_cursor % attached.len()];
                    inner.rr_cursor = inner.rr_cursor.wrapping_add(1);
                    vec![pick]
                }
            }
        }
    };

    for id in targets {
        let attempt = {
            let mut guard = shared.inner.lock().expect("daemon state lock");
            let inner = &mut *guard;
            let breaker = inner.breakers.entry(id).or_insert_with(|| Breaker::new(id));
            match breaker.stats.circuit {
                CircuitState::Closed | CircuitState::HalfOpen => true,
                CircuitState::Open => {
                    breaker.stats.skipped_while_open += 1;
                    inner.report.skipped_while_open += 1;
                    breaker.cooldown_remaining = breaker.cooldown_remaining.saturating_sub(1);
                    if breaker.cooldown_remaining == 0 {
                        breaker.stats.circuit = CircuitState::HalfOpen;
                    }
                    false
                }
            }
        };
        if !attempt {
            continue;
        }

        let outcome = match shared.config.tick_deadline {
            Some(budget) => {
                shared.wg.sync_backend_id_deadline(id, wg_util::Deadline::within(budget))
            }
            None => shared.wg.sync_backend_id(id),
        };

        let mut guard = shared.inner.lock().expect("daemon state lock");
        let inner = &mut *guard;
        let breaker = inner.breakers.get_mut(&id).expect("breaker installed before attempt");
        let report = &mut inner.report;
        report.syncs_attempted += 1;
        match outcome {
            Ok(sync) => {
                inner.syncs_since_checkpoint += 1;
                report.syncs_ok += 1;
                breaker.stats.syncs_ok += 1;
                breaker.stats.consecutive_failures = 0;
                if breaker.stats.circuit == CircuitState::HalfOpen {
                    breaker.stats.circuit = CircuitState::Closed;
                    breaker.stats.circuit_closed += 1;
                    report.circuit_closed += 1;
                }
                report.tables_added += sync.tables_added as u64;
                report.tables_updated += sync.tables_updated as u64;
                report.tables_removed += sync.tables_removed as u64;
                report.columns_indexed += sync.columns_indexed as u64;
                report.columns_removed += sync.columns_removed as u64;
                report.cost = report.cost.plus(&sync.cost);
                report.last_report = Some(sync);
            }
            Err(e) => {
                if matches!(e, wg_store::StoreError::DeadlineExceeded { .. }) {
                    report.deadline_exceeded += 1;
                }
                let message = e.to_string();
                report.syncs_failed += 1;
                breaker.stats.syncs_failed += 1;
                breaker.stats.consecutive_failures += 1;
                breaker.stats.last_error = Some(message.clone());
                report.last_error = Some(message);
                let trip = match breaker.stats.circuit {
                    // A failed half-open probe re-opens immediately.
                    CircuitState::HalfOpen => true,
                    CircuitState::Closed => {
                        breaker.stats.consecutive_failures >= shared.config.failure_threshold
                    }
                    CircuitState::Open => false,
                };
                if trip {
                    breaker.stats.circuit = CircuitState::Open;
                    breaker.stats.circuit_opened += 1;
                    report.circuit_opened += 1;
                    breaker.cooldown_remaining = shared.config.open_intervals;
                }
            }
        }
    }

    // Refresh the aggregate view: worst circuit, worst failure run, and
    // the per-backend slices in id order.
    let mut guard = shared.inner.lock().expect("daemon state lock");
    let inner = &mut *guard;
    let mut backends: Vec<BackendCircuit> =
        inner.breakers.values().map(|b| b.stats.clone()).collect();
    backends.sort_by_key(|b| b.backend.bits());
    inner.report.circuit = backends
        .iter()
        .map(|b| b.circuit)
        .max_by_key(|c| c.severity())
        .unwrap_or(CircuitState::Closed);
    inner.report.consecutive_failures =
        backends.iter().map(|b| b.consecutive_failures).max().unwrap_or(0);
    inner.report.backends = backends;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WarpGateConfig;
    use std::time::Instant;
    use wg_store::{
        BackendHandle, CdwConfig, CdwConnector, Column, Database, FaultInjector, FaultPlan, Table,
        Warehouse,
    };

    fn connector() -> std::sync::Arc<CdwConnector> {
        let mut w = Warehouse::new("w");
        let mut db = Database::new("db");
        db.add_table(
            Table::new(
                "t",
                vec![Column::text("c", (0..30).map(|i| format!("v{i}")).collect::<Vec<_>>())],
            )
            .unwrap(),
        );
        w.add_database(db);
        std::sync::Arc::new(CdwConnector::new(w, CdwConfig::free()))
    }

    fn fast_config() -> SyncDaemonConfig {
        SyncDaemonConfig {
            interval: Duration::from_millis(2),
            failure_threshold: 2,
            open_intervals: 2,
            schedule: SyncSchedule::All,
            checkpoint: None,
            tick_deadline: None,
        }
    }

    /// Poll `report()` until `pred` holds or a generous deadline passes.
    fn wait_for(daemon: &SyncDaemon, pred: impl Fn(&DaemonReport) -> bool) -> DaemonReport {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let r = daemon.report();
            if pred(&r) {
                return r;
            }
            assert!(Instant::now() < deadline, "daemon never reached state: {r:?}");
            daemon.wake();
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn daemon_syncs_periodically_and_shuts_down_cleanly() {
        let c = connector();
        let backend: BackendHandle = c.clone();
        let wg = Arc::new(WarpGate::with_backend(
            WarpGateConfig { threads: 1, ..Default::default() },
            backend,
        ));
        let daemon = SyncDaemon::spawn(wg.clone(), fast_config());
        let r = wait_for(&daemon, |r| r.syncs_ok >= 2);
        assert!(r.is_healthy());
        // First sync indexed the whole warehouse; later ones were no-ops.
        assert_eq!(r.tables_added, 1);
        assert_eq!(wg.len(), 1);
        let fin = daemon.shutdown();
        assert!(fin.syncs_ok >= r.syncs_ok);
        // After shutdown the thread is gone; the report is final.
    }

    #[test]
    fn circuit_opens_after_threshold_and_recovers() {
        let c = connector();
        let healthy: BackendHandle = c.clone();
        let flaky: BackendHandle =
            Arc::new(FaultInjector::new(healthy.clone(), FaultPlan::fail_every(1)));
        // Nothing indexed yet, so every sync must scan — and every scan
        // fails: consecutive failures mount until the circuit opens.
        let wg = Arc::new(WarpGate::with_backend(
            WarpGateConfig { threads: 1, ..Default::default() },
            flaky,
        ));
        let daemon = SyncDaemon::spawn(wg.clone(), fast_config());

        let r = wait_for(&daemon, |r| r.circuit == CircuitState::Open);
        assert!(r.syncs_failed >= 2, "threshold is 2: {r:?}");
        assert_eq!(r.circuit_opened, 1);
        assert!(r.last_error.as_deref().unwrap_or("").contains("injected fault"));

        // While open, ticks skip (no new sync attempts pile up against the
        // dead backend).
        let r = wait_for(&daemon, |r| r.skipped_while_open >= 1);
        assert!(r.syncs_attempted <= r.ticks);

        // Heal the backend: attach the raw connector. The next half-open
        // probe succeeds and closes the circuit; the index converges. (The
        // default name keeps its breaker across the re-attach.)
        wg.attach(healthy);
        let r = wait_for(&daemon, |r| r.circuit == CircuitState::Closed && r.syncs_ok >= 1);
        assert_eq!(r.circuit_closed, 1, "recovery must come through a half-open probe");
        assert_eq!(wg.len(), 1, "index converged after recovery");
        daemon.shutdown();
    }

    #[test]
    fn failed_probe_reopens_the_circuit() {
        let c = connector();
        let inner: BackendHandle = c;
        let flaky: BackendHandle = Arc::new(FaultInjector::new(inner, FaultPlan::fail_every(1)));
        let wg = Arc::new(WarpGate::with_backend(
            WarpGateConfig { threads: 1, ..Default::default() },
            flaky,
        ));
        let daemon = SyncDaemon::spawn(wg, fast_config());
        // Backend never heals: open → half-open probe fails → open again.
        let r = wait_for(&daemon, |r| r.circuit_opened >= 2);
        assert_eq!(r.circuit_closed, 0);
        assert!(r.syncs_failed >= 3, "threshold failures plus a failed probe: {r:?}");
        daemon.shutdown();
    }

    #[test]
    fn tick_deadline_fails_the_sync_and_counts_separately() {
        let c = connector();
        let backend: BackendHandle = c;
        let wg = Arc::new(WarpGate::with_backend(
            WarpGateConfig { threads: 1, ..Default::default() },
            backend,
        ));
        // A zero budget is already expired at the first pre-scan check:
        // the change-set sync must fail typed, bill no scans, and record
        // nothing (every later tick retries the same change set).
        let daemon =
            SyncDaemon::spawn(wg.clone(), fast_config().with_tick_deadline(Duration::ZERO));
        let r = wait_for(&daemon, |r| r.deadline_exceeded >= 2);
        assert_eq!(r.syncs_ok, 0, "an expired budget never completes a change-set sync");
        assert!(r.last_error.as_deref().unwrap_or("").contains("deadline exceeded"));
        assert_eq!(wg.len(), 0, "nothing was indexed under the expired budget");
        daemon.shutdown();
    }

    #[test]
    fn wake_triggers_an_immediate_tick() {
        let c = connector();
        let backend: BackendHandle = c;
        let wg = Arc::new(WarpGate::with_backend(
            WarpGateConfig { threads: 1, ..Default::default() },
            backend,
        ));
        // An hour-long interval: only wake() can drive ticks.
        let daemon = SyncDaemon::spawn(
            wg,
            SyncDaemonConfig::default().with_interval(Duration::from_secs(3600)),
        );
        assert_eq!(daemon.report().ticks, 0);
        daemon.wake();
        let r = wait_for(&daemon, |r| r.syncs_ok >= 1);
        assert!(r.ticks >= 1);
        let report = daemon.shutdown();
        assert!(report.is_healthy());
    }

    #[test]
    fn one_dead_backend_does_not_stop_the_others() {
        let c = connector();
        let healthy: BackendHandle = c.clone();
        let dead: BackendHandle =
            Arc::new(FaultInjector::new(connector(), FaultPlan::fail_every(1)));
        let wg = Arc::new(WarpGate::new(WarpGateConfig { threads: 1, ..Default::default() }));
        wg.attach_named("daemon-test-good", healthy);
        wg.attach_named("daemon-test-dead", dead);
        let daemon = SyncDaemon::spawn(wg.clone(), fast_config());

        // The dead warehouse's breaker opens; the healthy one keeps
        // syncing right through it.
        let r = wait_for(&daemon, |r| {
            r.backends.iter().any(|b| b.circuit == CircuitState::Open) && r.syncs_ok >= 2
        });
        let good = daemon.backend_report("daemon-test-good").unwrap();
        let bad = daemon.backend_report("daemon-test-dead").unwrap();
        assert_eq!(good.circuit, CircuitState::Closed);
        assert_eq!(good.syncs_failed, 0);
        assert!(good.syncs_ok >= 2);
        assert_eq!(bad.circuit, CircuitState::Open);
        assert!(bad.syncs_failed >= 2);
        assert!(bad.last_error.as_deref().unwrap_or("").contains("injected fault"));
        // Aggregate view reports the worst breaker.
        assert_eq!(r.circuit, CircuitState::Open);
        assert_eq!(wg.len(), 1, "the healthy warehouse's column is indexed");
        daemon.shutdown();
    }

    #[test]
    fn round_robin_visits_backends_alternately() {
        let wg = Arc::new(WarpGate::new(WarpGateConfig { threads: 1, ..Default::default() }));
        wg.attach_named("daemon-test-rr-a", connector());
        wg.attach_named("daemon-test-rr-b", connector());
        let daemon = SyncDaemon::spawn(wg, fast_config().with_schedule(SyncSchedule::RoundRobin));
        let r = wait_for(&daemon, |r| {
            r.backends.len() == 2 && r.backends.iter().all(|b| b.syncs_ok >= 2)
        });
        // One backend per tick: attempts can never outrun ticks.
        assert!(r.syncs_attempted <= r.ticks, "{r:?}");
        let per_backend: u64 = r.backends.iter().map(|b| b.syncs_ok + b.syncs_failed).sum();
        assert_eq!(per_backend, r.syncs_attempted);
        daemon.shutdown();
    }
}
