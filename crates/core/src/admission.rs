//! Admission control, per-tenant quotas, and the overload-protection
//! vocabulary of a serving [`crate::WarpGate`] node.
//!
//! The paper pitches WarpGate as a discovery service embedded in a cloud
//! warehouse, which means thousands of tenants can hammer one node at
//! once. This module makes the node resilient to *its own clients*, the
//! way `wg_store::RetryBackend` and the sync daemon's circuit breakers
//! made it resilient to backend failures:
//!
//! * [`AdmissionController`] — a hard concurrency cap plus a bounded FIFO
//!   wait queue with a bounded wait time. Work beyond cap + queue (or
//!   waiting longer than the bound) is shed with the *retryable*
//!   `StoreError::Overloaded`, never queued invisibly: the caller learns
//!   in bounded time whether it runs.
//! * [`QuotaPolicy`] — per-tenant token buckets over the billed cost
//!   surface (warehouse scans and scanned bytes, the same units the
//!   `CostMeter` reports). One tenant exhausting its budget gets the
//!   typed, retryable `StoreError::QuotaExceeded`; every other tenant's
//!   requests — and results — are untouched.
//! * [`TenantId`] — process-wide interned tenant names (the same scheme
//!   as `wg_util::names` for backends), so per-request tenant handling
//!   costs an integer, not a string.
//!
//! The admission state machine (see DESIGN.md §12):
//!
//! ```text
//!             in_flight < cap and queue empty
//!  request ──────────────────────────────────────▶ ADMITTED (permit)
//!     │                                                ▲
//!     │ cap full, queue has room                       │ front of queue
//!     ▼                                                │ and slot free
//!  QUEUED (FIFO ticket) ───────────────────────────────┘
//!     │                │
//!     │ queue full     │ waited past max_wait
//!     ▼                ▼
//!  SHED: Overloaded { retry_after_ms }   (retryable, bounded-time answer)
//! ```
//!
//! Quotas are *post-paid*: admission requires a positive balance, the
//! actual metered cost debits after the work (possibly driving the
//! balance negative, which blocks the tenant until refill covers the
//! debt). Pre-paying would require knowing a scan's byte cost before
//! running it — the warehouse only reports cost afterwards.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use wg_store::{StoreError, StoreResult};
use wg_util::FxHashMap;

// ---------------------------------------------------------------------------
// Tenant interning.

/// Hard cap on distinct tenant names a process can intern. Generous for
/// tests and single-node serving; a registry this size signals a leak
/// (e.g. request ids used as tenant names), not a workload.
pub const MAX_TENANTS: usize = 4096;

fn tenant_table() -> &'static Mutex<Vec<String>> {
    static TABLE: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Process-wide interned tenant name (the `wg_util::names` scheme applied
/// to tenants). Equal names always intern to the same id; ids are stable
/// for the process lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(u32);

impl TenantId {
    /// Intern `name`, returning its stable id. Panics past
    /// [`MAX_TENANTS`] distinct names — by then something is using
    /// non-tenant strings as tenants.
    pub fn intern(name: &str) -> Self {
        let mut table = tenant_table().lock().expect("tenant table lock");
        if let Some(i) = table.iter().position(|t| t == name) {
            return Self(i as u32);
        }
        assert!(table.len() < MAX_TENANTS, "tenant registry full ({MAX_TENANTS} names)");
        table.push(name.to_string());
        Self((table.len() - 1) as u32)
    }

    /// The id already interned for `name`, if any.
    pub fn lookup(name: &str) -> Option<Self> {
        let table = tenant_table().lock().expect("tenant table lock");
        table.iter().position(|t| t == name).map(|i| Self(i as u32))
    }

    /// The interned name.
    pub fn name(self) -> String {
        let table = tenant_table().lock().expect("tenant table lock");
        table.get(self.0 as usize).cloned().unwrap_or_else(|| format!("tenant#{}", self.0))
    }

    /// Raw id bits (for logs and tests).
    pub fn bits(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

// ---------------------------------------------------------------------------
// Admission controller.

/// Tunables of an [`AdmissionController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Requests allowed to execute concurrently (≥ 1).
    pub cap: usize,
    /// Requests allowed to wait for a slot beyond the cap. `0` = no
    /// queue: anything beyond the cap sheds immediately.
    pub queue: usize,
    /// Longest a queued request waits before it sheds. Bounded waiting is
    /// the point: a caller always gets an answer in `max_wait` + one
    /// service time.
    pub max_wait: Duration,
    /// Backoff hint carried in the `Overloaded` errors this controller
    /// sheds with.
    pub retry_after_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self { cap: 4, queue: 8, max_wait: Duration::from_millis(100), retry_after_ms: 50 }
    }
}

/// Monotonic counters plus the live gauges of an [`AdmissionController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Requests admitted straight through an idle slot.
    pub admitted: u64,
    /// Requests admitted after waiting in the queue.
    pub queued_admitted: u64,
    /// Requests shed because the wait queue was full.
    pub shed_queue_full: u64,
    /// Requests shed because their queue wait exceeded `max_wait`.
    pub shed_timeout: u64,
    /// Requests currently holding a slot.
    pub in_flight: usize,
    /// Requests currently waiting in the queue.
    pub queued: usize,
}

struct AdmState {
    in_flight: usize,
    /// FIFO tickets of the waiting requests, front = next to admit.
    queue: VecDeque<u64>,
    next_ticket: u64,
}

/// Concurrency cap + bounded FIFO wait queue. See the module docs for the
/// state machine. All waiting uses `std::sync::Condvar` (the workspace's
/// `parking_lot` shim carries no condvar), matching the sync daemon.
pub struct AdmissionController {
    config: AdmissionConfig,
    state: Mutex<AdmState>,
    cv: Condvar,
    admitted: AtomicU64,
    queued_admitted: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_timeout: AtomicU64,
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionController").field("config", &self.config).finish_non_exhaustive()
    }
}

impl AdmissionController {
    /// Build a controller. Panics on `cap == 0` (that is "reject all
    /// work", which no serving node means; disable admission control by
    /// not constructing one).
    pub fn new(config: AdmissionConfig) -> Self {
        assert!(config.cap >= 1, "admission cap must be at least 1");
        Self {
            config,
            state: Mutex::new(AdmState { in_flight: 0, queue: VecDeque::new(), next_ticket: 0 }),
            cv: Condvar::new(),
            admitted: AtomicU64::new(0),
            queued_admitted: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_timeout: AtomicU64::new(0),
        }
    }

    /// The config in effect.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    fn overloaded(&self) -> StoreError {
        StoreError::Overloaded { retry_after_ms: self.config.retry_after_ms }
    }

    /// Acquire one execution slot, waiting in FIFO order up to
    /// `max_wait`. Sheds with the retryable `Overloaded` when the queue
    /// is full or the wait times out — never blocks unboundedly.
    pub fn acquire(&self) -> StoreResult<AdmissionPermit<'_>> {
        let mut st = self.state.lock().expect("admission state lock");
        // Fast path: free slot and nobody queued ahead.
        if st.in_flight < self.config.cap && st.queue.is_empty() {
            st.in_flight += 1;
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(AdmissionPermit { ctrl: self });
        }
        if st.queue.len() >= self.config.queue {
            self.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            return Err(self.overloaded());
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back(ticket);
        let wait_deadline = Instant::now() + self.config.max_wait;
        loop {
            if st.queue.front() == Some(&ticket) && st.in_flight < self.config.cap {
                st.queue.pop_front();
                st.in_flight += 1;
                self.queued_admitted.fetch_add(1, Ordering::Relaxed);
                // More slots may be free (releases batch up); let the
                // next ticket re-check.
                self.cv.notify_all();
                return Ok(AdmissionPermit { ctrl: self });
            }
            let remaining = wait_deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                st.queue.retain(|&t| t != ticket);
                self.shed_timeout.fetch_add(1, Ordering::Relaxed);
                // Our departure may unblock the ticket behind us.
                self.cv.notify_all();
                return Err(self.overloaded());
            }
            let (guard, _) = self.cv.wait_timeout(st, remaining).expect("admission state lock");
            st = guard;
        }
    }

    /// Counter + gauge snapshot.
    pub fn stats(&self) -> AdmissionStats {
        let st = self.state.lock().expect("admission state lock");
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            queued_admitted: self.queued_admitted.load(Ordering::Relaxed),
            shed_queue_full: self.shed_queue_full.load(Ordering::Relaxed),
            shed_timeout: self.shed_timeout.load(Ordering::Relaxed),
            in_flight: st.in_flight,
            queued: st.queue.len(),
        }
    }

    fn release(&self) {
        let mut st = self.state.lock().expect("admission state lock");
        st.in_flight = st.in_flight.saturating_sub(1);
        drop(st);
        self.cv.notify_all();
    }
}

/// RAII execution slot from [`AdmissionController::acquire`]; dropping it
/// releases the slot and wakes the queue.
pub struct AdmissionPermit<'a> {
    ctrl: &'a AdmissionController,
}

impl std::fmt::Debug for AdmissionPermit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPermit").finish_non_exhaustive()
    }
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.ctrl.release();
    }
}

// ---------------------------------------------------------------------------
// Per-tenant quotas.

/// One tenant's token-bucket budget over the billed cost surface. Units
/// match the `CostMeter`: scan *requests* and *bytes scanned*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// Bucket capacity in billed scans (also the starting balance).
    pub scan_capacity: f64,
    /// Scans refilled per second, up to capacity.
    pub scan_refill_per_sec: f64,
    /// Bucket capacity in scanned bytes. `f64::INFINITY` = unmetered.
    pub byte_capacity: f64,
    /// Bytes refilled per second, up to capacity.
    pub byte_refill_per_sec: f64,
}

impl TenantQuota {
    /// A scans-only budget (bytes unmetered).
    pub fn scans(capacity: f64, refill_per_sec: f64) -> Self {
        Self {
            scan_capacity: capacity,
            scan_refill_per_sec: refill_per_sec,
            byte_capacity: f64::INFINITY,
            byte_refill_per_sec: 0.0,
        }
    }

    /// Same quota with a byte budget on top.
    pub fn with_bytes(self, capacity: f64, refill_per_sec: f64) -> Self {
        Self { byte_capacity: capacity, byte_refill_per_sec: refill_per_sec, ..self }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    scan_tokens: f64,
    byte_tokens: f64,
    /// Clock reading (seconds) at the last refill.
    refilled_at: f64,
}

struct QuotaState {
    quotas: FxHashMap<TenantId, TenantQuota>,
    buckets: FxHashMap<TenantId, Bucket>,
    /// `Some(now)` = a manually advanced test clock; `None` = monotonic
    /// wall clock relative to `epoch`.
    manual_secs: Option<f64>,
    epoch: Instant,
}

/// Per-tenant token buckets over billed scans and bytes. Tenants without
/// a configured quota are unlimited. Thread-safe; one shared instance
/// serves every entry point of a node.
pub struct QuotaPolicy {
    state: Mutex<QuotaState>,
}

impl Default for QuotaPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for QuotaPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock().expect("quota state lock");
        f.debug_struct("QuotaPolicy").field("tenants", &st.quotas.len()).finish_non_exhaustive()
    }
}

impl QuotaPolicy {
    /// An empty policy on the monotonic clock: every tenant unlimited
    /// until [`Self::set_quota`] says otherwise.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(QuotaState {
                quotas: FxHashMap::default(),
                buckets: FxHashMap::default(),
                manual_secs: None,
                epoch: Instant::now(),
            }),
        }
    }

    /// Same policy on a manually advanced clock (see [`Self::advance`]) —
    /// deterministic refill for tests.
    pub fn with_manual_clock() -> Self {
        let policy = Self::new();
        policy.state.lock().expect("quota state lock").manual_secs = Some(0.0);
        policy
    }

    /// Advance the manual clock by `secs`. Panics on a monotonic-clock
    /// policy — mixing the two would silently break refill accounting.
    pub fn advance(&self, secs: f64) {
        let mut st = self.state.lock().expect("quota state lock");
        let now = st.manual_secs.expect("advance() requires with_manual_clock()");
        st.manual_secs = Some(now + secs);
    }

    /// Install (or replace) `tenant`'s budget. The bucket starts full.
    pub fn set_quota(&self, tenant: TenantId, quota: TenantQuota) {
        let mut st = self.state.lock().expect("quota state lock");
        let now = now_secs(&st);
        st.quotas.insert(tenant, quota);
        st.buckets.insert(
            tenant,
            Bucket {
                scan_tokens: quota.scan_capacity,
                byte_tokens: quota.byte_capacity,
                refilled_at: now,
            },
        );
    }

    /// Remove `tenant`'s budget: unlimited again.
    pub fn clear_quota(&self, tenant: TenantId) {
        let mut st = self.state.lock().expect("quota state lock");
        st.quotas.remove(&tenant);
        st.buckets.remove(&tenant);
    }

    /// Gate one request: refill `tenant`'s bucket for elapsed time, then
    /// require at least one scan token and a positive byte balance.
    /// Unconfigured tenants always pass. Fails with the retryable
    /// `QuotaExceeded` — the bucket refills with time.
    pub fn admit(&self, tenant: TenantId) -> StoreResult<()> {
        let mut st = self.state.lock().expect("quota state lock");
        let now = now_secs(&st);
        let Some(quota) = st.quotas.get(&tenant).copied() else { return Ok(()) };
        let bucket = st.buckets.get_mut(&tenant).expect("quota implies bucket");
        refill(bucket, &quota, now);
        if bucket.scan_tokens >= 1.0 && bucket.byte_tokens > 0.0 {
            Ok(())
        } else {
            Err(StoreError::QuotaExceeded { tenant: tenant.name() })
        }
    }

    /// Debit the *measured* cost of finished work (post-paid; may drive
    /// the balance negative, blocking the tenant until refill covers the
    /// debt). No-op for unconfigured tenants.
    pub fn debit(&self, tenant: TenantId, scans: u64, bytes: u64) {
        let mut st = self.state.lock().expect("quota state lock");
        if !st.quotas.contains_key(&tenant) {
            return;
        }
        let bucket = st.buckets.get_mut(&tenant).expect("quota implies bucket");
        bucket.scan_tokens -= scans as f64;
        bucket.byte_tokens -= bytes as f64;
    }

    /// Current `(scan_tokens, byte_tokens)` balance after refill; `None`
    /// for unconfigured tenants.
    pub fn balance(&self, tenant: TenantId) -> Option<(f64, f64)> {
        let mut st = self.state.lock().expect("quota state lock");
        let now = now_secs(&st);
        let quota = st.quotas.get(&tenant).copied()?;
        let bucket = st.buckets.get_mut(&tenant).expect("quota implies bucket");
        refill(bucket, &quota, now);
        Some((bucket.scan_tokens, bucket.byte_tokens))
    }
}

fn now_secs(st: &QuotaState) -> f64 {
    match st.manual_secs {
        Some(s) => s,
        None => st.epoch.elapsed().as_secs_f64(),
    }
}

fn refill(bucket: &mut Bucket, quota: &TenantQuota, now: f64) {
    let dt = (now - bucket.refilled_at).max(0.0);
    bucket.refilled_at = now;
    bucket.scan_tokens =
        (bucket.scan_tokens + dt * quota.scan_refill_per_sec).min(quota.scan_capacity);
    bucket.byte_tokens =
        (bucket.byte_tokens + dt * quota.byte_refill_per_sec).min(quota.byte_capacity);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn tenant_ids_are_stable_and_distinct() {
        let a = TenantId::intern("tenant-stable-a");
        let b = TenantId::intern("tenant-stable-b");
        assert_ne!(a, b);
        assert_eq!(TenantId::intern("tenant-stable-a"), a);
        assert_eq!(TenantId::lookup("tenant-stable-b"), Some(b));
        assert_eq!(TenantId::lookup("tenant-never-interned"), None);
        assert_eq!(a.name(), "tenant-stable-a");
        assert_eq!(a.to_string(), "tenant-stable-a");
    }

    #[test]
    fn admits_up_to_cap_then_sheds_when_queue_full() {
        let ctrl = AdmissionController::new(AdmissionConfig {
            cap: 2,
            queue: 0,
            max_wait: Duration::from_millis(10),
            retry_after_ms: 7,
        });
        let p1 = ctrl.acquire().unwrap();
        let p2 = ctrl.acquire().unwrap();
        let err = ctrl.acquire().unwrap_err();
        assert!(matches!(err, StoreError::Overloaded { retry_after_ms: 7 }), "{err:?}");
        assert!(err.is_retryable());
        let stats = ctrl.stats();
        assert_eq!((stats.admitted, stats.shed_queue_full, stats.in_flight), (2, 1, 2));
        drop(p1);
        let _p3 = ctrl.acquire().unwrap();
        drop(p2);
        assert_eq!(ctrl.stats().in_flight, 1);
    }

    #[test]
    fn queued_request_admits_when_slot_frees() {
        let ctrl = Arc::new(AdmissionController::new(AdmissionConfig {
            cap: 1,
            queue: 4,
            max_wait: Duration::from_secs(10),
            retry_after_ms: 5,
        }));
        let held = ctrl.acquire().unwrap();
        let waiter = {
            let ctrl = ctrl.clone();
            std::thread::spawn(move || ctrl.acquire().map(|_p| ()).is_ok())
        };
        // Give the waiter time to enqueue, then free the slot.
        while ctrl.stats().queued == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(held);
        assert!(waiter.join().unwrap(), "queued request must admit after release");
        let stats = ctrl.stats();
        assert_eq!(stats.queued_admitted, 1);
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn queue_wait_is_bounded() {
        let ctrl = AdmissionController::new(AdmissionConfig {
            cap: 1,
            queue: 4,
            max_wait: Duration::from_millis(30),
            retry_after_ms: 9,
        });
        let _held = ctrl.acquire().unwrap();
        let start = Instant::now();
        let err = ctrl.acquire().unwrap_err();
        let waited = start.elapsed();
        assert!(matches!(err, StoreError::Overloaded { .. }), "{err:?}");
        assert!(waited >= Duration::from_millis(30), "shed too early: {waited:?}");
        assert!(waited < Duration::from_secs(5), "wait must be bounded: {waited:?}");
        let stats = ctrl.stats();
        assert_eq!(stats.shed_timeout, 1);
        assert_eq!(stats.queued, 0, "timed-out ticket must leave the queue");
    }

    #[test]
    fn queue_admits_in_fifo_order() {
        let ctrl = Arc::new(AdmissionController::new(AdmissionConfig {
            cap: 1,
            queue: 8,
            max_wait: Duration::from_secs(10),
            retry_after_ms: 5,
        }));
        let held = ctrl.acquire().unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let started = Arc::new(AtomicUsize::new(0));
        let mut waiters = Vec::new();
        for i in 0..3 {
            let ctrl = ctrl.clone();
            let order = order.clone();
            let started = started.clone();
            // Stagger the enqueues so ticket order is deterministic.
            while ctrl.stats().queued < i {
                std::thread::sleep(Duration::from_millis(1));
            }
            waiters.push(std::thread::spawn(move || {
                started.fetch_add(1, Ordering::SeqCst);
                let permit = ctrl.acquire().unwrap();
                order.lock().unwrap().push(i);
                // Hold briefly so admissions serialize observably.
                std::thread::sleep(Duration::from_millis(5));
                drop(permit);
            }));
        }
        while ctrl.stats().queued < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(held);
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2], "admissions must be FIFO");
    }

    #[test]
    fn unconfigured_tenant_is_unlimited() {
        let q = QuotaPolicy::new();
        let t = TenantId::intern("quota-unlimited");
        for _ in 0..1000 {
            q.admit(t).unwrap();
        }
        q.debit(t, 10, 1 << 30);
        q.admit(t).unwrap();
        assert_eq!(q.balance(t), None);
    }

    #[test]
    fn exhausted_tenant_rejects_until_refill() {
        let q = QuotaPolicy::with_manual_clock();
        let t = TenantId::intern("quota-exhaust");
        q.set_quota(t, TenantQuota::scans(2.0, 1.0));
        q.admit(t).unwrap();
        q.debit(t, 2, 0);
        let err = q.admit(t).unwrap_err();
        assert!(matches!(&err, StoreError::QuotaExceeded { tenant } if tenant == "quota-exhaust"));
        assert!(err.is_retryable(), "quota rejections must be retryable");
        // One second refills one scan token.
        q.advance(1.0);
        q.admit(t).unwrap();
        // Refill never exceeds capacity.
        q.advance(1e6);
        assert_eq!(q.balance(t).unwrap().0, 2.0);
    }

    #[test]
    fn post_paid_debt_blocks_until_covered() {
        let q = QuotaPolicy::with_manual_clock();
        let t = TenantId::intern("quota-debt");
        q.set_quota(t, TenantQuota::scans(5.0, 1.0));
        q.admit(t).unwrap();
        // The admitted request turned out expensive: 9 scans against a
        // balance of 5 leaves a debt of 4.
        q.debit(t, 9, 0);
        assert_eq!(q.balance(t).unwrap().0, -4.0);
        assert!(q.admit(t).is_err());
        q.advance(4.0);
        assert!(q.admit(t).is_err(), "balance 0 still lacks a whole token");
        q.advance(1.0);
        q.admit(t).unwrap();
    }

    #[test]
    fn byte_budget_gates_independently_of_scans() {
        let q = QuotaPolicy::with_manual_clock();
        let t = TenantId::intern("quota-bytes");
        q.set_quota(t, TenantQuota::scans(100.0, 0.0).with_bytes(1000.0, 500.0));
        q.admit(t).unwrap();
        q.debit(t, 1, 1000);
        let err = q.admit(t).unwrap_err();
        assert!(matches!(err, StoreError::QuotaExceeded { .. }), "{err:?}");
        assert!(q.balance(t).unwrap().0 > 90.0, "scan balance untouched by byte exhaustion");
        q.advance(1.0);
        q.admit(t).unwrap();
    }

    #[test]
    fn tenants_are_isolated() {
        let q = QuotaPolicy::with_manual_clock();
        let broke = TenantId::intern("quota-iso-broke");
        let healthy = TenantId::intern("quota-iso-healthy");
        q.set_quota(broke, TenantQuota::scans(1.0, 0.0));
        q.set_quota(healthy, TenantQuota::scans(100.0, 0.0));
        q.debit(broke, 5, 0);
        assert!(q.admit(broke).is_err());
        for _ in 0..50 {
            q.admit(healthy).unwrap();
        }
        q.clear_quota(broke);
        q.admit(broke).unwrap();
    }
}
