//! System configuration.

use wg_embed::Aggregation;
use wg_store::SampleSpec;

/// Tunables of a [`crate::WarpGate`] instance.
///
/// Defaults follow the paper's experimental setup: 0.7 SimHash LSH
/// threshold (§4.3), distinct-value sampling (§3.1.3/§4.4 argue sampling is
/// both necessary and safe), SIF aggregation over the hashed web-table
/// embedding space.
#[derive(Debug, Clone, Copy)]
pub struct WarpGateConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Cosine similarity threshold the LSH banding is tuned for.
    pub lsh_threshold: f64,
    /// Signature bit budget for the LSH index.
    pub lsh_bits: usize,
    /// Extra single-bit probes per band (0 disables multi-probe).
    pub probes: usize,
    /// Sampling pushed into every scan (indexing and query time).
    pub sample: SampleSpec,
    /// How value embeddings aggregate into a column embedding.
    pub aggregation: Aggregation,
    /// Drop candidates from the query's own table (the product recommends
    /// *other* tables to join with).
    pub exclude_same_table: bool,
    /// Blend weight `β` for schema-context embeddings (§5.2.1 extension):
    /// column embeddings become `(1−β)·values + β·context(names)`. 0.0
    /// (the default) reproduces the paper's value-only embeddings.
    pub context_weight: f32,
    /// Indexing worker threads; 0 means "all available cores".
    pub threads: usize,
    /// LSH index shards: items partition by id across this many
    /// independently locked sub-indexes, so concurrent inserts and queries
    /// scale past one writer. 0 (the default) resolves to
    /// `std::thread::available_parallelism()` at system construction — the
    /// index serves the whole machine, so it follows the hardware thread
    /// count rather than the `threads` indexing knob. 1 reproduces the
    /// single-lock layout.
    pub shards: usize,
    /// Embedding-cache capacity in entries (keyed by column × sample spec ×
    /// seed × context weight). 0 disables the cache; repeated `discover` /
    /// `joinability` calls then re-scan and re-embed every time.
    pub cache_capacity: usize,
    /// Rows per block when sealing the index into paged segment files
    /// ([`crate::WarpGate::save_paged`]): the unit of disk I/O, cache
    /// residency, and zone-map pruning in the beyond-RAM tier.
    pub block_rows: usize,
    /// Byte budget of the block cache serving paged segments. Blocks past
    /// the budget evict LRU; 0 means unbounded (everything read stays
    /// resident — the all-in-RAM behavior).
    pub block_cache_bytes: usize,
    /// Admission-control concurrency cap across the public entry points
    /// (`discover*`, `joinability`, `sync*`). 0 (the default) disables
    /// admission control entirely — no cap, no queue, no shedding.
    pub admission_cap: usize,
    /// Requests allowed to wait for an admission slot beyond the cap
    /// (only meaningful with `admission_cap > 0`).
    pub admission_queue: usize,
    /// Longest a queued request waits for admission before shedding with
    /// the retryable `Overloaded`, milliseconds.
    pub admission_wait_ms: u64,
    /// Backoff hint carried in shed requests' `Overloaded` errors,
    /// milliseconds.
    pub admission_retry_after_ms: u64,
    /// Master seed (embedding space + LSH hyperplanes).
    pub seed: u64,
}

impl Default for WarpGateConfig {
    fn default() -> Self {
        Self {
            dim: 128,
            lsh_threshold: 0.7,
            lsh_bits: 128,
            probes: 1,
            sample: SampleSpec::DistinctReservoir { n: 1000, seed: 0x5A17 },
            aggregation: Aggregation::default(),
            exclude_same_table: true,
            context_weight: 0.0,
            threads: 0,
            shards: 0,
            cache_capacity: 4096,
            block_rows: 64,
            block_cache_bytes: 4 << 20,
            admission_cap: 0,
            admission_queue: 8,
            admission_wait_ms: 100,
            admission_retry_after_ms: 50,
            seed: 0x5747_4154,
        }
    }
}

impl WarpGateConfig {
    /// A configuration that scans full columns (no sampling) — the
    /// expensive baseline mode of Table 2.
    pub fn full_scan() -> Self {
        Self { sample: SampleSpec::Full, ..Self::default() }
    }

    /// Same configuration with a different sample spec.
    pub fn with_sample(self, sample: SampleSpec) -> Self {
        Self { sample, ..self }
    }

    /// Enable §5.2.1 contextual embeddings at blend weight `beta`.
    pub fn with_context(self, beta: f32) -> Self {
        assert!((0.0..=1.0).contains(&beta), "context weight must be in [0,1]");
        Self { context_weight: beta, ..self }
    }

    /// Same configuration with a different index shard count.
    pub fn with_shards(self, shards: usize) -> Self {
        Self { shards, ..self }
    }

    /// Same configuration with a different embedding-cache capacity
    /// (0 disables caching).
    pub fn with_cache_capacity(self, cache_capacity: usize) -> Self {
        Self { cache_capacity, ..self }
    }

    /// Same configuration with a different paged-segment block size
    /// (rows per block; must be positive).
    pub fn with_block_rows(self, block_rows: usize) -> Self {
        assert!(block_rows > 0, "block_rows must be positive");
        Self { block_rows, ..self }
    }

    /// Same configuration with a different block-cache byte budget
    /// (0 means unbounded).
    pub fn with_block_cache_bytes(self, block_cache_bytes: usize) -> Self {
        Self { block_cache_bytes, ..self }
    }

    /// Same configuration with admission control enabled: at most `cap`
    /// concurrent entry-point calls, up to `queue` more waiting at most
    /// `wait_ms` milliseconds before shedding with the retryable
    /// `Overloaded`. `cap` must be positive (disable by not calling
    /// this — the default config has admission off).
    pub fn with_admission(self, cap: usize, queue: usize, wait_ms: u64) -> Self {
        assert!(cap > 0, "admission cap must be positive");
        Self { admission_cap: cap, admission_queue: queue, admission_wait_ms: wait_ms, ..self }
    }

    /// Effective worker-thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            wg_util::hardware_threads()
        }
    }

    /// Effective index shard count (never 0). The resolution rule for
    /// `shards == 0` is pinned: it follows the machine's hardware thread
    /// count (`std::thread::available_parallelism()`), independent of the
    /// `threads` indexing knob — queries come from arbitrarily many
    /// threads, not just the indexing pool.
    pub fn effective_shards(&self) -> usize {
        if self.shards > 0 {
            self.shards
        } else {
            wg_util::hardware_threads()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = WarpGateConfig::default();
        assert_eq!(c.lsh_threshold, 0.7);
        assert!(matches!(c.sample, SampleSpec::DistinctReservoir { .. }));
        assert!(c.exclude_same_table);
        assert_eq!(c.context_weight, 0.0, "paper setting is value-only");
    }

    #[test]
    fn full_scan_disables_sampling() {
        assert_eq!(WarpGateConfig::full_scan().sample, SampleSpec::Full);
    }

    #[test]
    fn effective_threads_positive() {
        assert!(WarpGateConfig::default().effective_threads() >= 1);
        assert_eq!(WarpGateConfig { threads: 3, ..Default::default() }.effective_threads(), 3);
    }

    #[test]
    fn effective_shards_resolution_rule_is_pinned() {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        // The adaptive default: 0 resolves to the hardware thread count …
        assert_eq!(WarpGateConfig::default().shards, 0, "adaptive sharding is the default");
        assert_eq!(WarpGateConfig::default().effective_shards(), hw);
        // … regardless of the indexing `threads` knob …
        let auto = WarpGateConfig { threads: 5, shards: 0, ..Default::default() };
        assert_eq!(auto.effective_shards(), hw, "0 shards follows hardware, not `threads`");
        // … while explicit counts always win.
        assert_eq!(WarpGateConfig::default().with_shards(3).effective_shards(), 3);
        assert!(WarpGateConfig::default().effective_shards() >= 1);
    }

    #[test]
    fn cache_capacity_knob() {
        assert!(WarpGateConfig::default().cache_capacity > 0, "cache on by default");
        assert_eq!(WarpGateConfig::default().with_cache_capacity(0).cache_capacity, 0);
    }

    #[test]
    fn paged_tier_knobs() {
        let c = WarpGateConfig::default();
        assert!(c.block_rows > 0, "blocks can never be empty");
        assert!(c.block_cache_bytes > 0, "cache is bounded by default");
        assert_eq!(c.with_block_rows(16).block_rows, 16);
        assert_eq!(c.with_block_cache_bytes(0).block_cache_bytes, 0, "0 = unbounded");
    }

    #[test]
    #[should_panic(expected = "block_rows must be positive")]
    fn zero_block_rows_rejected() {
        WarpGateConfig::default().with_block_rows(0);
    }

    #[test]
    fn admission_off_by_default_and_builder_enables() {
        let c = WarpGateConfig::default();
        assert_eq!(c.admission_cap, 0, "admission control must be opt-in");
        let on = c.with_admission(2, 4, 75);
        assert_eq!((on.admission_cap, on.admission_queue, on.admission_wait_ms), (2, 4, 75));
    }

    #[test]
    #[should_panic(expected = "admission cap must be positive")]
    fn zero_admission_cap_rejected() {
        WarpGateConfig::default().with_admission(0, 4, 75);
    }
}
