//! Crash-safe snapshot plumbing: atomic writes, checkpoint rotation with
//! fallback recovery, and a deterministic torn-write chaos harness.
//!
//! A deployed discovery node persists its state so a restart does not
//! re-scan — and re-bill — every attached warehouse. That only helps if
//! the persisted artifact survives the restart's *cause*: a crash may
//! interrupt the very write that was saving the state. The guarantees
//! this module layers over [`crate::WarpGate::save_to_file`]:
//!
//! 1. **Atomicity** ([`atomic_write`]): bytes stream into a sibling
//!    `*.tmp` file, are fsynced, and the temp is renamed over the
//!    destination. POSIX `rename(2)` is atomic within a filesystem, so at
//!    every instant the destination holds either the complete old bytes
//!    or the complete new bytes — never a prefix of either. A mid-write
//!    crash (or a full disk) strands at most a temp file.
//! 2. **Detection** (the WGFT footer, see [`wg_util::checksum`]): if
//!    bytes *do* rot — a torn sector, a bit flip — the loader rejects the
//!    file with [`StoreError::SnapshotCorrupt`] instead of installing
//!    garbage.
//! 3. **Recovery** ([`Checkpointer`]): each checkpoint rotates the
//!    previous snapshot to `<path>.prev` before installing the new one,
//!    so a corrupt newest generation falls back to the one before it.
//!    The rotation is rename-only; the decision table lives in
//!    DESIGN.md §10.
//! 4. **Proof** ([`TornWriter`]): the chaos harness enumerates every
//!    crash offset of a checkpoint write (and every single-bit flip of
//!    the result) as concrete on-disk states, so a property test can
//!    assert that recovery always lands on a complete old or new state.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use wg_store::{StoreError, StoreResult};

use crate::system::WarpGate;

/// Suffix of the in-flight temp file next to a snapshot path.
const TMP_SUFFIX: &str = ".tmp";
/// Suffix of the previous checkpoint generation next to a snapshot path.
const PREV_SUFFIX: &str = ".prev";

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(suffix);
    path.with_file_name(name)
}

/// Stream snapshot bytes into a writer in bounded chunks.
///
/// This is the seam the mid-write failure tests inject into: a writer
/// that errors after N bytes exercises exactly the partial-write path a
/// full disk produces, and the error must propagate (no swallowed
/// short writes).
pub fn stream_snapshot(bytes: &[u8], w: &mut dyn Write) -> io::Result<()> {
    for chunk in bytes.chunks(64 * 1024) {
        w.write_all(chunk)?;
    }
    w.flush()
}

/// Write `bytes` to `path` atomically: temp sibling → fsync → rename.
///
/// On any failure the destination is untouched (the historical
/// `File::create(path)` truncated the old snapshot before the first byte
/// of the new one landed — the bug this replaces) and the temp file is
/// cleaned up on a best-effort basis.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let tmp = sibling(path, TMP_SUFFIX);
    let write = (|| {
        let file = fs::File::create(&tmp)?;
        let mut w = io::BufWriter::new(file);
        stream_snapshot(bytes, &mut w)?;
        // Data must be on disk before the rename publishes it; a rename
        // that survives a crash while the data didn't would install a
        // torn file under the *final* name — the one state the scheme
        // exists to prevent.
        w.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if write.is_err() {
        fs::remove_file(&tmp).ok();
    }
    write?;
    // Persist the rename itself (the directory entry). Failure here is
    // not fatal to this process — the data is safe under one name or the
    // other — so a filesystem that refuses directory fsync is tolerated.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = fs::File::open(dir) {
            d.sync_all().ok();
        }
    }
    Ok(())
}

/// Where a recovery found its state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverySource {
    /// The newest checkpoint loaded clean.
    Primary,
    /// The newest was missing or corrupt; the `.prev` generation loaded.
    Previous,
}

/// What [`Checkpointer::recover`] restored and how.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Which generation the state came from.
    pub source: RecoverySource,
    /// Columns in the restored index.
    pub columns: usize,
    /// The error the primary failed with, when `source` is
    /// [`RecoverySource::Previous`] — surfaced so operators learn the
    /// newest generation was lost even though the node came back up.
    pub primary_error: Option<StoreError>,
}

/// Rotating two-generation checkpoint writer and its recovery path.
///
/// `checkpoint()` keeps exactly two generations next to each other:
/// `<path>` (newest) and `<path>.prev` (the one before). The rotation is
/// three renames deep at most and never rewrites a published file:
///
/// ```text
/// write <path>.tmp  (fsync)        — crash here: both generations intact
/// rename <path>   → <path>.prev    — crash here: newest absent, prev = old
/// rename <path>.tmp → <path>       — crash here: done anyway
/// ```
///
/// `recover()` inverts it: load `<path>`; if that is missing or corrupt,
/// load `<path>.prev`; report which one won. Combined with the loader's
/// no-partial-mutation guarantee, every crash state enumerated by
/// [`TornWriter`] recovers to a complete old or new snapshot.
#[derive(Debug, Clone)]
pub struct Checkpointer {
    path: PathBuf,
}

impl Checkpointer {
    /// A checkpointer writing generations at `path` / `path.prev`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// The newest-generation path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The previous-generation path (`<path>.prev`).
    pub fn previous_path(&self) -> PathBuf {
        sibling(&self.path, PREV_SUFFIX)
    }

    /// Snapshot `wg` into the newest generation, rotating the current
    /// newest (if any) to `.prev` first.
    pub fn checkpoint(&self, wg: &WarpGate) -> io::Result<()> {
        let bytes = wg.to_bytes();
        let tmp = sibling(&self.path, TMP_SUFFIX);
        let write = (|| {
            let file = fs::File::create(&tmp)?;
            let mut w = io::BufWriter::new(file);
            stream_snapshot(&bytes, &mut w)?;
            w.into_inner().map_err(|e| e.into_error())?.sync_all()
        })();
        if let Err(e) = write {
            fs::remove_file(&tmp).ok();
            return Err(e);
        }
        // Rotate only once the new generation is safely on disk: demoting
        // the old snapshot before that could leave zero loadable
        // generations after a crash.
        if self.path.exists() {
            fs::rename(&self.path, self.previous_path())?;
        }
        fs::rename(&tmp, &self.path)?;
        if let Some(dir) = self.path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = fs::File::open(dir) {
                d.sync_all().ok();
            }
        }
        Ok(())
    }

    /// Restore `wg` from the newest loadable generation.
    ///
    /// Decision table (also DESIGN.md §10):
    ///
    /// | `<path>`        | `<path>.prev`  | outcome                           |
    /// |-----------------|----------------|-----------------------------------|
    /// | loads           | —              | `Primary`                         |
    /// | missing/corrupt | loads          | `Previous` + the primary's error  |
    /// | corrupt         | missing/corrupt| the primary's error               |
    /// | missing         | missing        | `NotFound`                        |
    ///
    /// In-flight `.tmp` files are never consulted: an un-renamed temp was
    /// never published, so its contents were never promised.
    pub fn recover(&self, wg: &mut WarpGate) -> StoreResult<RecoveryReport> {
        let primary_error = match wg.load_from_file(&self.path) {
            Ok(()) => {
                return Ok(RecoveryReport {
                    source: RecoverySource::Primary,
                    columns: wg.len(),
                    primary_error: None,
                })
            }
            Err(e) => e,
        };
        match wg.load_from_file(self.previous_path()) {
            Ok(()) => Ok(RecoveryReport {
                source: RecoverySource::Previous,
                columns: wg.len(),
                primary_error: Some(primary_error),
            }),
            // The newest generation's failure is the interesting one: a
            // corrupt primary with a missing prev should read as "your
            // snapshot is corrupt", not "file not found".
            Err(prev_error) => match (&primary_error, &prev_error) {
                (StoreError::NotFound(_), _) => Err(prev_error),
                _ => Err(primary_error),
            },
        }
    }
}

/// One concrete on-disk state a crash (or bit rot) can leave behind.
///
/// `None` means the file does not exist in this state. Materializing a
/// state writes/removes the three generation files under a checkpoint
/// path so recovery can be exercised against it.
#[derive(Debug, Clone)]
pub struct CrashState {
    /// Human-readable provenance, for assertion messages.
    pub label: String,
    /// Contents of `<path>` in this state.
    pub primary: Option<Vec<u8>>,
    /// Contents of `<path>.prev` in this state.
    pub previous: Option<Vec<u8>>,
    /// Contents of `<path>.tmp` in this state.
    pub temp: Option<Vec<u8>>,
}

impl CrashState {
    /// Write this state's files under `checkpoint_path` (removing files
    /// the state says are absent).
    pub fn materialize(&self, checkpoint_path: &Path) -> io::Result<()> {
        let files = [
            (checkpoint_path.to_path_buf(), &self.primary),
            (sibling(checkpoint_path, PREV_SUFFIX), &self.previous),
            (sibling(checkpoint_path, TMP_SUFFIX), &self.temp),
        ];
        for (path, contents) in files {
            match contents {
                Some(bytes) => fs::write(&path, bytes)?,
                None => match fs::remove_file(&path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                },
            }
        }
        Ok(())
    }
}

/// Deterministic torn-write enumerator: every on-disk state a crash can
/// leave while [`Checkpointer::checkpoint`] replaces `old` with `new`.
///
/// The rotation has exactly three classes of interruption point, all
/// enumerated by [`TornWriter::crash_states`]:
///
/// * **during the temp write** — one state per byte prefix of `new`
///   (including the empty prefix): the temp holds `new[..k]`, the
///   published generations are untouched;
/// * **between the two renames** — the newest name is momentarily absent,
///   `.prev` holds `old`, the temp holds all of `new`;
/// * **after completion** — `<path>` = `new`, `.prev` = `old`.
///
/// [`TornWriter::bit_flip_states`] separately yields the completed state
/// with every single bit of the newest generation flipped — the media-rot
/// cases where the footer checksum, not write atomicity, is the defense.
#[derive(Debug, Clone)]
pub struct TornWriter {
    old: Option<Vec<u8>>,
    new: Vec<u8>,
}

impl TornWriter {
    /// A replayable checkpoint that overwrites `old` (the currently
    /// published snapshot, if any) with `new`.
    pub fn new(old: Option<Vec<u8>>, new: Vec<u8>) -> Self {
        Self { old, new }
    }

    /// Every crash-interruption state of the rotation, in write order.
    pub fn crash_states(&self) -> Vec<CrashState> {
        let mut states = Vec::with_capacity(self.new.len() + 3);
        for k in 0..=self.new.len() {
            states.push(CrashState {
                label: format!("crash after {k}/{} temp bytes", self.new.len()),
                primary: self.old.clone(),
                previous: None,
                temp: Some(self.new[..k].to_vec()),
            });
        }
        if self.old.is_some() {
            states.push(CrashState {
                label: "crash between demote and promote renames".into(),
                primary: None,
                previous: self.old.clone(),
                temp: Some(self.new.clone()),
            });
        }
        states.push(CrashState {
            label: "completed rotation".into(),
            primary: Some(self.new.clone()),
            previous: self.old.clone(),
            temp: None,
        });
        states
    }

    /// The completed rotation with bit `bit` of byte `offset` of the
    /// newest generation flipped, for every byte offset — one flipped bit
    /// per byte keeps the sweep linear while still touching every byte of
    /// every frame (header, entries, index, sync state, footer).
    pub fn bit_flip_states(&self) -> Vec<CrashState> {
        (0..self.new.len())
            .map(|offset| {
                let mut flipped = self.new.clone();
                flipped[offset] ^= 1 << (offset % 8);
                CrashState {
                    label: format!("bit {} of byte {offset} flipped", offset % 8),
                    primary: Some(flipped),
                    previous: self.old.clone(),
                    temp: None,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Errors after `limit` bytes, like a disk running full mid-write.
    struct FailingWriter {
        written: usize,
        limit: usize,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let room = self.limit.saturating_sub(self.written);
            if room == 0 {
                return Err(io::Error::other("disk full"));
            }
            let n = buf.len().min(room);
            self.written += n;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wg_durability_{tag}_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn stream_snapshot_propagates_mid_write_failures() {
        let bytes = vec![0xAB; 200 * 1024];
        let mut w = FailingWriter { written: 0, limit: 100 * 1024 };
        let err = stream_snapshot(&bytes, &mut w).unwrap_err();
        assert!(err.to_string().contains("disk full"), "{err}");
        assert_eq!(w.written, 100 * 1024, "must have failed mid-stream, not up front");
    }

    #[test]
    fn atomic_write_replaces_and_survives_failure() {
        let dir = tmp_dir("atomic");
        let path = dir.join("snapshot.bin");
        atomic_write(&path, b"generation one").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"generation one");
        atomic_write(&path, b"generation two").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"generation two");

        // Block the temp path with a directory: the write fails before a
        // single destination byte moves, and the old snapshot survives —
        // the regression the bare `File::create(path)` writer had.
        let tmp = sibling(&path, TMP_SUFFIX);
        fs::create_dir_all(&tmp).unwrap();
        assert!(atomic_write(&path, b"generation three").is_err());
        assert_eq!(fs::read(&path).unwrap(), b"generation two", "failed write must not truncate");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn siblings_attach_suffixes_to_the_file_name() {
        let p = Path::new("/var/lib/wg/snapshot.bin");
        assert_eq!(sibling(p, TMP_SUFFIX), Path::new("/var/lib/wg/snapshot.bin.tmp"));
        assert_eq!(sibling(p, PREV_SUFFIX), Path::new("/var/lib/wg/snapshot.bin.prev"));
    }

    #[test]
    fn crash_states_enumerate_every_offset() {
        let torn = TornWriter::new(Some(b"old".to_vec()), b"newer".to_vec());
        let states = torn.crash_states();
        // 6 prefixes (0..=5) + between-renames + completed.
        assert_eq!(states.len(), 8);
        assert!(states[..6].iter().all(|s| s.primary.as_deref() == Some(b"old" as &[u8])));
        let between = &states[6];
        assert!(between.primary.is_none());
        assert_eq!(between.previous.as_deref(), Some(b"old" as &[u8]));
        assert_eq!(between.temp.as_deref(), Some(b"newer" as &[u8]));
        let done = &states[7];
        assert_eq!(done.primary.as_deref(), Some(b"newer" as &[u8]));
        assert_eq!(done.previous.as_deref(), Some(b"old" as &[u8]));

        // First-ever checkpoint: no old generation, no between-renames
        // state (there is nothing to demote).
        let first = TornWriter::new(None, b"new".to_vec());
        assert_eq!(first.crash_states().len(), 5);
    }

    #[test]
    fn bit_flip_states_touch_every_byte() {
        let torn = TornWriter::new(None, vec![0u8; 16]);
        let flips = torn.bit_flip_states();
        assert_eq!(flips.len(), 16);
        for (i, s) in flips.iter().enumerate() {
            let p = s.primary.as_ref().unwrap();
            assert_eq!(p[i], 1 << (i % 8), "exactly one bit of byte {i} flipped");
            assert_eq!(p.iter().filter(|&&b| b != 0).count(), 1);
        }
    }

    #[test]
    fn materialize_round_trips_states() {
        let dir = tmp_dir("materialize");
        let path = dir.join("snapshot.bin");
        let state = CrashState {
            label: "test".into(),
            primary: Some(b"p".to_vec()),
            previous: None,
            temp: Some(b"t".to_vec()),
        };
        state.materialize(&path).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"p");
        assert!(!sibling(&path, PREV_SUFFIX).exists());
        assert_eq!(fs::read(sibling(&path, TMP_SUFFIX)).unwrap(), b"t");

        // Re-materializing a different state removes what it declares absent.
        let gone = CrashState { label: "gone".into(), primary: None, previous: None, temp: None };
        gone.materialize(&path).unwrap();
        assert!(!path.exists() && !sibling(&path, TMP_SUFFIX).exists());
        fs::remove_dir_all(&dir).ok();
    }
}
