//! Index persistence.
//!
//! A deployed discovery service must survive restarts without re-scanning
//! (and re-paying for) the warehouse. The persisted artifact is the LSH
//! index (vectors + geometry + seed) plus the id → column-reference
//! registry; because the embedding model itself is deterministic and
//! derived from the config seed, nothing model-side needs to be stored.
//!
//! Two frame versions exist (see DESIGN.md §9):
//!
//! * **v1** — the pre-federation format: entries are bare
//!   `(id, database, table, column)` tuples. Still written whenever every
//!   indexed column lives in the `"default"` namespace (byte-identical to
//!   what the pre-federation writer produced), and still read — old
//!   snapshots load with every ref in the default namespace.
//! * **v2** — federated: entries carry their backend *name* (via
//!   [`ColumnRef::encode`]), and the index payload is the WGLX v2 frame
//!   with its backend-name table. Names are the authoritative identity
//!   across processes; the loader re-interns each name and **recomposes
//!   every item id** from the local interner's bits plus the saved
//!   per-backend local part, because the saving process's bit assignment
//!   need not match this one's.
//!
//! Since the durability work (DESIGN.md §10) every written snapshot also
//! carries, *after* the index payload:
//!
//! * a **WGST sync-state frame** — per backend name, the table → version
//!   tokens the index currently reflects, so a restarted node's first
//!   `sync()` re-scans only tables that actually changed instead of
//!   re-billing the whole warehouse; and
//! * a trailing **WGFT integrity footer** (see [`wg_util::checksum`]) —
//!   magic, body length and CRC-32 over everything before it, so torn or
//!   bit-rotted files are rejected before a single body byte is trusted.
//!
//! Both are strictly additive: the v1/v2 header version is unchanged, and
//! footerless pre-durability files (which also lack WGST) still load —
//! with the historical behavior of invalidating all sync state. Every
//! integrity failure surfaces as [`StoreError::SnapshotCorrupt`] with the
//! byte offset where parsing went wrong; the loader parses into locals and
//! installs state only on full success, so a corrupt file never leaves the
//! system half-mutated (which is what lets recovery fall back to the
//! previous checkpoint generation, see [`crate::durability`]).

use std::io::Read;
use std::path::Path;

use wg_lsh::{compose_item_id, item_local, ShardedLshIndex};
use wg_store::{BackendId, ColumnRef, StoreError, StoreResult};
use wg_util::{checksum, codec};

use crate::system::{PersistedBackendSync, WarpGate};

const MAGIC: [u8; 4] = *b"WGSY";
const VERSION: u32 = 1;
const VERSION_FEDERATED: u32 = 2;

/// Magic of the appended sync-state frame.
const SYNC_MAGIC: [u8; 4] = *b"WGST";
const SYNC_VERSION: u32 = 1;

/// A parse failure at a known position in the snapshot body: the offset
/// pins *where* the bytes stopped making sense, which with a verified
/// checksum should never happen (and without one is the whole diagnosis).
fn corrupt(what: &str, body: &[u8], cursor: &[u8], e: impl std::fmt::Display) -> StoreError {
    let offset = body.len() - cursor.len();
    StoreError::SnapshotCorrupt(format!("{what} at byte offset {offset}: {e}"))
}

impl WarpGate {
    /// Serialize the index + registry to a byte buffer. All-default
    /// contents produce the pre-federation v1 frame, byte for byte; any
    /// other namespace upgrades the frame to v2.
    pub fn to_bytes(&self) -> Vec<u8> {
        let (index_bytes, entries) = self.snapshot_for_persist();
        let federated = entries.iter().any(|(_, r)| !r.backend.is_default());
        let mut buf = Vec::with_capacity(index_bytes.len() + 64 * entries.len() + 64);
        if federated {
            codec::put_header(&mut buf, MAGIC, VERSION_FEDERATED);
            codec::put_len(&mut buf, entries.len());
            for (id, r) in &entries {
                codec::put_u32(&mut buf, *id);
                r.encode(&mut buf);
            }
        } else {
            codec::put_header(&mut buf, MAGIC, VERSION);
            codec::put_len(&mut buf, entries.len());
            for (id, r) in &entries {
                codec::put_u32(&mut buf, *id);
                codec::put_str(&mut buf, &r.database);
                codec::put_str(&mut buf, &r.table);
                codec::put_str(&mut buf, &r.column);
            }
        }
        codec::put_bytes(&mut buf, &index_bytes);
        // Durable sync tokens: written even when empty so the frame layout
        // is uniform; only pre-durability files lack it.
        let sync = self.sync_state_for_persist();
        codec::put_header(&mut buf, SYNC_MAGIC, SYNC_VERSION);
        codec::put_len(&mut buf, sync.len());
        for backend in &sync {
            codec::put_str(&mut buf, &backend.name);
            codec::put_u64(&mut buf, backend.epoch);
            codec::put_len(&mut buf, backend.tables.len());
            for (database, table, version) in &backend.tables {
                codec::put_str(&mut buf, database);
                codec::put_str(&mut buf, table);
                codec::put_u64(&mut buf, *version);
            }
        }
        checksum::append_footer(&mut buf);
        buf
    }

    /// Restore index + registry from bytes produced by [`Self::to_bytes`]
    /// (either frame version). The receiving system must be configured
    /// with the same dimension (and should use the same seed, or query
    /// embeddings will not live in the persisted index's space). The
    /// snapshot is shard-count independent: items redistribute into this
    /// system's configured shard layout on load, so a snapshot saved with
    /// 8 shards restores fine into 1 (or vice versa).
    pub fn load_bytes(&mut self, bytes: &[u8]) -> StoreResult<()> {
        // A checksum mismatch or torn footer is fatal for these bytes —
        // it is never downgraded to a legacy (footerless) parse. Files
        // that simply have no footer fall through to the body parse,
        // whose own bounds checks reject truncations.
        let (body, _integrity) = checksum::split_footer(bytes)
            .map_err(|e| StoreError::SnapshotCorrupt(format!("integrity footer: {e}")))?;
        let mut cursor = body;
        let version = codec::get_header(&mut cursor, MAGIC)
            .map_err(|e| corrupt("snapshot header", body, cursor, e))?;
        let n = codec::get_len(&mut cursor)
            .map_err(|e| corrupt("registry entry count", body, cursor, e))?;
        let mut entries = Vec::with_capacity(n.min(1 << 20));
        match version {
            VERSION => {
                for i in 0..n {
                    let id = codec::get_u32(&mut cursor)
                        .map_err(|e| corrupt(&format!("entry #{i} id"), body, cursor, e))?;
                    let database = codec::get_str(&mut cursor)
                        .map_err(|e| corrupt(&format!("entry #{i} database"), body, cursor, e))?;
                    let table = codec::get_str(&mut cursor)
                        .map_err(|e| corrupt(&format!("entry #{i} table"), body, cursor, e))?;
                    let column = codec::get_str(&mut cursor)
                        .map_err(|e| corrupt(&format!("entry #{i} column"), body, cursor, e))?;
                    entries.push((id, ColumnRef::new(database, table, column)));
                }
            }
            VERSION_FEDERATED => {
                for i in 0..n {
                    let saved_id = codec::get_u32(&mut cursor)
                        .map_err(|e| corrupt(&format!("entry #{i} id"), body, cursor, e))?;
                    let r = ColumnRef::decode(&mut cursor)
                        .map_err(|e| corrupt(&format!("entry #{i} ref"), body, cursor, e))?;
                    // The saved id's high bits are the *saving* process's
                    // interner assignment; only the name travels. Recompose
                    // against this process's bits for the (re-interned)
                    // backend, keeping the saved per-backend local part.
                    let id = compose_item_id(r.backend.bits(), item_local(saved_id));
                    entries.push((id, r));
                }
            }
            v => {
                return Err(StoreError::SnapshotCorrupt(format!(
                    "unsupported snapshot version {v}"
                )))
            }
        }
        let index_bytes =
            codec::get_bytes(&mut cursor).map_err(|e| corrupt("index payload", body, cursor, e))?;
        let mut index_cursor = &index_bytes[..];
        // The same name-authoritative remap applies inside the index frame
        // (v1 index payloads have no name table and resolve nothing).
        let index = ShardedLshIndex::decode_with_backends(
            &mut index_cursor,
            self.config().effective_shards(),
            |name| Ok(BackendId::named(name).bits()),
        )
        .map_err(|e| corrupt("index frame", body, cursor, e))?;
        // Optional durable sync tokens; pre-durability files end here.
        let sync =
            if cursor.is_empty() { None } else { Some(parse_sync_frame(body, &mut cursor)?) };
        if !cursor.is_empty() {
            return Err(corrupt("snapshot end", body, cursor, "trailing bytes after last frame"));
        }
        // Everything parsed into locals; only now touch system state.
        self.restore_from_persist(index, entries, sync)
    }

    /// Write the snapshot to a file, atomically: the bytes stream into a
    /// sibling temp file which is fsynced and renamed over `path`, so a
    /// crash — or a full disk — mid-write can never destroy a snapshot
    /// that was already there (see [`crate::durability::atomic_write`]).
    pub fn save_to_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        crate::durability::atomic_write(path, &self.to_bytes())
    }

    /// Load a snapshot from a file into this (already configured) system.
    ///
    /// A missing/unreadable file is [`StoreError::NotFound`]; a present
    /// file that fails its checksum or parse is
    /// [`StoreError::SnapshotCorrupt`] — callers that checkpoint (see
    /// [`crate::durability::Checkpointer`]) use the distinction to fall
    /// back to the previous generation.
    pub fn load_from_file(&mut self, path: impl AsRef<Path>) -> StoreResult<()> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| StoreError::NotFound(format!("snapshot file: {e}")))?;
        self.load_bytes(&bytes)
    }
}

/// Parse the WGST frame the cursor is sitting on. `body` is the full
/// snapshot body, for offset reporting only.
fn parse_sync_frame(body: &[u8], cursor: &mut &[u8]) -> StoreResult<Vec<PersistedBackendSync>> {
    let version = codec::get_header(cursor, SYNC_MAGIC)
        .map_err(|e| corrupt("sync-state header", body, cursor, e))?;
    if version != SYNC_VERSION {
        return Err(StoreError::SnapshotCorrupt(format!(
            "unsupported sync-state frame version {version}"
        )));
    }
    let n = codec::get_len(cursor).map_err(|e| corrupt("sync-state backends", body, cursor, e))?;
    let mut backends = Vec::with_capacity(n.min(1 << 10));
    for i in 0..n {
        let name = codec::get_str(cursor)
            .map_err(|e| corrupt(&format!("sync backend #{i} name"), body, cursor, e))?;
        let epoch = codec::get_u64(cursor)
            .map_err(|e| corrupt(&format!("sync backend #{i} epoch"), body, cursor, e))?;
        let t = codec::get_len(cursor)
            .map_err(|e| corrupt(&format!("sync backend #{i} tables"), body, cursor, e))?;
        let mut tables = Vec::with_capacity(t.min(1 << 16));
        for j in 0..t {
            let database = codec::get_str(cursor)
                .map_err(|e| corrupt(&format!("sync token #{i}.{j} database"), body, cursor, e))?;
            let table = codec::get_str(cursor)
                .map_err(|e| corrupt(&format!("sync token #{i}.{j} table"), body, cursor, e))?;
            let ver = codec::get_u64(cursor)
                .map_err(|e| corrupt(&format!("sync token #{i}.{j} version"), body, cursor, e))?;
            tables.push((database, table, ver));
        }
        backends.push(PersistedBackendSync { name, epoch, tables });
    }
    Ok(backends)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WarpGateConfig;
    use std::sync::Arc;
    use wg_store::{CdwConfig, CdwConnector, Column, Database, Table, Warehouse};

    fn connector() -> Arc<CdwConnector> {
        let mut w = Warehouse::new("w");
        let mut db = Database::new("db");
        db.add_table(
            Table::new(
                "a",
                vec![Column::text("x", (0..50).map(|i| format!("val {i}")).collect::<Vec<_>>())],
            )
            .unwrap(),
        );
        db.add_table(
            Table::new(
                "b",
                vec![Column::text("y", (0..50).map(|i| format!("VAL {i}")).collect::<Vec<_>>())],
            )
            .unwrap(),
        );
        w.add_database(db);
        Arc::new(CdwConnector::new(w, CdwConfig::free()))
    }

    #[test]
    fn roundtrip_preserves_discovery() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        wg.index_warehouse().unwrap();
        let q = ColumnRef::new("db", "a", "x");
        let before = wg.discover(&q, 3).unwrap().candidates;

        let bytes = wg.to_bytes();
        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), c);
        fresh.load_bytes(&bytes).unwrap();
        assert_eq!(fresh.len(), wg.len());
        let after = fresh.discover(&q, 3).unwrap().candidates;
        assert_eq!(before, after);
    }

    #[test]
    fn roundtrip_across_shard_counts() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default().with_shards(8), c.clone());
        wg.index_warehouse().unwrap();
        let q = ColumnRef::new("db", "a", "x");
        let want = wg.discover(&q, 3).unwrap().candidates;
        let bytes = wg.to_bytes();
        for shards in [1usize, 3, 16] {
            let mut fresh =
                WarpGate::with_backend(WarpGateConfig::default().with_shards(shards), c.clone());
            fresh.load_bytes(&bytes).unwrap();
            assert_eq!(fresh.len(), wg.len());
            let got = fresh.discover(&q, 3).unwrap().candidates;
            assert_eq!(got, want, "results changed through a {shards}-shard reload");
        }
    }

    #[test]
    fn roundtrip_after_removal_keeps_gaps() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c);
        wg.index_warehouse().unwrap();
        wg.remove_table("db", "b");
        let bytes = wg.to_bytes();
        let mut fresh = WarpGate::new(WarpGateConfig::default());
        fresh.load_bytes(&bytes).unwrap();
        assert_eq!(fresh.len(), 1);
        // The removed table must not reappear.
        let hits = fresh.discover_values(&["VAL 1"], 5);
        assert!(hits.iter().all(|h| h.reference.table != "b"));
    }

    #[test]
    fn file_roundtrip() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c);
        wg.index_warehouse().unwrap();
        let path = std::env::temp_dir().join(format!("wg_snapshot_{}.bin", std::process::id()));
        wg.save_to_file(&path).unwrap();
        let mut fresh = WarpGate::new(WarpGateConfig::default());
        fresh.load_from_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(fresh.len(), 2);
    }

    #[test]
    fn restore_carries_sync_tokens_so_unchanged_content_syncs_as_noop() {
        // The tentpole behavior: persisted version tokens survive the
        // restart, so the first sync of a restored system over unchanged
        // warehouse content re-bills *nothing*.
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        wg.index_warehouse().unwrap();
        assert!(wg.sync().unwrap().is_noop(), "freshly indexed system syncs as a no-op");
        let bytes = wg.to_bytes();
        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), c);
        fresh.load_bytes(&bytes).unwrap();
        let report = fresh.sync().unwrap();
        assert!(
            report.is_noop(),
            "restored tokens must make an unchanged-content sync a no-op: {report:?}"
        );
    }

    #[test]
    fn legacy_snapshots_without_sync_frame_invalidate_sync_state() {
        // Pre-durability files carry no WGST frame (and no footer); they
        // must keep their historical behavior — the first sync after the
        // restore conservatively re-scans every backend table.
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        wg.index_warehouse().unwrap();
        wg.sync().unwrap();
        let bytes = wg.to_bytes();
        // Reconstruct what the old writer produced: header + entries +
        // index payload, nothing after.
        let mut cursor = &bytes[..];
        codec::get_header(&mut cursor, MAGIC).unwrap();
        let n = codec::get_len(&mut cursor).unwrap();
        for _ in 0..n {
            codec::get_u32(&mut cursor).unwrap();
            codec::get_str(&mut cursor).unwrap();
            codec::get_str(&mut cursor).unwrap();
            codec::get_str(&mut cursor).unwrap();
        }
        codec::get_bytes(&mut cursor).unwrap();
        let legacy = bytes[..bytes.len() - cursor.len()].to_vec();

        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), c);
        fresh.load_bytes(&legacy).unwrap();
        let report = fresh.sync().unwrap();
        assert_eq!(
            report.tables_added + report.tables_updated,
            2,
            "legacy restore must reconcile every backend table: {report:?}"
        );
    }

    #[test]
    fn restored_tokens_rescan_only_what_changed() {
        // The billing story: after a restart, mutate one of the two
        // tables — sync must re-scan that table only.
        let mut w = Warehouse::new("w");
        let mut db = Database::new("db");
        for t in ["a", "b"] {
            db.add_table(
                Table::new(
                    t,
                    vec![Column::text(
                        "x",
                        (0..40).map(|i| format!("{t} {i}")).collect::<Vec<_>>(),
                    )],
                )
                .unwrap(),
            );
        }
        w.add_database(db);
        let c = Arc::new(CdwConnector::new(w, CdwConfig::free()));
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        wg.index_warehouse().unwrap();
        let bytes = wg.to_bytes();

        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        fresh.load_bytes(&bytes).unwrap();
        c.warehouse_mut().database_mut("db").add_table(
            Table::new("b", vec![Column::text("x", vec!["changed".to_string(); 40])]).unwrap(),
        );
        let report = fresh.sync().unwrap();
        assert_eq!(report.tables_updated, 1, "only the mutated table re-scans: {report:?}");
        assert_eq!(report.tables_added, 0, "{report:?}");
    }

    #[test]
    fn snapshots_carry_the_integrity_footer() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c);
        wg.index_warehouse().unwrap();
        let bytes = wg.to_bytes();
        let (body, check) = wg_util::checksum::split_footer(&bytes).unwrap();
        assert_eq!(check, wg_util::checksum::FooterCheck::Verified);
        assert_eq!(body.len() + wg_util::checksum::FOOTER_LEN, bytes.len());

        // Corrupt one body byte: the checksum catches it, the error is
        // typed, and the target system stays untouched.
        let mut corrupted = bytes.clone();
        corrupted[10] ^= 0x40;
        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), connector());
        let err = fresh.load_bytes(&corrupted).unwrap_err();
        assert!(matches!(err, StoreError::SnapshotCorrupt(_)), "{err}");
        assert_eq!(fresh.len(), 0, "failed load must not partially mutate");
    }

    #[test]
    fn rejects_garbage_and_dim_mismatch() {
        let mut wg = WarpGate::new(WarpGateConfig::default());
        assert!(wg.load_bytes(b"garbage").is_err());

        let c = connector();
        let wg64 = WarpGate::with_backend(WarpGateConfig { dim: 64, ..Default::default() }, c);
        wg64.index_warehouse().unwrap();
        let bytes = wg64.to_bytes();
        let mut wg128 = WarpGate::new(WarpGateConfig::default());
        assert!(wg128.load_bytes(&bytes).is_err(), "dimension mismatch must fail");
    }

    #[test]
    fn missing_file_errors() {
        let mut wg = WarpGate::new(WarpGateConfig::default());
        assert!(wg.load_from_file("/nonexistent/path/snapshot.bin").is_err());
    }

    #[test]
    fn all_default_snapshots_stay_version_1() {
        // Back-compat pin: a system whose every column lives in the
        // default namespace writes the pre-federation frame — old readers
        // keep working, and old snapshots keep loading (into the default
        // namespace), indefinitely.
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        wg.index_warehouse().unwrap();
        let bytes = wg.to_bytes();
        let mut cursor = &bytes[..];
        assert_eq!(codec::get_header(&mut cursor, MAGIC).unwrap(), VERSION);

        // Old bytes → default namespace, and a re-encode does not upgrade
        // the frame.
        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), c);
        fresh.load_bytes(&bytes).unwrap();
        let q = ColumnRef::new("db", "a", "x");
        let d = fresh.discover(&q, 3).unwrap();
        assert!(d.candidates.iter().all(|j| j.reference.backend.is_default()));
        let reencoded = fresh.to_bytes();
        let mut cursor = &reencoded[..];
        assert_eq!(codec::get_header(&mut cursor, MAGIC).unwrap(), VERSION);
        let mut again = WarpGate::with_backend(WarpGateConfig::default(), connector());
        again.load_bytes(&reencoded).unwrap();
        assert_eq!(again.discover(&q, 3).unwrap().candidates, d.candidates);
    }

    #[test]
    fn federated_snapshot_roundtrip_preserves_namespaces() {
        let cdw = connector();
        let mut lake_w = Warehouse::new("lake");
        lake_w.database_mut("raw").add_table(
            Table::new(
                "dump",
                vec![Column::text(
                    "x_variant",
                    (0..50).map(|i| format!("Val {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        let lake_c = Arc::new(CdwConnector::new(lake_w, CdwConfig::free()));

        let wg = WarpGate::with_backend(WarpGateConfig::default(), cdw.clone());
        let lake = wg.attach_named("persist-test-lake", lake_c.clone());
        wg.index_warehouse().unwrap();
        assert_eq!(wg.len(), 3);
        let q = ColumnRef::new("db", "a", "x");
        let before = wg.discover(&q, 5).unwrap().candidates;
        assert!(
            before.iter().any(|j| j.reference.backend == lake),
            "fixture must produce a cross-namespace hit: {before:?}"
        );

        let bytes = wg.to_bytes();
        let mut cursor = &bytes[..];
        assert_eq!(codec::get_header(&mut cursor, MAGIC).unwrap(), VERSION_FEDERATED);

        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), cdw);
        fresh.attach_named("persist-test-lake", lake_c);
        fresh.load_bytes(&bytes).unwrap();
        assert_eq!(fresh.len(), 3);
        assert_eq!(fresh.discover(&q, 5).unwrap().candidates, before);
        // Scoped discovery still addresses the restored namespace.
        let scoped =
            fresh.discover_scoped(&q, 5, &wg_lsh::DiscoverScope::include([lake.bits()])).unwrap();
        assert!(!scoped.candidates.is_empty());
        assert!(scoped.candidates.iter().all(|j| j.reference.backend == lake));
    }
}
