//! Index persistence.
//!
//! A deployed discovery service must survive restarts without re-scanning
//! (and re-paying for) the warehouse. The persisted artifact is the LSH
//! index (vectors + geometry + seed) plus the id → column-reference
//! registry; because the embedding model itself is deterministic and
//! derived from the config seed, nothing model-side needs to be stored.
//!
//! Two frame versions exist (see DESIGN.md §9):
//!
//! * **v1** — the pre-federation format: entries are bare
//!   `(id, database, table, column)` tuples. Still written whenever every
//!   indexed column lives in the `"default"` namespace (byte-identical to
//!   what the pre-federation writer produced), and still read — old
//!   snapshots load with every ref in the default namespace.
//! * **v2** — federated: entries carry their backend *name* (via
//!   [`ColumnRef::encode`]), and the index payload is the WGLX v2 frame
//!   with its backend-name table. Names are the authoritative identity
//!   across processes; the loader re-interns each name and **recomposes
//!   every item id** from the local interner's bits plus the saved
//!   per-backend local part, because the saving process's bit assignment
//!   need not match this one's.
//!
//! Since the durability work (DESIGN.md §10) every written snapshot also
//! carries, *after* the index payload:
//!
//! * a **WGST sync-state frame** — per backend name, the table → version
//!   tokens the index currently reflects, so a restarted node's first
//!   `sync()` re-scans only tables that actually changed instead of
//!   re-billing the whole warehouse; and
//! * a trailing **WGFT integrity footer** (see [`wg_util::checksum`]) —
//!   magic, body length and CRC-32 over everything before it, so torn or
//!   bit-rotted files are rejected before a single body byte is trusted.
//!
//! Both are strictly additive: the v1/v2 header version is unchanged, and
//! footerless pre-durability files (which also lack WGST) still load —
//! with the historical behavior of invalidating all sync state. Every
//! integrity failure surfaces as [`StoreError::SnapshotCorrupt`] with the
//! byte offset where parsing went wrong; the loader parses into locals and
//! installs state only on full success, so a corrupt file never leaves the
//! system half-mutated (which is what lets recovery fall back to the
//! previous checkpoint generation, see [`crate::durability`]).
//!
//! The body parse is generic over [`codec::Buf`], so the same code path
//! serves in-memory bytes ([`WarpGate::load_bytes`]) and a **streaming**
//! file restore ([`WarpGate::load_from_file`]): the footer check reads the
//! trailing [`checksum::FOOTER_LEN`] bytes plus one chunked CRC pass, and
//! the frames parse through a bounded [`ReaderBuf`] window — a restore
//! never materializes the whole snapshot file in memory.
//!
//! **Paged snapshots** (DESIGN.md §11) are the beyond-RAM alternative:
//! [`WarpGate::save_paged`] seals every shard's rows into a checksummed
//! `seg-N.seg` segment file (vectors in fixed-size blocks with zone maps,
//! see `wg_lsh::paged`) next to a small [`PAGED_MANIFEST`] holding the
//! geometry, registry, sync tokens, and segment list.
//! [`WarpGate::load_paged`] restores by attaching those segments
//! **lazily**: block metadata (ids, signatures, norms, zone maps) loads at
//! open, but vector payloads stay on disk until a query's exact re-rank
//! actually needs them, served through the system's byte-budgeted block
//! cache.

use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::Arc;

use wg_lsh::{compose_item_id, item_backend, item_local, ShardedLshIndex, VectorSegment};
use wg_store::{BackendId, ColumnRef, StoreError, StoreResult};
use wg_util::codec::{self, Buf, ReaderBuf};
use wg_util::{checksum, segment, FxHashMap};

use crate::system::{PersistedBackendSync, WarpGate};

const MAGIC: [u8; 4] = *b"WGSY";
const VERSION: u32 = 1;
const VERSION_FEDERATED: u32 = 2;

/// Magic of the appended sync-state frame.
const SYNC_MAGIC: [u8; 4] = *b"WGST";
const SYNC_VERSION: u32 = 1;

/// Magic/version of the paged-snapshot manifest file.
const PAGED_MAGIC: [u8; 4] = *b"WGPM";
const PAGED_VERSION: u32 = 1;

/// File name of the paged-snapshot manifest inside its directory.
pub const PAGED_MANIFEST: &str = "manifest.wgm";

/// A parse failure at a known position in the snapshot body: the offset
/// pins *where* the bytes stopped making sense, which with a verified
/// checksum should never happen (and without one is the whole diagnosis).
fn corrupt_at(
    what: impl std::fmt::Display,
    offset: usize,
    e: impl std::fmt::Display,
) -> StoreError {
    StoreError::SnapshotCorrupt(format!("{what} at byte offset {offset}: {e}"))
}

/// Everything a snapshot body parses into, before any system state is
/// touched.
type ParsedSnapshot = (ShardedLshIndex, Vec<(u32, ColumnRef)>, Option<Vec<PersistedBackendSync>>);

/// Parse a full snapshot body (header → registry entries → index frame →
/// optional sync frame) from any [`Buf`] — a byte slice or a bounded file
/// reader. `total` is the body length, for offset reporting only.
fn parse_snapshot(total: usize, buf: &mut impl Buf, shards: usize) -> StoreResult<ParsedSnapshot> {
    macro_rules! step {
        ($what:expr, $r:expr) => {
            match $r {
                Ok(v) => v,
                Err(e) => return Err(corrupt_at($what, total - buf.remaining(), e)),
            }
        };
    }
    let version = step!("snapshot header", codec::get_header(buf, MAGIC));
    let n = step!("registry entry count", codec::get_len(buf));
    let mut entries = Vec::with_capacity(n.min(1 << 20));
    match version {
        VERSION => {
            for i in 0..n {
                let id = step!(format!("entry #{i} id"), codec::get_u32(buf));
                let database = step!(format!("entry #{i} database"), codec::get_str(buf));
                let table = step!(format!("entry #{i} table"), codec::get_str(buf));
                let column = step!(format!("entry #{i} column"), codec::get_str(buf));
                entries.push((id, ColumnRef::new(database, table, column)));
            }
        }
        VERSION_FEDERATED => {
            for i in 0..n {
                let saved_id = step!(format!("entry #{i} id"), codec::get_u32(buf));
                let r = step!(format!("entry #{i} ref"), ColumnRef::decode(buf));
                // The saved id's high bits are the *saving* process's
                // interner assignment; only the name travels. Recompose
                // against this process's bits for the (re-interned)
                // backend, keeping the saved per-backend local part.
                let id = compose_item_id(r.backend.bits(), item_local(saved_id));
                entries.push((id, r));
            }
        }
        v => return Err(StoreError::SnapshotCorrupt(format!("unsupported snapshot version {v}"))),
    }
    // The index payload is length-prefixed; decode it in place and hold
    // the decoder to exactly the promised frame, so the streaming path
    // never buffers it whole.
    let frame_len = step!("index payload", codec::get_len(buf));
    if frame_len > buf.remaining() {
        return Err(corrupt_at(
            "index payload",
            total - buf.remaining(),
            format!("frame length {frame_len} exceeds the {} bytes left", buf.remaining()),
        ));
    }
    let before = buf.remaining();
    // The same name-authoritative remap applies inside the index frame
    // (v1 index payloads have no name table and resolve nothing).
    let index =
        step!(
            "index frame",
            ShardedLshIndex::decode_with_backends(buf, shards, |name| Ok(
                BackendId::named(name).bits()
            ))
        );
    let consumed = before - buf.remaining();
    if consumed != frame_len {
        return Err(corrupt_at(
            "index frame",
            total - buf.remaining(),
            format!("decoded {consumed} bytes of a {frame_len}-byte frame"),
        ));
    }
    // Optional durable sync tokens; pre-durability files end here.
    let sync = if buf.remaining() == 0 { None } else { Some(parse_sync_frame(total, buf)?) };
    if buf.remaining() != 0 {
        return Err(corrupt_at(
            "snapshot end",
            total - buf.remaining(),
            "trailing bytes after last frame",
        ));
    }
    Ok((index, entries, sync))
}

impl WarpGate {
    /// Serialize the index + registry to a byte buffer. All-default
    /// contents produce the pre-federation v1 frame, byte for byte; any
    /// other namespace upgrades the frame to v2.
    pub fn to_bytes(&self) -> Vec<u8> {
        let (index_bytes, entries) = self.snapshot_for_persist();
        let federated = entries.iter().any(|(_, r)| !r.backend.is_default());
        let mut buf = Vec::with_capacity(index_bytes.len() + 64 * entries.len() + 64);
        if federated {
            codec::put_header(&mut buf, MAGIC, VERSION_FEDERATED);
            codec::put_len(&mut buf, entries.len());
            for (id, r) in &entries {
                codec::put_u32(&mut buf, *id);
                r.encode(&mut buf);
            }
        } else {
            codec::put_header(&mut buf, MAGIC, VERSION);
            codec::put_len(&mut buf, entries.len());
            for (id, r) in &entries {
                codec::put_u32(&mut buf, *id);
                codec::put_str(&mut buf, &r.database);
                codec::put_str(&mut buf, &r.table);
                codec::put_str(&mut buf, &r.column);
            }
        }
        codec::put_bytes(&mut buf, &index_bytes);
        // Durable sync tokens: written even when empty so the frame layout
        // is uniform; only pre-durability files lack it.
        put_sync_frame(&mut buf, &self.sync_state_for_persist());
        checksum::append_footer(&mut buf);
        buf
    }

    /// Restore index + registry from bytes produced by [`Self::to_bytes`]
    /// (either frame version). The receiving system must be configured
    /// with the same dimension (and should use the same seed, or query
    /// embeddings will not live in the persisted index's space). The
    /// snapshot is shard-count independent: items redistribute into this
    /// system's configured shard layout on load, so a snapshot saved with
    /// 8 shards restores fine into 1 (or vice versa).
    pub fn load_bytes(&mut self, bytes: &[u8]) -> StoreResult<()> {
        // A checksum mismatch or torn footer is fatal for these bytes —
        // it is never downgraded to a legacy (footerless) parse. Files
        // that simply have no footer fall through to the body parse,
        // whose own bounds checks reject truncations.
        let (body, _integrity) = checksum::split_footer(bytes)
            .map_err(|e| StoreError::SnapshotCorrupt(format!("integrity footer: {e}")))?;
        let mut cursor = body;
        let (index, entries, sync) =
            parse_snapshot(body.len(), &mut cursor, self.config().effective_shards())?;
        // Everything parsed into locals; only now touch system state.
        self.restore_from_persist(index, entries, sync)
    }

    /// Write the snapshot to a file, atomically: the bytes stream into a
    /// sibling temp file which is fsynced and renamed over `path`, so a
    /// crash — or a full disk — mid-write can never destroy a snapshot
    /// that was already there (see [`crate::durability::atomic_write`]).
    pub fn save_to_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        crate::durability::atomic_write(path, &self.to_bytes())
    }

    /// Load a snapshot from a file into this (already configured) system,
    /// **streaming**: the integrity footer is verified with one chunked
    /// CRC pass and the frames then parse through a bounded read window,
    /// so restoring never requires the whole file resident in memory.
    ///
    /// A missing/unreadable file is [`StoreError::NotFound`]; a present
    /// file that fails its checksum or parse is
    /// [`StoreError::SnapshotCorrupt`] — callers that checkpoint (see
    /// [`crate::durability::Checkpointer`]) use the distinction to fall
    /// back to the previous generation.
    pub fn load_from_file(&mut self, path: impl AsRef<Path>) -> StoreResult<()> {
        let path = path.as_ref();
        let not_found = |e: std::io::Error| StoreError::NotFound(format!("snapshot file: {e}"));
        let file_len = std::fs::metadata(path).map_err(not_found)?.len();
        // Classify the trailing footer exactly as `checksum::split_footer`
        // does: structurally absent footers (short file, wrong magic,
        // wrong length field) downgrade to the legacy bounds-checked
        // parse, but a present footer that fails its version or checksum
        // is corruption — never "legacy".
        let mut body_len = file_len;
        if file_len >= checksum::FOOTER_LEN as u64 {
            let mut f = std::fs::File::open(path).map_err(not_found)?;
            f.seek(SeekFrom::End(-(checksum::FOOTER_LEN as i64))).map_err(not_found)?;
            let mut foot = [0u8; checksum::FOOTER_LEN];
            f.read_exact(&mut foot).map_err(not_found)?;
            let claimed_len = u64::from_le_bytes(foot[8..16].try_into().expect("8 bytes"));
            if foot[..4] == checksum::FOOTER_MAGIC
                && claimed_len == file_len - checksum::FOOTER_LEN as u64
            {
                let version = u32::from_le_bytes(foot[4..8].try_into().expect("4 bytes"));
                if version != checksum::FOOTER_VERSION {
                    return Err(StoreError::SnapshotCorrupt(format!(
                        "integrity footer: snapshot footer version {version} is not supported \
                         (expected {})",
                        checksum::FOOTER_VERSION
                    )));
                }
                let stored_crc = u32::from_le_bytes(foot[16..20].try_into().expect("4 bytes"));
                f.seek(SeekFrom::Start(0)).map_err(not_found)?;
                let mut body = std::io::BufReader::new(&mut f);
                let actual = segment::crc32_reader(&mut body, claimed_len).map_err(not_found)?;
                if actual != stored_crc {
                    return Err(StoreError::SnapshotCorrupt(format!(
                        "integrity footer: snapshot checksum mismatch over {claimed_len} body \
                         bytes: stored {stored_crc:#010x}, computed {actual:#010x}"
                    )));
                }
                body_len = claimed_len;
            }
        }
        let f = std::fs::File::open(path).map_err(not_found)?;
        let mut reader = ReaderBuf::new(std::io::BufReader::new(f), body_len as usize);
        let parsed =
            parse_snapshot(body_len as usize, &mut reader, self.config().effective_shards());
        // An I/O fault mid-parse latches in the reader and zero-fills the
        // window; whatever "parsed" out of that is untrustworthy even if
        // it happened to look well-formed.
        if let Some(e) = reader.io_error() {
            return Err(StoreError::NotFound(format!("snapshot file: {e}")));
        }
        let (index, entries, sync) = parsed?;
        self.restore_from_persist(index, entries, sync)
    }

    /// Seal the system's state into a **paged snapshot directory**: one
    /// checksummed `seg-N.seg` segment file per non-empty index shard
    /// (fixed `block_rows`-row blocks of vectors, each block carrying
    /// resident ids, signatures, norms, and zone maps — see
    /// `wg_lsh::paged`), plus a small [`PAGED_MANIFEST`] with the
    /// geometry, the id → column registry, the durable sync tokens, and
    /// the segment list, all under a WGFT integrity footer. Every file is
    /// written atomically (temp + fsync + rename). Returns how many
    /// segment files were written.
    ///
    /// A system restored with [`Self::load_paged`] serves the sealed rows
    /// from disk through its block cache instead of holding them in RAM —
    /// the beyond-RAM deployment mode (DESIGN.md §11).
    pub fn save_paged(&self, dir: impl AsRef<Path>) -> std::io::Result<usize> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let index = self.lsh_index();
        let sig_bits = index.params().bits();
        let block_rows = self.config().block_rows;
        let mut segments: Vec<String> = Vec::new();
        for (i, rows) in index.export_segment_rows().into_iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let name = format!("seg-{i}.seg");
            wg_lsh::paged::write_vector_segment(
                &dir.join(&name),
                self.config().dim,
                sig_bits,
                block_rows,
                rows,
            )?;
            segments.push(name);
        }
        let entries = self.registry_entries_for_persist();
        let mut buf = Vec::new();
        codec::put_header(&mut buf, PAGED_MAGIC, PAGED_VERSION);
        codec::put_u32(&mut buf, self.config().dim as u32);
        codec::put_u32(&mut buf, sig_bits as u32);
        codec::put_u64(&mut buf, index.seed());
        codec::put_u32(&mut buf, block_rows as u32);
        codec::put_len(&mut buf, entries.len());
        for (id, r) in &entries {
            codec::put_u32(&mut buf, *id);
            r.encode(&mut buf);
        }
        put_sync_frame(&mut buf, &self.sync_state_for_persist());
        codec::put_len(&mut buf, segments.len());
        for name in &segments {
            codec::put_str(&mut buf, name);
        }
        checksum::append_footer(&mut buf);
        segment::atomic_write_bytes(&dir.join(PAGED_MANIFEST), &buf)?;
        Ok(segments.len())
    }

    /// Restore from a paged snapshot directory written by
    /// [`Self::save_paged`] — **lazily**: segment directories and block
    /// metadata (ids, signatures, norms, zone maps) load now, so every
    /// sealed row becomes searchable, but vector payloads stay on disk
    /// until a query's exact re-rank reads their block through the
    /// system's byte-budgeted cache. Item ids recompose through backend
    /// names exactly like the v2 flat snapshot; geometry (dimension,
    /// signature width, hyperplane seed) must match this system's config
    /// or the restore fails — before touching any state, as always.
    pub fn load_paged(&mut self, dir: impl AsRef<Path>) -> StoreResult<()> {
        let dir = dir.as_ref();
        let bytes = std::fs::read(dir.join(PAGED_MANIFEST))
            .map_err(|e| StoreError::NotFound(format!("paged manifest: {e}")))?;
        let (body, integrity) = checksum::split_footer(&bytes)
            .map_err(|e| StoreError::SnapshotCorrupt(format!("paged manifest footer: {e}")))?;
        // Unlike flat snapshots there is no pre-footer legacy to honor:
        // the manifest was born checksummed, so a missing footer is
        // corruption.
        if integrity != checksum::FooterCheck::Verified {
            return Err(StoreError::SnapshotCorrupt(
                "paged manifest is missing its integrity footer".into(),
            ));
        }
        let total = body.len();
        let buf = &mut &body[..];
        macro_rules! step {
            ($what:expr, $r:expr) => {
                match $r {
                    Ok(v) => v,
                    Err(e) => return Err(corrupt_at($what, total - buf.remaining(), e)),
                }
            };
        }
        let version = step!("paged manifest header", codec::get_header(buf, PAGED_MAGIC));
        if version != PAGED_VERSION {
            return Err(StoreError::SnapshotCorrupt(format!(
                "unsupported paged manifest version {version}"
            )));
        }
        let dim = step!("manifest dim", codec::get_u32(buf)) as usize;
        let sig_bits = step!("manifest signature width", codec::get_u32(buf)) as usize;
        let seed = step!("manifest seed", codec::get_u64(buf));
        let _block_rows = step!("manifest block rows", codec::get_u32(buf));
        let index = self.fresh_index();
        if dim != index.dim() {
            return Err(StoreError::Schema(format!(
                "paged snapshot dimension {dim} does not match config {}",
                index.dim()
            )));
        }
        if sig_bits != index.params().bits() {
            return Err(StoreError::Schema(format!(
                "paged snapshot signature width {sig_bits} does not match config {}",
                index.params().bits()
            )));
        }
        if seed != index.seed() {
            return Err(StoreError::Schema(
                "paged snapshot was sealed under a different hyperplane seed".into(),
            ));
        }
        let n = step!("registry entry count", codec::get_len(buf));
        let mut entries = Vec::with_capacity(n.min(1 << 20));
        // Saved backend bits → this process's interned bits, recovered
        // from the registry entries (every sealed row has one). Sealed
        // segments store the composed ids of the *saving* process, so the
        // attach below remaps each row through this table.
        let mut rebits: FxHashMap<u16, u16> = FxHashMap::default();
        for i in 0..n {
            let saved_id = step!(format!("entry #{i} id"), codec::get_u32(buf));
            let r = step!(format!("entry #{i} ref"), ColumnRef::decode(buf));
            let old = item_backend(saved_id);
            let new = r.backend.bits();
            if *rebits.entry(old).or_insert(new) != new {
                return Err(corrupt_at(
                    format!("entry #{i} ref"),
                    total - buf.remaining(),
                    "saved backend bits map to two different names",
                ));
            }
            entries.push((compose_item_id(new, item_local(saved_id)), r));
        }
        let sync = parse_sync_frame(total, buf)?;
        let n_segs = step!("segment list", codec::get_len(buf));
        let mut names = Vec::with_capacity(n_segs.min(1 << 10));
        for i in 0..n_segs {
            let name = step!(format!("segment #{i} name"), codec::get_str(buf));
            if name.contains('/') || name.contains('\\') || name.contains("..") {
                return Err(corrupt_at(
                    format!("segment #{i} name"),
                    total - buf.remaining(),
                    format!("'{name}' is not a plain file name"),
                ));
            }
            names.push(name);
        }
        if buf.remaining() != 0 {
            return Err(corrupt_at(
                "paged manifest end",
                total - buf.remaining(),
                "trailing bytes after last frame",
            ));
        }
        let mut segments = Vec::with_capacity(names.len());
        for name in &names {
            let seg = VectorSegment::open(&dir.join(name), self.block_cache().clone())
                .map_err(|e| StoreError::SnapshotCorrupt(format!("segment {name}: {e}")))?;
            segments.push(Arc::new(seg));
        }
        let attached = index
            .attach_segments_mapped(&segments, |id| {
                rebits.get(&item_backend(id)).map(|&nb| compose_item_id(nb, item_local(id)))
            })
            .map_err(|e| StoreError::SnapshotCorrupt(format!("attaching paged segments: {e}")))?;
        if attached != entries.len() {
            return Err(StoreError::SnapshotCorrupt(format!(
                "paged segments hold {attached} registered rows but the manifest registry has \
                 {} entries",
                entries.len()
            )));
        }
        // Everything parsed and attached into locals; only now touch
        // system state.
        self.restore_from_persist(index, entries, Some(sync))
    }
}

/// Append the WGST sync-state frame for these backends.
fn put_sync_frame(buf: &mut Vec<u8>, sync: &[PersistedBackendSync]) {
    codec::put_header(buf, SYNC_MAGIC, SYNC_VERSION);
    codec::put_len(buf, sync.len());
    for backend in sync {
        codec::put_str(buf, &backend.name);
        codec::put_u64(buf, backend.epoch);
        codec::put_len(buf, backend.tables.len());
        for (database, table, version) in &backend.tables {
            codec::put_str(buf, database);
            codec::put_str(buf, table);
            codec::put_u64(buf, *version);
        }
    }
}

/// Parse the WGST frame the cursor is sitting on. `total` is the full
/// body length, for offset reporting only.
fn parse_sync_frame(total: usize, buf: &mut impl Buf) -> StoreResult<Vec<PersistedBackendSync>> {
    macro_rules! step {
        ($what:expr, $r:expr) => {
            match $r {
                Ok(v) => v,
                Err(e) => return Err(corrupt_at($what, total - buf.remaining(), e)),
            }
        };
    }
    let version = step!("sync-state header", codec::get_header(buf, SYNC_MAGIC));
    if version != SYNC_VERSION {
        return Err(StoreError::SnapshotCorrupt(format!(
            "unsupported sync-state frame version {version}"
        )));
    }
    let n = step!("sync-state backends", codec::get_len(buf));
    let mut backends = Vec::with_capacity(n.min(1 << 10));
    for i in 0..n {
        let name = step!(format!("sync backend #{i} name"), codec::get_str(buf));
        let epoch = step!(format!("sync backend #{i} epoch"), codec::get_u64(buf));
        let t = step!(format!("sync backend #{i} tables"), codec::get_len(buf));
        let mut tables = Vec::with_capacity(t.min(1 << 16));
        for j in 0..t {
            let database = step!(format!("sync token #{i}.{j} database"), codec::get_str(buf));
            let table = step!(format!("sync token #{i}.{j} table"), codec::get_str(buf));
            let ver = step!(format!("sync token #{i}.{j} version"), codec::get_u64(buf));
            tables.push((database, table, ver));
        }
        backends.push(PersistedBackendSync { name, epoch, tables });
    }
    Ok(backends)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WarpGateConfig;
    use std::sync::Arc;
    use wg_store::{CdwConfig, CdwConnector, Column, Database, Table, Warehouse};

    fn connector() -> Arc<CdwConnector> {
        let mut w = Warehouse::new("w");
        let mut db = Database::new("db");
        db.add_table(
            Table::new(
                "a",
                vec![Column::text("x", (0..50).map(|i| format!("val {i}")).collect::<Vec<_>>())],
            )
            .unwrap(),
        );
        db.add_table(
            Table::new(
                "b",
                vec![Column::text("y", (0..50).map(|i| format!("VAL {i}")).collect::<Vec<_>>())],
            )
            .unwrap(),
        );
        w.add_database(db);
        Arc::new(CdwConnector::new(w, CdwConfig::free()))
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("wg_persist_{tag}_{}", std::process::id()))
    }

    /// The byte length of the pre-durability on-disk shape: header +
    /// entries + index payload, no WGST frame, no footer.
    fn legacy_prefix_len(bytes: &[u8]) -> usize {
        let mut cursor = bytes;
        codec::get_header(&mut cursor, MAGIC).unwrap();
        let n = codec::get_len(&mut cursor).unwrap();
        for _ in 0..n {
            codec::get_u32(&mut cursor).unwrap();
            codec::get_str(&mut cursor).unwrap();
            codec::get_str(&mut cursor).unwrap();
            codec::get_str(&mut cursor).unwrap();
        }
        codec::get_bytes(&mut cursor).unwrap();
        bytes.len() - cursor.len()
    }

    #[test]
    fn roundtrip_preserves_discovery() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        wg.index_warehouse().unwrap();
        let q = ColumnRef::new("db", "a", "x");
        let before = wg.discover(&q, 3).unwrap().candidates;

        let bytes = wg.to_bytes();
        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), c);
        fresh.load_bytes(&bytes).unwrap();
        assert_eq!(fresh.len(), wg.len());
        let after = fresh.discover(&q, 3).unwrap().candidates;
        assert_eq!(before, after);
    }

    #[test]
    fn roundtrip_across_shard_counts() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default().with_shards(8), c.clone());
        wg.index_warehouse().unwrap();
        let q = ColumnRef::new("db", "a", "x");
        let want = wg.discover(&q, 3).unwrap().candidates;
        let bytes = wg.to_bytes();
        for shards in [1usize, 3, 16] {
            let mut fresh =
                WarpGate::with_backend(WarpGateConfig::default().with_shards(shards), c.clone());
            fresh.load_bytes(&bytes).unwrap();
            assert_eq!(fresh.len(), wg.len());
            let got = fresh.discover(&q, 3).unwrap().candidates;
            assert_eq!(got, want, "results changed through a {shards}-shard reload");
        }
    }

    #[test]
    fn roundtrip_after_removal_keeps_gaps() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c);
        wg.index_warehouse().unwrap();
        wg.remove_table("db", "b");
        let bytes = wg.to_bytes();
        let mut fresh = WarpGate::new(WarpGateConfig::default());
        fresh.load_bytes(&bytes).unwrap();
        assert_eq!(fresh.len(), 1);
        // The removed table must not reappear.
        let hits = fresh.discover_values(&["VAL 1"], 5);
        assert!(hits.iter().all(|h| h.reference.table != "b"));
    }

    #[test]
    fn file_roundtrip() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c);
        wg.index_warehouse().unwrap();
        let path = std::env::temp_dir().join(format!("wg_snapshot_{}.bin", std::process::id()));
        wg.save_to_file(&path).unwrap();
        let mut fresh = WarpGate::new(WarpGateConfig::default());
        fresh.load_from_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(fresh.len(), 2);
    }

    #[test]
    fn streaming_file_load_matches_in_memory_load() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        wg.index_warehouse().unwrap();
        let q = ColumnRef::new("db", "a", "x");
        let path = temp_path("stream");
        wg.save_to_file(&path).unwrap();

        let mut by_bytes = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        by_bytes.load_bytes(&std::fs::read(&path).unwrap()).unwrap();
        let mut by_file = WarpGate::with_backend(WarpGateConfig::default(), c);
        by_file.load_from_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(by_file.len(), by_bytes.len());
        assert_eq!(
            by_file.discover(&q, 3).unwrap().candidates,
            by_bytes.discover(&q, 3).unwrap().candidates
        );
        let report = by_file.sync().unwrap();
        assert!(report.is_noop(), "streamed restore carries sync tokens too: {report:?}");
    }

    #[test]
    fn streaming_file_load_rejects_truncations_and_flips() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c);
        wg.index_warehouse().unwrap();
        let bytes = wg.to_bytes();
        let path = temp_path("chaos");
        // Truncation sweep (coarse — every single offset would be minutes
        // of index decodes): each cut must be rejected without installing
        // partial state. The one cut that lands exactly on the legacy
        // (pre-durability) file boundary is a *valid* file by design and
        // is skipped here — `…accepts_legacy_footerless_files` covers it.
        let legacy_len = legacy_prefix_len(&bytes);
        for cut in (0..bytes.len()).step_by(97).chain([bytes.len() - 1]) {
            if cut == legacy_len {
                continue;
            }
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let mut fresh = WarpGate::new(WarpGateConfig::default());
            assert!(fresh.load_from_file(&path).is_err(), "truncation to {cut} loaded");
            assert_eq!(fresh.len(), 0, "truncation to {cut} left partial state");
        }
        // Bit-flip sweep: body flips fail the CRC; footer flips fail the
        // footer's own checks or re-classify as legacy, where the trailing
        // footer bytes then fail the body parse.
        for i in (0..bytes.len()).step_by(131) {
            let mut broken = bytes.clone();
            broken[i] ^= 0x10;
            std::fs::write(&path, &broken).unwrap();
            let mut fresh = WarpGate::new(WarpGateConfig::default());
            let err = fresh.load_from_file(&path).unwrap_err();
            assert!(
                matches!(err, StoreError::SnapshotCorrupt(_)),
                "flip at {i} gave unexpected error {err}"
            );
            assert_eq!(fresh.len(), 0, "flip at {i} left partial state");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_file_load_accepts_legacy_footerless_files() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        wg.index_warehouse().unwrap();
        let bytes = wg.to_bytes();
        let legacy = bytes[..legacy_prefix_len(&bytes)].to_vec();
        let path = temp_path("legacy");
        std::fs::write(&path, &legacy).unwrap();
        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), c);
        fresh.load_from_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(fresh.len(), 2);
    }

    #[test]
    fn restore_carries_sync_tokens_so_unchanged_content_syncs_as_noop() {
        // The tentpole behavior: persisted version tokens survive the
        // restart, so the first sync of a restored system over unchanged
        // warehouse content re-bills *nothing*.
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        wg.index_warehouse().unwrap();
        assert!(wg.sync().unwrap().is_noop(), "freshly indexed system syncs as a no-op");
        let bytes = wg.to_bytes();
        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), c);
        fresh.load_bytes(&bytes).unwrap();
        let report = fresh.sync().unwrap();
        assert!(
            report.is_noop(),
            "restored tokens must make an unchanged-content sync a no-op: {report:?}"
        );
    }

    #[test]
    fn legacy_snapshots_without_sync_frame_invalidate_sync_state() {
        // Pre-durability files carry no WGST frame (and no footer); they
        // must keep their historical behavior — the first sync after the
        // restore conservatively re-scans every backend table.
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        wg.index_warehouse().unwrap();
        wg.sync().unwrap();
        let bytes = wg.to_bytes();
        let legacy = bytes[..legacy_prefix_len(&bytes)].to_vec();

        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), c);
        fresh.load_bytes(&legacy).unwrap();
        let report = fresh.sync().unwrap();
        assert_eq!(
            report.tables_added + report.tables_updated,
            2,
            "legacy restore must reconcile every backend table: {report:?}"
        );
    }

    #[test]
    fn restored_tokens_rescan_only_what_changed() {
        // The billing story: after a restart, mutate one of the two
        // tables — sync must re-scan that table only.
        let mut w = Warehouse::new("w");
        let mut db = Database::new("db");
        for t in ["a", "b"] {
            db.add_table(
                Table::new(
                    t,
                    vec![Column::text(
                        "x",
                        (0..40).map(|i| format!("{t} {i}")).collect::<Vec<_>>(),
                    )],
                )
                .unwrap(),
            );
        }
        w.add_database(db);
        let c = Arc::new(CdwConnector::new(w, CdwConfig::free()));
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        wg.index_warehouse().unwrap();
        let bytes = wg.to_bytes();

        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        fresh.load_bytes(&bytes).unwrap();
        c.warehouse_mut().database_mut("db").add_table(
            Table::new("b", vec![Column::text("x", vec!["changed".to_string(); 40])]).unwrap(),
        );
        let report = fresh.sync().unwrap();
        assert_eq!(report.tables_updated, 1, "only the mutated table re-scans: {report:?}");
        assert_eq!(report.tables_added, 0, "{report:?}");
    }

    #[test]
    fn snapshots_carry_the_integrity_footer() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c);
        wg.index_warehouse().unwrap();
        let bytes = wg.to_bytes();
        let (body, check) = wg_util::checksum::split_footer(&bytes).unwrap();
        assert_eq!(check, wg_util::checksum::FooterCheck::Verified);
        assert_eq!(body.len() + wg_util::checksum::FOOTER_LEN, bytes.len());

        // Corrupt one body byte: the checksum catches it, the error is
        // typed, and the target system stays untouched.
        let mut corrupted = bytes.clone();
        corrupted[10] ^= 0x40;
        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), connector());
        let err = fresh.load_bytes(&corrupted).unwrap_err();
        assert!(matches!(err, StoreError::SnapshotCorrupt(_)), "{err}");
        assert_eq!(fresh.len(), 0, "failed load must not partially mutate");
    }

    #[test]
    fn rejects_garbage_and_dim_mismatch() {
        let mut wg = WarpGate::new(WarpGateConfig::default());
        assert!(wg.load_bytes(b"garbage").is_err());

        let c = connector();
        let wg64 = WarpGate::with_backend(WarpGateConfig { dim: 64, ..Default::default() }, c);
        wg64.index_warehouse().unwrap();
        let bytes = wg64.to_bytes();
        let mut wg128 = WarpGate::new(WarpGateConfig::default());
        assert!(wg128.load_bytes(&bytes).is_err(), "dimension mismatch must fail");
    }

    #[test]
    fn missing_file_errors() {
        let mut wg = WarpGate::new(WarpGateConfig::default());
        assert!(wg.load_from_file("/nonexistent/path/snapshot.bin").is_err());
    }

    #[test]
    fn all_default_snapshots_stay_version_1() {
        // Back-compat pin: a system whose every column lives in the
        // default namespace writes the pre-federation frame — old readers
        // keep working, and old snapshots keep loading (into the default
        // namespace), indefinitely.
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        wg.index_warehouse().unwrap();
        let bytes = wg.to_bytes();
        let mut cursor = &bytes[..];
        assert_eq!(codec::get_header(&mut cursor, MAGIC).unwrap(), VERSION);

        // Old bytes → default namespace, and a re-encode does not upgrade
        // the frame.
        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), c);
        fresh.load_bytes(&bytes).unwrap();
        let q = ColumnRef::new("db", "a", "x");
        let d = fresh.discover(&q, 3).unwrap();
        assert!(d.candidates.iter().all(|j| j.reference.backend.is_default()));
        let reencoded = fresh.to_bytes();
        let mut cursor = &reencoded[..];
        assert_eq!(codec::get_header(&mut cursor, MAGIC).unwrap(), VERSION);
        let mut again = WarpGate::with_backend(WarpGateConfig::default(), connector());
        again.load_bytes(&reencoded).unwrap();
        assert_eq!(again.discover(&q, 3).unwrap().candidates, d.candidates);
    }

    #[test]
    fn federated_snapshot_roundtrip_preserves_namespaces() {
        let cdw = connector();
        let mut lake_w = Warehouse::new("lake");
        lake_w.database_mut("raw").add_table(
            Table::new(
                "dump",
                vec![Column::text(
                    "x_variant",
                    (0..50).map(|i| format!("Val {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        let lake_c = Arc::new(CdwConnector::new(lake_w, CdwConfig::free()));

        let wg = WarpGate::with_backend(WarpGateConfig::default(), cdw.clone());
        let lake = wg.attach_named("persist-test-lake", lake_c.clone());
        wg.index_warehouse().unwrap();
        assert_eq!(wg.len(), 3);
        let q = ColumnRef::new("db", "a", "x");
        let before = wg.discover(&q, 5).unwrap().candidates;
        assert!(
            before.iter().any(|j| j.reference.backend == lake),
            "fixture must produce a cross-namespace hit: {before:?}"
        );

        let bytes = wg.to_bytes();
        let mut cursor = &bytes[..];
        assert_eq!(codec::get_header(&mut cursor, MAGIC).unwrap(), VERSION_FEDERATED);

        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), cdw);
        fresh.attach_named("persist-test-lake", lake_c);
        fresh.load_bytes(&bytes).unwrap();
        assert_eq!(fresh.len(), 3);
        assert_eq!(fresh.discover(&q, 5).unwrap().candidates, before);
        // Scoped discovery still addresses the restored namespace.
        let scoped =
            fresh.discover_scoped(&q, 5, &wg_lsh::DiscoverScope::include([lake.bits()])).unwrap();
        assert!(!scoped.candidates.is_empty());
        assert!(scoped.candidates.iter().all(|j| j.reference.backend == lake));
    }

    #[test]
    fn paged_roundtrip_preserves_discovery_and_stays_lazy() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        wg.index_warehouse().unwrap();
        let q = ColumnRef::new("db", "a", "x");
        let before = wg.discover(&q, 3).unwrap().candidates;

        let dir = temp_path("paged_rt");
        let segs = wg.save_paged(&dir).unwrap();
        assert!(segs > 0, "a populated system seals at least one segment");

        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), c);
        fresh.load_paged(&dir).unwrap();
        assert_eq!(fresh.len(), wg.len());
        assert_eq!(fresh.cold_len(), wg.len(), "every restored row serves from disk");
        let at_load = fresh.block_cache_stats();
        assert_eq!(at_load.resident_blocks, 0, "restore must not hydrate payloads");
        assert_eq!(at_load.misses, 0, "restore must not read payload blocks at all");

        let d = fresh.discover(&q, 3).unwrap();
        assert_eq!(d.candidates, before, "paged restore changes no ranking");
        assert!(d.timing.blocks_read > 0, "cold candidates must be read from disk");
        assert!(fresh.block_cache_stats().misses > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn paged_roundtrip_carries_sync_tokens() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        wg.index_warehouse().unwrap();
        let dir = temp_path("paged_sync");
        wg.save_paged(&dir).unwrap();
        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), c);
        fresh.load_paged(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let report = fresh.sync().unwrap();
        assert!(report.is_noop(), "restored tokens make the first sync a no-op: {report:?}");
    }

    #[test]
    fn paged_load_rejects_corrupt_manifest_and_segments() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        wg.index_warehouse().unwrap();
        let dir = temp_path("paged_bad");
        wg.save_paged(&dir).unwrap();

        // Flip one manifest byte: the footer catches it, nothing installs.
        let manifest = dir.join(PAGED_MANIFEST);
        let good = std::fs::read(&manifest).unwrap();
        let mut bad = good.clone();
        bad[12] ^= 0x08;
        std::fs::write(&manifest, &bad).unwrap();
        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        let err = fresh.load_paged(&dir).unwrap_err();
        assert!(matches!(err, StoreError::SnapshotCorrupt(_)), "{err}");
        assert_eq!(fresh.len(), 0, "failed paged load must not partially mutate");
        std::fs::write(&manifest, &good).unwrap();

        // Flip one segment byte. Either the flip sits in metadata and the
        // segment's directory/meta checksums reject it at open — before
        // any state installs — or it sits in a payload block, where the
        // block CRC refuses to serve it on first read.
        let seg = dir.join("seg-0.seg");
        let seg_good = std::fs::read(&seg).unwrap();
        let mut seg_bad = seg_good.clone();
        let mid = seg_bad.len() / 2;
        seg_bad[mid] ^= 0x20;
        std::fs::write(&seg, &seg_bad).unwrap();
        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), c);
        match fresh.load_paged(&dir) {
            Err(e) => {
                assert!(matches!(e, StoreError::SnapshotCorrupt(_)), "{e}");
                assert_eq!(fresh.len(), 0);
            }
            Ok(()) => {
                let q = ColumnRef::new("db", "a", "x");
                let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    fresh.discover(&q, 3).map(|d| d.candidates.len())
                }));
                assert!(res.is_err(), "a payload flip must never serve silently");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn paged_load_rejects_geometry_mismatch() {
        let c = connector();
        let wg =
            WarpGate::with_backend(WarpGateConfig { dim: 64, ..Default::default() }, c.clone());
        wg.index_warehouse().unwrap();
        let dir = temp_path("paged_geom");
        wg.save_paged(&dir).unwrap();
        let mut wrong_dim = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        assert!(matches!(wrong_dim.load_paged(&dir), Err(StoreError::Schema(_))));
        let mut wrong_seed =
            WarpGate::with_backend(WarpGateConfig { dim: 64, seed: 99, ..Default::default() }, c);
        assert!(matches!(wrong_seed.load_paged(&dir), Err(StoreError::Schema(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn paged_federated_roundtrip_recomposes_namespaces() {
        let cdw = connector();
        let mut lake_w = Warehouse::new("lake");
        lake_w.database_mut("raw").add_table(
            Table::new(
                "dump",
                vec![Column::text(
                    "x_variant",
                    (0..50).map(|i| format!("Val {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        let lake_c = Arc::new(CdwConnector::new(lake_w, CdwConfig::free()));
        let wg = WarpGate::with_backend(WarpGateConfig::default(), cdw.clone());
        let lake = wg.attach_named("paged-test-lake", lake_c.clone());
        wg.index_warehouse().unwrap();
        let q = ColumnRef::new("db", "a", "x");
        let before = wg.discover(&q, 5).unwrap().candidates;

        let dir = temp_path("paged_fed");
        wg.save_paged(&dir).unwrap();
        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), cdw);
        fresh.attach_named("paged-test-lake", lake_c);
        fresh.load_paged(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(fresh.len(), 3);
        assert_eq!(fresh.discover(&q, 5).unwrap().candidates, before);
        let scoped =
            fresh.discover_scoped(&q, 5, &wg_lsh::DiscoverScope::include([lake.bits()])).unwrap();
        assert!(!scoped.candidates.is_empty());
        assert!(scoped.candidates.iter().all(|j| j.reference.backend == lake));
    }
}
