//! Index persistence.
//!
//! A deployed discovery service must survive restarts without re-scanning
//! (and re-paying for) the warehouse. The persisted artifact is the LSH
//! index (vectors + geometry + seed) plus the id → column-reference
//! registry; because the embedding model itself is deterministic and
//! derived from the config seed, nothing model-side needs to be stored.
//!
//! Two frame versions exist (see DESIGN.md §9):
//!
//! * **v1** — the pre-federation format: entries are bare
//!   `(id, database, table, column)` tuples. Still written whenever every
//!   indexed column lives in the `"default"` namespace (byte-identical to
//!   what the pre-federation writer produced), and still read — old
//!   snapshots load with every ref in the default namespace.
//! * **v2** — federated: entries carry their backend *name* (via
//!   [`ColumnRef::encode`]), and the index payload is the WGLX v2 frame
//!   with its backend-name table. Names are the authoritative identity
//!   across processes; the loader re-interns each name and **recomposes
//!   every item id** from the local interner's bits plus the saved
//!   per-backend local part, because the saving process's bit assignment
//!   need not match this one's.

use std::io::{Read, Write};
use std::path::Path;

use wg_lsh::{compose_item_id, item_local, ShardedLshIndex};
use wg_store::{BackendId, ColumnRef, StoreError, StoreResult};
use wg_util::codec;

use crate::system::WarpGate;

const MAGIC: [u8; 4] = *b"WGSY";
const VERSION: u32 = 1;
const VERSION_FEDERATED: u32 = 2;

impl WarpGate {
    /// Serialize the index + registry to a byte buffer. All-default
    /// contents produce the pre-federation v1 frame, byte for byte; any
    /// other namespace upgrades the frame to v2.
    pub fn to_bytes(&self) -> Vec<u8> {
        let (index_bytes, entries) = self.snapshot_for_persist();
        let federated = entries.iter().any(|(_, r)| !r.backend.is_default());
        let mut buf = Vec::with_capacity(index_bytes.len() + 64 * entries.len() + 64);
        if federated {
            codec::put_header(&mut buf, MAGIC, VERSION_FEDERATED);
            codec::put_len(&mut buf, entries.len());
            for (id, r) in &entries {
                codec::put_u32(&mut buf, *id);
                r.encode(&mut buf);
            }
        } else {
            codec::put_header(&mut buf, MAGIC, VERSION);
            codec::put_len(&mut buf, entries.len());
            for (id, r) in &entries {
                codec::put_u32(&mut buf, *id);
                codec::put_str(&mut buf, &r.database);
                codec::put_str(&mut buf, &r.table);
                codec::put_str(&mut buf, &r.column);
            }
        }
        codec::put_bytes(&mut buf, &index_bytes);
        buf
    }

    /// Restore index + registry from bytes produced by [`Self::to_bytes`]
    /// (either frame version). The receiving system must be configured
    /// with the same dimension (and should use the same seed, or query
    /// embeddings will not live in the persisted index's space). The
    /// snapshot is shard-count independent: items redistribute into this
    /// system's configured shard layout on load, so a snapshot saved with
    /// 8 shards restores fine into 1 (or vice versa).
    pub fn load_bytes(&mut self, bytes: &[u8]) -> StoreResult<()> {
        let mut cursor = bytes;
        let version = codec::get_header(&mut cursor, MAGIC)?;
        let n = codec::get_len(&mut cursor)?;
        let mut entries = Vec::with_capacity(n);
        match version {
            VERSION => {
                for _ in 0..n {
                    let id = codec::get_u32(&mut cursor)?;
                    let database = codec::get_str(&mut cursor)?;
                    let table = codec::get_str(&mut cursor)?;
                    let column = codec::get_str(&mut cursor)?;
                    entries.push((id, ColumnRef::new(database, table, column)));
                }
            }
            VERSION_FEDERATED => {
                for _ in 0..n {
                    let saved_id = codec::get_u32(&mut cursor)?;
                    let r = ColumnRef::decode(&mut cursor)?;
                    // The saved id's high bits are the *saving* process's
                    // interner assignment; only the name travels. Recompose
                    // against this process's bits for the (re-interned)
                    // backend, keeping the saved per-backend local part.
                    let id = compose_item_id(r.backend.bits(), item_local(saved_id));
                    entries.push((id, r));
                }
            }
            v => {
                return Err(StoreError::Codec(wg_util::codec::CodecError::Invalid(format!(
                    "unsupported snapshot version {v}"
                ))))
            }
        }
        let index_bytes = codec::get_bytes(&mut cursor)?;
        let mut index_cursor = &index_bytes[..];
        // The same name-authoritative remap applies inside the index frame
        // (v1 index payloads have no name table and resolve nothing).
        let index = ShardedLshIndex::decode_with_backends(
            &mut index_cursor,
            self.config().effective_shards(),
            |name| Ok(BackendId::named(name).bits()),
        )?;
        self.restore_from_persist(index, entries)
    }

    /// Write the snapshot to a file.
    pub fn save_to_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let bytes = self.to_bytes();
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(&bytes)?;
        f.flush()
    }

    /// Load a snapshot from a file into this (already configured) system.
    pub fn load_from_file(&mut self, path: impl AsRef<Path>) -> StoreResult<()> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| StoreError::NotFound(format!("snapshot file: {e}")))?;
        self.load_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WarpGateConfig;
    use std::sync::Arc;
    use wg_store::{CdwConfig, CdwConnector, Column, Database, Table, Warehouse};

    fn connector() -> Arc<CdwConnector> {
        let mut w = Warehouse::new("w");
        let mut db = Database::new("db");
        db.add_table(
            Table::new(
                "a",
                vec![Column::text("x", (0..50).map(|i| format!("val {i}")).collect::<Vec<_>>())],
            )
            .unwrap(),
        );
        db.add_table(
            Table::new(
                "b",
                vec![Column::text("y", (0..50).map(|i| format!("VAL {i}")).collect::<Vec<_>>())],
            )
            .unwrap(),
        );
        w.add_database(db);
        Arc::new(CdwConnector::new(w, CdwConfig::free()))
    }

    #[test]
    fn roundtrip_preserves_discovery() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        wg.index_warehouse().unwrap();
        let q = ColumnRef::new("db", "a", "x");
        let before = wg.discover(&q, 3).unwrap().candidates;

        let bytes = wg.to_bytes();
        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), c);
        fresh.load_bytes(&bytes).unwrap();
        assert_eq!(fresh.len(), wg.len());
        let after = fresh.discover(&q, 3).unwrap().candidates;
        assert_eq!(before, after);
    }

    #[test]
    fn roundtrip_across_shard_counts() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default().with_shards(8), c.clone());
        wg.index_warehouse().unwrap();
        let q = ColumnRef::new("db", "a", "x");
        let want = wg.discover(&q, 3).unwrap().candidates;
        let bytes = wg.to_bytes();
        for shards in [1usize, 3, 16] {
            let mut fresh =
                WarpGate::with_backend(WarpGateConfig::default().with_shards(shards), c.clone());
            fresh.load_bytes(&bytes).unwrap();
            assert_eq!(fresh.len(), wg.len());
            let got = fresh.discover(&q, 3).unwrap().candidates;
            assert_eq!(got, want, "results changed through a {shards}-shard reload");
        }
    }

    #[test]
    fn roundtrip_after_removal_keeps_gaps() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c);
        wg.index_warehouse().unwrap();
        wg.remove_table("db", "b");
        let bytes = wg.to_bytes();
        let mut fresh = WarpGate::new(WarpGateConfig::default());
        fresh.load_bytes(&bytes).unwrap();
        assert_eq!(fresh.len(), 1);
        // The removed table must not reappear.
        let hits = fresh.discover_values(&["VAL 1"], 5);
        assert!(hits.iter().all(|h| h.reference.table != "b"));
    }

    #[test]
    fn file_roundtrip() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c);
        wg.index_warehouse().unwrap();
        let path = std::env::temp_dir().join(format!("wg_snapshot_{}.bin", std::process::id()));
        wg.save_to_file(&path).unwrap();
        let mut fresh = WarpGate::new(WarpGateConfig::default());
        fresh.load_from_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(fresh.len(), 2);
    }

    #[test]
    fn restore_invalidates_sync_state() {
        // A snapshot may reflect warehouse content the backend no longer
        // serves; the first sync after a restore must re-scan everything.
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        wg.index_warehouse().unwrap();
        assert!(wg.sync().unwrap().is_noop(), "freshly indexed system syncs as a no-op");
        let bytes = wg.to_bytes();
        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), c);
        fresh.load_bytes(&bytes).unwrap();
        let report = fresh.sync().unwrap();
        assert_eq!(
            report.tables_added + report.tables_updated,
            2,
            "restored system must reconcile every backend table: {report:?}"
        );
    }

    #[test]
    fn rejects_garbage_and_dim_mismatch() {
        let mut wg = WarpGate::new(WarpGateConfig::default());
        assert!(wg.load_bytes(b"garbage").is_err());

        let c = connector();
        let wg64 = WarpGate::with_backend(WarpGateConfig { dim: 64, ..Default::default() }, c);
        wg64.index_warehouse().unwrap();
        let bytes = wg64.to_bytes();
        let mut wg128 = WarpGate::new(WarpGateConfig::default());
        assert!(wg128.load_bytes(&bytes).is_err(), "dimension mismatch must fail");
    }

    #[test]
    fn missing_file_errors() {
        let mut wg = WarpGate::new(WarpGateConfig::default());
        assert!(wg.load_from_file("/nonexistent/path/snapshot.bin").is_err());
    }

    #[test]
    fn all_default_snapshots_stay_version_1() {
        // Back-compat pin: a system whose every column lives in the
        // default namespace writes the pre-federation frame — old readers
        // keep working, and old snapshots keep loading (into the default
        // namespace), indefinitely.
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c.clone());
        wg.index_warehouse().unwrap();
        let bytes = wg.to_bytes();
        let mut cursor = &bytes[..];
        assert_eq!(codec::get_header(&mut cursor, MAGIC).unwrap(), VERSION);

        // Old bytes → default namespace, and a re-encode does not upgrade
        // the frame.
        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), c);
        fresh.load_bytes(&bytes).unwrap();
        let q = ColumnRef::new("db", "a", "x");
        let d = fresh.discover(&q, 3).unwrap();
        assert!(d.candidates.iter().all(|j| j.reference.backend.is_default()));
        let reencoded = fresh.to_bytes();
        let mut cursor = &reencoded[..];
        assert_eq!(codec::get_header(&mut cursor, MAGIC).unwrap(), VERSION);
        let mut again = WarpGate::with_backend(WarpGateConfig::default(), connector());
        again.load_bytes(&reencoded).unwrap();
        assert_eq!(again.discover(&q, 3).unwrap().candidates, d.candidates);
    }

    #[test]
    fn federated_snapshot_roundtrip_preserves_namespaces() {
        let cdw = connector();
        let mut lake_w = Warehouse::new("lake");
        lake_w.database_mut("raw").add_table(
            Table::new(
                "dump",
                vec![Column::text(
                    "x_variant",
                    (0..50).map(|i| format!("Val {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        let lake_c = Arc::new(CdwConnector::new(lake_w, CdwConfig::free()));

        let wg = WarpGate::with_backend(WarpGateConfig::default(), cdw.clone());
        let lake = wg.attach_named("persist-test-lake", lake_c.clone());
        wg.index_warehouse().unwrap();
        assert_eq!(wg.len(), 3);
        let q = ColumnRef::new("db", "a", "x");
        let before = wg.discover(&q, 5).unwrap().candidates;
        assert!(
            before.iter().any(|j| j.reference.backend == lake),
            "fixture must produce a cross-namespace hit: {before:?}"
        );

        let bytes = wg.to_bytes();
        let mut cursor = &bytes[..];
        assert_eq!(codec::get_header(&mut cursor, MAGIC).unwrap(), VERSION_FEDERATED);

        let mut fresh = WarpGate::with_backend(WarpGateConfig::default(), cdw);
        fresh.attach_named("persist-test-lake", lake_c);
        fresh.load_bytes(&bytes).unwrap();
        assert_eq!(fresh.len(), 3);
        assert_eq!(fresh.discover(&q, 5).unwrap().candidates, before);
        // Scoped discovery still addresses the restored namespace.
        let scoped =
            fresh.discover_scoped(&q, 5, &wg_lsh::DiscoverScope::include([lake.bits()])).unwrap();
        assert!(!scoped.candidates.is_empty());
        assert!(scoped.candidates.iter().all(|j| j.reference.backend == lake));
    }
}
