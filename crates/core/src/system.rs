//! The WarpGate system facade: indexing pipeline, search pipeline, and the
//! lookup-join product interaction.

use std::sync::Arc;

use parking_lot::RwLock;
use wg_embed::{ColumnEmbedder, EmbeddingModel, WebTableConfig, WebTableModel};
use wg_lsh::{LshParams, SearchOutcome, ShardedLshIndex};
use wg_store::{
    BackendHandle, ColumnRef, CostSnapshot, KeyNorm, StoreError, StoreResult, Table, TableMeta,
    WarehouseBackend,
};
use wg_util::timing::Stopwatch;
use wg_util::FxHashMap;

use crate::cache::{CacheStats, EmbeddingCache, EmbeddingKey};
use crate::config::WarpGateConfig;
use crate::timing::QueryTiming;

/// How many scanned+embedded columns the indexing collector accumulates
/// before flushing them through the registry lock and into the shards. One
/// registry write-lock acquisition and at most one lock per touched shard
/// amortize over this many items, while keeping each lock hold short
/// enough that concurrent queries are never starved.
const INDEX_FLUSH_BATCH: usize = 64;

/// One ranked join recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinCandidate {
    /// The candidate column (database, table, column — what the Sigma
    /// Workbooks window in Fig. 3 displays per row).
    pub reference: ColumnRef,
    /// Cosine similarity to the query column's embedding.
    pub score: f32,
}

/// The result of one discovery query.
#[derive(Debug, Clone)]
pub struct Discovery {
    /// The query column.
    pub query: ColumnRef,
    /// Ranked candidates, best first.
    pub candidates: Vec<JoinCandidate>,
    /// Wall-clock decomposition.
    pub timing: QueryTiming,
    /// LSH candidate-set diagnostics.
    pub outcome: SearchOutcome,
}

/// Summary of one indexing run.
#[derive(Debug, Clone, Copy)]
pub struct IndexReport {
    /// Columns whose embeddings entered the index.
    pub columns_indexed: usize,
    /// Columns skipped (no embeddable content — all NULL or symbols).
    pub columns_skipped: usize,
    /// Wall-clock seconds for the whole run.
    pub elapsed_secs: f64,
    /// Warehouse scan costs incurred by the run.
    pub cost: CostSnapshot,
}

/// Summary of one [`WarpGate::sync`] reconciliation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SyncReport {
    /// Tables seen for the first time (scanned and indexed in full).
    pub tables_added: usize,
    /// Tables whose version token changed (re-scanned and re-indexed).
    pub tables_updated: usize,
    /// Tables that vanished from the backend (dropped from the index).
    pub tables_removed: usize,
    /// Columns (re-)embedded and inserted by this sync.
    pub columns_indexed: usize,
    /// Columns scanned but skipped (no embeddable content).
    pub columns_skipped: usize,
    /// Columns dropped (vanished tables plus vanished columns of changed
    /// tables).
    pub columns_removed: usize,
    /// Wall-clock seconds for the reconciliation.
    pub elapsed_secs: f64,
    /// Warehouse scan costs incurred — proportional to what changed, not
    /// to warehouse size.
    pub cost: CostSnapshot,
}

impl SyncReport {
    /// True when the backend matched the index and nothing was touched.
    pub fn is_noop(&self) -> bool {
        self.tables_added == 0 && self.tables_updated == 0 && self.tables_removed == 0
    }
}

/// Maps dense item ids (what the LSH index stores) to column references.
#[derive(Default)]
struct Registry {
    refs: Vec<Option<ColumnRef>>,
    id_of: FxHashMap<ColumnRef, u32>,
}

impl Registry {
    fn insert(&mut self, r: ColumnRef) -> u32 {
        if let Some(&id) = self.id_of.get(&r) {
            return id;
        }
        let id = self.refs.len() as u32;
        self.id_of.insert(r.clone(), id);
        self.refs.push(Some(r));
        id
    }

    fn remove(&mut self, r: &ColumnRef) -> Option<u32> {
        let id = self.id_of.remove(r)?;
        self.refs[id as usize] = None;
        Some(id)
    }

    fn reference(&self, id: u32) -> Option<&ColumnRef> {
        self.refs.get(id as usize).and_then(|r| r.as_ref())
    }

    /// Live refs of one table (read-path helper for removal and sync).
    fn table_refs(&self, database: &str, table: &str) -> Vec<ColumnRef> {
        self.refs
            .iter()
            .flatten()
            .filter(|r| r.database == database && r.table == table)
            .cloned()
            .collect()
    }
}

/// What the index currently reflects, per table: the backend version token
/// recorded when the table was last (re-)indexed, stamped with the attach
/// epoch so swapping backends invalidates every recorded token at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TableState {
    epoch: u64,
    version: u64,
}

#[derive(Default)]
struct SyncState {
    /// Bumped on every `attach`; recorded tokens from older epochs never
    /// compare equal, so `sync` re-scans everything after a backend swap.
    epoch: u64,
    tables: FxHashMap<(String, String), TableState>,
}

/// The semantic join discovery system.
///
/// A `WarpGate` is *attached* to one [`WarehouseBackend`] at a time
/// ([`WarpGate::attach`] / [`WarpGate::detach`]) — the simulated CDW, a
/// CSV directory, a fault-injecting wrapper, or any future real
/// warehouse. All indexing and discovery flows through the attached
/// backend; [`WarpGate::sync`] diffs the backend's version tokens against
/// what the index reflects and re-scans only what changed.
///
/// Internally the hot path is built for concurrency: embeddings live in a
/// [`ShardedLshIndex`] (items partitioned by id across independently locked
/// shards), query embeddings are memoized in a sharded LRU
/// [`EmbeddingCache`], and the id → column-reference registry is the only
/// globally locked structure (reads are shared; writes are batched).
pub struct WarpGate {
    config: WarpGateConfig,
    embedder: ColumnEmbedder,
    index: ShardedLshIndex,
    registry: RwLock<Registry>,
    cache: EmbeddingCache,
    backend: RwLock<Option<BackendHandle>>,
    synced: RwLock<SyncState>,
}

impl WarpGate {
    /// Create a system with the default hashed web-table embedding model.
    /// No backend is attached yet; call [`Self::attach`] (or use
    /// [`Self::with_backend`]) before indexing or querying.
    pub fn new(config: WarpGateConfig) -> Self {
        let model = WebTableModel::new(WebTableConfig {
            dim: config.dim,
            seed: config.seed,
            ..WebTableConfig::default()
        });
        Self::with_model(config, Arc::new(model))
    }

    /// Create a system and attach a warehouse backend in one step.
    pub fn with_backend(config: WarpGateConfig, backend: BackendHandle) -> Self {
        let wg = Self::new(config);
        wg.attach(backend);
        wg
    }

    /// Create a system with a caller-provided embedding model (the §4.4
    /// BERT comparison swaps in [`wg_embed::MiniBertModel`] here).
    pub fn with_model(config: WarpGateConfig, model: Arc<dyn EmbeddingModel>) -> Self {
        assert_eq!(model.dim(), config.dim, "model dimension must match config");
        let index = ShardedLshIndex::new(
            config.dim,
            LshParams::for_threshold(config.lsh_threshold, config.lsh_bits),
            config.seed ^ 0x1DB5,
            config.effective_shards(),
        );
        index.set_probes(config.probes);
        Self {
            embedder: ColumnEmbedder::new(model, config.aggregation),
            index,
            registry: RwLock::new(Registry::default()),
            cache: EmbeddingCache::new(config.cache_capacity),
            backend: RwLock::new(None),
            synced: RwLock::new(SyncState::default()),
            config,
        }
    }

    /// Attach a warehouse backend, replacing any previous one. The index
    /// is left intact, but the embedding cache is cleared and every
    /// recorded table version is invalidated, so the next [`Self::sync`]
    /// reconciles the index against the new backend in full (vanished
    /// tables drop, everything present re-scans).
    pub fn attach(&self, backend: BackendHandle) {
        *self.backend.write() = Some(backend);
        self.synced.write().epoch += 1;
        // Same column names may hold different content on the new backend;
        // cached embeddings are not trustworthy across the swap.
        self.cache.clear();
    }

    /// Detach the current backend, returning it. Discovery and indexing
    /// fail with [`StoreError::Backend`] until a backend is attached
    /// again; the index itself stays queryable via
    /// [`Self::discover_values`].
    pub fn detach(&self) -> Option<BackendHandle> {
        self.backend.write().take()
    }

    /// The attached backend, or an error if none is.
    pub fn backend(&self) -> StoreResult<BackendHandle> {
        self.backend.read().clone().ok_or_else(|| {
            StoreError::Backend("no warehouse backend attached (call attach() first)".into())
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &WarpGateConfig {
        &self.config
    }

    /// The column embedder (shared with tests/ablations).
    pub fn embedder(&self) -> &ColumnEmbedder {
        &self.embedder
    }

    /// Number of indexed columns.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Embedding-cache hit/miss counters and occupancy.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The current attach epoch. Captured *before* resolving the backend
    /// handle: `attach` stores the new backend first and bumps the epoch
    /// second, so an epoch captured before the handle can never be newer
    /// than the backend the run scans — any concurrent attach makes the
    /// epoch move and the run's token commit is discarded.
    fn run_epoch(&self) -> u64 {
        self.synced.read().epoch
    }

    /// Record that the index now reflects these tables at these versions —
    /// unless the attach epoch moved since `run_epoch` was captured, in
    /// which case the tokens belong to a detached backend and recording
    /// them would poison the next sync's diff; discard instead (the next
    /// sync re-scans, which is the safe direction).
    fn record_synced(&self, run_epoch: u64, metas: &[TableMeta]) {
        let mut state = self.synced.write();
        if state.epoch != run_epoch {
            return;
        }
        for m in metas {
            state.tables.insert(
                (m.database.clone(), m.table.clone()),
                TableState { epoch: run_epoch, version: m.version },
            );
        }
    }

    /// Index every column of the attached warehouse: scan (sampled) →
    /// embed → insert. Scanning and embedding fan out over worker threads;
    /// inserts land in batches on the id-partitioned index shards.
    pub fn index_warehouse(&self) -> StoreResult<IndexReport> {
        let run_epoch = self.run_epoch();
        let backend = self.backend()?;
        // Version tokens are fetched *before* scanning but recorded only
        // after the run succeeds: if content changes mid-run the recorded
        // token is the older one and the next sync re-scans
        // (conservative), and a failed run records nothing at all.
        let metas = backend.list_tables()?;
        let refs: Vec<ColumnRef> = metas.iter().flat_map(|m| m.column_refs()).collect();
        let report = self.index_refs(backend.as_ref(), refs)?;
        self.record_synced(run_epoch, &metas);
        Ok(report)
    }

    /// Index (or refresh) a single table — the incremental path for CDWs
    /// with high update rates.
    pub fn index_table(&self, database: &str, table: &str) -> StoreResult<IndexReport> {
        let run_epoch = self.run_epoch();
        let backend = self.backend()?;
        let meta = backend.table_meta(database, table)?;
        let report = self.index_refs(backend.as_ref(), meta.column_refs())?;
        self.record_synced(run_epoch, std::slice::from_ref(&meta));
        Ok(report)
    }

    /// Reconcile the index with the attached backend, touching only what
    /// changed. Diffs the backend's table-version tokens against what the
    /// index reflects:
    ///
    /// * tables whose token changed are re-scanned, re-embedded, and
    ///   re-indexed (their cached query embeddings are evicted; their
    ///   existing ids keep their shard placement, so only the affected
    ///   LSH-shard entries are rewritten);
    /// * columns that vanished from a changed table, and whole vanished
    ///   tables, drop out of the registry, index, and cache;
    /// * everything else — index entries, cache entries, shard contents —
    ///   stays warm and untouched.
    ///
    /// Scan cost (and the returned [`SyncReport::cost`]) is therefore
    /// proportional to the change set, not the warehouse.
    pub fn sync(&self) -> StoreResult<SyncReport> {
        let run_epoch = self.run_epoch();
        let backend = self.backend()?;
        let sw = Stopwatch::start();
        let cost_before = backend.costs();
        // Diff on the cheap change-token surface; full metadata (column
        // lists) is fetched per table below, and only for the change set —
        // on a file-backed backend this is the difference between hashing
        // every file and parsing every file on a no-op sync.
        let versions = backend.snapshot_versions()?;

        let recorded = self.synced.read().tables.clone();
        let mut report = SyncReport::default();

        // Vanished tables drop out entirely.
        let current: wg_util::FxHashSet<(&str, &str)> =
            versions.iter().map(|v| (v.database.as_str(), v.table.as_str())).collect();
        for (database, table) in recorded.keys() {
            if !current.contains(&(database.as_str(), table.as_str())) {
                report.columns_removed += self.remove_table(database, table);
                report.tables_removed += 1;
            }
        }

        // Added and changed tables re-index; unchanged tables are skipped.
        let mut to_index: Vec<ColumnRef> = Vec::new();
        let mut to_record: Vec<TableMeta> = Vec::new();
        for v in &versions {
            let key = (v.database.clone(), v.table.clone());
            let known = match recorded.get(&key) {
                Some(st) if st.epoch == run_epoch && st.version == v.version => continue,
                Some(_) => true,
                None => false,
            };
            let meta = backend.table_meta(&v.database, &v.table)?;
            if known {
                report.tables_updated += 1;
                // Columns that vanished from the still-present table.
                let live = self.registry.read().table_refs(&meta.database, &meta.table);
                let vanished: Vec<ColumnRef> = live
                    .into_iter()
                    .filter(|r| !meta.columns.iter().any(|c| c == &r.column))
                    .collect();
                if !vanished.is_empty() {
                    report.columns_removed += self.remove_refs(&vanished);
                }
            } else {
                report.tables_added += 1;
            }
            to_index.extend(meta.column_refs());
            to_record.push(meta);
        }

        let indexed = self.index_refs(backend.as_ref(), to_index)?;
        // Tokens (fetched before the scans) are committed only now that
        // the scans succeeded — a failed sync records nothing, so the next
        // one retries the same change set.
        self.record_synced(run_epoch, &to_record);
        report.columns_indexed = indexed.columns_indexed;
        report.columns_skipped = indexed.columns_skipped;
        report.elapsed_secs = sw.elapsed_secs();
        report.cost = backend.costs().since(&cost_before);
        Ok(report)
    }

    /// Embed a scanned column, applying §5.2.1 schema-context blending
    /// when `context_weight > 0`. Context comes from free catalog metadata.
    fn embed_with_context(
        &self,
        backend: &dyn WarehouseBackend,
        r: &ColumnRef,
        column: &wg_store::Column,
    ) -> wg_embed::Vector {
        let values = self.embedder.embed_column(column);
        let beta = self.config.context_weight;
        if beta <= 0.0 {
            return values;
        }
        let siblings = backend
            .table_meta(&r.database, &r.table)
            .map(|m| m.columns.into_iter().filter(|n| n != &r.column).collect())
            .unwrap_or_default();
        let context = wg_embed::ColumnContext {
            column_name: r.column.clone(),
            table_name: r.table.clone(),
            siblings,
        };
        let ctx = wg_embed::context_vector(self.embedder.model().as_ref(), &context);
        wg_embed::blend_context(&values, &ctx, beta)
    }

    fn index_refs(
        &self,
        backend: &dyn WarehouseBackend,
        refs: Vec<ColumnRef>,
    ) -> StoreResult<IndexReport> {
        let sw = Stopwatch::start();
        let cost_before = backend.costs();
        let threads = self.config.effective_threads().min(refs.len().max(1));
        let sample = self.config.sample;

        // (Re-)indexing means these columns' warehouse data may have
        // changed; cached query embeddings for them are stale.
        let mut touched: wg_util::FxHashSet<(&str, &str)> = wg_util::fx_hash_set();
        for r in &refs {
            touched.insert((&r.database, &r.table));
        }
        for (database, table) in touched {
            self.cache.invalidate_table(database, table);
        }

        let (work_tx, work_rx) = crossbeam::channel::unbounded::<ColumnRef>();
        for r in refs {
            work_tx.send(r).expect("channel open");
        }
        drop(work_tx);

        let (done_tx, done_rx) =
            crossbeam::channel::unbounded::<StoreResult<(ColumnRef, wg_embed::Vector)>>();
        // Raised on the first scan/embed error so workers stop pulling work:
        // without it, an early failure would still scan (and bill) every
        // remaining column before the error could propagate.
        let abort = std::sync::atomic::AtomicBool::new(false);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                let work_rx = work_rx.clone();
                let done_tx = done_tx.clone();
                let abort = &abort;
                scope.spawn(move || {
                    for r in work_rx.iter() {
                        if abort.load(std::sync::atomic::Ordering::Relaxed) {
                            break;
                        }
                        let item = backend
                            .scan_column(&r, sample)
                            .map(|col| (r.clone(), self.embed_with_context(backend, &r, &col)));
                        if done_tx.send(item).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(done_tx);

            let mut indexed = 0usize;
            let mut skipped = 0usize;
            // Batch insertions: one registry write-lock acquisition maps a
            // whole batch of refs to ids, then the shard router takes each
            // involved shard's lock once — instead of two global write
            // locks per received column.
            let mut pending: Vec<(ColumnRef, wg_embed::Vector)> =
                Vec::with_capacity(INDEX_FLUSH_BATCH);
            let flush = |pending: &mut Vec<(ColumnRef, wg_embed::Vector)>,
                         indexed: &mut usize,
                         skipped: &mut usize| {
                if pending.is_empty() {
                    return;
                }
                let batch: Vec<(u32, Vec<f32>)> = {
                    let mut registry = self.registry.write();
                    pending.drain(..).map(|(r, v)| (registry.insert(r), v.0)).collect()
                };
                let batch_len = batch.len();
                let accepted = self.index.insert_batch(batch);
                *indexed += accepted;
                *skipped += batch_len - accepted;
            };
            for item in done_rx.iter() {
                let (r, vector) = match item {
                    Ok(pair) => pair,
                    Err(e) => {
                        abort.store(true, std::sync::atomic::Ordering::Relaxed);
                        return Err(e);
                    }
                };
                if vector.is_zero() {
                    skipped += 1;
                    continue;
                }
                pending.push((r, vector));
                if pending.len() >= INDEX_FLUSH_BATCH {
                    flush(&mut pending, &mut indexed, &mut skipped);
                }
            }
            flush(&mut pending, &mut indexed, &mut skipped);
            Ok(IndexReport {
                columns_indexed: indexed,
                columns_skipped: skipped,
                elapsed_secs: sw.elapsed_secs(),
                cost: backend.costs().since(&cost_before),
            })
        })
    }

    /// Drop specific columns from registry, index, and cache. Returns how
    /// many were actually removed (a concurrent remove may win races).
    fn remove_refs(&self, victims: &[ColumnRef]) -> usize {
        if victims.is_empty() {
            return 0;
        }
        let ids: Vec<u32> = {
            let mut registry = self.registry.write();
            victims.iter().filter_map(|r| registry.remove(r)).collect()
        };
        let removed = self.index.remove_batch(&ids);
        for r in victims {
            self.cache.invalidate_column(r);
        }
        removed
    }

    /// Remove a table's columns from the index (e.g. after a drop). Returns
    /// how many columns were removed.
    ///
    /// Victims are collected under a shared read lock; the write locks
    /// (registry, then the affected shards) are only held for the actual
    /// mutation, so concurrent queries proceed through the scan.
    pub fn remove_table(&self, database: &str, table: &str) -> usize {
        let victims = self.registry.read().table_refs(database, table);
        self.synced.write().tables.remove(&(database.to_string(), table.to_string()));
        if victims.is_empty() {
            self.cache.invalidate_table(database, table);
            return 0;
        }
        let removed = self.remove_refs(&victims);
        self.cache.invalidate_table(database, table);
        removed
    }

    /// Discovery query for a warehouse column: load (sampled) → embed →
    /// LSH lookup → exact re-rank. The scan and embed phases are skipped
    /// when the query embedding is cached from an earlier call (see
    /// [`QueryTiming::cache_hit`]).
    pub fn discover(&self, query: &ColumnRef, k: usize) -> StoreResult<Discovery> {
        // Epoch before backend (see `run_epoch`): if an attach races this
        // query, the embedding we compute lands under the old epoch's
        // cache key, unreachable by post-attach lookups.
        let epoch = self.run_epoch();
        let backend = self.backend()?;
        // Validate the target exists before paying for a scan.
        backend.validate_column(query)?;
        self.discover_validated(&backend, epoch, query, k)
    }

    /// [`Self::discover`] after validation — the shared body for single
    /// queries and batch workers (which validate the whole batch up front
    /// and must not re-pay a catalog lookup per query).
    fn discover_validated(
        &self,
        backend: &BackendHandle,
        epoch: u64,
        query: &ColumnRef,
        k: usize,
    ) -> StoreResult<Discovery> {
        let mut timing = QueryTiming::default();
        let key = EmbeddingKey::new(
            query,
            self.config.sample,
            self.config.seed,
            self.config.context_weight,
            epoch,
        );
        let vector = match self.cache.get(&key) {
            Some(v) => {
                timing.cache_hit = true;
                v
            }
            None => {
                let cost_before = backend.costs();
                let sw = Stopwatch::start();
                let column = backend.scan_column(query, self.config.sample)?;
                timing.load_secs = sw.elapsed_secs();
                let cost_delta = backend.costs().since(&cost_before);
                timing.virtual_load_secs = cost_delta.virtual_secs;
                timing.retries = cost_delta.retries;

                let sw = Stopwatch::start();
                let vector = self.embed_with_context(backend.as_ref(), query, &column);
                timing.embed_secs = sw.elapsed_secs();
                // Zero vectors are cached too: the (empty) answer is just as
                // repeatable, and skipping the re-scan is the whole point.
                self.cache.put(key, vector.clone());
                vector
            }
        };

        if vector.is_zero() {
            return Ok(Discovery {
                query: query.clone(),
                candidates: Vec::new(),
                timing,
                outcome: SearchOutcome { candidates: 0, scored: 0 },
            });
        }
        let (candidates, outcome, lookup_secs) = self.search_vector(&vector, query, k);
        timing.lookup_secs = lookup_secs;
        Ok(Discovery { query: query.clone(), candidates, timing, outcome })
    }

    /// Batched discovery: answer many queries in one call, fanning the
    /// scan → embed → lookup pipeline out over worker threads. This is the
    /// warehouse-wide join-graph workload: results come back in input
    /// order, and repeated or previously seen query columns hit the
    /// embedding cache.
    ///
    /// Work is claimed in **chunks**, not dispatched per column: the batch
    /// is cut into contiguous chunks a few per worker, workers claim the
    /// next unclaimed chunk off one atomic counter, and the calling thread
    /// claims alongside the spawned workers. Small batches therefore pay
    /// `threads − 1` thread spawns and one atomic increment per *chunk*,
    /// instead of two channel hops plus a scheduler wakeup per *query* —
    /// the overhead that made batched discovery slower than a sequential
    /// loop on small batches — while a chunk of slow cold scans cannot
    /// gate the batch on one worker (the others drain the remaining
    /// chunks). Queries are validated once, up front, and workers skip the
    /// per-query catalog lookup. The configured `threads` value is
    /// honored even past the hardware thread count: against a blocking
    /// backend (e.g. a remote warehouse over TCP) oversubscription is
    /// how in-flight scans overlap; the default (`threads == 0`)
    /// resolves to one worker per hardware thread, which is right for
    /// the in-process compute-bound backends.
    pub fn discover_batch(&self, queries: &[ColumnRef], k: usize) -> StoreResult<Vec<Discovery>> {
        let epoch = self.run_epoch();
        let backend = self.backend()?;
        // Validate everything up front: one bad ref fails the batch before
        // any column is scanned (and billed).
        for q in queries {
            backend.validate_column(q)?;
        }
        let threads = self.config.effective_threads().min(queries.len().max(1));
        if threads <= 1 || queries.len() <= 1 {
            return queries
                .iter()
                .map(|q| self.discover_validated(&backend, epoch, q, k))
                .collect();
        }

        // ~4 chunks per worker: coarse enough that claiming stays
        // negligible, fine enough that a straggling chunk rebalances.
        let chunk = queries.len().div_ceil(threads * 4).max(1);
        let chunks: Vec<&[ColumnRef]> = queries.chunks(chunk).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let abort = std::sync::atomic::AtomicBool::new(false);
        // Each worker claims chunks until none are left (or a failure
        // elsewhere raises the abort flag, so nobody keeps pulling — and
        // billing — remaining columns) and returns its chunk results for
        // the in-order scatter below.
        let run = || -> StoreResult<Vec<(usize, Vec<Discovery>)>> {
            let mut produced = Vec::new();
            loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(qs) = chunks.get(i) else {
                    return Ok(produced);
                };
                let mut out = Vec::with_capacity(qs.len());
                for q in *qs {
                    if abort.load(std::sync::atomic::Ordering::Relaxed) {
                        return Ok(produced);
                    }
                    match self.discover_validated(&backend, epoch, q, k) {
                        Ok(d) => out.push(d),
                        Err(e) => {
                            abort.store(true, std::sync::atomic::Ordering::Relaxed);
                            return Err(e);
                        }
                    }
                }
                produced.push((i, out));
            }
        };

        let mut slots: Vec<Option<Discovery>> = (0..queries.len()).map(|_| None).collect();
        let first_error = std::thread::scope(|scope| {
            let run = &run;
            let handles: Vec<_> = (1..threads).map(|_| scope.spawn(run)).collect();
            let mut err = None;
            for outcome in std::iter::once(run())
                .chain(handles.into_iter().map(|h| h.join().expect("batch worker panicked")))
            {
                match outcome {
                    Ok(produced) => {
                        for (i, out) in produced {
                            for (j, d) in out.into_iter().enumerate() {
                                slots[i * chunk + j] = Some(d);
                            }
                        }
                    }
                    Err(e) => {
                        err.get_or_insert(e);
                    }
                }
            }
            err
        });
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(slots.into_iter().map(|d| d.expect("all slots filled")).collect())
    }

    /// Ad-hoc discovery from raw values (no warehouse column backing the
    /// query — e.g. a user-pasted list). Works without an attached
    /// backend: only the in-memory index is consulted.
    pub fn discover_values<S: AsRef<str>>(&self, values: &[S], k: usize) -> Vec<JoinCandidate> {
        let vector = self.embedder.embed_values(values);
        if vector.is_zero() {
            return Vec::new();
        }
        let nowhere = ColumnRef::new("", "", "");
        self.search_vector(&vector, &nowhere, k).0
    }

    fn search_vector(
        &self,
        vector: &wg_embed::Vector,
        query: &ColumnRef,
        k: usize,
    ) -> (Vec<JoinCandidate>, SearchOutcome, f64) {
        let registry = self.registry.read();
        let exclude_same_table = self.config.exclude_same_table;
        let sw = Stopwatch::start();
        let (hits, outcome) = self.index.search_with_outcome(vector.as_slice(), k, |id| {
            match registry.reference(id) {
                // Tombstoned ids never match; the query column itself and
                // (optionally) its table-mates are filtered out.
                None => true,
                Some(r) => r == query || (exclude_same_table && r.same_table(query)),
            }
        });
        let lookup_secs = sw.elapsed_secs();
        let candidates = hits
            .into_iter()
            .filter_map(|(id, score)| {
                registry.reference(id).map(|r| JoinCandidate { reference: r.clone(), score })
            })
            .collect();
        (candidates, outcome, lookup_secs)
    }

    /// Execute the product interaction of Fig. 3 step 3 ("Add column via
    /// lookup"): pull the candidate's table and lookup-join the selected
    /// columns onto the base table, preserving its cardinality.
    ///
    /// `norm` controls the key transformation — [`KeyNorm::AlphaNum`]
    /// realizes the "joinable after transformation" semantics for format
    /// variants.
    pub fn augment_via_lookup(
        &self,
        base: &Table,
        base_key: &str,
        candidate: &ColumnRef,
        add_columns: &[&str],
        norm: KeyNorm,
    ) -> StoreResult<Table> {
        let backend = self.backend()?;
        let lookup_table = backend.scan_table(
            &candidate.database,
            &candidate.table,
            wg_store::SampleSpec::Full,
        )?;
        wg_store::join::lookup_join(
            base,
            base_key,
            &lookup_table,
            &candidate.column,
            add_columns,
            norm,
        )
    }

    /// Direct cosine similarity between two warehouse columns under this
    /// system's embedding — the paper's `J(A,B)` made inspectable. Embeds
    /// values only (no schema-context blend); embeddings come from (and
    /// feed) the cache under the value-only key.
    pub fn joinability(&self, a: &ColumnRef, b: &ColumnRef) -> StoreResult<f32> {
        let epoch = self.run_epoch();
        let backend = self.backend()?;
        let va = self.value_embedding(backend.as_ref(), a, epoch)?;
        let vb = self.value_embedding(backend.as_ref(), b, epoch)?;
        Ok(va.cosine(&vb))
    }

    /// Cached value-only column embedding (context weight key `0.0`, which
    /// coincides with [`Self::discover`]'s key when the system runs without
    /// contextual blending — the paper's configuration).
    fn value_embedding(
        &self,
        backend: &dyn WarehouseBackend,
        r: &ColumnRef,
        epoch: u64,
    ) -> StoreResult<wg_embed::Vector> {
        let key = EmbeddingKey::new(r, self.config.sample, self.config.seed, 0.0, epoch);
        if let Some(v) = self.cache.get(&key) {
            return Ok(v);
        }
        let column = backend.scan_column(r, self.config.sample)?;
        let vector = self.embedder.embed_column(&column);
        self.cache.put(key, vector.clone());
        Ok(vector)
    }

    pub(crate) fn snapshot_for_persist(&self) -> (Vec<u8>, Vec<(u32, ColumnRef)>) {
        let mut index_bytes = Vec::new();
        // The sharded index serializes to the same merged frame as the old
        // single-lock index, so snapshots are independent of shard count.
        self.index.encode(&mut index_bytes);
        let registry = self.registry.read();
        let mut entries: Vec<(u32, ColumnRef)> = registry
            .refs
            .iter()
            .enumerate()
            .filter_map(|(id, r)| r.as_ref().map(|r| (id as u32, r.clone())))
            .collect();
        entries.sort_by_key(|(id, _)| *id);
        (index_bytes, entries)
    }

    pub(crate) fn restore_from_persist(
        &mut self,
        index: ShardedLshIndex,
        entries: Vec<(u32, ColumnRef)>,
    ) -> StoreResult<()> {
        if index.dim() != self.config.dim {
            return Err(StoreError::Schema(format!(
                "persisted index dimension {} does not match config {}",
                index.dim(),
                self.config.dim
            )));
        }
        let mut registry = Registry::default();
        for (id, r) in entries {
            // Ids were assigned densely at save time in ascending order;
            // re-inserting in that order reproduces them.
            let got = registry.insert(r);
            if got != id {
                // Gaps from removed columns: pad with tombstones.
                while registry.refs.len() as u32 <= id {
                    registry.refs.push(None);
                }
                let r = registry.refs[got as usize].take().expect("just inserted");
                registry.id_of.insert(r.clone(), id);
                registry.refs[id as usize] = Some(r);
            }
        }
        *self.registry.write() = registry;
        self.index = index;
        // The snapshot may come from a system over different warehouse
        // content; cached query embeddings are not trustworthy across it,
        // and neither are recorded sync versions — the next sync() must
        // re-scan everything the backend still serves.
        self.cache.clear();
        let mut synced = self.synced.write();
        synced.epoch += 1;
        synced.tables.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_store::{CdwConfig, CdwConnector, Column, Database, SampleSpec, Table, Warehouse};

    fn connector() -> Arc<CdwConnector> {
        let mut w = Warehouse::new("w");
        let mut sales = Database::new("salesforce");
        sales.add_table(
            Table::new(
                "account",
                vec![
                    Column::text(
                        "name",
                        (0..80).map(|i| format!("Company {i}")).collect::<Vec<_>>(),
                    ),
                    Column::ints("employees", (0..80).map(|i| i * 10).collect()),
                ],
            )
            .unwrap(),
        );
        sales.add_table(
            Table::new(
                "lead",
                vec![Column::text(
                    "company",
                    (0..60).map(|i| format!("company {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        let mut stocks = Database::new("stocks");
        stocks.add_table(
            Table::new(
                "industries",
                vec![
                    Column::text(
                        "company_name",
                        (0..70).map(|i| format!("COMPANY {i}")).collect::<Vec<_>>(),
                    ),
                    Column::text(
                        "sector",
                        (0..70).map(|i| format!("Sector {}", i % 7)).collect::<Vec<_>>(),
                    ),
                ],
            )
            .unwrap(),
        );
        stocks.add_table(
            Table::new(
                "prices",
                vec![Column::floats("close", (0..50).map(|i| 10.0 + i as f64).collect())],
            )
            .unwrap(),
        );
        w.add_database(sales);
        w.add_database(stocks);
        Arc::new(CdwConnector::new(w, CdwConfig::free()))
    }

    fn system() -> (WarpGate, Arc<CdwConnector>) {
        let c = connector();
        let wg =
            WarpGate::with_backend(WarpGateConfig { threads: 2, ..Default::default() }, c.clone());
        wg.index_warehouse().unwrap();
        (wg, c)
    }

    #[test]
    fn indexes_all_embeddable_columns() {
        let (wg, _) = system();
        assert_eq!(wg.len(), 6);
    }

    #[test]
    fn discovers_format_variants_across_databases() {
        let (wg, _c) = system();
        let q = ColumnRef::new("salesforce", "account", "name");
        let d = wg.discover(&q, 3).unwrap();
        assert!(!d.candidates.is_empty(), "no candidates found");
        let refs: Vec<String> = d.candidates.iter().map(|j| j.reference.to_string()).collect();
        assert!(
            refs.contains(&"stocks.industries.company_name".to_string()),
            "cross-database variant missed: {refs:?}"
        );
        assert!(
            refs.contains(&"salesforce.lead.company".to_string()),
            "same-database variant missed: {refs:?}"
        );
        assert!(d.candidates[0].score > 0.9);
    }

    #[test]
    fn excludes_query_and_table_mates() {
        let (wg, _c) = system();
        let q = ColumnRef::new("salesforce", "account", "name");
        let d = wg.discover(&q, 10).unwrap();
        for j in &d.candidates {
            assert_ne!(j.reference, q);
            assert!(!j.reference.same_table(&q));
        }
    }

    #[test]
    fn timing_components_populated() {
        let (wg, _c) = system();
        let d = wg.discover(&ColumnRef::new("salesforce", "account", "name"), 3).unwrap();
        assert!(d.timing.load_secs > 0.0);
        assert!(d.timing.embed_secs > 0.0);
        assert!(d.timing.lookup_secs > 0.0);
        assert!(d.timing.total_secs() < 5.0, "unexpectedly slow");
    }

    #[test]
    fn sampling_preserves_results() {
        let c = connector();
        let full = WarpGate::with_backend(WarpGateConfig::full_scan(), c.clone());
        full.index_warehouse().unwrap();
        let sampled = WarpGate::with_backend(
            WarpGateConfig::default().with_sample(SampleSpec::DistinctReservoir { n: 10, seed: 7 }),
            c.clone(),
        );
        sampled.index_warehouse().unwrap();
        let q = ColumnRef::new("salesforce", "account", "name");
        // Both company-name variants are genuinely joinable; with a sample
        // of 10 values their ranks may swap (the paper reports ±1–2%
        // effectiveness variation). The sampled top hit must still be one
        // of the full-scan top hits.
        let full_top: Vec<ColumnRef> =
            full.discover(&q, 2).unwrap().candidates.into_iter().map(|j| j.reference).collect();
        let top_sampled = sampled.discover(&q, 1).unwrap().candidates[0].reference.clone();
        assert!(
            full_top.contains(&top_sampled),
            "sampled top hit {top_sampled} not among full-scan top-2 {full_top:?}"
        );
    }

    #[test]
    fn incremental_add_and_remove() {
        let (wg, c) = system();
        let before = wg.len();
        c.warehouse_mut().database_mut("stocks").add_table(
            Table::new("tickers", vec![Column::text("symbol", ["AAPL", "MSFT", "GOOG"])]).unwrap(),
        );
        wg.index_table("stocks", "tickers").unwrap();
        assert_eq!(wg.len(), before + 1);
        assert_eq!(wg.remove_table("stocks", "tickers"), 1);
        assert_eq!(wg.len(), before);
        // Removed table never comes back in results.
        let d = wg.discover(&ColumnRef::new("salesforce", "account", "name"), 10).unwrap();
        assert!(d.candidates.iter().all(|j| j.reference.table != "tickers"));
    }

    #[test]
    fn reindexing_a_table_replaces_vectors() {
        let (wg, c) = system();
        let before = wg.len();
        // Refresh the lead table with new content.
        c.warehouse_mut().database_mut("salesforce").add_table(
            Table::new(
                "lead",
                vec![Column::text(
                    "company",
                    (0..30).map(|i| format!("Fresh {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        wg.index_table("salesforce", "lead").unwrap();
        assert_eq!(wg.len(), before, "refresh must not grow the index");
    }

    #[test]
    fn discover_values_ad_hoc() {
        let (wg, _) = system();
        let hits = wg.discover_values(&["Company 1", "Company 2", "Company 3"], 3);
        assert!(!hits.is_empty());
        // Should surface one of the company-name columns.
        assert!(
            hits[0].reference.column.contains("name")
                || hits[0].reference.column.contains("company")
        );
    }

    #[test]
    fn augment_via_lookup_adds_sector() {
        let (wg, c) = system();
        let base = c.warehouse().table("salesforce", "account").unwrap().clone();
        let candidate = ColumnRef::new("stocks", "industries", "company_name");
        let augmented = wg
            .augment_via_lookup(&base, "name", &candidate, &["sector"], KeyNorm::CaseFold)
            .unwrap();
        assert_eq!(augmented.num_rows(), base.num_rows());
        let sector = augmented.column("sector").unwrap();
        // Rows 0..70 match (case-folded), the rest are NULL.
        assert!(!sector.get(0).is_null());
        assert!(sector.get(75).is_null());
    }

    #[test]
    fn joinability_is_symmetric_and_high_for_variants() {
        let (wg, _c) = system();
        let a = ColumnRef::new("salesforce", "account", "name");
        let b = ColumnRef::new("stocks", "industries", "company_name");
        let ab = wg.joinability(&a, &b).unwrap();
        let ba = wg.joinability(&b, &a).unwrap();
        assert!((ab - ba).abs() < 1e-6);
        assert!(ab > 0.8, "joinability {ab}");
    }

    #[test]
    fn unknown_query_errors() {
        let (wg, _c) = system();
        assert!(matches!(
            wg.discover(&ColumnRef::new("nope", "t", "c"), 3),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn detached_system_errors_cleanly() {
        let (wg, c) = system();
        let q = ColumnRef::new("salesforce", "account", "name");
        let handle = wg.detach().expect("was attached");
        assert!(matches!(wg.discover(&q, 3), Err(StoreError::Backend(_))));
        assert!(matches!(wg.index_warehouse(), Err(StoreError::Backend(_))));
        assert!(matches!(wg.sync(), Err(StoreError::Backend(_))));
        // The in-memory index still answers ad-hoc value queries.
        assert!(!wg.discover_values(&["Company 1", "Company 2"], 3).is_empty());
        // Re-attach restores full service.
        wg.attach(handle);
        assert!(wg.discover(&q, 3).is_ok());
        drop(c);
    }

    #[test]
    fn contextual_embeddings_separate_identical_value_sets() {
        // Two candidate tables hold the SAME city values; the query comes
        // from a shipping context. With value-only embeddings the two
        // candidates tie; with §5.2.1 context the shipping-flavored table
        // must win.
        let mut w = Warehouse::new("w");
        let cities: Vec<String> = (0..40).map(|i| format!("City Number {i}")).collect();
        w.database_mut("ops").add_table(
            Table::new(
                "shipments",
                vec![
                    Column::text("ship_city", cities.clone()),
                    Column::floats("weight", (0..40).map(|i| i as f64).collect()),
                ],
            )
            .unwrap(),
        );
        w.database_mut("logistics").add_table(
            Table::new(
                "delivery_routes",
                vec![
                    Column::text("shipping_city", cities.clone()),
                    Column::floats("route_weight", (0..40).map(|i| i as f64).collect()),
                ],
            )
            .unwrap(),
        );
        w.database_mut("billing").add_table(
            Table::new(
                "invoices",
                vec![
                    Column::text("billing_city", cities.clone()),
                    Column::floats("amount_due", (0..40).map(|i| i as f64).collect()),
                ],
            )
            .unwrap(),
        );
        let c = Arc::new(CdwConnector::new(w, wg_store::CdwConfig::free()));
        let wg = WarpGate::with_backend(WarpGateConfig::default().with_context(0.25), c);
        wg.index_warehouse().unwrap();
        let q = ColumnRef::new("ops", "shipments", "ship_city");
        let d = wg.discover(&q, 2).unwrap();
        assert_eq!(
            d.candidates[0].reference,
            ColumnRef::new("logistics", "delivery_routes", "shipping_city"),
            "context should prefer the shipping-flavored table: {:?}",
            d.candidates
        );
    }

    #[test]
    fn warm_cache_skips_scan_and_embed() {
        let (wg, _c) = system();
        let q = ColumnRef::new("salesforce", "account", "name");
        let cold = wg.discover(&q, 3).unwrap();
        assert!(!cold.timing.cache_hit);
        assert!(cold.timing.load_secs > 0.0);
        assert!(cold.timing.embed_secs > 0.0);

        let warm = wg.discover(&q, 3).unwrap();
        assert!(warm.timing.cache_hit, "second identical query must hit the cache");
        assert_eq!(warm.timing.load_secs, 0.0, "warm query must not scan");
        assert_eq!(warm.timing.embed_secs, 0.0, "warm query must not embed");
        assert_eq!(warm.timing.virtual_load_secs, 0.0, "warm query must not touch the CDW");
        assert_eq!(warm.candidates, cold.candidates, "cache must not change results");
        let stats = wg.cache_stats();
        assert!(stats.hits >= 1 && stats.misses >= 1);
    }

    #[test]
    fn cache_disabled_by_zero_capacity() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default().with_cache_capacity(0), c);
        wg.index_warehouse().unwrap();
        let q = ColumnRef::new("salesforce", "account", "name");
        wg.discover(&q, 3).unwrap();
        let again = wg.discover(&q, 3).unwrap();
        assert!(!again.timing.cache_hit);
        assert!(again.timing.load_secs > 0.0, "disabled cache must re-scan");
    }

    #[test]
    fn reindex_invalidates_cached_query_embedding() {
        let (wg, c) = system();
        let q = ColumnRef::new("salesforce", "lead", "company");
        let before = wg.discover(&q, 3).unwrap();
        assert!(wg.discover(&q, 3).unwrap().timing.cache_hit);

        // Replace the lead table's content; re-index must evict the stale
        // query embedding so discovery sees the new values.
        c.warehouse_mut().database_mut("salesforce").add_table(
            Table::new(
                "lead",
                vec![Column::text(
                    "company",
                    (0..30).map(|i| format!("Zebra {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        wg.index_table("salesforce", "lead").unwrap();
        let after = wg.discover(&q, 3).unwrap();
        assert!(!after.timing.cache_hit, "re-index must evict the cached embedding");
        assert_ne!(before.candidates, after.candidates, "new column content must change discovery");
    }

    #[test]
    fn remove_table_evicts_cached_embeddings() {
        let (wg, _c) = system();
        let q = ColumnRef::new("stocks", "industries", "company_name");
        wg.discover(&q, 3).unwrap();
        assert!(wg.discover(&q, 3).unwrap().timing.cache_hit);
        wg.remove_table("stocks", "industries");
        // The warehouse still holds the table, so the query itself works —
        // but its embedding must be freshly computed.
        let d = wg.discover(&q, 3).unwrap();
        assert!(!d.timing.cache_hit, "remove_table must evict cache entries");
    }

    #[test]
    fn discover_batch_matches_sequential_discover() {
        let (wg, _c) = system();
        let queries = vec![
            ColumnRef::new("salesforce", "account", "name"),
            ColumnRef::new("salesforce", "lead", "company"),
            ColumnRef::new("stocks", "industries", "company_name"),
            ColumnRef::new("salesforce", "account", "name"), // repeat → cache
        ];
        let sequential: Vec<_> =
            queries.iter().map(|q| wg.discover(q, 4).unwrap().candidates).collect();
        let batch = wg.discover_batch(&queries, 4).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (i, d) in batch.iter().enumerate() {
            assert_eq!(d.query, queries[i], "results must come back in input order");
            assert_eq!(d.candidates, sequential[i], "batch diverges on query {i}");
            assert!(d.timing.cache_hit, "batch after sequential must be fully cached");
        }
    }

    #[test]
    fn discover_batch_cold_and_single_threaded() {
        let c = connector();
        let wg = WarpGate::with_backend(
            WarpGateConfig { threads: 1, cache_capacity: 0, ..Default::default() },
            c,
        );
        wg.index_warehouse().unwrap();
        let queries = vec![
            ColumnRef::new("salesforce", "account", "name"),
            ColumnRef::new("stocks", "industries", "company_name"),
        ];
        let batch = wg.discover_batch(&queries, 3).unwrap();
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|d| !d.candidates.is_empty()));
    }

    #[test]
    fn discover_batch_rejects_unknown_query_upfront() {
        let (wg, c) = system();
        let cost_before = c.costs();
        // The invalid ref sits in the MIDDLE of otherwise valid queries:
        // validation must reject the whole batch before any scan is billed.
        let queries = vec![
            ColumnRef::new("salesforce", "account", "name"),
            ColumnRef::new("nope", "t", "c"),
            ColumnRef::new("stocks", "industries", "company_name"),
        ];
        assert!(matches!(wg.discover_batch(&queries, 3), Err(StoreError::NotFound(_))));
        assert_eq!(
            c.costs().since(&cost_before).requests,
            0,
            "validation must reject the batch before any scan is billed"
        );
    }

    #[test]
    fn single_shard_results_match_default_sharding() {
        let c = connector();
        let sharded = WarpGate::with_backend(WarpGateConfig::default().with_shards(8), c.clone());
        sharded.index_warehouse().unwrap();
        let single = WarpGate::with_backend(WarpGateConfig::default().with_shards(1), c);
        single.index_warehouse().unwrap();
        for q in [
            ColumnRef::new("salesforce", "account", "name"),
            ColumnRef::new("stocks", "industries", "company_name"),
        ] {
            let a = sharded.discover(&q, 5).unwrap().candidates;
            let b = single.discover(&q, 5).unwrap().candidates;
            assert_eq!(a, b, "shard count must not change discovery results");
        }
    }

    #[test]
    fn zero_shards_resolve_to_available_parallelism_at_construction() {
        let wg = WarpGate::new(WarpGateConfig { shards: 0, threads: 3, ..Default::default() });
        let expected = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        // `shards: 0` follows the machine's thread count, not the worker
        // `threads` knob — the index outlives any one indexing run.
        assert_eq!(wg.index.shard_count(), expected);
    }

    #[test]
    fn index_report_counts() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c);
        let report = wg.index_warehouse().unwrap();
        assert_eq!(report.columns_indexed, 6);
        assert_eq!(report.columns_skipped, 0);
        assert!(report.cost.requests >= 6);
        assert!(report.elapsed_secs > 0.0);
    }

    #[test]
    fn sync_on_unchanged_warehouse_is_a_noop() {
        let (wg, c) = system();
        c.reset_costs();
        let report = wg.sync().unwrap();
        assert!(report.is_noop(), "nothing changed: {report:?}");
        assert_eq!(report.columns_indexed, 0);
        assert_eq!(report.cost.requests, 0, "a no-op sync must not scan anything");
    }

    #[test]
    fn sync_reindexes_only_the_changed_table() {
        let (wg, c) = system();
        // Warm a cache entry on an untouched table to prove it survives.
        let untouched = ColumnRef::new("stocks", "industries", "company_name");
        wg.discover(&untouched, 3).unwrap();
        assert!(wg.discover(&untouched, 3).unwrap().timing.cache_hit);

        c.warehouse_mut().database_mut("salesforce").add_table(
            Table::new(
                "lead",
                vec![Column::text(
                    "company",
                    (0..45).map(|i| format!("Updated {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        c.reset_costs();
        let embeds_before = wg.embedder().embed_count();
        let report = wg.sync().unwrap();
        assert_eq!(report.tables_updated, 1);
        assert_eq!(report.tables_added, 0);
        assert_eq!(report.tables_removed, 0);
        assert_eq!(report.columns_indexed, 1, "lead has one column");
        assert_eq!(report.cost.requests, 1, "only the changed column scans");
        assert_eq!(
            wg.embedder().embed_count() - embeds_before,
            1,
            "only the changed column re-embeds"
        );
        // The untouched table's cache entry stayed warm.
        assert!(
            wg.discover(&untouched, 3).unwrap().timing.cache_hit,
            "sync must not evict cache entries of unchanged tables"
        );
        // Discovery sees the new content.
        let q = ColumnRef::new("salesforce", "lead", "company");
        let d = wg.discover(&q, 3).unwrap();
        assert!(!d.timing.cache_hit, "changed table's cached embedding must be evicted");
    }

    #[test]
    fn sync_adds_and_removes_tables() {
        let (wg, c) = system();
        let before = wg.len();
        {
            let mut w = c.warehouse_mut();
            w.database_mut("stocks").add_table(
                Table::new("tickers", vec![Column::text("symbol", ["AAPL", "MSFT", "GOOG"])])
                    .unwrap(),
            );
            w.database_mut("salesforce").remove_table("lead");
        }
        let report = wg.sync().unwrap();
        assert_eq!(report.tables_added, 1);
        assert_eq!(report.tables_removed, 1);
        assert_eq!(report.tables_updated, 0);
        assert_eq!(report.columns_indexed, 1);
        assert_eq!(report.columns_removed, 1);
        assert_eq!(wg.len(), before, "one column in, one column out");
        // The vanished table never resurfaces; the new one ranks.
        let d = wg.discover(&ColumnRef::new("salesforce", "account", "name"), 10).unwrap();
        assert!(d.candidates.iter().all(|j| j.reference.table != "lead"));
        let hits = wg.discover_values(&["AAPL", "MSFT"], 3);
        assert!(hits.iter().any(|h| h.reference.table == "tickers"));
    }

    #[test]
    fn sync_drops_vanished_columns_of_changed_tables() {
        let (wg, c) = system();
        // Replace the two-column account table with a one-column version.
        c.warehouse_mut().database_mut("salesforce").add_table(
            Table::new(
                "account",
                vec![Column::text(
                    "name",
                    (0..80).map(|i| format!("Company {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        let before = wg.len();
        let report = wg.sync().unwrap();
        assert_eq!(report.tables_updated, 1);
        assert_eq!(report.columns_removed, 1, "the employees column vanished");
        assert_eq!(report.columns_indexed, 1, "the surviving column re-indexed");
        assert_eq!(wg.len(), before - 1);
        // The vanished column never comes back in results.
        let d = wg.discover(&ColumnRef::new("stocks", "prices", "close"), 10).unwrap();
        assert!(d.candidates.iter().all(|j| j.reference.column != "employees"));
    }

    /// A minimal third-party backend: delegates to a CdwConnector but can
    /// be switched into a failing mode — proof the trait is implementable
    /// outside `wg_store`, and a handle on mid-run failures.
    struct TogglableBackend {
        inner: Arc<CdwConnector>,
        fail: std::sync::atomic::AtomicBool,
    }

    impl wg_store::WarehouseBackend for TogglableBackend {
        fn name(&self) -> String {
            format!("togglable:{}", wg_store::WarehouseBackend::name(self.inner.as_ref()))
        }
        fn list_tables(&self) -> StoreResult<Vec<TableMeta>> {
            self.inner.list_tables()
        }
        fn table_meta(&self, database: &str, table: &str) -> StoreResult<TableMeta> {
            wg_store::WarehouseBackend::table_meta(self.inner.as_ref(), database, table)
        }
        fn scan_column(&self, r: &ColumnRef, sample: SampleSpec) -> StoreResult<wg_store::Column> {
            if self.fail.load(std::sync::atomic::Ordering::Relaxed) {
                return Err(StoreError::Backend("togglable backend is down".into()));
            }
            self.inner.scan_column(r, sample)
        }
        fn scan_table(
            &self,
            database: &str,
            table: &str,
            sample: SampleSpec,
        ) -> StoreResult<Table> {
            if self.fail.load(std::sync::atomic::Ordering::Relaxed) {
                return Err(StoreError::Backend("togglable backend is down".into()));
            }
            self.inner.scan_table(database, table, sample)
        }
        fn costs(&self) -> CostSnapshot {
            self.inner.costs()
        }
        fn reset_costs(&self) {
            self.inner.reset_costs()
        }
    }

    #[test]
    fn failed_index_run_records_nothing_so_sync_retries() {
        let inner = connector();
        let toggle =
            Arc::new(TogglableBackend { inner, fail: std::sync::atomic::AtomicBool::new(true) });
        let wg = WarpGate::with_backend(
            WarpGateConfig { threads: 1, ..Default::default() },
            toggle.clone(),
        );
        assert!(matches!(wg.index_warehouse(), Err(StoreError::Backend(_))));
        assert_eq!(wg.len(), 0);

        // The backend comes back; the failed run must not have recorded
        // any versions, so sync (same epoch, same backend) indexes all.
        toggle.fail.store(false, std::sync::atomic::Ordering::Relaxed);
        let report = wg.sync().unwrap();
        assert_eq!(report.columns_indexed, 6, "sync must retry everything: {report:?}");
        assert_eq!(wg.len(), 6);
    }

    #[test]
    fn attach_swaps_backends_and_sync_reconciles() {
        let (wg, _old) = system();
        assert_eq!(wg.len(), 6);
        // A different backend: one table survives by name (with different
        // content), the rest vanish, one is new.
        let mut w = Warehouse::new("w2");
        w.database_mut("salesforce").add_table(
            Table::new(
                "account",
                vec![Column::text(
                    "name",
                    (0..20).map(|i| format!("Fresh Co {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        w.database_mut("hr").add_table(
            Table::new(
                "people",
                vec![Column::text(
                    "full_name",
                    (0..20).map(|i| format!("Person {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        let fresh = Arc::new(CdwConnector::new(w, CdwConfig::free()));
        wg.attach(fresh);
        let report = wg.sync().unwrap();
        // Everything the new backend serves was re-scanned (epoch bump),
        // and the three old tables dropped.
        assert_eq!(report.tables_removed, 3);
        assert_eq!(report.tables_added + report.tables_updated, 2);
        assert_eq!(wg.len(), 2);
        let d = wg.discover(&ColumnRef::new("salesforce", "account", "name"), 10).unwrap();
        assert!(d.candidates.iter().all(|j| j.reference.database != "stocks"));
    }
}
