//! The WarpGate system facade: indexing pipeline, search pipeline, and the
//! lookup-join product interaction.
//!
//! Federation: a system holds a registry of *named* warehouse backends
//! ([`WarpGate::attach_named`]), each interned to a [`BackendId`] that
//! namespaces everything downstream — column refs, index item ids (high
//! bits, see `wg_lsh::compose_item_id`), embedding-cache keys, sync
//! epochs, and recorded version tokens. The legacy single-backend API
//! ([`WarpGate::attach`] / [`WarpGate::detach`]) is the `"default"`
//! namespace of the same machinery.

use std::sync::Arc;

use parking_lot::RwLock;
use wg_embed::{ColumnEmbedder, EmbeddingModel, WebTableConfig, WebTableModel};
use wg_lsh::{compose_item_id, DiscoverScope, LshParams, SearchOutcome, ShardedLshIndex};
use wg_store::{
    BackendHandle, BackendId, BackendRegistry, ColumnRef, CostSnapshot, KeyNorm, StoreError,
    StoreResult, Table, TableMeta, TableRef, WarehouseBackend,
};
use wg_util::deadline::{Deadline, Phase};
use wg_util::timing::Stopwatch;
use wg_util::FxHashMap;

use crate::admission::{
    AdmissionConfig, AdmissionController, AdmissionPermit, AdmissionStats, QuotaPolicy, TenantId,
};
use crate::cache::{CacheStats, EmbeddingCache, EmbeddingKey};
use crate::config::WarpGateConfig;
use crate::timing::QueryTiming;

/// How many scanned+embedded columns the indexing collector accumulates
/// before flushing them through the registry lock and into the shards. One
/// registry write-lock acquisition and at most one lock per touched shard
/// amortize over this many items, while keeping each lock hold short
/// enough that concurrent queries are never starved.
const INDEX_FLUSH_BATCH: usize = 64;

/// One ranked join recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinCandidate {
    /// The candidate column (database, table, column — what the Sigma
    /// Workbooks window in Fig. 3 displays per row).
    pub reference: ColumnRef,
    /// Cosine similarity to the query column's embedding.
    pub score: f32,
}

/// The result of one discovery query.
#[derive(Debug, Clone)]
pub struct Discovery {
    /// The query column.
    pub query: ColumnRef,
    /// Ranked candidates, best first.
    pub candidates: Vec<JoinCandidate>,
    /// Wall-clock decomposition; `timing.backend` attributes the scan to
    /// the query column's namespace.
    pub timing: QueryTiming,
    /// LSH candidate-set diagnostics.
    pub outcome: SearchOutcome,
}

/// Per-request serving options for the overload-resilient entry points
/// ([`WarpGate::discover_opts`], [`WarpGate::discover_batch_opts`],
/// [`WarpGate::joinability_opts`]) — DESIGN.md §12.
///
/// The default (`QueryOptions::default()`) reproduces the legacy calls
/// exactly: unscoped, no deadline, anonymous tenant, no degraded serving.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Which backend namespaces the lookup may answer from.
    pub scope: DiscoverScope,
    /// Cooperative request budget, checked at every pipeline phase
    /// boundary (validate → scan → embed → candidate-gen → re-rank →
    /// block-read). An expired deadline fails with
    /// [`StoreError::DeadlineExceeded`] *before* the next billed scan or
    /// cold block read — never mid-phase.
    pub deadline: Deadline,
    /// Tenant the request bills to, for [`QuotaPolicy`] enforcement.
    /// `None` is anonymous: never quota-checked, never debited.
    pub tenant: Option<TenantId>,
    /// When admission control sheds this request, opt into a **degraded**
    /// warm-cache-only answer instead of the `Overloaded` error: if the
    /// query embedding is cached, the index lookup (which bills no scans)
    /// still runs and the result is flagged [`QueryTiming::degraded`]. On
    /// a cache miss the `Overloaded` error propagates — degradation is
    /// opt-in and never silent, but it is also never a cold scan.
    pub allow_degraded: bool,
}

/// Summary of one indexing run.
#[derive(Debug, Clone, Copy)]
pub struct IndexReport {
    /// Columns whose embeddings entered the index.
    pub columns_indexed: usize,
    /// Columns skipped (no embeddable content — all NULL or symbols).
    pub columns_skipped: usize,
    /// Wall-clock seconds for the whole run.
    pub elapsed_secs: f64,
    /// Warehouse scan costs incurred by the run.
    pub cost: CostSnapshot,
}

/// Summary of one [`WarpGate::sync`] reconciliation.
#[derive(Debug, Clone, Default)]
pub struct SyncReport {
    /// Tables seen for the first time (scanned and indexed in full).
    pub tables_added: usize,
    /// Tables whose version token changed (re-scanned and re-indexed).
    pub tables_updated: usize,
    /// Tables that vanished from the backend (dropped from the index).
    pub tables_removed: usize,
    /// Columns (re-)embedded and inserted by this sync.
    pub columns_indexed: usize,
    /// Columns scanned but skipped (no embeddable content).
    pub columns_skipped: usize,
    /// Columns dropped (vanished tables plus vanished columns of changed
    /// tables).
    pub columns_removed: usize,
    /// Wall-clock seconds for the reconciliation.
    pub elapsed_secs: f64,
    /// Warehouse scan costs incurred — proportional to what changed, not
    /// to warehouse size.
    pub cost: CostSnapshot,
    /// Per-backend slices of a federated [`WarpGate::sync`] run, in
    /// [`BackendId`] order: each entry's counters and cost bill exactly
    /// one namespace. Empty for single-backend reports (the entries
    /// themselves, and everything [`WarpGate::sync_backend`] returns).
    pub per_backend: Vec<(BackendId, SyncReport)>,
}

impl SyncReport {
    /// True when the backend matched the index and nothing was touched.
    pub fn is_noop(&self) -> bool {
        self.tables_added == 0 && self.tables_updated == 0 && self.tables_removed == 0
    }

    /// Fold one backend's reconciliation into this federated total.
    fn absorb(&mut self, id: BackendId, one: SyncReport) {
        self.tables_added += one.tables_added;
        self.tables_updated += one.tables_updated;
        self.tables_removed += one.tables_removed;
        self.columns_indexed += one.columns_indexed;
        self.columns_skipped += one.columns_skipped;
        self.columns_removed += one.columns_removed;
        self.cost = self.cost.plus(&one.cost);
        self.per_backend.push((id, one));
    }
}

/// Maps index item ids to column references. Ids are namespaced: the high
/// bits are the ref's backend, the low bits a per-backend counter that is
/// never reused (removal tombstones the id, matching the old dense-vec
/// registry's semantics while keeping each namespace's range compact).
#[derive(Default)]
struct Registry {
    ref_of: FxHashMap<u32, ColumnRef>,
    id_of: FxHashMap<ColumnRef, u32>,
    next_local: FxHashMap<u16, u32>,
}

impl Registry {
    fn insert(&mut self, r: ColumnRef) -> u32 {
        if let Some(&id) = self.id_of.get(&r) {
            return id;
        }
        let bits = r.backend.bits();
        let local = self.next_local.entry(bits).or_insert(0);
        let id = compose_item_id(bits, *local);
        *local += 1;
        self.id_of.insert(r.clone(), id);
        self.ref_of.insert(id, r);
        id
    }

    /// Re-install a persisted `(id, ref)` pair, advancing the namespace's
    /// counter past it so later inserts never collide.
    fn insert_at(&mut self, id: u32, r: ColumnRef) {
        let next = self.next_local.entry(wg_lsh::item_backend(id)).or_insert(0);
        *next = (*next).max(wg_lsh::item_local(id) + 1);
        self.id_of.insert(r.clone(), id);
        self.ref_of.insert(id, r);
    }

    fn remove(&mut self, r: &ColumnRef) -> Option<u32> {
        let id = self.id_of.remove(r)?;
        self.ref_of.remove(&id);
        Some(id)
    }

    fn reference(&self, id: u32) -> Option<&ColumnRef> {
        self.ref_of.get(&id)
    }

    /// Live refs of one (namespaced) table — read-path helper for removal
    /// and sync.
    fn table_refs(&self, table: &TableRef) -> Vec<ColumnRef> {
        self.ref_of.values().filter(|r| table.contains(r)).cloned().collect()
    }
}

/// What the index currently reflects, per table: the backend version token
/// recorded when the table was last (re-)indexed, stamped with the attach
/// epoch so swapping backends invalidates every recorded token at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TableState {
    epoch: u64,
    version: u64,
}

/// Sync bookkeeping of one backend namespace. Epochs and version tokens
/// are per backend: re-attaching the data lake never disturbs what the
/// CDW's sync has reconciled.
#[derive(Default)]
struct BackendSyncState {
    /// Bumped on every attach (and detach) of this name; recorded tokens
    /// from older epochs never compare equal, so the next sync re-scans
    /// everything the namespace's backend serves.
    epoch: u64,
    tables: FxHashMap<(String, String), TableState>,
}

#[derive(Default)]
struct SyncState {
    backends: FxHashMap<BackendId, BackendSyncState>,
}

/// The semantic join discovery system.
///
/// A `WarpGate` holds a registry of named [`WarehouseBackend`]s
/// ([`WarpGate::attach_named`] / [`WarpGate::detach_named`]) — simulated
/// CDWs, CSV directories, fault-injecting wrappers, remote warehouses over
/// TCP — each under its own namespace. Indexing and discovery flow through
/// whichever backend a column ref names; [`WarpGate::sync`] diffs every
/// backend's version tokens against what the index reflects and re-scans
/// only what changed, per backend ([`WarpGate::sync_backend`] reconciles
/// one). The legacy single-backend calls ([`WarpGate::attach`],
/// [`WarpGate::detach`], un-namespaced refs) address the `"default"`
/// namespace.
///
/// Internally the hot path is built for concurrency: embeddings live in a
/// [`ShardedLshIndex`] (items partitioned by id across independently locked
/// shards), query embeddings are memoized in a sharded LRU
/// [`EmbeddingCache`], and the id → column-reference registry is the only
/// globally locked structure (reads are shared; writes are batched).
pub struct WarpGate {
    config: WarpGateConfig,
    embedder: ColumnEmbedder,
    index: ShardedLshIndex,
    registry: RwLock<Registry>,
    cache: EmbeddingCache,
    backends: BackendRegistry,
    synced: RwLock<SyncState>,
    /// Byte-budgeted LRU over paged-segment blocks; shared by every
    /// segment [`Self::load_paged`] attaches so the budget bounds the
    /// whole system's cold resident set, not one segment's.
    block_cache: Arc<wg_lsh::BlockCache>,
    /// Concurrency gate over the public entry points (`discover*`,
    /// `joinability*`, `sync*`), present only when
    /// [`WarpGateConfig::admission_cap`] is positive. `None` = admission
    /// off, zero overhead on the legacy paths.
    admission: Option<AdmissionController>,
    /// Per-tenant token buckets over billed scans/bytes. Tenants without
    /// a configured [`crate::TenantQuota`] are unlimited, so the policy
    /// is inert until [`QuotaPolicy::set_quota`] is called.
    quotas: QuotaPolicy,
}

impl WarpGate {
    /// Create a system with the default hashed web-table embedding model.
    /// No backend is attached yet; call [`Self::attach`] (or use
    /// [`Self::with_backend`]) before indexing or querying.
    pub fn new(config: WarpGateConfig) -> Self {
        let model = WebTableModel::new(WebTableConfig {
            dim: config.dim,
            seed: config.seed,
            ..WebTableConfig::default()
        });
        Self::with_model(config, Arc::new(model))
    }

    /// Create a system and attach a warehouse backend (as `"default"`) in
    /// one step.
    pub fn with_backend(config: WarpGateConfig, backend: BackendHandle) -> Self {
        let wg = Self::new(config);
        wg.attach(backend);
        wg
    }

    /// Create a system with a caller-provided embedding model (the §4.4
    /// BERT comparison swaps in [`wg_embed::MiniBertModel`] here).
    pub fn with_model(config: WarpGateConfig, model: Arc<dyn EmbeddingModel>) -> Self {
        assert_eq!(model.dim(), config.dim, "model dimension must match config");
        let index = build_index(&config);
        Self {
            embedder: ColumnEmbedder::new(model, config.aggregation),
            index,
            registry: RwLock::new(Registry::default()),
            cache: EmbeddingCache::new(config.cache_capacity),
            backends: BackendRegistry::new(),
            synced: RwLock::new(SyncState::default()),
            block_cache: wg_lsh::BlockCache::new(config.block_cache_bytes),
            admission: (config.admission_cap > 0).then(|| {
                AdmissionController::new(AdmissionConfig {
                    cap: config.admission_cap,
                    queue: config.admission_queue,
                    max_wait: std::time::Duration::from_millis(config.admission_wait_ms),
                    retry_after_ms: config.admission_retry_after_ms,
                })
            }),
            quotas: QuotaPolicy::new(),
            config,
        }
    }

    /// The per-tenant quota policy. Configure tenants with
    /// [`QuotaPolicy::set_quota`]; enforcement happens on every
    /// `*_opts` call that names a tenant.
    pub fn quotas(&self) -> &QuotaPolicy {
        &self.quotas
    }

    /// Admission-control counters and gauges, or `None` when admission is
    /// off ([`WarpGateConfig::admission_cap`] == 0).
    pub fn admission_stats(&self) -> Option<AdmissionStats> {
        self.admission.as_ref().map(|a| a.stats())
    }

    /// Acquire an admission slot for one entry-point call, or pass
    /// through (`Ok(None)`) when admission is off. Shed requests fail
    /// with the retryable [`StoreError::Overloaded`].
    fn acquire_admission(&self) -> StoreResult<Option<AdmissionPermit<'_>>> {
        match &self.admission {
            None => Ok(None),
            Some(a) => a.acquire().map(Some),
        }
    }

    /// Attach a warehouse backend under a namespace name, replacing any
    /// previous backend of that name and returning the interned
    /// [`BackendId`]. The namespace's indexed items are left intact, but
    /// its embedding-cache entries are evicted and every recorded table
    /// version is invalidated (epoch bump), so the next [`Self::sync`]
    /// reconciles the namespace against the new backend in full (vanished
    /// tables drop, everything present re-scans). Other namespaces are
    /// untouched.
    ///
    /// Ordering matters for the epoch discipline: the handle is stored
    /// *first* and the epoch bumped *second*, so an epoch captured before
    /// resolving a handle can never be newer than the backend a run scans
    /// (see [`Self::record_synced`]).
    pub fn attach_named(&self, name: &str, backend: BackendHandle) -> BackendId {
        let (id, _previous) = self.backends.attach(name, backend);
        self.synced.write().backends.entry(id).or_default().epoch += 1;
        // Same column names may hold different content on the new backend;
        // cached embeddings are not trustworthy across the swap. Eager
        // eviction also frees their capacity (the epoch in the cache key
        // already made them unreachable).
        self.cache.invalidate_backend(id);
        id
    }

    /// Attach a warehouse backend as the `"default"` namespace, replacing
    /// any previous one — the legacy single-backend API.
    pub fn attach(&self, backend: BackendHandle) {
        self.attach_named(wg_util::names::DEFAULT_NAME, backend);
    }

    /// Detach the backend under `name`, returning it. The namespace's
    /// recorded version tokens are invalidated (epoch bump — they describe
    /// a backend that is gone) and its cached embeddings evicted eagerly,
    /// so a *different* warehouse re-attached under the same name can
    /// never be served stale state; the recorded table *keys* survive so
    /// the first sync after a re-attach still drops vanished tables.
    /// Hot (RAM-resident) indexed items stay queryable via value search
    /// and scoped discovery from other namespaces; the namespace's
    /// **paged** items are dropped — their segments were sealed from the
    /// departing backend's content, and keeping disk-resident rows alive
    /// past the detach is exactly the stale-reattach hazard the epoch
    /// bump exists to prevent. Emptied segments retire and their
    /// cache-resident blocks are evicted.
    pub fn detach_named(&self, name: &str) -> Option<BackendHandle> {
        let handle = self.backends.detach(name)?;
        // `detach` returned Some, so the name was attached before and is
        // already interned.
        let id = BackendId::named(name);
        if let Some(state) = self.synced.write().backends.get_mut(&id) {
            state.epoch += 1;
        }
        self.cache.invalidate_backend(id);
        self.index.drop_cold_backend(id.bits());
        Some(handle)
    }

    /// Detach the `"default"` backend, returning it — the legacy
    /// single-backend API. Discovery and indexing against the default
    /// namespace fail with [`StoreError::Backend`] until a backend is
    /// attached again; the index itself stays queryable via
    /// [`Self::discover_values`].
    pub fn detach(&self) -> Option<BackendHandle> {
        self.detach_named(wg_util::names::DEFAULT_NAME)
    }

    /// The `"default"` backend, or an error if none is attached.
    pub fn backend(&self) -> StoreResult<BackendHandle> {
        self.backend_for(BackendId::DEFAULT)
    }

    /// The backend attached under a namespace, or an error naming it.
    pub fn backend_for(&self, id: BackendId) -> StoreResult<BackendHandle> {
        self.backends.get(id).ok_or_else(|| {
            if id.is_default() {
                StoreError::Backend("no warehouse backend attached (call attach() first)".into())
            } else {
                StoreError::Backend(format!("backend '{}' is not attached", id.name()))
            }
        })
    }

    /// Ids of every attached backend, sorted.
    pub fn attached_backends(&self) -> Vec<BackendId> {
        self.backends.ids()
    }

    /// The configuration in use.
    pub fn config(&self) -> &WarpGateConfig {
        &self.config
    }

    /// The column embedder (shared with tests/ablations).
    pub fn embedder(&self) -> &ColumnEmbedder {
        &self.embedder
    }

    /// Number of indexed columns (across all namespaces).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Embedding-cache hit/miss counters and occupancy.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Block-cache counters of the paged tier (all zero until
    /// [`Self::load_paged`] attaches segments and queries read blocks).
    pub fn block_cache_stats(&self) -> wg_lsh::CacheStats {
        self.block_cache.stats()
    }

    /// The shared paged-tier block cache (for persistence plumbing).
    pub(crate) fn block_cache(&self) -> &Arc<wg_lsh::BlockCache> {
        &self.block_cache
    }

    /// Indexed columns currently served from the paged (disk-backed)
    /// tier.
    pub fn cold_len(&self) -> usize {
        self.index.cold_len()
    }

    /// Live attached paged segments (counted once per shard keeping live
    /// rows from them).
    pub fn cold_segment_count(&self) -> usize {
        self.index.cold_segment_count()
    }

    /// The sorted attach set, or the legacy "nothing attached" error.
    fn require_attached(&self) -> StoreResult<Vec<BackendId>> {
        let ids = self.backends.ids();
        if ids.is_empty() {
            return Err(StoreError::Backend(
                "no warehouse backend attached (call attach() first)".into(),
            ));
        }
        Ok(ids)
    }

    /// One namespace's current attach epoch (0 if never attached).
    /// Captured *before* resolving the backend handle: `attach_named`
    /// stores the new backend first and bumps the epoch second, so an
    /// epoch captured before the handle can never be newer than the
    /// backend the run scans — any concurrent attach makes the epoch move
    /// and the run's token commit is discarded.
    fn run_epoch(&self, id: BackendId) -> u64 {
        self.synced.read().backends.get(&id).map(|s| s.epoch).unwrap_or(0)
    }

    /// Record that the index now reflects these tables at these versions —
    /// unless the namespace's attach epoch moved since `run_epoch` was
    /// captured, in which case the tokens belong to a detached backend and
    /// recording them would poison the next sync's diff; discard instead
    /// (the next sync re-scans, which is the safe direction).
    fn record_synced(&self, id: BackendId, run_epoch: u64, metas: &[TableMeta]) {
        let mut state = self.synced.write();
        let be = state.backends.entry(id).or_default();
        if be.epoch != run_epoch {
            return;
        }
        for m in metas {
            be.tables.insert(
                (m.database.clone(), m.table.clone()),
                TableState { epoch: run_epoch, version: m.version },
            );
        }
    }

    /// Index every column of every attached warehouse: scan (sampled) →
    /// embed → insert, one backend at a time. Scanning and embedding fan
    /// out over worker threads; inserts land in batches on the
    /// id-partitioned index shards.
    pub fn index_warehouse(&self) -> StoreResult<IndexReport> {
        let ids = self.require_attached()?;
        let sw = Stopwatch::start();
        let mut report = IndexReport {
            columns_indexed: 0,
            columns_skipped: 0,
            elapsed_secs: 0.0,
            cost: CostSnapshot::default(),
        };
        for id in ids {
            let one = self.index_backend(id)?;
            report.columns_indexed += one.columns_indexed;
            report.columns_skipped += one.columns_skipped;
            report.cost = report.cost.plus(&one.cost);
        }
        report.elapsed_secs = sw.elapsed_secs();
        Ok(report)
    }

    /// Index every column of one attached backend.
    pub fn index_backend(&self, id: BackendId) -> StoreResult<IndexReport> {
        let run_epoch = self.run_epoch(id);
        let backend = self.backend_for(id)?;
        // Version tokens are fetched *before* scanning but recorded only
        // after the run succeeds: if content changes mid-run the recorded
        // token is the older one and the next sync re-scans
        // (conservative), and a failed run records nothing at all.
        let metas = backend.list_tables()?;
        let refs: Vec<ColumnRef> = metas.iter().flat_map(|m| m.scoped_column_refs(id)).collect();
        let report = self.index_refs(backend.as_ref(), refs)?;
        self.record_synced(id, run_epoch, &metas);
        Ok(report)
    }

    /// Index (or refresh) a single default-namespace table — the
    /// incremental path for CDWs with high update rates.
    pub fn index_table(&self, database: &str, table: &str) -> StoreResult<IndexReport> {
        self.index_table_scoped(&TableRef::new(database, table))
    }

    /// Index (or refresh) a single table in its ref's namespace.
    pub fn index_table_scoped(&self, table: &TableRef) -> StoreResult<IndexReport> {
        let id = table.backend;
        let run_epoch = self.run_epoch(id);
        let backend = self.backend_for(id)?;
        let meta = backend.table_meta(&table.database, &table.table)?;
        let report = self.index_refs(backend.as_ref(), meta.scoped_column_refs(id))?;
        self.record_synced(id, run_epoch, std::slice::from_ref(&meta));
        Ok(report)
    }

    /// Reconcile the index with every attached backend, touching only what
    /// changed. Each namespace diffs independently against its own
    /// recorded version tokens (see [`Self::sync_backend`] for the
    /// per-table mechanics); the returned report aggregates the run and
    /// carries each backend's slice in [`SyncReport::per_backend`], so
    /// scan costs stay attributed to the namespace that billed them.
    pub fn sync(&self) -> StoreResult<SyncReport> {
        self.sync_deadline(Deadline::none())
    }

    /// [`Self::sync`] under a cooperative deadline: the run checks the
    /// budget before every column scan, so an expired deadline stops the
    /// reconciliation *between* scans — zero further columns billed — and
    /// fails with [`StoreError::DeadlineExceeded`]. Nothing is recorded
    /// for the interrupted backend (tokens commit only after its scans
    /// succeed), so the next sync retries the same change set.
    ///
    /// Counts against admission like every entry point (a long sync holds
    /// one slot for its whole run).
    pub fn sync_deadline(&self, deadline: Deadline) -> StoreResult<SyncReport> {
        let ids = self.require_attached()?;
        let _permit = self.acquire_admission()?;
        let sw = Stopwatch::start();
        let mut total = SyncReport::default();
        for id in ids {
            let one = self.sync_one(id, deadline)?;
            total.absorb(id, one);
        }
        total.elapsed_secs = sw.elapsed_secs();
        Ok(total)
    }

    /// Reconcile one named backend, leaving every other namespace — index
    /// entries, cache entries, recorded tokens — untouched. Errors if no
    /// backend is attached under `name`.
    pub fn sync_backend(&self, name: &str) -> StoreResult<SyncReport> {
        let id = wg_util::names::lookup(name)
            .map(BackendId::from_bits)
            .ok_or_else(|| StoreError::Backend(format!("backend '{name}' is not attached")))?;
        self.sync_backend_id(id)
    }

    /// [`Self::sync_backend`] by interned id.
    pub fn sync_backend_id(&self, id: BackendId) -> StoreResult<SyncReport> {
        self.sync_backend_id_deadline(id, Deadline::none())
    }

    /// [`Self::sync_backend_id`] under a cooperative deadline (see
    /// [`Self::sync_deadline`] for the stop-between-scans contract).
    pub fn sync_backend_id_deadline(
        &self,
        id: BackendId,
        deadline: Deadline,
    ) -> StoreResult<SyncReport> {
        let _permit = self.acquire_admission()?;
        self.sync_one(id, deadline)
    }

    /// Diff one namespace's version tokens and re-scan only its change
    /// set:
    ///
    /// * tables whose token changed are re-scanned, re-embedded, and
    ///   re-indexed (their cached query embeddings are evicted; their
    ///   existing ids keep their shard placement, so only the affected
    ///   LSH-shard entries are rewritten);
    /// * columns that vanished from a changed table, and whole vanished
    ///   tables, drop out of the registry, index, and cache;
    /// * everything else — index entries, cache entries, shard contents —
    ///   stays warm and untouched.
    ///
    /// Scan cost (and the returned [`SyncReport::cost`]) is therefore
    /// proportional to the change set, not the warehouse.
    fn sync_one(&self, id: BackendId, deadline: Deadline) -> StoreResult<SyncReport> {
        let run_epoch = self.run_epoch(id);
        let backend = self.backend_for(id)?;
        let sw = Stopwatch::start();
        let cost_before = backend.costs();
        // Diff on the cheap change-token surface; full metadata (column
        // lists) is fetched per table below, and only for the change set —
        // on a file-backed backend this is the difference between hashing
        // every file and parsing every file on a no-op sync.
        let versions = backend.snapshot_versions()?;

        let recorded: FxHashMap<(String, String), TableState> =
            self.synced.read().backends.get(&id).map(|s| s.tables.clone()).unwrap_or_default();
        let mut report = SyncReport::default();

        // Vanished tables drop out entirely.
        let current: wg_util::FxHashSet<(&str, &str)> =
            versions.iter().map(|v| (v.database.as_str(), v.table.as_str())).collect();
        for (database, table) in recorded.keys() {
            if !current.contains(&(database.as_str(), table.as_str())) {
                report.columns_removed +=
                    self.remove_table_scoped(&TableRef::scoped(id, database, table));
                report.tables_removed += 1;
            }
        }

        // Added and changed tables re-index; unchanged tables are skipped.
        let mut to_index: Vec<ColumnRef> = Vec::new();
        let mut to_record: Vec<TableMeta> = Vec::new();
        for v in &versions {
            let key = (v.database.clone(), v.table.clone());
            let known = match recorded.get(&key) {
                Some(st) if st.epoch == run_epoch && st.version == v.version => continue,
                Some(_) => true,
                None => false,
            };
            let meta = backend.table_meta(&v.database, &v.table)?;
            if known {
                report.tables_updated += 1;
                // Columns that vanished from the still-present table.
                let live = self.registry.read().table_refs(&TableRef::scoped(
                    id,
                    &meta.database,
                    &meta.table,
                ));
                let vanished: Vec<ColumnRef> = live
                    .into_iter()
                    .filter(|r| !meta.columns.iter().any(|c| c == &r.column))
                    .collect();
                if !vanished.is_empty() {
                    report.columns_removed += self.remove_refs(&vanished);
                }
            } else {
                report.tables_added += 1;
            }
            to_index.extend(meta.scoped_column_refs(id));
            to_record.push(meta);
        }

        let indexed = self.index_refs_deadline(backend.as_ref(), to_index, deadline)?;
        // Tokens (fetched before the scans) are committed only now that
        // the scans succeeded — a failed sync records nothing, so the next
        // one retries the same change set.
        self.record_synced(id, run_epoch, &to_record);
        report.columns_indexed = indexed.columns_indexed;
        report.columns_skipped = indexed.columns_skipped;
        report.elapsed_secs = sw.elapsed_secs();
        report.cost = backend.costs().since(&cost_before);
        Ok(report)
    }

    /// Embed a scanned column, applying §5.2.1 schema-context blending
    /// when `context_weight > 0`. Context comes from free catalog metadata.
    fn embed_with_context(
        &self,
        backend: &dyn WarehouseBackend,
        r: &ColumnRef,
        column: &wg_store::Column,
    ) -> wg_embed::Vector {
        let values = self.embedder.embed_column(column);
        let beta = self.config.context_weight;
        if beta <= 0.0 {
            return values;
        }
        let siblings = backend
            .table_meta(&r.database, &r.table)
            .map(|m| m.columns.into_iter().filter(|n| n != &r.column).collect())
            .unwrap_or_default();
        let context = wg_embed::ColumnContext {
            column_name: r.column.clone(),
            table_name: r.table.clone(),
            siblings,
        };
        let ctx = wg_embed::context_vector(self.embedder.model().as_ref(), &context);
        wg_embed::blend_context(&values, &ctx, beta)
    }

    fn index_refs(
        &self,
        backend: &dyn WarehouseBackend,
        refs: Vec<ColumnRef>,
    ) -> StoreResult<IndexReport> {
        self.index_refs_deadline(backend, refs, Deadline::none())
    }

    /// [`Self::index_refs`] under a cooperative deadline: every worker
    /// checks the budget before each `scan_column`, so expiry stops the
    /// run between scans with zero further columns billed.
    fn index_refs_deadline(
        &self,
        backend: &dyn WarehouseBackend,
        refs: Vec<ColumnRef>,
        deadline: Deadline,
    ) -> StoreResult<IndexReport> {
        let sw = Stopwatch::start();
        let cost_before = backend.costs();
        let threads = self.config.effective_threads().min(refs.len().max(1));
        let sample = self.config.sample;

        // (Re-)indexing means these columns' warehouse data may have
        // changed; cached query embeddings for them are stale.
        let mut touched: wg_util::FxHashSet<(BackendId, &str, &str)> = wg_util::fx_hash_set();
        for r in &refs {
            touched.insert((r.backend, &r.database, &r.table));
        }
        for (backend_id, database, table) in touched {
            self.cache.invalidate_table(&TableRef::scoped(backend_id, database, table));
        }

        let (work_tx, work_rx) = crossbeam::channel::unbounded::<ColumnRef>();
        for r in refs {
            work_tx.send(r).expect("channel open");
        }
        drop(work_tx);

        let (done_tx, done_rx) =
            crossbeam::channel::unbounded::<StoreResult<(ColumnRef, wg_embed::Vector)>>();
        // Raised on the first scan/embed error so workers stop pulling work:
        // without it, an early failure would still scan (and bill) every
        // remaining column before the error could propagate.
        let abort = std::sync::atomic::AtomicBool::new(false);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                let work_rx = work_rx.clone();
                let done_tx = done_tx.clone();
                let abort = &abort;
                scope.spawn(move || {
                    for r in work_rx.iter() {
                        if abort.load(std::sync::atomic::Ordering::Relaxed) {
                            break;
                        }
                        let item = deadline
                            .check(Phase::Scan)
                            .map_err(deadline_err)
                            .and_then(|()| backend.scan_column(&r, sample))
                            .map(|col| (r.clone(), self.embed_with_context(backend, &r, &col)));
                        if done_tx.send(item).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(done_tx);

            let mut indexed = 0usize;
            let mut skipped = 0usize;
            // Batch insertions: one registry write-lock acquisition maps a
            // whole batch of refs to ids, then the shard router takes each
            // involved shard's lock once — instead of two global write
            // locks per received column.
            let mut pending: Vec<(ColumnRef, wg_embed::Vector)> =
                Vec::with_capacity(INDEX_FLUSH_BATCH);
            let flush = |pending: &mut Vec<(ColumnRef, wg_embed::Vector)>,
                         indexed: &mut usize,
                         skipped: &mut usize| {
                if pending.is_empty() {
                    return;
                }
                let batch: Vec<(u32, Vec<f32>)> = {
                    let mut registry = self.registry.write();
                    pending.drain(..).map(|(r, v)| (registry.insert(r), v.0)).collect()
                };
                let batch_len = batch.len();
                let accepted = self.index.insert_batch(batch);
                *indexed += accepted;
                *skipped += batch_len - accepted;
            };
            for item in done_rx.iter() {
                let (r, vector) = match item {
                    Ok(pair) => pair,
                    Err(e) => {
                        abort.store(true, std::sync::atomic::Ordering::Relaxed);
                        return Err(e);
                    }
                };
                if vector.is_zero() {
                    skipped += 1;
                    continue;
                }
                pending.push((r, vector));
                if pending.len() >= INDEX_FLUSH_BATCH {
                    flush(&mut pending, &mut indexed, &mut skipped);
                }
            }
            flush(&mut pending, &mut indexed, &mut skipped);
            Ok(IndexReport {
                columns_indexed: indexed,
                columns_skipped: skipped,
                elapsed_secs: sw.elapsed_secs(),
                cost: backend.costs().since(&cost_before),
            })
        })
    }

    /// Drop specific columns from registry, index, and cache. Returns how
    /// many were actually removed (a concurrent remove may win races).
    fn remove_refs(&self, victims: &[ColumnRef]) -> usize {
        if victims.is_empty() {
            return 0;
        }
        let ids: Vec<u32> = {
            let mut registry = self.registry.write();
            victims.iter().filter_map(|r| registry.remove(r)).collect()
        };
        let removed = self.index.remove_batch(&ids);
        for r in victims {
            self.cache.invalidate_column(r);
        }
        removed
    }

    /// Remove a default-namespace table's columns from the index (e.g.
    /// after a drop). Returns how many columns were removed.
    pub fn remove_table(&self, database: &str, table: &str) -> usize {
        self.remove_table_scoped(&TableRef::new(database, table))
    }

    /// Remove one (namespaced) table's columns from the index. Returns how
    /// many columns were removed.
    ///
    /// Victims are collected under a shared read lock; the write locks
    /// (registry, then the affected shards) are only held for the actual
    /// mutation, so concurrent queries proceed through the scan.
    pub fn remove_table_scoped(&self, table: &TableRef) -> usize {
        let victims = self.registry.read().table_refs(table);
        if let Some(state) = self.synced.write().backends.get_mut(&table.backend) {
            state.tables.remove(&(table.database.clone(), table.table.clone()));
        }
        if victims.is_empty() {
            self.cache.invalidate_table(table);
            return 0;
        }
        let removed = self.remove_refs(&victims);
        self.cache.invalidate_table(table);
        removed
    }

    /// Discovery query for a warehouse column: load (sampled) → embed →
    /// LSH lookup → exact re-rank, over every attached namespace. The scan
    /// and embed phases are skipped when the query embedding is cached
    /// from an earlier call (see [`QueryTiming::cache_hit`]).
    pub fn discover(&self, query: &ColumnRef, k: usize) -> StoreResult<Discovery> {
        self.discover_scoped(query, k, &DiscoverScope::All)
    }

    /// [`Self::discover`] restricted to a backend scope: "find joins for
    /// this CDW column in the data lake only", or "everywhere but where it
    /// came from". The scope is pushed into LSH candidate generation —
    /// out-of-scope namespaces cost no exact scoring — and only the query
    /// column's own backend is ever scanned (and billed).
    pub fn discover_scoped(
        &self,
        query: &ColumnRef,
        k: usize,
        scope: &DiscoverScope,
    ) -> StoreResult<Discovery> {
        self.discover_opts(query, k, &QueryOptions { scope: scope.clone(), ..Default::default() })
    }

    /// [`Self::discover`] with full per-request serving options (§12):
    /// scope, cooperative deadline, tenant quota billing, and opt-in
    /// degraded serving under admission pressure. With default options
    /// this is exactly [`Self::discover`].
    ///
    /// Request flow: deadline gate → tenant quota gate → validate →
    /// admission (shed ⇒ `Overloaded`, or the degraded path when opted
    /// in) → scan → embed → lookup, with the deadline re-checked at every
    /// phase boundary. Quota debits are **post-paid**: the tenant is
    /// billed the scans/bytes the backend actually metered for this call,
    /// which may push its bucket negative (recovered by refill).
    pub fn discover_opts(
        &self,
        query: &ColumnRef,
        k: usize,
        opts: &QueryOptions,
    ) -> StoreResult<Discovery> {
        opts.deadline.check(Phase::Validate).map_err(deadline_err)?;
        if let Some(tenant) = opts.tenant {
            self.quotas.admit(tenant)?;
        }
        // Epoch before backend (see `run_epoch`): if an attach races this
        // query, the embedding we compute lands under the old epoch's
        // cache key, unreachable by post-attach lookups.
        let epoch = self.run_epoch(query.backend);
        let backend = self.backend_for(query.backend)?;
        // Validate the target exists before paying for a scan.
        backend.validate_column(query)?;
        let permit = match self.acquire_admission() {
            Ok(p) => p,
            Err(shed) => {
                if opts.allow_degraded {
                    if let Some(d) = self.discover_degraded(epoch, query, k, opts)? {
                        return Ok(d);
                    }
                }
                return Err(shed);
            }
        };
        let cost_before = backend.costs();
        let result =
            self.discover_validated_deadline(&backend, epoch, query, k, &opts.scope, opts.deadline);
        drop(permit);
        if let Some(tenant) = opts.tenant {
            // Billed even when the call failed mid-flight: scans the
            // backend metered happened regardless of the outcome.
            let delta = backend.costs().since(&cost_before);
            self.quotas.debit(tenant, delta.requests, delta.bytes_scanned);
        }
        result
    }

    /// The degraded (warm-cache-only) answer for a shed request that
    /// opted in: if the query embedding is cached, run the index lookup —
    /// which bills no scans and needs no admission slot — and flag the
    /// result [`QueryTiming::degraded`]. `Ok(None)` = cache miss, the
    /// caller propagates the original `Overloaded`.
    fn discover_degraded(
        &self,
        epoch: u64,
        query: &ColumnRef,
        k: usize,
        opts: &QueryOptions,
    ) -> StoreResult<Option<Discovery>> {
        let key = EmbeddingKey::new(
            query,
            self.config.sample,
            self.config.seed,
            self.config.context_weight,
            epoch,
        );
        let Some(vector) = self.cache.get(&key) else {
            return Ok(None);
        };
        let mut timing = QueryTiming {
            backend: Some(query.backend),
            cache_hit: true,
            degraded: true,
            ..QueryTiming::default()
        };
        if vector.is_zero() {
            return Ok(Some(Discovery {
                query: query.clone(),
                candidates: Vec::new(),
                timing,
                outcome: SearchOutcome::default(),
            }));
        }
        let (candidates, outcome, lookup_secs) =
            self.search_vector_deadline(&vector, query, k, &opts.scope, opts.deadline)?;
        timing.lookup_secs = lookup_secs;
        timing.blocks_read = outcome.blocks_read as u64;
        timing.blocks_pruned = outcome.blocks_pruned as u64;
        Ok(Some(Discovery { query: query.clone(), candidates, timing, outcome }))
    }

    /// [`Self::discover_opts`] after validation and admission — the shared
    /// body for single queries and batch workers (which validate the whole
    /// batch up front and must not re-pay a catalog lookup per query). The
    /// cooperative deadline is checked at each phase boundary: before the
    /// billed scan, before embedding, and inside the lookup
    /// (candidate-gen / re-rank / each cold block read). Expiry fails
    /// with [`StoreError::DeadlineExceeded`] naming the phase that would
    /// have run next.
    fn discover_validated_deadline(
        &self,
        backend: &BackendHandle,
        epoch: u64,
        query: &ColumnRef,
        k: usize,
        scope: &DiscoverScope,
        deadline: Deadline,
    ) -> StoreResult<Discovery> {
        let mut timing = QueryTiming { backend: Some(query.backend), ..QueryTiming::default() };
        let key = EmbeddingKey::new(
            query,
            self.config.sample,
            self.config.seed,
            self.config.context_weight,
            epoch,
        );
        let vector = match self.cache.get(&key) {
            Some(v) => {
                timing.cache_hit = true;
                v
            }
            None => {
                deadline.check(Phase::Scan).map_err(deadline_err)?;
                let cost_before = backend.costs();
                let sw = Stopwatch::start();
                let column = backend.scan_column(query, self.config.sample)?;
                timing.load_secs = sw.elapsed_secs();
                let cost_delta = backend.costs().since(&cost_before);
                timing.virtual_load_secs = cost_delta.virtual_secs;
                timing.retries = cost_delta.retries;

                deadline.check(Phase::Embed).map_err(deadline_err)?;
                let sw = Stopwatch::start();
                let vector = self.embed_with_context(backend.as_ref(), query, &column);
                timing.embed_secs = sw.elapsed_secs();
                // Zero vectors are cached too: the (empty) answer is just as
                // repeatable, and skipping the re-scan is the whole point.
                self.cache.put(key, vector.clone());
                vector
            }
        };

        if vector.is_zero() {
            return Ok(Discovery {
                query: query.clone(),
                candidates: Vec::new(),
                timing,
                outcome: SearchOutcome::default(),
            });
        }
        let (candidates, outcome, lookup_secs) =
            self.search_vector_deadline(&vector, query, k, scope, deadline)?;
        timing.lookup_secs = lookup_secs;
        timing.blocks_read = outcome.blocks_read as u64;
        timing.blocks_pruned = outcome.blocks_pruned as u64;
        Ok(Discovery { query: query.clone(), candidates, timing, outcome })
    }

    /// Batched discovery: answer many queries in one call, fanning the
    /// scan → embed → lookup pipeline out over worker threads. This is the
    /// warehouse-wide join-graph workload: results come back in input
    /// order, and repeated or previously seen query columns hit the
    /// embedding cache. Queries may span namespaces; each scans only its
    /// own backend.
    ///
    /// Work is claimed in **chunks**, not dispatched per column: the batch
    /// is cut into contiguous chunks a few per worker, workers claim the
    /// next unclaimed chunk off one atomic counter, and the calling thread
    /// claims alongside the spawned workers. Small batches therefore pay
    /// `threads − 1` thread spawns and one atomic increment per *chunk*,
    /// instead of two channel hops plus a scheduler wakeup per *query* —
    /// the overhead that made batched discovery slower than a sequential
    /// loop on small batches — while a chunk of slow cold scans cannot
    /// gate the batch on one worker (the others drain the remaining
    /// chunks). Queries are validated once, up front, and workers skip the
    /// per-query catalog lookup. The configured `threads` value is
    /// honored even past the hardware thread count: against a blocking
    /// backend (e.g. a remote warehouse over TCP) oversubscription is
    /// how in-flight scans overlap; the default (`threads == 0`)
    /// resolves to one worker per hardware thread, which is right for
    /// the in-process compute-bound backends.
    pub fn discover_batch(&self, queries: &[ColumnRef], k: usize) -> StoreResult<Vec<Discovery>> {
        self.discover_batch_scoped(queries, k, &DiscoverScope::All)
    }

    /// [`Self::discover_batch`] restricted to a backend scope.
    pub fn discover_batch_scoped(
        &self,
        queries: &[ColumnRef],
        k: usize,
        scope: &DiscoverScope,
    ) -> StoreResult<Vec<Discovery>> {
        self.discover_batch_opts(
            queries,
            k,
            &QueryOptions { scope: scope.clone(), ..Default::default() },
        )
    }

    /// [`Self::discover_batch`] with full serving options (§12). The whole
    /// batch runs under **one** admission slot (a batch is one caller; the
    /// cap bounds callers, not columns), the deadline is re-checked before
    /// every per-query phase, and the named tenant is debited the batch's
    /// total metered scans/bytes across every backend it touched. There is
    /// no degraded fallback for batches — a shed batch fails whole with
    /// `Overloaded` ([`QueryOptions::allow_degraded`] is ignored).
    pub fn discover_batch_opts(
        &self,
        queries: &[ColumnRef],
        k: usize,
        opts: &QueryOptions,
    ) -> StoreResult<Vec<Discovery>> {
        opts.deadline.check(Phase::Validate).map_err(deadline_err)?;
        if let Some(tenant) = opts.tenant {
            self.quotas.admit(tenant)?;
        }
        // Resolve each involved namespace once, epoch before handle (see
        // `run_epoch`), then validate everything up front: one bad ref
        // fails the batch before any column is scanned (and billed).
        let mut resolved: FxHashMap<BackendId, (u64, BackendHandle)> = wg_util::fx_hash_map();
        for q in queries {
            if let std::collections::hash_map::Entry::Vacant(slot) = resolved.entry(q.backend) {
                let epoch = self.run_epoch(q.backend);
                let backend = self.backend_for(q.backend)?;
                slot.insert((epoch, backend));
            }
        }
        for q in queries {
            resolved[&q.backend].1.validate_column(q)?;
        }
        let _permit = self.acquire_admission()?;
        let cost_before: Vec<(BackendId, CostSnapshot)> =
            resolved.iter().map(|(id, (_, b))| (*id, b.costs())).collect();
        let result = self.discover_batch_resolved(queries, k, opts, &resolved);
        if let Some(tenant) = opts.tenant {
            // Post-paid like `discover_opts`, summed over every backend
            // the batch scanned — failures included, for the same reason.
            for (id, before) in &cost_before {
                let delta = resolved[id].1.costs().since(before);
                self.quotas.debit(tenant, delta.requests, delta.bytes_scanned);
            }
        }
        result
    }

    /// The batch worker machinery, after resolution and validation.
    fn discover_batch_resolved(
        &self,
        queries: &[ColumnRef],
        k: usize,
        opts: &QueryOptions,
        resolved: &FxHashMap<BackendId, (u64, BackendHandle)>,
    ) -> StoreResult<Vec<Discovery>> {
        let (scope, deadline) = (&opts.scope, opts.deadline);
        let threads = self.config.effective_threads().min(queries.len().max(1));
        if threads <= 1 || queries.len() <= 1 {
            return queries
                .iter()
                .map(|q| {
                    let (epoch, backend) = &resolved[&q.backend];
                    self.discover_validated_deadline(backend, *epoch, q, k, scope, deadline)
                })
                .collect();
        }

        // ~4 chunks per worker: coarse enough that claiming stays
        // negligible, fine enough that a straggling chunk rebalances.
        let chunk = queries.len().div_ceil(threads * 4).max(1);
        let chunks: Vec<&[ColumnRef]> = queries.chunks(chunk).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let abort = std::sync::atomic::AtomicBool::new(false);
        // Each worker claims chunks until none are left (or a failure
        // elsewhere raises the abort flag, so nobody keeps pulling — and
        // billing — remaining columns) and returns its chunk results for
        // the in-order scatter below.
        let run = || -> StoreResult<Vec<(usize, Vec<Discovery>)>> {
            let mut produced = Vec::new();
            loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(qs) = chunks.get(i) else {
                    return Ok(produced);
                };
                let mut out = Vec::with_capacity(qs.len());
                for q in *qs {
                    if abort.load(std::sync::atomic::Ordering::Relaxed) {
                        return Ok(produced);
                    }
                    let (epoch, backend) = &resolved[&q.backend];
                    match self.discover_validated_deadline(backend, *epoch, q, k, scope, deadline) {
                        Ok(d) => out.push(d),
                        Err(e) => {
                            abort.store(true, std::sync::atomic::Ordering::Relaxed);
                            return Err(e);
                        }
                    }
                }
                produced.push((i, out));
            }
        };

        let mut slots: Vec<Option<Discovery>> = (0..queries.len()).map(|_| None).collect();
        let first_error = std::thread::scope(|scope| {
            let run = &run;
            let handles: Vec<_> = (1..threads).map(|_| scope.spawn(run)).collect();
            let mut err = None;
            for outcome in std::iter::once(run())
                .chain(handles.into_iter().map(|h| h.join().expect("batch worker panicked")))
            {
                match outcome {
                    Ok(produced) => {
                        for (i, out) in produced {
                            for (j, d) in out.into_iter().enumerate() {
                                slots[i * chunk + j] = Some(d);
                            }
                        }
                    }
                    Err(e) => {
                        err.get_or_insert(e);
                    }
                }
            }
            err
        });
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(slots.into_iter().map(|d| d.expect("all slots filled")).collect())
    }

    /// Ad-hoc discovery from raw values (no warehouse column backing the
    /// query — e.g. a user-pasted list). Works without an attached
    /// backend: only the in-memory index is consulted.
    pub fn discover_values<S: AsRef<str>>(&self, values: &[S], k: usize) -> Vec<JoinCandidate> {
        self.discover_values_scoped(values, k, &DiscoverScope::All)
    }

    /// [`Self::discover_values`] restricted to a backend scope.
    pub fn discover_values_scoped<S: AsRef<str>>(
        &self,
        values: &[S],
        k: usize,
        scope: &DiscoverScope,
    ) -> Vec<JoinCandidate> {
        let vector = self.embedder.embed_values(values);
        if vector.is_zero() {
            return Vec::new();
        }
        let nowhere = ColumnRef::new("", "", "");
        self.search_vector(&vector, &nowhere, k, scope).0
    }

    fn search_vector(
        &self,
        vector: &wg_embed::Vector,
        query: &ColumnRef,
        k: usize,
        scope: &DiscoverScope,
    ) -> (Vec<JoinCandidate>, SearchOutcome, f64) {
        self.search_vector_deadline(vector, query, k, scope, Deadline::none())
            .expect("an unlimited deadline never expires")
    }

    /// [`Self::search_vector`] under a cooperative deadline, threaded into
    /// the LSH lookup itself: candidate generation, re-rank, and every
    /// paged-tier block fetch each check the budget first, so an expired
    /// deadline never triggers another cold read.
    fn search_vector_deadline(
        &self,
        vector: &wg_embed::Vector,
        query: &ColumnRef,
        k: usize,
        scope: &DiscoverScope,
        deadline: Deadline,
    ) -> StoreResult<(Vec<JoinCandidate>, SearchOutcome, f64)> {
        let registry = self.registry.read();
        let exclude_same_table = self.config.exclude_same_table;
        let sw = Stopwatch::start();
        let (hits, outcome) = self
            .index
            .search_scoped_deadline_with_outcome(vector.as_slice(), k, scope, deadline, |id| {
                match registry.reference(id) {
                    // Tombstoned ids never match; the query column itself and
                    // (optionally) its table-mates are filtered out.
                    None => true,
                    Some(r) => r == query || (exclude_same_table && r.same_table(query)),
                }
            })
            .map_err(deadline_err)?;
        let lookup_secs = sw.elapsed_secs();
        let candidates = hits
            .into_iter()
            .filter_map(|(id, score)| {
                registry.reference(id).map(|r| JoinCandidate { reference: r.clone(), score })
            })
            .collect();
        Ok((candidates, outcome, lookup_secs))
    }

    /// Execute the product interaction of Fig. 3 step 3 ("Add column via
    /// lookup"): pull the candidate's table and lookup-join the selected
    /// columns onto the base table, preserving its cardinality. The
    /// candidate's table is fetched from *its own* namespace's backend, so
    /// a cross-warehouse augmentation pulls from the warehouse the
    /// candidate actually lives in.
    ///
    /// `norm` controls the key transformation — [`KeyNorm::AlphaNum`]
    /// realizes the "joinable after transformation" semantics for format
    /// variants.
    pub fn augment_via_lookup(
        &self,
        base: &Table,
        base_key: &str,
        candidate: &ColumnRef,
        add_columns: &[&str],
        norm: KeyNorm,
    ) -> StoreResult<Table> {
        let backend = self.backend_for(candidate.backend)?;
        let lookup_table = backend.scan_table(
            &candidate.database,
            &candidate.table,
            wg_store::SampleSpec::Full,
        )?;
        wg_store::join::lookup_join(
            base,
            base_key,
            &lookup_table,
            &candidate.column,
            add_columns,
            norm,
        )
    }

    /// Direct cosine similarity between two warehouse columns under this
    /// system's embedding — the paper's `J(A,B)` made inspectable, and
    /// cross-warehouse capable (each ref scans its own namespace's
    /// backend). Embeds values only (no schema-context blend); embeddings
    /// come from (and feed) the cache under the value-only key.
    pub fn joinability(&self, a: &ColumnRef, b: &ColumnRef) -> StoreResult<f32> {
        self.joinability_opts(a, b, &QueryOptions::default())
    }

    /// [`Self::joinability`] with full serving options (§12): deadline
    /// gate, tenant quota gate + post-paid debit (each ref bills its own
    /// backend's metered delta), and one admission slot for the pair.
    /// [`QueryOptions::scope`] and [`QueryOptions::allow_degraded`] are
    /// irrelevant here (no lookup, no degraded variant) and ignored.
    pub fn joinability_opts(
        &self,
        a: &ColumnRef,
        b: &ColumnRef,
        opts: &QueryOptions,
    ) -> StoreResult<f32> {
        opts.deadline.check(Phase::Validate).map_err(deadline_err)?;
        if let Some(tenant) = opts.tenant {
            self.quotas.admit(tenant)?;
        }
        let _permit = self.acquire_admission()?;
        let va = self.scoped_value_embedding(a, opts)?;
        let vb = self.scoped_value_embedding(b, opts)?;
        Ok(va.cosine(&vb))
    }

    /// Resolve a ref's own namespace (epoch before handle), compute its
    /// value-only embedding under the request's deadline, and debit the
    /// request's tenant whatever the scan metered.
    fn scoped_value_embedding(
        &self,
        r: &ColumnRef,
        opts: &QueryOptions,
    ) -> StoreResult<wg_embed::Vector> {
        let epoch = self.run_epoch(r.backend);
        let backend = self.backend_for(r.backend)?;
        let cost_before = backend.costs();
        let result = self.value_embedding(backend.as_ref(), r, epoch, opts.deadline);
        if let Some(tenant) = opts.tenant {
            let delta = backend.costs().since(&cost_before);
            self.quotas.debit(tenant, delta.requests, delta.bytes_scanned);
        }
        result
    }

    /// Cached value-only column embedding (context weight key `0.0`, which
    /// coincides with [`Self::discover`]'s key when the system runs without
    /// contextual blending — the paper's configuration). The deadline is
    /// checked before the billed scan; a cache hit costs nothing and
    /// always succeeds.
    fn value_embedding(
        &self,
        backend: &dyn WarehouseBackend,
        r: &ColumnRef,
        epoch: u64,
        deadline: Deadline,
    ) -> StoreResult<wg_embed::Vector> {
        let key = EmbeddingKey::new(r, self.config.sample, self.config.seed, 0.0, epoch);
        if let Some(v) = self.cache.get(&key) {
            return Ok(v);
        }
        deadline.check(Phase::Scan).map_err(deadline_err)?;
        let column = backend.scan_column(r, self.config.sample)?;
        deadline.check(Phase::Embed).map_err(deadline_err)?;
        let vector = self.embedder.embed_column(&column);
        self.cache.put(key, vector.clone());
        Ok(vector)
    }

    pub(crate) fn snapshot_for_persist(&self) -> (Vec<u8>, Vec<(u32, ColumnRef)>) {
        let mut index_bytes = Vec::new();
        // All-default contents serialize to the same merged v1 frame as
        // before federation (byte-identical snapshots); any other
        // namespace upgrades the frame to v2 with a backend-name table.
        self.index.encode_with_backends(&mut index_bytes, |bits| BackendId::from_bits(bits).name());
        (index_bytes, self.registry_entries_for_persist())
    }

    /// The registry as sorted `(id, ref)` pairs — the durable mapping both
    /// snapshot formats carry.
    pub(crate) fn registry_entries_for_persist(&self) -> Vec<(u32, ColumnRef)> {
        let registry = self.registry.read();
        let mut entries: Vec<(u32, ColumnRef)> =
            registry.ref_of.iter().map(|(id, r)| (*id, r.clone())).collect();
        entries.sort_by_key(|(id, _)| *id);
        entries
    }

    /// The live LSH index (persistence plumbing: sealing segments, reading
    /// geometry).
    pub(crate) fn lsh_index(&self) -> &ShardedLshIndex {
        &self.index
    }

    /// An empty index with this system's exact geometry (dim, banding,
    /// seed, probes, shard count) — what a paged restore attaches
    /// segments into.
    pub(crate) fn fresh_index(&self) -> ShardedLshIndex {
        build_index(&self.config)
    }

    /// The durable slice of the sync bookkeeping: per backend *name*, the
    /// attach epoch and every table → version token recorded under that
    /// (current) epoch. Stale tokens from older epochs describe backends
    /// that are gone and are not worth carrying across a restart; backends
    /// with no live tokens are omitted entirely. Deterministically ordered
    /// so identical states serialize to identical bytes.
    pub(crate) fn sync_state_for_persist(&self) -> Vec<PersistedBackendSync> {
        let state = self.synced.read();
        let mut out: Vec<PersistedBackendSync> = Vec::new();
        for (id, be) in &state.backends {
            let mut tables: Vec<(String, String, u64)> = be
                .tables
                .iter()
                .filter(|(_, st)| st.epoch == be.epoch)
                .map(|((db, t), st)| (db.clone(), t.clone(), st.version))
                .collect();
            if tables.is_empty() {
                continue;
            }
            tables.sort();
            out.push(PersistedBackendSync { name: id.name(), epoch: be.epoch, tables });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    pub(crate) fn restore_from_persist(
        &mut self,
        index: ShardedLshIndex,
        entries: Vec<(u32, ColumnRef)>,
        sync: Option<Vec<PersistedBackendSync>>,
    ) -> StoreResult<()> {
        if index.dim() != self.config.dim {
            return Err(StoreError::Schema(format!(
                "persisted index dimension {} does not match config {}",
                index.dim(),
                self.config.dim
            )));
        }
        let mut registry = Registry::default();
        for (id, r) in entries {
            registry.insert_at(id, r);
        }
        *self.registry.write() = registry;
        self.index = index;
        // The snapshot may come from a system over different warehouse
        // content; cached query embeddings are not trustworthy across it.
        self.cache.clear();
        // Neither are any tokens recorded *before* the restore: bump every
        // namespace's epoch and drop its tables, exactly as if each
        // backend had been re-attached.
        let mut synced = self.synced.write();
        for state in synced.backends.values_mut() {
            state.epoch += 1;
            state.tables.clear();
        }
        // Then adopt the snapshot's durable tokens (if the frame was
        // present) under each namespace's *live* epoch: the tokens assert
        // "the index now installed reflects these table versions", which
        // holds for whatever backend is currently attached under the name
        // — version tokens are content fingerprints, and a mismatching
        // backend simply fails the token diff and re-scans. A backend
        // attached *after* this restore bumps its epoch again and
        // invalidates its adopted tokens (the conservative direction).
        for persisted in sync.into_iter().flatten() {
            let id = BackendId::named(&persisted.name);
            let be = synced.backends.entry(id).or_default();
            let epoch = be.epoch;
            for (database, table, version) in persisted.tables {
                be.tables.insert((database, table), TableState { epoch, version });
            }
        }
        Ok(())
    }
}

/// Map an expired-deadline phase into the typed (fatal, non-retryable)
/// store error — the single conversion point between `wg_util`'s phase
/// vocabulary and the `StoreError` taxonomy.
fn deadline_err(phase: Phase) -> StoreError {
    StoreError::DeadlineExceeded { phase }
}

/// Construct the sharded LSH index a config describes (used at system
/// construction and by paged restores, which must reproduce the exact
/// geometry the sealed signatures were generated under).
fn build_index(config: &WarpGateConfig) -> ShardedLshIndex {
    let index = ShardedLshIndex::new(
        config.dim,
        LshParams::for_threshold(config.lsh_threshold, config.lsh_bits),
        config.seed ^ 0x1DB5,
        config.effective_shards(),
    );
    index.set_probes(config.probes);
    index
}

/// One backend's durable sync slice as it travels through the WGST
/// snapshot frame (see `persist.rs`): the backend *name* (ids are
/// process-local), the attach epoch it was saved under (diagnostic — the
/// loader adopts its own live epoch), and the table → version tokens that
/// were current at save time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PersistedBackendSync {
    pub(crate) name: String,
    pub(crate) epoch: u64,
    pub(crate) tables: Vec<(String, String, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_store::{CdwConfig, CdwConnector, Column, Database, SampleSpec, Table, Warehouse};

    fn connector() -> Arc<CdwConnector> {
        let mut w = Warehouse::new("w");
        let mut sales = Database::new("salesforce");
        sales.add_table(
            Table::new(
                "account",
                vec![
                    Column::text(
                        "name",
                        (0..80).map(|i| format!("Company {i}")).collect::<Vec<_>>(),
                    ),
                    Column::ints("employees", (0..80).map(|i| i * 10).collect()),
                ],
            )
            .unwrap(),
        );
        sales.add_table(
            Table::new(
                "lead",
                vec![Column::text(
                    "company",
                    (0..60).map(|i| format!("company {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        let mut stocks = Database::new("stocks");
        stocks.add_table(
            Table::new(
                "industries",
                vec![
                    Column::text(
                        "company_name",
                        (0..70).map(|i| format!("COMPANY {i}")).collect::<Vec<_>>(),
                    ),
                    Column::text(
                        "sector",
                        (0..70).map(|i| format!("Sector {}", i % 7)).collect::<Vec<_>>(),
                    ),
                ],
            )
            .unwrap(),
        );
        stocks.add_table(
            Table::new(
                "prices",
                vec![Column::floats("close", (0..50).map(|i| 10.0 + i as f64).collect())],
            )
            .unwrap(),
        );
        w.add_database(sales);
        w.add_database(stocks);
        Arc::new(CdwConnector::new(w, CdwConfig::free()))
    }

    fn system() -> (WarpGate, Arc<CdwConnector>) {
        let c = connector();
        let wg =
            WarpGate::with_backend(WarpGateConfig { threads: 2, ..Default::default() }, c.clone());
        wg.index_warehouse().unwrap();
        (wg, c)
    }

    #[test]
    fn indexes_all_embeddable_columns() {
        let (wg, _) = system();
        assert_eq!(wg.len(), 6);
    }

    #[test]
    fn discovers_format_variants_across_databases() {
        let (wg, _c) = system();
        let q = ColumnRef::new("salesforce", "account", "name");
        let d = wg.discover(&q, 3).unwrap();
        assert!(!d.candidates.is_empty(), "no candidates found");
        let refs: Vec<String> = d.candidates.iter().map(|j| j.reference.to_string()).collect();
        assert!(
            refs.contains(&"stocks.industries.company_name".to_string()),
            "cross-database variant missed: {refs:?}"
        );
        assert!(
            refs.contains(&"salesforce.lead.company".to_string()),
            "same-database variant missed: {refs:?}"
        );
        assert!(d.candidates[0].score > 0.9);
    }

    #[test]
    fn excludes_query_and_table_mates() {
        let (wg, _c) = system();
        let q = ColumnRef::new("salesforce", "account", "name");
        let d = wg.discover(&q, 10).unwrap();
        for j in &d.candidates {
            assert_ne!(j.reference, q);
            assert!(!j.reference.same_table(&q));
        }
    }

    #[test]
    fn timing_components_populated() {
        let (wg, _c) = system();
        let d = wg.discover(&ColumnRef::new("salesforce", "account", "name"), 3).unwrap();
        assert!(d.timing.load_secs > 0.0);
        assert!(d.timing.embed_secs > 0.0);
        assert!(d.timing.lookup_secs > 0.0);
        assert!(d.timing.total_secs() < 5.0, "unexpectedly slow");
        assert_eq!(d.timing.backend, Some(BackendId::DEFAULT), "scan bills the query's namespace");
    }

    #[test]
    fn sampling_preserves_results() {
        let c = connector();
        let full = WarpGate::with_backend(WarpGateConfig::full_scan(), c.clone());
        full.index_warehouse().unwrap();
        let sampled = WarpGate::with_backend(
            WarpGateConfig::default().with_sample(SampleSpec::DistinctReservoir { n: 10, seed: 7 }),
            c.clone(),
        );
        sampled.index_warehouse().unwrap();
        let q = ColumnRef::new("salesforce", "account", "name");
        // Both company-name variants are genuinely joinable; with a sample
        // of 10 values their ranks may swap (the paper reports ±1–2%
        // effectiveness variation). The sampled top hit must still be one
        // of the full-scan top hits.
        let full_top: Vec<ColumnRef> =
            full.discover(&q, 2).unwrap().candidates.into_iter().map(|j| j.reference).collect();
        let top_sampled = sampled.discover(&q, 1).unwrap().candidates[0].reference.clone();
        assert!(
            full_top.contains(&top_sampled),
            "sampled top hit {top_sampled} not among full-scan top-2 {full_top:?}"
        );
    }

    #[test]
    fn incremental_add_and_remove() {
        let (wg, c) = system();
        let before = wg.len();
        c.warehouse_mut().database_mut("stocks").add_table(
            Table::new("tickers", vec![Column::text("symbol", ["AAPL", "MSFT", "GOOG"])]).unwrap(),
        );
        wg.index_table("stocks", "tickers").unwrap();
        assert_eq!(wg.len(), before + 1);
        assert_eq!(wg.remove_table("stocks", "tickers"), 1);
        assert_eq!(wg.len(), before);
        // Removed table never comes back in results.
        let d = wg.discover(&ColumnRef::new("salesforce", "account", "name"), 10).unwrap();
        assert!(d.candidates.iter().all(|j| j.reference.table != "tickers"));
    }

    #[test]
    fn reindexing_a_table_replaces_vectors() {
        let (wg, c) = system();
        let before = wg.len();
        // Refresh the lead table with new content.
        c.warehouse_mut().database_mut("salesforce").add_table(
            Table::new(
                "lead",
                vec![Column::text(
                    "company",
                    (0..30).map(|i| format!("Fresh {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        wg.index_table("salesforce", "lead").unwrap();
        assert_eq!(wg.len(), before, "refresh must not grow the index");
    }

    #[test]
    fn discover_values_ad_hoc() {
        let (wg, _) = system();
        let hits = wg.discover_values(&["Company 1", "Company 2", "Company 3"], 3);
        assert!(!hits.is_empty());
        // Should surface one of the company-name columns.
        assert!(
            hits[0].reference.column.contains("name")
                || hits[0].reference.column.contains("company")
        );
    }

    #[test]
    fn augment_via_lookup_adds_sector() {
        let (wg, c) = system();
        let base = c.warehouse().table("salesforce", "account").unwrap().clone();
        let candidate = ColumnRef::new("stocks", "industries", "company_name");
        let augmented = wg
            .augment_via_lookup(&base, "name", &candidate, &["sector"], KeyNorm::CaseFold)
            .unwrap();
        assert_eq!(augmented.num_rows(), base.num_rows());
        let sector = augmented.column("sector").unwrap();
        // Rows 0..70 match (case-folded), the rest are NULL.
        assert!(!sector.get(0).is_null());
        assert!(sector.get(75).is_null());
    }

    #[test]
    fn joinability_is_symmetric_and_high_for_variants() {
        let (wg, _c) = system();
        let a = ColumnRef::new("salesforce", "account", "name");
        let b = ColumnRef::new("stocks", "industries", "company_name");
        let ab = wg.joinability(&a, &b).unwrap();
        let ba = wg.joinability(&b, &a).unwrap();
        assert!((ab - ba).abs() < 1e-6);
        assert!(ab > 0.8, "joinability {ab}");
    }

    #[test]
    fn unknown_query_errors() {
        let (wg, _c) = system();
        assert!(matches!(
            wg.discover(&ColumnRef::new("nope", "t", "c"), 3),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn detached_system_errors_cleanly() {
        let (wg, c) = system();
        let q = ColumnRef::new("salesforce", "account", "name");
        let handle = wg.detach().expect("was attached");
        assert!(matches!(wg.discover(&q, 3), Err(StoreError::Backend(_))));
        assert!(matches!(wg.index_warehouse(), Err(StoreError::Backend(_))));
        assert!(matches!(wg.sync(), Err(StoreError::Backend(_))));
        // The in-memory index still answers ad-hoc value queries.
        assert!(!wg.discover_values(&["Company 1", "Company 2"], 3).is_empty());
        // Re-attach restores full service.
        wg.attach(handle);
        assert!(wg.discover(&q, 3).is_ok());
        drop(c);
    }

    #[test]
    fn contextual_embeddings_separate_identical_value_sets() {
        // Two candidate tables hold the SAME city values; the query comes
        // from a shipping context. With value-only embeddings the two
        // candidates tie; with §5.2.1 context the shipping-flavored table
        // must win.
        let mut w = Warehouse::new("w");
        let cities: Vec<String> = (0..40).map(|i| format!("City Number {i}")).collect();
        w.database_mut("ops").add_table(
            Table::new(
                "shipments",
                vec![
                    Column::text("ship_city", cities.clone()),
                    Column::floats("weight", (0..40).map(|i| i as f64).collect()),
                ],
            )
            .unwrap(),
        );
        w.database_mut("logistics").add_table(
            Table::new(
                "delivery_routes",
                vec![
                    Column::text("shipping_city", cities.clone()),
                    Column::floats("route_weight", (0..40).map(|i| i as f64).collect()),
                ],
            )
            .unwrap(),
        );
        w.database_mut("billing").add_table(
            Table::new(
                "invoices",
                vec![
                    Column::text("billing_city", cities.clone()),
                    Column::floats("amount_due", (0..40).map(|i| i as f64).collect()),
                ],
            )
            .unwrap(),
        );
        let c = Arc::new(CdwConnector::new(w, wg_store::CdwConfig::free()));
        let wg = WarpGate::with_backend(WarpGateConfig::default().with_context(0.25), c);
        wg.index_warehouse().unwrap();
        let q = ColumnRef::new("ops", "shipments", "ship_city");
        let d = wg.discover(&q, 2).unwrap();
        assert_eq!(
            d.candidates[0].reference,
            ColumnRef::new("logistics", "delivery_routes", "shipping_city"),
            "context should prefer the shipping-flavored table: {:?}",
            d.candidates
        );
    }

    #[test]
    fn warm_cache_skips_scan_and_embed() {
        let (wg, _c) = system();
        let q = ColumnRef::new("salesforce", "account", "name");
        let cold = wg.discover(&q, 3).unwrap();
        assert!(!cold.timing.cache_hit);
        assert!(cold.timing.load_secs > 0.0);
        assert!(cold.timing.embed_secs > 0.0);

        let warm = wg.discover(&q, 3).unwrap();
        assert!(warm.timing.cache_hit, "second identical query must hit the cache");
        assert_eq!(warm.timing.load_secs, 0.0, "warm query must not scan");
        assert_eq!(warm.timing.embed_secs, 0.0, "warm query must not embed");
        assert_eq!(warm.timing.virtual_load_secs, 0.0, "warm query must not touch the CDW");
        assert_eq!(warm.candidates, cold.candidates, "cache must not change results");
        let stats = wg.cache_stats();
        assert!(stats.hits >= 1 && stats.misses >= 1);
    }

    #[test]
    fn cache_disabled_by_zero_capacity() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default().with_cache_capacity(0), c);
        wg.index_warehouse().unwrap();
        let q = ColumnRef::new("salesforce", "account", "name");
        wg.discover(&q, 3).unwrap();
        let again = wg.discover(&q, 3).unwrap();
        assert!(!again.timing.cache_hit);
        assert!(again.timing.load_secs > 0.0, "disabled cache must re-scan");
    }

    #[test]
    fn reindex_invalidates_cached_query_embedding() {
        let (wg, c) = system();
        let q = ColumnRef::new("salesforce", "lead", "company");
        let before = wg.discover(&q, 3).unwrap();
        assert!(wg.discover(&q, 3).unwrap().timing.cache_hit);

        // Replace the lead table's content; re-index must evict the stale
        // query embedding so discovery sees the new values.
        c.warehouse_mut().database_mut("salesforce").add_table(
            Table::new(
                "lead",
                vec![Column::text(
                    "company",
                    (0..30).map(|i| format!("Zebra {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        wg.index_table("salesforce", "lead").unwrap();
        let after = wg.discover(&q, 3).unwrap();
        assert!(!after.timing.cache_hit, "re-index must evict the cached embedding");
        assert_ne!(before.candidates, after.candidates, "new column content must change discovery");
    }

    #[test]
    fn remove_table_evicts_cached_embeddings() {
        let (wg, _c) = system();
        let q = ColumnRef::new("stocks", "industries", "company_name");
        wg.discover(&q, 3).unwrap();
        assert!(wg.discover(&q, 3).unwrap().timing.cache_hit);
        wg.remove_table("stocks", "industries");
        // The warehouse still holds the table, so the query itself works —
        // but its embedding must be freshly computed.
        let d = wg.discover(&q, 3).unwrap();
        assert!(!d.timing.cache_hit, "remove_table must evict cache entries");
    }

    #[test]
    fn discover_batch_matches_sequential_discover() {
        let (wg, _c) = system();
        let queries = vec![
            ColumnRef::new("salesforce", "account", "name"),
            ColumnRef::new("salesforce", "lead", "company"),
            ColumnRef::new("stocks", "industries", "company_name"),
            ColumnRef::new("salesforce", "account", "name"), // repeat → cache
        ];
        let sequential: Vec<_> =
            queries.iter().map(|q| wg.discover(q, 4).unwrap().candidates).collect();
        let batch = wg.discover_batch(&queries, 4).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (i, d) in batch.iter().enumerate() {
            assert_eq!(d.query, queries[i], "results must come back in input order");
            assert_eq!(d.candidates, sequential[i], "batch diverges on query {i}");
            assert!(d.timing.cache_hit, "batch after sequential must be fully cached");
        }
    }

    #[test]
    fn discover_batch_cold_and_single_threaded() {
        let c = connector();
        let wg = WarpGate::with_backend(
            WarpGateConfig { threads: 1, cache_capacity: 0, ..Default::default() },
            c,
        );
        wg.index_warehouse().unwrap();
        let queries = vec![
            ColumnRef::new("salesforce", "account", "name"),
            ColumnRef::new("stocks", "industries", "company_name"),
        ];
        let batch = wg.discover_batch(&queries, 3).unwrap();
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|d| !d.candidates.is_empty()));
    }

    #[test]
    fn discover_batch_rejects_unknown_query_upfront() {
        let (wg, c) = system();
        let cost_before = c.costs();
        // The invalid ref sits in the MIDDLE of otherwise valid queries:
        // validation must reject the whole batch before any scan is billed.
        let queries = vec![
            ColumnRef::new("salesforce", "account", "name"),
            ColumnRef::new("nope", "t", "c"),
            ColumnRef::new("stocks", "industries", "company_name"),
        ];
        assert!(matches!(wg.discover_batch(&queries, 3), Err(StoreError::NotFound(_))));
        assert_eq!(
            c.costs().since(&cost_before).requests,
            0,
            "validation must reject the batch before any scan is billed"
        );
    }

    #[test]
    fn single_shard_results_match_default_sharding() {
        let c = connector();
        let sharded = WarpGate::with_backend(WarpGateConfig::default().with_shards(8), c.clone());
        sharded.index_warehouse().unwrap();
        let single = WarpGate::with_backend(WarpGateConfig::default().with_shards(1), c);
        single.index_warehouse().unwrap();
        for q in [
            ColumnRef::new("salesforce", "account", "name"),
            ColumnRef::new("stocks", "industries", "company_name"),
        ] {
            let a = sharded.discover(&q, 5).unwrap().candidates;
            let b = single.discover(&q, 5).unwrap().candidates;
            assert_eq!(a, b, "shard count must not change discovery results");
        }
    }

    #[test]
    fn zero_shards_resolve_to_available_parallelism_at_construction() {
        let wg = WarpGate::new(WarpGateConfig { shards: 0, threads: 3, ..Default::default() });
        let expected = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        // `shards: 0` follows the machine's thread count, not the worker
        // `threads` knob — the index outlives any one indexing run.
        assert_eq!(wg.index.shard_count(), expected);
    }

    #[test]
    fn index_report_counts() {
        let c = connector();
        let wg = WarpGate::with_backend(WarpGateConfig::default(), c);
        let report = wg.index_warehouse().unwrap();
        assert_eq!(report.columns_indexed, 6);
        assert_eq!(report.columns_skipped, 0);
        assert!(report.cost.requests >= 6);
        assert!(report.elapsed_secs > 0.0);
    }

    #[test]
    fn sync_on_unchanged_warehouse_is_a_noop() {
        let (wg, c) = system();
        c.reset_costs();
        let report = wg.sync().unwrap();
        assert!(report.is_noop(), "nothing changed: {report:?}");
        assert_eq!(report.columns_indexed, 0);
        assert_eq!(report.cost.requests, 0, "a no-op sync must not scan anything");
    }

    #[test]
    fn sync_reindexes_only_the_changed_table() {
        let (wg, c) = system();
        // Warm a cache entry on an untouched table to prove it survives.
        let untouched = ColumnRef::new("stocks", "industries", "company_name");
        wg.discover(&untouched, 3).unwrap();
        assert!(wg.discover(&untouched, 3).unwrap().timing.cache_hit);

        c.warehouse_mut().database_mut("salesforce").add_table(
            Table::new(
                "lead",
                vec![Column::text(
                    "company",
                    (0..45).map(|i| format!("Updated {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        c.reset_costs();
        let embeds_before = wg.embedder().embed_count();
        let report = wg.sync().unwrap();
        assert_eq!(report.tables_updated, 1);
        assert_eq!(report.tables_added, 0);
        assert_eq!(report.tables_removed, 0);
        assert_eq!(report.columns_indexed, 1, "lead has one column");
        assert_eq!(report.cost.requests, 1, "only the changed column scans");
        assert_eq!(
            wg.embedder().embed_count() - embeds_before,
            1,
            "only the changed column re-embeds"
        );
        // The untouched table's cache entry stayed warm.
        assert!(
            wg.discover(&untouched, 3).unwrap().timing.cache_hit,
            "sync must not evict cache entries of unchanged tables"
        );
        // Discovery sees the new content.
        let q = ColumnRef::new("salesforce", "lead", "company");
        let d = wg.discover(&q, 3).unwrap();
        assert!(!d.timing.cache_hit, "changed table's cached embedding must be evicted");
    }

    #[test]
    fn sync_adds_and_removes_tables() {
        let (wg, c) = system();
        let before = wg.len();
        {
            let mut w = c.warehouse_mut();
            w.database_mut("stocks").add_table(
                Table::new("tickers", vec![Column::text("symbol", ["AAPL", "MSFT", "GOOG"])])
                    .unwrap(),
            );
            w.database_mut("salesforce").remove_table("lead");
        }
        let report = wg.sync().unwrap();
        assert_eq!(report.tables_added, 1);
        assert_eq!(report.tables_removed, 1);
        assert_eq!(report.tables_updated, 0);
        assert_eq!(report.columns_indexed, 1);
        assert_eq!(report.columns_removed, 1);
        assert_eq!(wg.len(), before, "one column in, one column out");
        // The vanished table never resurfaces; the new one ranks.
        let d = wg.discover(&ColumnRef::new("salesforce", "account", "name"), 10).unwrap();
        assert!(d.candidates.iter().all(|j| j.reference.table != "lead"));
        let hits = wg.discover_values(&["AAPL", "MSFT"], 3);
        assert!(hits.iter().any(|h| h.reference.table == "tickers"));
    }

    #[test]
    fn sync_drops_vanished_columns_of_changed_tables() {
        let (wg, c) = system();
        // Replace the two-column account table with a one-column version.
        c.warehouse_mut().database_mut("salesforce").add_table(
            Table::new(
                "account",
                vec![Column::text(
                    "name",
                    (0..80).map(|i| format!("Company {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        let before = wg.len();
        let report = wg.sync().unwrap();
        assert_eq!(report.tables_updated, 1);
        assert_eq!(report.columns_removed, 1, "the employees column vanished");
        assert_eq!(report.columns_indexed, 1, "the surviving column re-indexed");
        assert_eq!(wg.len(), before - 1);
        // The vanished column never comes back in results.
        let d = wg.discover(&ColumnRef::new("stocks", "prices", "close"), 10).unwrap();
        assert!(d.candidates.iter().all(|j| j.reference.column != "employees"));
    }

    /// A minimal third-party backend: delegates to a CdwConnector but can
    /// be switched into a failing mode — proof the trait is implementable
    /// outside `wg_store`, and a handle on mid-run failures.
    struct TogglableBackend {
        inner: Arc<CdwConnector>,
        fail: std::sync::atomic::AtomicBool,
    }

    impl wg_store::WarehouseBackend for TogglableBackend {
        fn name(&self) -> String {
            format!("togglable:{}", wg_store::WarehouseBackend::name(self.inner.as_ref()))
        }
        fn list_tables(&self) -> StoreResult<Vec<TableMeta>> {
            self.inner.list_tables()
        }
        fn table_meta(&self, database: &str, table: &str) -> StoreResult<TableMeta> {
            wg_store::WarehouseBackend::table_meta(self.inner.as_ref(), database, table)
        }
        fn scan_column(&self, r: &ColumnRef, sample: SampleSpec) -> StoreResult<wg_store::Column> {
            if self.fail.load(std::sync::atomic::Ordering::Relaxed) {
                return Err(StoreError::Backend("togglable backend is down".into()));
            }
            self.inner.scan_column(r, sample)
        }
        fn scan_table(
            &self,
            database: &str,
            table: &str,
            sample: SampleSpec,
        ) -> StoreResult<Table> {
            if self.fail.load(std::sync::atomic::Ordering::Relaxed) {
                return Err(StoreError::Backend("togglable backend is down".into()));
            }
            self.inner.scan_table(database, table, sample)
        }
        fn costs(&self) -> CostSnapshot {
            self.inner.costs()
        }
        fn reset_costs(&self) {
            self.inner.reset_costs()
        }
    }

    #[test]
    fn failed_index_run_records_nothing_so_sync_retries() {
        let inner = connector();
        let toggle =
            Arc::new(TogglableBackend { inner, fail: std::sync::atomic::AtomicBool::new(true) });
        let wg = WarpGate::with_backend(
            WarpGateConfig { threads: 1, ..Default::default() },
            toggle.clone(),
        );
        assert!(matches!(wg.index_warehouse(), Err(StoreError::Backend(_))));
        assert_eq!(wg.len(), 0);

        // The backend comes back; the failed run must not have recorded
        // any versions, so sync (same epoch, same backend) indexes all.
        toggle.fail.store(false, std::sync::atomic::Ordering::Relaxed);
        let report = wg.sync().unwrap();
        assert_eq!(report.columns_indexed, 6, "sync must retry everything: {report:?}");
        assert_eq!(wg.len(), 6);
    }

    #[test]
    fn attach_swaps_backends_and_sync_reconciles() {
        let (wg, _old) = system();
        assert_eq!(wg.len(), 6);
        // A different backend: one table survives by name (with different
        // content), the rest vanish, one is new.
        let mut w = Warehouse::new("w2");
        w.database_mut("salesforce").add_table(
            Table::new(
                "account",
                vec![Column::text(
                    "name",
                    (0..20).map(|i| format!("Fresh Co {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        w.database_mut("hr").add_table(
            Table::new(
                "people",
                vec![Column::text(
                    "full_name",
                    (0..20).map(|i| format!("Person {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        let fresh = Arc::new(CdwConnector::new(w, CdwConfig::free()));
        wg.attach(fresh);
        let report = wg.sync().unwrap();
        // Everything the new backend serves was re-scanned (epoch bump),
        // and the three old tables dropped.
        assert_eq!(report.tables_removed, 3);
        assert_eq!(report.tables_added + report.tables_updated, 2);
        assert_eq!(wg.len(), 2);
        let d = wg.discover(&ColumnRef::new("salesforce", "account", "name"), 10).unwrap();
        assert!(d.candidates.iter().all(|j| j.reference.database != "stocks"));
    }

    // ── Federation ────────────────────────────────────────────────────

    /// A second warehouse whose tables hold format variants of the default
    /// connector's company names, so cross-namespace discovery has real
    /// joins to find.
    fn lake_connector() -> Arc<CdwConnector> {
        let mut w = Warehouse::new("lake");
        w.database_mut("raw").add_table(
            Table::new(
                "exports",
                vec![Column::text(
                    "company",
                    (0..50).map(|i| format!("COMPANY {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        Arc::new(CdwConnector::new(w, CdwConfig::free()))
    }

    #[test]
    fn named_attach_indexes_into_its_own_namespace() {
        let (wg, _c) = system();
        let lake = wg.attach_named("system-test-lake", lake_connector());
        assert!(!lake.is_default());
        assert_eq!(wg.attached_backends().len(), 2);
        let before = wg.len();
        wg.sync().unwrap();
        assert_eq!(wg.len(), before + 1, "the lake's one column joined the index");

        // Cross-namespace discovery: the default CDW's query column finds
        // the lake's format variant.
        let q = ColumnRef::new("salesforce", "account", "name");
        let d = wg.discover(&q, 10).unwrap();
        let lake_ref = ColumnRef::scoped(lake, "raw", "exports", "company");
        assert!(
            d.candidates.iter().any(|j| j.reference == lake_ref),
            "lake variant missing from {:?}",
            d.candidates
        );

        // Scoping to the lake returns only lake candidates; excluding it
        // returns none of them.
        let only = wg.discover_scoped(&q, 10, &DiscoverScope::include([lake.bits()])).unwrap();
        assert!(!only.candidates.is_empty());
        assert!(only.candidates.iter().all(|j| j.reference.backend == lake));
        let none = wg.discover_scoped(&q, 10, &DiscoverScope::exclude([lake.bits()])).unwrap();
        assert!(none.candidates.iter().all(|j| j.reference.backend != lake));
    }

    #[test]
    fn sync_backend_touches_only_its_namespace() {
        let (wg, c) = system();
        let lake_c = lake_connector();
        wg.attach_named("system-test-lake2", lake_c.clone());
        wg.sync().unwrap();

        // Mutate BOTH warehouses, then sync only the lake.
        c.warehouse_mut()
            .database_mut("salesforce")
            .add_table(Table::new("fresh", vec![Column::text("x", ["a", "b", "c"])]).unwrap());
        lake_c.warehouse_mut().database_mut("raw").add_table(
            Table::new(
                "exports",
                vec![Column::text(
                    "company",
                    (0..40).map(|i| format!("Updated Co {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        c.reset_costs();
        lake_c.reset_costs();
        let report = wg.sync_backend("system-test-lake2").unwrap();
        assert_eq!(report.tables_updated, 1);
        assert_eq!(c.costs().requests, 0, "the default CDW must not be scanned");
        assert!(lake_c.costs().requests >= 1, "the lake re-scans its changed table");

        // The default namespace's pending change is still there for its
        // own sync.
        let rest = wg.sync().unwrap();
        assert_eq!(rest.tables_added, 1, "the CDW's new table syncs separately: {rest:?}");
    }

    #[test]
    fn per_backend_sync_slices_attribute_costs() {
        let wg = WarpGate::new(WarpGateConfig { threads: 1, ..Default::default() });
        let cdw = wg.attach_named("system-test-slice-cdw", connector());
        let lake = wg.attach_named("system-test-slice-lake", lake_connector());
        let report = wg.sync().unwrap();
        assert_eq!(report.per_backend.len(), 2);
        let slice_of = |id: BackendId| {
            report.per_backend.iter().find(|(b, _)| *b == id).map(|(_, r)| r).unwrap()
        };
        assert_eq!(slice_of(cdw).columns_indexed, 6);
        assert_eq!(slice_of(lake).columns_indexed, 1);
        assert!(slice_of(cdw).cost.requests >= 6);
        assert!(slice_of(lake).cost.requests >= 1);
        assert_eq!(
            report.columns_indexed,
            report.per_backend.iter().map(|(_, r)| r.columns_indexed).sum::<usize>()
        );
    }

    #[test]
    fn detach_named_evicts_cache_and_tokens_for_reattach() {
        let wg = WarpGate::new(WarpGateConfig { threads: 1, ..Default::default() });
        let lake = wg.attach_named("system-test-swap", lake_connector());
        wg.sync().unwrap();
        let q = ColumnRef::scoped(lake, "raw", "exports", "company");
        wg.discover(&q, 3).unwrap();
        assert!(wg.discover(&q, 3).unwrap().timing.cache_hit);

        let detached = wg.detach_named("system-test-swap");
        assert!(detached.is_some());
        assert!(matches!(wg.discover(&q, 3), Err(StoreError::Backend(_))));

        // A *different* warehouse re-attaches under the same name: same
        // table name, different content. Nothing stale may survive.
        let mut w = Warehouse::new("lake2");
        w.database_mut("raw").add_table(
            Table::new(
                "exports",
                vec![Column::text(
                    "company",
                    (0..30).map(|i| format!("Other {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        let id2 =
            wg.attach_named("system-test-swap", Arc::new(CdwConnector::new(w, CdwConfig::free())));
        assert_eq!(id2, lake, "a name keeps its namespace across re-attach");
        let report = wg.sync().unwrap();
        assert_eq!(
            report.tables_updated + report.tables_added,
            1,
            "epoch bump forces the re-attached table to re-scan: {report:?}"
        );
        let d = wg.discover(&q, 3).unwrap();
        assert!(!d.timing.cache_hit, "the old warehouse's embedding must not serve the new one");
    }

    #[test]
    fn racing_attach_discards_in_flight_sync_tokens() {
        // The epoch guard: a sync captures its epoch, scans the OLD
        // backend, and tries to commit tokens after attach_named swapped
        // in a NEW backend. The commit must be discarded — otherwise the
        // next sync would treat the old backend's versions as current and
        // skip re-scanning the new backend's content.
        let wg = WarpGate::new(WarpGateConfig { threads: 1, ..Default::default() });
        let id = wg.attach_named("system-test-race", lake_connector());
        let stale_epoch = wg.run_epoch(id);
        let metas = wg.backend_for(id).unwrap().list_tables().unwrap();

        // The swap lands while the (simulated) sync run is in flight.
        wg.attach_named("system-test-race", lake_connector());
        wg.record_synced(id, stale_epoch, &metas);
        assert!(
            wg.synced.read().backends.get(&id).unwrap().tables.is_empty(),
            "stale-epoch token commit must be discarded"
        );

        // And the very next sync re-scans everything the new backend serves.
        let report = wg.sync_backend("system-test-race").unwrap();
        assert_eq!(report.tables_added + report.tables_updated, 1, "{report:?}");
    }

    #[test]
    fn cross_namespace_joinability_and_augment() {
        let (wg, c) = system();
        let lake = wg.attach_named("system-test-xjoin", lake_connector());
        wg.sync().unwrap();
        let a = ColumnRef::new("salesforce", "account", "name");
        let b = ColumnRef::scoped(lake, "raw", "exports", "company");
        let j = wg.joinability(&a, &b).unwrap();
        assert!(j > 0.8, "cross-warehouse joinability {j}");

        // Augment a default-namespace table with a lake candidate: the
        // lookup table must be fetched from the lake's backend.
        let base = c.warehouse().table("salesforce", "account").unwrap().clone();
        let augmented = wg.augment_via_lookup(&base, "name", &b, &[], KeyNorm::CaseFold).unwrap();
        assert_eq!(augmented.num_rows(), base.num_rows());
    }

    #[test]
    fn expired_deadline_sheds_before_any_billed_scan() {
        let (wg, c) = system();
        let q = ColumnRef::new("salesforce", "account", "name");
        let before = c.costs();
        let opts = QueryOptions { deadline: Deadline::within_ms(0), ..Default::default() };
        let err = wg.discover_opts(&q, 3, &opts).unwrap_err();
        assert!(matches!(err, StoreError::DeadlineExceeded { phase: Phase::Validate }), "{err}");
        assert!(!err.is_retryable(), "retrying against the same dead clock is pointless");
        assert_eq!(c.costs().since(&before).requests, 0, "no scan billed past expiry");
        // Joinability and batch take the same gate.
        let b = ColumnRef::new("stocks", "industries", "company_name");
        assert!(wg.joinability_opts(&q, &b, &opts).is_err());
        assert!(wg.discover_batch_opts(&[q], 3, &opts).is_err());
        assert_eq!(c.costs().since(&before).requests, 0);
    }

    #[test]
    fn expired_sync_deadline_bills_zero_scans_and_records_nothing() {
        let c = connector();
        let wg =
            WarpGate::with_backend(WarpGateConfig { threads: 1, ..Default::default() }, c.clone());
        let before = c.costs();
        let err = wg.sync_deadline(Deadline::within_ms(0)).unwrap_err();
        assert!(matches!(err, StoreError::DeadlineExceeded { phase: Phase::Scan }), "{err}");
        assert_eq!(c.costs().since(&before).requests, 0, "expiry stops before the first scan");
        assert_eq!(wg.len(), 0, "nothing indexed, nothing recorded");
        // The budgetless retry picks up the identical change set.
        let report = wg.sync().unwrap();
        assert_eq!(report.tables_added, 4);
        assert_eq!(wg.len(), 6);
    }

    #[test]
    fn quota_exhausted_tenant_is_rejected_while_others_are_unaffected() {
        let (wg, _c) = system();
        let tenant = TenantId::intern("system-test-acme");
        // Two scan tokens, zero refill: deterministic exhaustion after two
        // cache-miss discoveries (one billed scan each).
        wg.quotas().set_quota(tenant, crate::admission::TenantQuota::scans(2.0, 0.0));
        let opts = QueryOptions { tenant: Some(tenant), ..Default::default() };
        let q1 = ColumnRef::new("salesforce", "account", "name");
        let q2 = ColumnRef::new("salesforce", "lead", "company");
        let q3 = ColumnRef::new("stocks", "industries", "sector");
        wg.discover_opts(&q1, 3, &opts).unwrap();
        wg.discover_opts(&q2, 3, &opts).unwrap();
        let err = wg.discover_opts(&q3, 3, &opts).unwrap_err();
        assert!(matches!(err, StoreError::QuotaExceeded { .. }), "{err}");
        assert!(err.is_retryable(), "buckets refill; the caller should back off and retry");
        // The same query is fine anonymously and for any other tenant.
        wg.discover(&q3, 3).unwrap();
        let other = QueryOptions {
            tenant: Some(TenantId::intern("system-test-other")),
            ..Default::default()
        };
        wg.discover_opts(&q3, 3, &other).unwrap();
    }

    #[test]
    fn saturated_admission_serves_degraded_from_warm_cache_only_when_opted_in() {
        let c = connector();
        let wg = WarpGate::with_backend(
            WarpGateConfig { threads: 1, ..Default::default() }.with_admission(1, 0, 0),
            c.clone(),
        );
        wg.index_warehouse().unwrap();
        let q = ColumnRef::new("salesforce", "account", "name");
        // Warm the cache through the normal path, then occupy the only
        // admission slot the way a long-running request would.
        let warm = wg.discover(&q, 3).unwrap();
        let slot = wg.admission.as_ref().unwrap().acquire().unwrap();
        // Without the opt-in: shed with the retryable Overloaded.
        let err = wg.discover(&q, 3).unwrap_err();
        assert!(matches!(err, StoreError::Overloaded { .. }), "{err}");
        assert!(err.is_retryable());
        // Opted in with a warm cache: a flagged answer identical to the
        // unloaded one, and not a single billed scan.
        let before = c.costs();
        let opts = QueryOptions { allow_degraded: true, ..Default::default() };
        let d = wg.discover_opts(&q, 3, &opts).unwrap();
        assert!(d.timing.degraded && d.timing.cache_hit, "degradation is never silent");
        assert_eq!(d.candidates, warm.candidates, "degraded answers are real cached answers");
        assert_eq!(c.costs().since(&before).requests, 0, "degraded serving never scans");
        // Opted in but cold: degradation never fabricates an answer.
        let cold = ColumnRef::new("stocks", "prices", "close");
        let err = wg.discover_opts(&cold, 3, &opts).unwrap_err();
        assert!(matches!(err, StoreError::Overloaded { .. }), "{err}");
        drop(slot);
        wg.discover(&q, 3).expect("released slot readmits");
        let stats = wg.admission_stats().expect("admission is on");
        assert!(stats.shed_queue_full >= 2, "{stats:?}");
        assert_eq!(stats.in_flight, 0);
    }
}
