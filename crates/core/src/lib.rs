//! WarpGate: embedding-based semantic join discovery for cloud data
//! warehouses — the paper's primary contribution (CIDR 2023).
//!
//! The system answers *top-k semantic join discovery* queries: given a
//! query column from a table in a CDW, return up to `k` columns from the
//! corpus most likely to be joinable with it, ranked by the cosine
//! similarity of their column embeddings (the paper's semantic column
//! join-ability `J(A,B) = M(T(A), T(B))`).
//!
//! Two pipelines (paper Fig. 2):
//!
//! * **Indexing** — scan every column through the attached
//!   [`wg_store::WarehouseBackend`] (with sampling pushed down, §3.1.3),
//!   embed it ([`wg_embed`]), and insert the embedding into a SimHash LSH
//!   index ([`wg_lsh`]) tuned to the paper's 0.7 cosine threshold.
//!   Indexing is parallel and incremental: [`WarpGate::sync`] diffs the
//!   backend's per-table version tokens and re-scans only what changed.
//! * **Search** — embed the query column the same way, look up the LSH
//!   bucket sub-universe, re-rank by exact cosine, return scored
//!   [`JoinCandidate`]s with a [`QueryTiming`] decomposition
//!   (load / embed / lookup — the decomposition behind the paper's
//!   Table 2 analysis). Repeated queries hit a keyed embedding cache
//!   ([`cache`]) and skip the scan+embed phases entirely;
//!   [`WarpGate::discover_batch`] pipelines many queries over the worker
//!   pool for join-graph construction.
//!
//! Concurrency: embeddings live in a sharded LSH index
//! ([`wg_lsh::ShardedLshIndex`]) so inserts from parallel indexing workers
//! land on disjoint shards and queries only contend with writers on `1/N`
//! of their probes.
//!
//! The crate also implements the product interaction the paper builds
//! around discovery (§3.2): [`WarpGate::augment_via_lookup`] executes the
//! cardinality-preserving lookup join that "Add column via lookup" performs
//! once the user picks a recommendation.
//!
//! For long-running service deployments, [`SyncDaemon`] wraps
//! [`WarpGate::sync`] in a scheduled background loop with per-backend
//! circuit breaking and an observable [`DaemonReport`]; pair it with
//! `wg_store::RetryBackend` for per-call resilience.
//!
//! Federation (§9 of DESIGN.md): [`WarpGate::attach_named`] registers any
//! number of backends under interned names; refs, cache keys, sync epochs,
//! and index item ids are all namespaced by `wg_store::BackendId`, queries
//! scope with `wg_lsh::DiscoverScope`, and per-backend sync/cost slices
//! surface through [`SyncReport::per_backend`].
//!
//! Overload resilience (§12 of DESIGN.md): the [`admission`] module adds
//! a concurrency cap with a bounded FIFO wait queue
//! ([`AdmissionController`]), per-tenant token-bucket quotas over billed
//! scans/bytes ([`QuotaPolicy`]), and cooperative request deadlines
//! (`wg_util::Deadline`) checked at every pipeline phase boundary — all
//! wired through [`QueryOptions`] into `discover`/`discover_batch`/
//! `joinability`/`sync`, with opt-in degraded (warm-cache-only) serving
//! under admission pressure, always flagged in [`QueryTiming::degraded`].
//!
//! Durability (§10 of DESIGN.md): snapshots are checksummed and written
//! atomically, persisted sync tokens let a restarted node's first `sync()`
//! bill only genuinely changed tables, [`Checkpointer`] rotates two
//! generations with corrupt-newest fallback, and [`TornWriter`] replays a
//! checkpoint crashing at every byte offset so the recovery guarantees are
//! machine-checked rather than asserted.

pub mod admission;
pub mod cache;
pub mod config;
pub mod daemon;
pub mod durability;
pub mod persist;
pub mod system;
pub mod timing;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionPermit, AdmissionStats, QuotaPolicy, TenantId,
    TenantQuota,
};
pub use cache::{CacheStats, EmbeddingCache, EmbeddingKey};
pub use config::WarpGateConfig;
pub use daemon::{
    BackendCircuit, CheckpointPolicy, CircuitState, DaemonReport, SyncDaemon, SyncDaemonConfig,
    SyncSchedule,
};
pub use durability::{
    atomic_write, stream_snapshot, Checkpointer, CrashState, RecoveryReport, RecoverySource,
    TornWriter,
};
pub use system::{Discovery, IndexReport, JoinCandidate, QueryOptions, SyncReport, WarpGate};
pub use timing::QueryTiming;
