//! Keyed embedding cache.
//!
//! The paper's Table 2 decomposition shows a discovery query's cost is
//! dominated by the CDW scan and embedding inference, not the index lookup.
//! Both phases are pure functions of `(column, sample spec, model seed,
//! context weight)` for a given attached backend, so repeating a query —
//! a dashboard refresh, a warehouse-wide join-graph build revisiting hub
//! columns — can skip them entirely. [`EmbeddingCache`] is a sharded LRU
//! over exactly that key plus the backend attach epoch (entries from a
//! previously attached backend are unreachable, not just evicted).
//!
//! Invalidation: `index_table` / `index_warehouse` re-scan a table's data,
//! and `remove_table` drops it, so both evict every entry for the affected
//! columns (any sample spec or context weight). Correctness never depends
//! on the cache: eviction only forces the scan→embed path to run again.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use wg_embed::Vector;
use wg_store::{BackendId, ColumnRef, SampleSpec, TableRef};
use wg_util::FxHashMap;

/// Everything the scan→embed pipeline output depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EmbeddingKey {
    /// The scanned column.
    pub column: ColumnRef,
    /// Sampling pushed into the scan.
    pub sample: SampleSpec,
    /// Embedding-model seed (embeddings from different seeds live in
    /// different spaces).
    pub seed: u64,
    /// `f32::to_bits` of the §5.2.1 context blend weight — 0 values and
    /// value-only embeddings (`joinability`) share the `0.0` key.
    pub context_bits: u32,
    /// The backend attach epoch the embedding was scanned under. `attach`
    /// bumps the epoch, so an in-flight query racing a backend swap can
    /// only insert under the *old* epoch — unreachable by every later
    /// lookup, even though the swap already cleared the cache.
    pub epoch: u64,
}

impl EmbeddingKey {
    /// Build a key from the pipeline inputs.
    pub fn new(
        column: &ColumnRef,
        sample: SampleSpec,
        seed: u64,
        context_weight: f32,
        epoch: u64,
    ) -> Self {
        Self { column: column.clone(), sample, seed, context_bits: context_weight.to_bits(), epoch }
    }
}

/// Cache hit/miss counters plus current occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to scan + embed.
    pub misses: u64,
    /// Entries currently cached.
    pub len: usize,
}

struct Entry {
    vector: Vector,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: FxHashMap<EmbeddingKey, Entry>,
}

/// A sharded LRU cache from [`EmbeddingKey`] to column embeddings.
///
/// Keys hash to one of `N` shards, each behind its own mutex, so concurrent
/// `discover` calls on different columns rarely contend. Recency is a
/// global monotonic counter; eviction inside a full shard drops the entry
/// with the smallest stamp (an `O(shard len)` scan — shards are small, and
/// eviction only runs once a shard is at capacity).
pub struct EmbeddingCache {
    shards: Vec<Mutex<Shard>>,
    /// Entry budget per shard; sums exactly to the configured capacity
    /// (the first `capacity % N` shards absorb the remainder), so total
    /// occupancy never exceeds it.
    shard_capacities: Vec<usize>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

const CACHE_SHARDS: usize = 8;

impl EmbeddingCache {
    /// Create a cache holding at most `capacity` entries overall.
    /// `capacity == 0` disables the cache: `get` always misses and `put` is
    /// a no-op.
    pub fn new(capacity: usize) -> Self {
        Self {
            shards: (0..CACHE_SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacities: (0..CACHE_SHARDS)
                .map(|i| capacity / CACHE_SHARDS + usize::from(i < capacity % CACHE_SHARDS))
                .collect(),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Whether the cache can hold anything.
    pub fn is_enabled(&self) -> bool {
        self.shard_capacities.iter().any(|&c| c > 0)
    }

    fn shard_of(&self, key: &EmbeddingKey) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = wg_util::hash::FxHasher::default();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Look up a cached embedding, refreshing its recency. Counts a hit or
    /// a miss.
    pub fn get(&self, key: &EmbeddingKey) -> Option<Vector> {
        if !self.is_enabled() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shards[self.shard_of(key)].lock();
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.clock.fetch_add(1, Ordering::Relaxed);
                let v = entry.vector.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) an embedding, evicting the shard's least
    /// recently used entry if it is full.
    pub fn put(&self, key: EmbeddingKey, vector: Vector) {
        if !self.is_enabled() {
            return;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let idx = self.shard_of(&key);
        let capacity = self.shard_capacities[idx];
        if capacity == 0 {
            // Tiny capacities leave some shards with no budget; keys that
            // hash there simply are not cached.
            return;
        }
        let mut shard = self.shards[idx].lock();
        if shard.map.len() >= capacity && !shard.map.contains_key(&key) {
            if let Some(victim) =
                shard.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                shard.map.remove(&victim);
            }
        }
        shard.map.insert(key, Entry { vector, last_used: stamp });
    }

    /// Drop every entry for one column (all sample specs, seeds, weights).
    pub fn invalidate_column(&self, column: &ColumnRef) {
        for shard in &self.shards {
            shard.lock().map.retain(|k, _| k.column != *column);
        }
    }

    /// Drop every entry for any column of one (namespaced) table.
    pub fn invalidate_table(&self, table: &TableRef) {
        for shard in &self.shards {
            shard.lock().map.retain(|k, _| !table.contains(&k.column));
        }
    }

    /// Drop every entry scanned from one backend namespace. Detach uses
    /// this: a different warehouse re-attached under the same name must
    /// never be answered from the old warehouse's embeddings, and eager
    /// eviction (rather than relying on the epoch partition alone) frees
    /// the capacity immediately.
    pub fn invalidate_backend(&self, backend: BackendId) {
        for shard in &self.shards {
            shard.lock().map.retain(|k, _| k.column.backend != backend);
        }
    }

    /// Drop everything (restore-from-snapshot uses this: a snapshot may
    /// come from a system whose warehouse content differs).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().map.clear();
        }
    }

    /// Counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            len: self.shards.iter().map(|s| s.lock().map.len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(db: &str, table: &str, column: &str) -> EmbeddingKey {
        EmbeddingKey::new(&ColumnRef::new(db, table, column), SampleSpec::Full, 1, 0.0, 0)
    }

    fn vec_of(x: f32) -> Vector {
        Vector(vec![x; 4])
    }

    #[test]
    fn get_put_roundtrip_and_counters() {
        let cache = EmbeddingCache::new(64);
        let k = key("db", "t", "c");
        assert_eq!(cache.get(&k), None);
        cache.put(k.clone(), vec_of(1.0));
        assert_eq!(cache.get(&k), Some(vec_of(1.0)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
    }

    #[test]
    fn distinct_specs_are_distinct_entries() {
        let cache = EmbeddingCache::new(64);
        let r = ColumnRef::new("db", "t", "c");
        let full = EmbeddingKey::new(&r, SampleSpec::Full, 1, 0.0, 0);
        let head = EmbeddingKey::new(&r, SampleSpec::Head(10), 1, 0.0, 0);
        let ctx = EmbeddingKey::new(&r, SampleSpec::Full, 1, 0.25, 0);
        let stale = EmbeddingKey::new(&r, SampleSpec::Full, 1, 0.0, 7);
        cache.put(full.clone(), vec_of(1.0));
        cache.put(head.clone(), vec_of(2.0));
        cache.put(ctx.clone(), vec_of(3.0));
        cache.put(stale.clone(), vec_of(4.0));
        assert_eq!(cache.get(&full), Some(vec_of(1.0)));
        assert_eq!(cache.get(&head), Some(vec_of(2.0)));
        assert_eq!(cache.get(&ctx), Some(vec_of(3.0)));
        // Epochs partition the key space: an entry inserted under another
        // attach epoch never answers this epoch's lookups.
        assert_eq!(cache.get(&stale), Some(vec_of(4.0)));
        assert_ne!(cache.get(&full), cache.get(&stale));
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = EmbeddingCache::new(0);
        assert!(!cache.is_enabled());
        let k = key("db", "t", "c");
        cache.put(k.clone(), vec_of(1.0));
        assert_eq!(cache.get(&k), None);
        assert_eq!(cache.stats().len, 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Capacity 8 over 8 shards = 1 entry per shard: inserting two keys
        // that land in the same shard must evict the older one.
        let cache = EmbeddingCache::new(8);
        let keys: Vec<EmbeddingKey> = (0..64).map(|i| key("db", "t", &format!("c{i}"))).collect();
        for (i, k) in keys.iter().enumerate() {
            cache.put(k.clone(), vec_of(i as f32));
        }
        assert!(cache.stats().len <= 8, "capacity must bound occupancy");
        // The most recently inserted key is always resident.
        assert_eq!(cache.get(&keys[63]), Some(vec_of(63.0)));
    }

    #[test]
    fn capacity_is_a_hard_bound_even_when_not_divisible_by_shards() {
        for capacity in [1usize, 3, 5, 9, 13] {
            let cache = EmbeddingCache::new(capacity);
            assert!(cache.is_enabled());
            for i in 0..100 {
                cache.put(key("db", "t", &format!("c{i}")), vec_of(i as f32));
            }
            assert!(
                cache.stats().len <= capacity,
                "capacity {capacity} exceeded: {} resident",
                cache.stats().len
            );
        }
    }

    #[test]
    fn recency_refresh_protects_entries() {
        let cache = EmbeddingCache::new(16); // 2 per shard
        let a = key("db", "t", "a");
        cache.put(a.clone(), vec_of(0.0));
        // Keep touching `a` while flooding; it must survive in its shard.
        for i in 0..100 {
            cache.put(key("db", "t", &format!("x{i}")), vec_of(1.0));
            assert_eq!(cache.get(&a), Some(vec_of(0.0)), "touched entry evicted at {i}");
        }
    }

    #[test]
    fn invalidation_scopes() {
        let cache = EmbeddingCache::new(64);
        cache.put(key("db", "t1", "a"), vec_of(1.0));
        cache.put(key("db", "t1", "b"), vec_of(2.0));
        cache.put(key("db", "t2", "a"), vec_of(3.0));
        cache.invalidate_column(&ColumnRef::new("db", "t1", "a"));
        assert_eq!(cache.get(&key("db", "t1", "a")), None);
        assert_eq!(cache.get(&key("db", "t1", "b")), Some(vec_of(2.0)));
        cache.invalidate_table(&TableRef::new("db", "t1"));
        assert_eq!(cache.get(&key("db", "t1", "b")), None);
        assert_eq!(cache.get(&key("db", "t2", "a")), Some(vec_of(3.0)));
        cache.clear();
        assert_eq!(cache.stats().len, 0);
    }

    #[test]
    fn backend_invalidation_is_namespace_scoped() {
        let cache = EmbeddingCache::new(64);
        let lake = BackendId::named("cache-test-lake");
        let scoped = |t: &str, c: &str| {
            EmbeddingKey::new(&ColumnRef::scoped(lake, "db", t, c), SampleSpec::Full, 1, 0.0, 0)
        };
        cache.put(key("db", "t1", "a"), vec_of(1.0));
        cache.put(scoped("t1", "a"), vec_of(2.0));
        cache.put(scoped("t2", "b"), vec_of(3.0));
        // Table invalidation honors the namespace: the default-backend
        // entry for the same db.table survives.
        cache.invalidate_table(&TableRef::scoped(lake, "db", "t1"));
        assert_eq!(cache.get(&key("db", "t1", "a")), Some(vec_of(1.0)));
        assert_eq!(cache.get(&scoped("t1", "a")), None);
        assert_eq!(cache.get(&scoped("t2", "b")), Some(vec_of(3.0)));
        cache.invalidate_backend(lake);
        assert_eq!(cache.get(&scoped("t2", "b")), None);
        assert_eq!(cache.get(&key("db", "t1", "a")), Some(vec_of(1.0)));
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = EmbeddingCache::new(128);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..200 {
                        let k = key("db", "t", &format!("c{}", (t * 7 + i) % 50));
                        if cache.get(&k).is_none() {
                            cache.put(k, vec_of(i as f32));
                        }
                        if i % 40 == 0 {
                            cache.invalidate_table(&TableRef::new("db", "t"));
                        }
                    }
                });
            }
        });
        assert!(cache.stats().len <= 128);
    }
}
