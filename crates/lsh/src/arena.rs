//! A contiguous slab of same-dimension vectors keyed by [`ItemId`].
//!
//! The LSH index used to keep its stored vectors in a
//! `FxHashMap<ItemId, Vec<f32>>` — every exact-cosine re-rank chased a
//! pointer per candidate into a heap allocation placed wherever the
//! allocator felt like it. [`VectorArena`] stores all vectors back-to-back
//! in one `Vec<f32>` (`slot × dim` addressing) with an id → slot map and a
//! free-list: re-ranking a sorted slot list streams cache-line-sequential
//! memory, removals recycle slots without shifting anything, and per-slot
//! L2 norms are maintained on insert so cosine scoring is one dot product
//! per candidate instead of a dot plus two norm passes.

use wg_util::kernel;
use wg_util::FxHashMap;

use crate::ItemId;

/// Contiguous vector storage with slot reuse. No `Default`: a zero-dim
/// arena is meaningless, so construction goes through [`Self::new`],
/// which enforces `dim > 0`.
#[derive(Debug, Clone)]
pub struct VectorArena {
    dim: usize,
    /// Slot-major slab: slot `s` occupies `data[s*dim .. (s+1)*dim]`.
    data: Vec<f32>,
    /// Per-slot L2 norm (0.0 for free slots).
    norms: Vec<f32>,
    /// Per-slot owner; `None` marks a free slot.
    ids: Vec<Option<ItemId>>,
    slot_of: FxHashMap<ItemId, u32>,
    /// Recyclable slots, popped LIFO on insert.
    free: Vec<u32>,
}

impl VectorArena {
    /// An empty arena for `dim`-dimensional vectors.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            dim,
            data: Vec::new(),
            norms: Vec::new(),
            ids: Vec::new(),
            slot_of: FxHashMap::default(),
            free: Vec::new(),
        }
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of live vectors.
    pub fn len(&self) -> usize {
        self.slot_of.len()
    }

    /// True when no vector is stored.
    pub fn is_empty(&self) -> bool {
        self.slot_of.is_empty()
    }

    /// Number of slots (live + free) — the iteration bound for slot-order
    /// scans.
    pub fn slot_count(&self) -> usize {
        self.ids.len()
    }

    /// Insert (or overwrite in place) the vector for `id`; returns its
    /// slot. Panics on dimension mismatch — validation happens above.
    pub fn insert(&mut self, id: ItemId, vector: &[f32]) -> u32 {
        assert_eq!(vector.len(), self.dim, "vector dimension mismatch");
        let slot = match self.slot_of.get(&id) {
            Some(&s) => s,
            None => {
                let s = match self.free.pop() {
                    Some(s) => s,
                    None => {
                        let s = self.ids.len() as u32;
                        self.ids.push(None);
                        self.norms.push(0.0);
                        self.data.resize(self.data.len() + self.dim, 0.0);
                        s
                    }
                };
                self.slot_of.insert(id, s);
                self.ids[s as usize] = Some(id);
                s
            }
        };
        let start = slot as usize * self.dim;
        self.data[start..start + self.dim].copy_from_slice(vector);
        self.norms[slot as usize] = kernel::norm_sq(vector).sqrt();
        slot
    }

    /// Remove `id`, recycling its slot; true if it was present.
    pub fn remove(&mut self, id: ItemId) -> bool {
        let Some(slot) = self.slot_of.remove(&id) else {
            return false;
        };
        self.ids[slot as usize] = None;
        self.norms[slot as usize] = 0.0;
        self.free.push(slot);
        true
    }

    /// The slot holding `id`, if present.
    #[inline]
    pub fn slot(&self, id: ItemId) -> Option<u32> {
        self.slot_of.get(&id).copied()
    }

    /// The stored vector for `id`, if present.
    pub fn get(&self, id: ItemId) -> Option<&[f32]> {
        self.slot(id).map(|s| self.vector_at(s))
    }

    /// The vector stored at `slot` (garbage for free slots — pair with
    /// [`Self::id_at`]).
    #[inline]
    pub fn vector_at(&self, slot: u32) -> &[f32] {
        let start = slot as usize * self.dim;
        &self.data[start..start + self.dim]
    }

    /// The L2 norm of the vector at `slot` (0.0 for free slots).
    #[inline]
    pub fn norm_at(&self, slot: u32) -> f32 {
        self.norms[slot as usize]
    }

    /// The id owning `slot`, or `None` for a free slot.
    #[inline]
    pub fn id_at(&self, slot: u32) -> Option<ItemId> {
        self.ids[slot as usize]
    }

    /// Iterate live `(id, vector)` pairs in slot order (ascending memory
    /// addresses — the streaming-friendly order).
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, &[f32])> {
        self.ids.iter().enumerate().filter_map(move |(s, id)| {
            id.map(|id| (id, &self.data[s * self.dim..(s + 1) * self.dim]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_and_norm() {
        let mut a = VectorArena::new(2);
        assert!(a.is_empty());
        let s = a.insert(7, &[3.0, 4.0]);
        assert_eq!(a.len(), 1);
        assert_eq!(a.get(7), Some(&[3.0, 4.0][..]));
        assert_eq!(a.norm_at(s), 5.0);
        assert_eq!(a.id_at(s), Some(7));
    }

    #[test]
    fn overwrite_keeps_slot() {
        let mut a = VectorArena::new(2);
        let s1 = a.insert(1, &[1.0, 0.0]);
        let s2 = a.insert(1, &[0.0, 2.0]);
        assert_eq!(s1, s2, "replacement must reuse the slot");
        assert_eq!(a.len(), 1);
        assert_eq!(a.get(1), Some(&[0.0, 2.0][..]));
        assert_eq!(a.norm_at(s2), 2.0);
    }

    #[test]
    fn remove_recycles_slots_lifo() {
        let mut a = VectorArena::new(1);
        let s0 = a.insert(10, &[1.0]);
        let s1 = a.insert(11, &[2.0]);
        assert!(a.remove(10));
        assert!(!a.remove(10));
        assert_eq!(a.id_at(s0), None);
        assert_eq!(a.norm_at(s0), 0.0);
        // The freed slot is reused before the slab grows.
        let s2 = a.insert(12, &[3.0]);
        assert_eq!(s2, s0);
        assert_eq!(a.slot_count(), 2);
        assert_eq!(a.slot(11), Some(s1));
    }

    #[test]
    fn iteration_is_slot_ordered_and_skips_free() {
        let mut a = VectorArena::new(1);
        for id in [5u32, 3, 9, 1] {
            a.insert(id, &[id as f32]);
        }
        a.remove(9);
        let got: Vec<ItemId> = a.iter().map(|(id, _)| id).collect();
        // Insertion filled slots 0..4 in call order; slot 2 (id 9) is free.
        assert_eq!(got, vec![5, 3, 1]);
        // Reinsertion lands in the freed middle slot.
        a.insert(9, &[9.0]);
        let got: Vec<ItemId> = a.iter().map(|(id, _)| id).collect();
        assert_eq!(got, vec![5, 3, 9, 1]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_wrong_dimension() {
        VectorArena::new(3).insert(0, &[1.0]);
    }
}
