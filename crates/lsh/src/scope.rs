//! Backend scoping for federated queries.
//!
//! A federated discover runs over many attached warehouses at once, but a
//! caller often wants to restrict the search: "find joins for this CDW
//! column *in the data lake only*", or "everywhere except the warehouse
//! the query came from". [`DiscoverScope`] is that filter, expressed over
//! the backend bits packed into every [`ItemId`] (see
//! [`crate::compose_item_id`]).
//!
//! The filter is pushed into **candidate generation**: ids from the band
//! buckets are dropped before the sort/dedup and before any exact cosine
//! is computed, so an excluded backend costs nothing past the bucket
//! probe — no scoring, and (because the federation layer also checks the
//! scope before touching a backend) no billed scans.

use crate::{item_backend, ItemId};

/// Which backend namespaces a query may touch.
///
/// Backends are identified by their interned-name bits
/// (`wg_store::BackendId::bits`); the sets are tiny (≤ 256 entries, in
/// practice a handful), so membership is a linear probe over a sorted
/// `Vec`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum DiscoverScope {
    /// Every attached backend (the default, and the legacy single-backend
    /// behavior).
    #[default]
    All,
    /// Only these backends.
    Include(Vec<u16>),
    /// Every backend except these.
    Exclude(Vec<u16>),
}

impl DiscoverScope {
    /// Scope to exactly these backends (deduplicated, order-insensitive).
    pub fn include(backends: impl IntoIterator<Item = u16>) -> Self {
        DiscoverScope::Include(normalize(backends))
    }

    /// Scope to everything but these backends.
    pub fn exclude(backends: impl IntoIterator<Item = u16>) -> Self {
        DiscoverScope::Exclude(normalize(backends))
    }

    /// Whether this scope admits every backend.
    pub fn is_all(&self) -> bool {
        match self {
            DiscoverScope::All => true,
            DiscoverScope::Include(_) => false,
            DiscoverScope::Exclude(list) => list.is_empty(),
        }
    }

    /// Whether a backend namespace (by its interned bits) is in scope.
    #[inline]
    pub fn admits_backend(&self, bits: u16) -> bool {
        match self {
            DiscoverScope::All => true,
            DiscoverScope::Include(list) => list.contains(&bits),
            DiscoverScope::Exclude(list) => !list.contains(&bits),
        }
    }

    /// Whether an item is in scope, judged by its backend bits.
    #[inline]
    pub fn admits(&self, id: ItemId) -> bool {
        self.admits_backend(item_backend(id))
    }
}

fn normalize(backends: impl IntoIterator<Item = u16>) -> Vec<u16> {
    let mut list: Vec<u16> = backends.into_iter().collect();
    list.sort_unstable();
    list.dedup();
    list
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose_item_id;

    #[test]
    fn all_admits_everything() {
        let scope = DiscoverScope::default();
        assert!(scope.is_all());
        assert!(scope.admits_backend(0));
        assert!(scope.admits_backend(255));
        assert!(scope.admits(compose_item_id(3, 7)));
    }

    #[test]
    fn include_admits_only_listed() {
        let scope = DiscoverScope::include([2, 1, 2]);
        assert_eq!(scope, DiscoverScope::Include(vec![1, 2]));
        assert!(!scope.is_all());
        assert!(scope.admits_backend(1));
        assert!(scope.admits_backend(2));
        assert!(!scope.admits_backend(0));
        assert!(scope.admits(compose_item_id(1, 9)));
        assert!(!scope.admits(compose_item_id(3, 9)));
    }

    #[test]
    fn exclude_admits_the_complement() {
        let scope = DiscoverScope::exclude([1]);
        assert!(!scope.is_all());
        assert!(scope.admits_backend(0));
        assert!(!scope.admits_backend(1));
        assert!(scope.admits_backend(2));
        // An empty exclusion is All in practice.
        assert!(DiscoverScope::exclude([]).is_all());
    }
}
