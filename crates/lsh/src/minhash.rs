//! MinHash signatures and banded MinHash LSH for sets.
//!
//! The *syntactic* discovery systems the paper compares against both build
//! on MinHash: Aurum thresholds estimated Jaccard to create graph edges;
//! D3L uses banded MinHash LSH indexes for its name/value/format evidence.
//! Signatures use the "one hash function per row" construction:
//! `sig[i] = min_{x ∈ S} h_i(x)` with `h_i(x) = mix64(x ⊕ seed_i)`.

use wg_util::hash::{combine64, mix64};
use wg_util::{FxHashMap, FxHashSet, TopK};

use crate::ItemId;

/// A MinHash signature (`k` minima).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinHashSignature(pub Vec<u64>);

impl MinHashSignature {
    /// Estimated Jaccard similarity: fraction of agreeing rows.
    pub fn jaccard_estimate(&self, other: &MinHashSignature) -> f64 {
        assert_eq!(self.0.len(), other.0.len(), "signature width mismatch");
        if self.0.is_empty() {
            return 0.0;
        }
        let eq = self.0.iter().zip(&other.0).filter(|(a, b)| a == b).count();
        eq as f64 / self.0.len() as f64
    }
}

/// Generates MinHash signatures over element hashes.
#[derive(Debug, Clone)]
pub struct MinHasher {
    seeds: Vec<u64>,
}

impl MinHasher {
    /// A hasher with `k` rows derived from `seed`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0);
        Self { seeds: (0..k as u64).map(|i| combine64(seed, i)).collect() }
    }

    /// Signature width.
    pub fn k(&self) -> usize {
        self.seeds.len()
    }

    /// Sign a set given as element hashes. An empty set signs as all-MAX
    /// (which never collides with non-empty signatures except by fluke).
    pub fn sign<I: IntoIterator<Item = u64>>(&self, elements: I) -> MinHashSignature {
        let mut sig = vec![u64::MAX; self.seeds.len()];
        for x in elements {
            for (s, &seed) in sig.iter_mut().zip(&self.seeds) {
                let h = mix64(x ^ seed);
                if h < *s {
                    *s = h;
                }
            }
        }
        MinHashSignature(sig)
    }

    /// Sign a set of strings.
    pub fn sign_strs<S: AsRef<str>, I: IntoIterator<Item = S>>(
        &self,
        items: I,
    ) -> MinHashSignature {
        self.sign(items.into_iter().map(|s| wg_util::stable_hash_str(s.as_ref())))
    }
}

/// Banded LSH index over MinHash signatures.
///
/// Search returns candidates from colliding bands re-ranked by estimated
/// Jaccard between stored signatures.
pub struct MinHashLshIndex {
    k: usize,
    bands: usize,
    rows: usize,
    signatures: FxHashMap<ItemId, MinHashSignature>,
    buckets: Vec<FxHashMap<u64, Vec<ItemId>>>,
}

impl MinHashLshIndex {
    /// Create an index for signatures of width `k = bands × rows`.
    pub fn new(bands: usize, rows: usize) -> Self {
        assert!(bands > 0 && rows > 0);
        Self {
            k: bands * rows,
            bands,
            rows,
            signatures: FxHashMap::default(),
            buckets: (0..bands).map(|_| FxHashMap::default()).collect(),
        }
    }

    /// Required signature width.
    pub fn signature_width(&self) -> usize {
        self.k
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    fn band_key(&self, sig: &MinHashSignature, band: usize) -> u64 {
        let slice = &sig.0[band * self.rows..(band + 1) * self.rows];
        let mut key = 0xcbf2_9ce4_8422_2325u64;
        for &v in slice {
            key = mix64(key ^ v);
        }
        key
    }

    /// Insert (or replace) a signature. Panics on width mismatch (caller
    /// controls both sides).
    pub fn insert(&mut self, id: ItemId, sig: MinHashSignature) {
        assert_eq!(sig.0.len(), self.k, "signature width mismatch");
        self.remove(id);
        for band in 0..self.bands {
            let key = self.band_key(&sig, band);
            self.buckets[band].entry(key).or_default().push(id);
        }
        self.signatures.insert(id, sig);
    }

    /// Remove by id; true if present.
    pub fn remove(&mut self, id: ItemId) -> bool {
        let Some(sig) = self.signatures.remove(&id) else {
            return false;
        };
        for band in 0..self.bands {
            let key = self.band_key(&sig, band);
            if let Some(ids) = self.buckets[band].get_mut(&key) {
                ids.retain(|&x| x != id);
                if ids.is_empty() {
                    self.buckets[band].remove(&key);
                }
            }
        }
        true
    }

    /// The stored signature for an id.
    pub fn signature(&self, id: ItemId) -> Option<&MinHashSignature> {
        self.signatures.get(&id)
    }

    /// Candidate ids colliding with the query in at least one band.
    pub fn candidates(&self, sig: &MinHashSignature) -> FxHashSet<ItemId> {
        let mut out = FxHashSet::default();
        for band in 0..self.bands {
            let key = self.band_key(sig, band);
            if let Some(ids) = self.buckets[band].get(&key) {
                out.extend(ids.iter().copied());
            }
        }
        out
    }

    /// Top-k by estimated Jaccard among band candidates.
    pub fn search(
        &self,
        sig: &MinHashSignature,
        k: usize,
        exclude: impl Fn(ItemId) -> bool,
    ) -> Vec<(ItemId, f64)> {
        let mut topk = TopK::new(k);
        for id in self.candidates(sig) {
            if exclude(id) {
                continue;
            }
            let est = sig.jaccard_estimate(&self.signatures[&id]);
            topk.push(est, id);
        }
        topk.into_sorted().into_iter().map(|(s, id)| (id, s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(range: std::ops::Range<u64>) -> Vec<u64> {
        range.collect()
    }

    #[test]
    fn identical_sets_estimate_one() {
        let h = MinHasher::new(128, 1);
        let a = h.sign(set(0..100));
        let b = h.sign(set(0..100));
        assert_eq!(a.jaccard_estimate(&b), 1.0);
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let h = MinHasher::new(128, 1);
        let a = h.sign(set(0..100));
        let b = h.sign(set(1000..1100));
        assert!(a.jaccard_estimate(&b) < 0.05);
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        let h = MinHasher::new(256, 7);
        // |A∩B| = 50, |A∪B| = 150 -> J = 1/3.
        let a = h.sign(set(0..100));
        let b = h.sign(set(50..150));
        let est = a.jaccard_estimate(&b);
        assert!((est - 1.0 / 3.0).abs() < 0.1, "estimate {est}");
    }

    #[test]
    fn string_signing_matches_hash_signing() {
        let h = MinHasher::new(64, 3);
        let a = h.sign_strs(["x", "y"]);
        let b = h.sign([wg_util::stable_hash_str("x"), wg_util::stable_hash_str("y")]);
        assert_eq!(a, b);
    }

    #[test]
    fn index_finds_overlapping_sets() {
        let h = MinHasher::new(128, 5);
        let mut idx = MinHashLshIndex::new(32, 4);
        idx.insert(0, h.sign(set(0..100)));
        idx.insert(1, h.sign(set(50..150)));
        idx.insert(2, h.sign(set(5000..5100)));
        let hits = idx.search(&h.sign(set(0..100)), 3, |_| false);
        assert_eq!(hits[0].0, 0);
        assert!(hits.iter().any(|(id, _)| *id == 1), "overlapping set missed");
        assert!(hits[0].1 > hits.last().unwrap().1 - 1e-12);
    }

    #[test]
    fn dissimilar_sets_are_pruned() {
        let h = MinHasher::new(128, 5);
        let mut idx = MinHashLshIndex::new(32, 4);
        for id in 0..100 {
            let start = 1000 * (id as u64 + 1);
            idx.insert(id, h.sign(set(start..start + 50)));
        }
        let cands = idx.candidates(&h.sign(set(0..50)));
        assert!(cands.len() < 20, "too many candidates: {}", cands.len());
    }

    #[test]
    fn insert_replace_remove() {
        let h = MinHasher::new(64, 5);
        let mut idx = MinHashLshIndex::new(16, 4);
        idx.insert(1, h.sign(set(0..10)));
        idx.insert(1, h.sign(set(100..110)));
        assert_eq!(idx.len(), 1);
        assert!(idx.remove(1));
        assert!(!idx.remove(1));
        assert!(idx.is_empty());
    }

    #[test]
    fn empty_set_signature() {
        let h = MinHasher::new(16, 5);
        let sig = h.sign(std::iter::empty());
        assert!(sig.0.iter().all(|&x| x == u64::MAX));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let h = MinHasher::new(8, 5);
        let mut idx = MinHashLshIndex::new(16, 4);
        idx.insert(0, h.sign(set(0..5)));
    }
}
