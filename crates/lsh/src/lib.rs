//! Locality-sensitive hashing indexes.
//!
//! WarpGate turns high-dimensional cosine similarity search into bucket
//! lookups with **SimHash** (random hyperplane projection, §3.1.2): the
//! probability that two vectors agree on one signature bit equals
//! `1 − θ/π` for angle `θ`, so banding the signature yields an index whose
//! collision probability is an S-curve around a tunable similarity
//! threshold (the paper sets 0.7).
//!
//! This crate provides:
//!
//! * [`simhash`] — signature generation and Hamming/cosine estimation;
//!   hyperplanes live in one contiguous transposed matrix signed in a
//!   single blocked GEMV pass (`wg_util::kernel`);
//! * [`arena`] — the contiguous [`VectorArena`] slab backing exact
//!   re-ranking (id → slot map, free-list slot reuse, precomputed norms);
//! * [`params`] — derivation of `(bands, rows)` from a target threshold;
//! * [`index`] — the banded [`SimHashLshIndex`] with exact cosine
//!   re-ranking, optional multi-probe, incremental insert/remove, and
//!   binary persistence;
//! * [`shard`] — the concurrent [`ShardedLshIndex`]: items partitioned by
//!   id across independently locked [`SimHashLshIndex`] shards, fan-out
//!   search with single-signing and top-k merge;
//! * [`exact`] — a brute-force index with the same search interface (the
//!   ANN-quality baseline for ablations);
//! * [`minhash`] — MinHash signatures and a banded MinHash LSH for *sets*,
//!   used by the Aurum and D3L baselines;
//! * [`pivot`] — the §5.2.3 "block-and-verify" alternative: exact top-k
//!   with triangle-inequality pruning against pivot vectors.

pub mod arena;
pub mod exact;
pub mod index;
pub mod minhash;
pub mod params;
pub mod pivot;
pub mod shard;
pub mod simhash;

pub use arena::VectorArena;
pub use exact::ExactIndex;
pub use index::{SearchOutcome, SimHashLshIndex};
pub use minhash::{MinHashLshIndex, MinHashSignature, MinHasher};
pub use params::LshParams;
pub use pivot::PivotIndex;
pub use shard::ShardedLshIndex;
pub use simhash::{Signature, SimHasher};

/// Item identifiers stored in the indexes. Callers keep the mapping from
/// these to their own addressing (e.g. fully-qualified column refs).
pub type ItemId = u32;
