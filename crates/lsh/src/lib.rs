//! Locality-sensitive hashing indexes.
//!
//! WarpGate turns high-dimensional cosine similarity search into bucket
//! lookups with **SimHash** (random hyperplane projection, §3.1.2): the
//! probability that two vectors agree on one signature bit equals
//! `1 − θ/π` for angle `θ`, so banding the signature yields an index whose
//! collision probability is an S-curve around a tunable similarity
//! threshold (the paper sets 0.7).
//!
//! This crate provides:
//!
//! * [`simhash`] — signature generation and Hamming/cosine estimation;
//!   hyperplanes live in one contiguous transposed matrix signed in a
//!   single blocked GEMV pass (`wg_util::kernel`);
//! * [`arena`] — the contiguous [`VectorArena`] slab backing exact
//!   re-ranking (id → slot map, free-list slot reuse, precomputed norms);
//! * [`params`] — derivation of `(bands, rows)` from a target threshold;
//! * [`index`] — the banded [`SimHashLshIndex`] with exact cosine
//!   re-ranking, optional multi-probe, incremental insert/remove, and
//!   binary persistence;
//! * [`shard`] — the concurrent [`ShardedLshIndex`]: items partitioned by
//!   id across independently locked [`SimHashLshIndex`] shards, fan-out
//!   search with single-signing and top-k merge;
//! * [`paged`] — the beyond-RAM tier: sealed segment files with per-block
//!   zone maps, a shared byte-budgeted [`BlockCache`], and lazy block
//!   hydration feeding the exact re-ranker without full residency;
//! * [`exact`] — a brute-force index with the same search interface (the
//!   ANN-quality baseline for ablations);
//! * [`minhash`] — MinHash signatures and a banded MinHash LSH for *sets*,
//!   used by the Aurum and D3L baselines;
//! * [`pivot`] — the §5.2.3 "block-and-verify" alternative: exact top-k
//!   with triangle-inequality pruning against pivot vectors.

pub mod arena;
pub mod exact;
pub mod index;
pub mod minhash;
pub mod paged;
pub mod params;
pub mod pivot;
pub mod scope;
pub mod shard;
pub mod simhash;

pub use arena::VectorArena;
pub use exact::ExactIndex;
pub use index::{SearchOutcome, SimHashLshIndex};
pub use minhash::{MinHashLshIndex, MinHashSignature, MinHasher};
pub use paged::{BlockCache, CacheStats, SegmentRow, VectorSegment, ZoneMap};
pub use params::LshParams;
pub use pivot::PivotIndex;
pub use scope::DiscoverScope;
pub use shard::ShardedLshIndex;
pub use simhash::{Signature, SimHasher};

/// Item identifiers stored in the indexes. Callers keep the mapping from
/// these to their own addressing (e.g. fully-qualified column refs).
///
/// Under federation the id space is partitioned by backend: the high
/// [`BACKEND_BITS`] carry the backend's interned-name bits and the low
/// [`LOCAL_BITS`] a per-backend counter (see [`compose_item_id`]). The
/// legacy single-backend layout is the `backend = 0` slice of this space,
/// so pre-federation ids are already well-formed federated ids in the
/// default namespace.
pub type ItemId = u32;

/// High bits of an [`ItemId`] reserved for the backend namespace.
/// Matches `wg_util::names::MAX_NAMES` (= 256 distinct backend names).
pub const BACKEND_BITS: u32 = 8;

/// Low bits of an [`ItemId`] available for per-backend item numbering.
pub const LOCAL_BITS: u32 = 32 - BACKEND_BITS;

/// Items one backend namespace can hold (2^24 ≈ 16.7M columns).
pub const MAX_LOCAL_ITEMS: u32 = 1 << LOCAL_BITS;

/// Pack a backend's interner bits and a per-backend local counter into one
/// [`ItemId`].
///
/// # Panics
///
/// Panics when `backend` exceeds the 8-bit budget or `local` exceeds
/// [`MAX_LOCAL_ITEMS`] — both indicate a broken caller, not a workload.
#[inline]
pub fn compose_item_id(backend: u16, local: u32) -> ItemId {
    assert!((backend as u32) < (1 << BACKEND_BITS), "backend bits {backend} exceed 8-bit budget");
    assert!(local < MAX_LOCAL_ITEMS, "local id {local} exceeds the 24-bit per-backend budget");
    ((backend as u32) << LOCAL_BITS) | local
}

/// The backend-namespace bits of an [`ItemId`].
#[inline]
pub fn item_backend(id: ItemId) -> u16 {
    (id >> LOCAL_BITS) as u16
}

/// The per-backend local counter of an [`ItemId`].
#[inline]
pub fn item_local(id: ItemId) -> u32 {
    id & (MAX_LOCAL_ITEMS - 1)
}

#[cfg(test)]
mod id_tests {
    use super::*;

    #[test]
    fn compose_and_split_round_trip() {
        for (backend, local) in [(0u16, 0u32), (0, 7), (1, 0), (3, 42), (255, MAX_LOCAL_ITEMS - 1)]
        {
            let id = compose_item_id(backend, local);
            assert_eq!(item_backend(id), backend);
            assert_eq!(item_local(id), local);
        }
    }

    #[test]
    fn default_namespace_ids_are_legacy_ids() {
        // backend 0 is the identity slice: composed ids equal the local id,
        // which is what makes pre-federation snapshots load unchanged.
        for local in [0u32, 1, 1000, MAX_LOCAL_ITEMS - 1] {
            assert_eq!(compose_item_id(0, local), local);
        }
    }

    #[test]
    #[should_panic(expected = "24-bit per-backend budget")]
    fn local_overflow_panics() {
        compose_item_id(0, MAX_LOCAL_ITEMS);
    }
}
