//! A sharded, concurrently accessible SimHash LSH index.
//!
//! [`SimHashLshIndex`] is single-threaded; WarpGate's original deployment
//! put it behind one `RwLock`, which serialized every insert and made any
//! writer (a table refresh, a drop) stall every in-flight query.
//! [`ShardedLshIndex`] partitions items across `N` inner indexes by id
//! (`id % N`), each behind its own lock:
//!
//! * **inserts** route to exactly one shard, so concurrent indexing workers
//!   write to disjoint shards instead of funneling through one writer;
//! * **searches** fan out over the shards, signing the query **once**
//!   (every shard shares the same hyperplane geometry and seed) and merging
//!   the per-shard top-k with a bounded heap, so a writer only ever blocks
//!   the `1/N` of a query's probes that touch its shard;
//! * **batched mutation** ([`Self::insert_batch`], [`Self::remove_batch`])
//!   groups items by shard and takes each shard's lock once per batch.
//!
//! Results are bit-identical to a single [`SimHashLshIndex`] with the same
//! seed: the shards partition the id space, every shard uses identical
//! hyperplanes, and the merged top-k applies the same (score, id) ordering.

use parking_lot::{RwLock, RwLockReadGuard};
use std::sync::Arc;
use wg_util::codec::{self, CodecError, CodecResult};
use wg_util::deadline::{Deadline, Phase};
use wg_util::TopK;

use crate::index::{
    SearchOutcome, SimHashLshIndex, FRAME_MAGIC, FRAME_VERSION, FRAME_VERSION_FEDERATED,
};
use crate::paged::{SegmentRow, VectorSegment};
use crate::params::LshParams;
use crate::scope::DiscoverScope;
use crate::simhash::SimHasher;
use crate::{compose_item_id, item_backend, item_local, ItemId};

/// A row gathered for encoding: hot rows borrow the shard's arena, cold
/// rows are hydrated into owned buffers.
enum EncodedRow<'a> {
    Hot(&'a [f32]),
    Cold(Vec<f32>),
}

impl EncodedRow<'_> {
    fn as_slice(&self) -> &[f32] {
        match self {
            EncodedRow::Hot(v) => v,
            EncodedRow::Cold(v) => v,
        }
    }
}

/// Every stored row across the locked shards, both tiers.
fn gather_rows<'a>(
    guards: &'a [RwLockReadGuard<'a, SimHashLshIndex>],
) -> Vec<(ItemId, EncodedRow<'a>)> {
    let mut items: Vec<(ItemId, EncodedRow<'a>)> = Vec::new();
    for g in guards {
        items.extend(g.items().map(|(id, v)| (id, EncodedRow::Hot(v))));
        items.extend(g.cold_items().into_iter().map(|(id, v)| (id, EncodedRow::Cold(v))));
    }
    items.sort_unstable_by_key(|(id, _)| *id);
    items
}

/// A set of [`SimHashLshIndex`] shards with identical geometry, each behind
/// its own reader–writer lock. All methods take `&self`; interior locking
/// makes the index shareable across threads.
pub struct ShardedLshIndex {
    /// Query-side signer; identical to every shard's internal hasher.
    hasher: SimHasher,
    params: LshParams,
    shards: Vec<RwLock<SimHashLshIndex>>,
}

impl ShardedLshIndex {
    /// Create an index with `shards` partitions for `dim`-dimensional
    /// vectors. `shards` is clamped to at least 1; one shard reproduces the
    /// single-lock layout exactly.
    pub fn new(dim: usize, params: LshParams, seed: u64, shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            hasher: SimHasher::new(dim, params.bits(), seed),
            params,
            shards: (0..shards)
                .map(|_| RwLock::new(SimHashLshIndex::new(dim, params, seed)))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Geometry in use.
    pub fn params(&self) -> LshParams {
        self.params
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.hasher.dim()
    }

    /// The hyperplane seed shared by every shard.
    pub fn seed(&self) -> u64 {
        self.hasher.seed()
    }

    /// Enable multi-probe on every shard (see
    /// [`SimHashLshIndex::set_probes`]).
    pub fn set_probes(&self, probes: usize) {
        for shard in &self.shards {
            shard.write().set_probes(probes);
        }
    }

    /// Probes currently enabled (uniform across shards).
    pub fn probes(&self) -> usize {
        self.shards[0].read().probes()
    }

    /// Total number of stored items across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no shard stores anything.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    #[inline]
    fn shard_of(&self, id: ItemId) -> usize {
        id as usize % self.shards.len()
    }

    /// Insert (or replace) one item; see [`SimHashLshIndex::insert`].
    pub fn insert(&self, id: ItemId, vector: &[f32]) -> bool {
        self.shards[self.shard_of(id)].write().insert(id, vector)
    }

    /// Insert a batch, taking each involved shard's write lock **once**.
    /// Signatures are computed up front, outside any lock, so the write
    /// critical sections shrink to bucket pushes and map inserts. Returns
    /// how many items were accepted (zero or mis-dimensioned vectors are
    /// rejected, as in [`SimHashLshIndex::insert`]).
    pub fn insert_batch(&self, items: Vec<(ItemId, Vec<f32>)>) -> usize {
        let dim = self.dim();
        let mut by_shard: Vec<Vec<(ItemId, Vec<f32>, crate::Signature)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut inserted = 0usize;
        for (id, v) in items {
            if v.len() != dim || v.iter().all(|&x| x == 0.0) {
                continue;
            }
            let sig = self.hasher.sign(&v);
            by_shard[self.shard_of(id)].push((id, v, sig));
            inserted += 1;
        }
        for (shard, group) in self.shards.iter().zip(by_shard) {
            if group.is_empty() {
                continue;
            }
            let mut guard = shard.write();
            for (id, v, sig) in group {
                guard.insert_signed(id, &v, sig);
            }
        }
        inserted
    }

    /// Remove one item; true if it was present.
    pub fn remove(&self, id: ItemId) -> bool {
        self.shards[self.shard_of(id)].write().remove(id)
    }

    /// Remove a batch, taking each involved shard's write lock once.
    /// Returns how many ids were present.
    pub fn remove_batch(&self, ids: &[ItemId]) -> usize {
        let mut by_shard: Vec<Vec<ItemId>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for &id in ids {
            by_shard[self.shard_of(id)].push(id);
        }
        let mut removed = 0usize;
        for (shard, group) in self.shards.iter().zip(by_shard) {
            if group.is_empty() {
                continue;
            }
            let mut guard = shard.write();
            removed += group.into_iter().filter(|&id| guard.remove(id)).count();
        }
        removed
    }

    /// The stored vector for an id, cloned out of its shard (cold items
    /// read through the block cache).
    pub fn vector(&self, id: ItemId) -> Option<Vec<f32>> {
        self.shards[self.shard_of(id)].read().vector_owned(id)
    }

    /// Attach sealed segments to every shard's paged tier. Each shard
    /// admits only the ids it owns (`id % shards`), so one segment file
    /// can serve any shard count; the segments share one block cache.
    /// Returns the total rows attached.
    pub fn attach_segments(&self, segments: &[Arc<VectorSegment>]) -> CodecResult<usize> {
        self.attach_segments_mapped(segments, Some)
    }

    /// [`Self::attach_segments`] with id remapping: `map` returns the id a
    /// row installs under (or `None` to skip it); rows route to the shard
    /// owning the **mapped** id. Lets a loader recompose backend bits
    /// assigned by a different process's name interner (see
    /// [`SimHashLshIndex::attach_segment_mapped`]).
    pub fn attach_segments_mapped(
        &self,
        segments: &[Arc<VectorSegment>],
        map: impl Fn(ItemId) -> Option<ItemId> + Copy,
    ) -> CodecResult<usize> {
        let n = self.shards.len();
        let mut attached = 0usize;
        for (i, shard) in self.shards.iter().enumerate() {
            let mut guard = shard.write();
            for segment in segments {
                attached += guard.attach_segment_mapped(segment.clone(), |id| {
                    map(id).filter(|&mapped| mapped as usize % n == i)
                })?;
            }
        }
        Ok(attached)
    }

    /// Export every stored row grouped by shard, ready for sealing into
    /// per-shard segment files.
    pub fn export_segment_rows(&self) -> Vec<Vec<SegmentRow>> {
        self.shards.iter().map(|s| s.read().export_rows()).collect()
    }

    /// Items currently served from the paged tier, across shards.
    pub fn cold_len(&self) -> usize {
        self.shards.iter().map(|s| s.read().cold_len()).sum()
    }

    /// Live attached segments across shards (a segment attached to every
    /// shard counts once per shard that kept live rows from it).
    pub fn cold_segment_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().cold_segment_count()).sum()
    }

    /// Top-k search across all shards: the query is signed once, each shard
    /// contributes its local top-k under a read lock, and the partial
    /// results merge through one more bounded heap. Equivalent to
    /// [`SimHashLshIndex::search`] over the union of the shards.
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        exclude: impl Fn(ItemId) -> bool,
    ) -> Vec<(ItemId, f32)> {
        self.search_with_outcome(query, k, exclude).0
    }

    /// [`Self::search`] plus summed candidate-set diagnostics.
    pub fn search_with_outcome(
        &self,
        query: &[f32],
        k: usize,
        exclude: impl Fn(ItemId) -> bool,
    ) -> (Vec<(ItemId, f32)>, SearchOutcome) {
        self.search_scoped_with_outcome(query, k, &DiscoverScope::All, exclude)
    }

    /// [`Self::search_with_outcome`] restricted to a backend scope: the
    /// scope drops out-of-scope ids during each shard's candidate
    /// generation (before exact scoring), so excluded backends cost
    /// nothing past the bucket probes.
    pub fn search_scoped_with_outcome(
        &self,
        query: &[f32],
        k: usize,
        scope: &DiscoverScope,
        exclude: impl Fn(ItemId) -> bool,
    ) -> (Vec<(ItemId, f32)>, SearchOutcome) {
        self.search_scoped_deadline_with_outcome(query, k, scope, Deadline::none(), exclude)
            .expect("an unlimited deadline never expires")
    }

    /// [`Self::search_scoped_with_outcome`] under a cooperative
    /// [`Deadline`], checked per shard before candidate generation, the
    /// exact re-rank, and each cold block read (see
    /// [`SimHashLshIndex::search_signed_scoped_deadline_with_outcome`]).
    /// `Err(phase)` names the boundary the budget died at.
    pub fn search_scoped_deadline_with_outcome(
        &self,
        query: &[f32],
        k: usize,
        scope: &DiscoverScope,
        deadline: Deadline,
        exclude: impl Fn(ItemId) -> bool,
    ) -> Result<(Vec<(ItemId, f32)>, SearchOutcome), Phase> {
        let sig = self.hasher.sign(query);
        let mut merged = TopK::new(k);
        let mut outcome = SearchOutcome::default();
        for shard in &self.shards {
            let guard = shard.read();
            let (hits, o) = guard.search_signed_scoped_deadline_with_outcome(
                query, &sig, k, scope, deadline, &exclude,
            )?;
            // Shards partition the id space, so the sums are exact counts.
            outcome.candidates += o.candidates;
            outcome.scored += o.scored;
            outcome.blocks_read += o.blocks_read;
            outcome.blocks_pruned += o.blocks_pruned;
            for (id, score) in hits {
                merged.push(score as f64, id);
            }
        }
        let results = merged.into_sorted().into_iter().map(|(s, id)| (id, s as f32)).collect();
        Ok((results, outcome))
    }

    /// Remove every item whose id lives in one backend namespace (high
    /// bits = `backend_bits`), returning how many were removed. This is
    /// the per-backend invalidation the federated id layout buys: no
    /// caller-side id bookkeeping, one write-lock pass per shard.
    pub fn remove_backend(&self, backend_bits: u16) -> usize {
        let mut removed = 0usize;
        for shard in &self.shards {
            // Delegates to the tier-aware removal: cold items drop too,
            // and attached segments left without live rows are retired
            // along with their cache-resident blocks.
            removed += shard.write().remove_backend(backend_bits);
        }
        removed
    }

    /// Drop one backend's **cold** items across shards, retiring emptied
    /// segments and evicting their cache-resident blocks; hot items of the
    /// backend stay. Returns how many cold items were dropped.
    pub fn drop_cold_backend(&self, backend_bits: u16) -> usize {
        self.shards.iter().map(|s| s.write().drop_cold_backend(backend_bits)).sum()
    }

    /// Serialize to the same single-index frame [`SimHashLshIndex::encode`]
    /// writes (ids merged and sorted), so snapshots are interchangeable
    /// between sharded and unsharded deployments and independent of the
    /// shard count at save time.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        codec::put_header(buf, FRAME_MAGIC, FRAME_VERSION);
        codec::put_u32(buf, self.dim() as u32);
        codec::put_u32(buf, self.params.bands as u32);
        codec::put_u32(buf, self.params.rows as u32);
        codec::put_u64(buf, self.hasher.seed());
        codec::put_u32(buf, guards[0].probes() as u32);
        let items = gather_rows(&guards);
        codec::put_len(buf, items.len());
        for (id, v) in items {
            codec::put_u32(buf, id);
            codec::put_f32_slice(buf, v.as_slice());
        }
    }

    /// Deserialize a frame written by [`Self::encode`] (or by
    /// [`SimHashLshIndex::encode`]) into `shards` partitions. The stored
    /// geometry and seed win over the caller's defaults, exactly as in
    /// [`SimHashLshIndex::decode`]. Rejects federated (v2) frames — use
    /// [`Self::decode_with_backends`] for those.
    pub fn decode(buf: &mut impl codec::Buf, shards: usize) -> CodecResult<Self> {
        Self::decode_with_backends(buf, shards, |name| {
            if name == "default" {
                Ok(0)
            } else {
                Err(CodecError::Invalid(format!(
                    "federated snapshot names backend '{name}' — decode_with_backends required"
                )))
            }
        })
    }

    /// Serialize with a backend table. When every stored id lives in the
    /// default namespace (backend bits 0) this writes the **byte-identical
    /// v1 frame** of [`Self::encode`] — pre-federation readers keep
    /// working and the legacy-snapshot pins stay exact. Otherwise it
    /// writes a v2 frame: v1's geometry header, then a table mapping each
    /// distinct backend-bit value to its attach name (via `name_of`), then
    /// the items. Names, not bits, are authoritative across processes —
    /// the interner assigns bits in attach order, which the loading
    /// process need not share.
    pub fn encode_with_backends(&self, buf: &mut Vec<u8>, name_of: impl Fn(u16) -> String) {
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let items = gather_rows(&guards);
        let mut backends: Vec<u16> = items.iter().map(|(id, _)| item_backend(*id)).collect();
        backends.sort_unstable();
        backends.dedup();
        if backends.is_empty() || backends == [0] {
            drop(guards);
            return self.encode(buf);
        }
        codec::put_header(buf, FRAME_MAGIC, FRAME_VERSION_FEDERATED);
        codec::put_u32(buf, self.dim() as u32);
        codec::put_u32(buf, self.params.bands as u32);
        codec::put_u32(buf, self.params.rows as u32);
        codec::put_u64(buf, self.hasher.seed());
        codec::put_u32(buf, guards[0].probes() as u32);
        codec::put_len(buf, backends.len());
        for &bits in &backends {
            codec::put_u32(buf, bits as u32);
            codec::put_str(buf, &name_of(bits));
        }
        codec::put_len(buf, items.len());
        for (id, v) in items {
            codec::put_u32(buf, id);
            codec::put_f32_slice(buf, v.as_slice());
        }
    }

    /// Deserialize either frame version. v1 loads as-is (every id already
    /// lives in the default namespace). v2 reads the backend table, asks
    /// `resolve` for the loading process's bits for each *name*, and
    /// remaps each item's high bits accordingly — so a snapshot taken in a
    /// process that attached `lake` second loads correctly into one that
    /// attached it fifth.
    pub fn decode_with_backends(
        buf: &mut impl codec::Buf,
        shards: usize,
        mut resolve: impl FnMut(&str) -> CodecResult<u16>,
    ) -> CodecResult<Self> {
        let version = codec::get_header(buf, FRAME_MAGIC)?;
        if version != FRAME_VERSION && version != FRAME_VERSION_FEDERATED {
            return Err(CodecError::Invalid(format!("unsupported index version {version}")));
        }
        let dim = codec::get_u32(buf)? as usize;
        let bands = codec::get_u32(buf)? as usize;
        let rows = codec::get_u32(buf)? as usize;
        let seed = codec::get_u64(buf)?;
        let probes = codec::get_u32(buf)? as usize;
        if dim == 0 || bands == 0 || rows == 0 || rows > 64 {
            return Err(CodecError::Invalid("bad index geometry".into()));
        }
        // v2: stored backend bits -> this process's bits, by name.
        let mut remap: Vec<(u16, u16)> = Vec::new();
        if version == FRAME_VERSION_FEDERATED {
            let k = codec::get_len(buf)?;
            for _ in 0..k {
                let stored_bits = codec::get_u32(buf)?;
                if stored_bits > u16::MAX as u32 {
                    return Err(CodecError::Invalid("backend bits out of range".into()));
                }
                let name = codec::get_str(buf)?;
                remap.push((stored_bits as u16, resolve(&name)?));
            }
        }
        let index = Self::new(dim, LshParams { bands, rows }, seed, shards);
        index.set_probes(probes);
        let n = codec::get_len(buf)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            let mut id = codec::get_u32(buf)?;
            if version == FRAME_VERSION_FEDERATED {
                let stored = item_backend(id);
                let Some(&(_, local_bits)) = remap.iter().find(|(from, _)| *from == stored) else {
                    return Err(CodecError::Invalid(format!(
                        "item id {id} references backend bits {stored} missing from the table"
                    )));
                };
                id = compose_item_id(local_bits, item_local(id));
            }
            let v = codec::get_f32_vec(buf)?;
            if v.len() != dim {
                return Err(CodecError::Invalid("vector length mismatch".into()));
            }
            items.push((id, v));
        }
        index.insert_batch(items);
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_util::rng::{Rng64, Xoshiro256pp};

    fn random_unit(dim: usize, rng: &mut Xoshiro256pp) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_gaussian() as f32).collect();
        let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        for x in &mut v {
            *x /= n;
        }
        v
    }

    fn populated(shards: usize, n: usize, seed: u64) -> (ShardedLshIndex, Vec<Vec<f32>>) {
        let mut rng = Xoshiro256pp::new(seed);
        let index = ShardedLshIndex::new(64, LshParams::for_threshold(0.7, 128), 17, shards);
        let vectors: Vec<Vec<f32>> = (0..n).map(|_| random_unit(64, &mut rng)).collect();
        for (id, v) in vectors.iter().enumerate() {
            assert!(index.insert(id as ItemId, v));
        }
        (index, vectors)
    }

    #[test]
    fn matches_single_lock_index_exactly() {
        let (sharded, vectors) = populated(8, 300, 1);
        let mut single = SimHashLshIndex::new(64, LshParams::for_threshold(0.7, 128), 17);
        for (id, v) in vectors.iter().enumerate() {
            single.insert(id as ItemId, v);
        }
        let mut rng = Xoshiro256pp::new(2);
        for _ in 0..20 {
            let q = random_unit(64, &mut rng);
            let (a, oa) = sharded.search_with_outcome(&q, 10, |id| id % 7 == 0);
            let (b, ob) = single.search_with_outcome(&q, 10, |id| id % 7 == 0);
            assert_eq!(a, b, "sharded results diverge from single-lock index");
            assert_eq!(oa, ob, "outcome diagnostics diverge");
        }
    }

    #[test]
    fn shard_count_does_not_change_results() {
        let (one, _) = populated(1, 200, 3);
        let (five, _) = populated(5, 200, 3);
        let mut rng = Xoshiro256pp::new(4);
        for _ in 0..10 {
            let q = random_unit(64, &mut rng);
            assert_eq!(one.search(&q, 5, |_| false), five.search(&q, 5, |_| false));
        }
    }

    #[test]
    fn insert_batch_routes_and_counts() {
        let index = ShardedLshIndex::new(8, LshParams::for_threshold(0.5, 64), 5, 4);
        let mut rng = Xoshiro256pp::new(5);
        let mut items: Vec<(ItemId, Vec<f32>)> =
            (0..40).map(|id| (id, random_unit(8, &mut rng))).collect();
        items.push((40, vec![0.0; 8])); // rejected: zero vector
        items.push((41, vec![1.0; 4])); // rejected: wrong dimension
        assert_eq!(index.insert_batch(items), 40);
        assert_eq!(index.len(), 40);
    }

    #[test]
    fn remove_batch_and_replacement() {
        let (index, vectors) = populated(3, 30, 6);
        assert_eq!(index.remove_batch(&[0, 1, 2, 2, 99]), 3);
        assert_eq!(index.len(), 27);
        assert!(!index.remove(0));
        // Replacement keeps len stable.
        assert!(index.insert(5, &vectors[4]));
        assert_eq!(index.len(), 27);
        assert_eq!(index.vector(5), Some(vectors[4].clone()));
    }

    #[test]
    fn encode_decode_roundtrip_any_shard_count() {
        let (index, _) = populated(4, 120, 7);
        let mut buf = Vec::new();
        index.encode(&mut buf);

        // Reload into a different shard count and into a plain index.
        let mut r = &buf[..];
        let reloaded = ShardedLshIndex::decode(&mut r, 9).unwrap();
        assert!(r.is_empty());
        assert_eq!(reloaded.len(), 120);
        let mut r = &buf[..];
        let single = SimHashLshIndex::decode(&mut r).unwrap();
        assert_eq!(single.len(), 120);

        let mut rng = Xoshiro256pp::new(8);
        for _ in 0..10 {
            let q = random_unit(64, &mut rng);
            let want = index.search(&q, 5, |_| false);
            assert_eq!(reloaded.search(&q, 5, |_| false), want);
            assert_eq!(single.search(&q, 5, |_| false), want);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut r: &[u8] = b"not an index";
        assert!(ShardedLshIndex::decode(&mut r, 4).is_err());
    }

    #[test]
    fn concurrent_inserts_and_searches_lose_nothing() {
        let index = ShardedLshIndex::new(32, LshParams::for_threshold(0.6, 64), 11, 8);
        let per_thread = 50usize;
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let index = &index;
                scope.spawn(move || {
                    let mut rng = Xoshiro256pp::new(100 + t as u64);
                    for i in 0..per_thread {
                        let id = t * per_thread as u32 + i as u32;
                        assert!(index.insert(id, &random_unit(32, &mut rng)));
                        // Interleave searches with the other writers.
                        let q = random_unit(32, &mut rng);
                        let _ = index.search(&q, 3, |_| false);
                    }
                });
            }
        });
        assert_eq!(index.len(), 4 * per_thread);
    }

    /// An index holding 60 near-duplicate vectors (perturbations of one
    /// base, so they collide in the LSH buckets) spread across three
    /// backend namespaces (20 each), plus the vectors for re-querying.
    fn federated(seed: u64) -> (ShardedLshIndex, Vec<Vec<f32>>) {
        let mut rng = Xoshiro256pp::new(seed);
        let index = ShardedLshIndex::new(64, LshParams::for_threshold(0.7, 128), 17, 4);
        let base = random_unit(64, &mut rng);
        let vectors: Vec<Vec<f32>> = (0..60)
            .map(|_| {
                let mut v: Vec<f32> =
                    base.iter().map(|x| x + 0.08 * rng.gen_gaussian() as f32).collect();
                let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
                for x in &mut v {
                    *x /= n;
                }
                v
            })
            .collect();
        for (i, v) in vectors.iter().enumerate() {
            let backend = (i % 3) as u16 + 1; // namespaces 1, 2, 3
            assert!(index.insert(compose_item_id(backend, (i / 3) as u32), v));
        }
        (index, vectors)
    }

    #[test]
    fn scoped_search_restricts_to_admitted_backends() {
        let (index, vectors) = federated(20);
        let q = &vectors[0];
        let all = index.search_scoped_with_outcome(q, 60, &DiscoverScope::All, |_| false).0;
        assert!(all.iter().any(|(id, _)| item_backend(*id) == 1));
        let only2 =
            index.search_scoped_with_outcome(q, 60, &DiscoverScope::include([2]), |_| false);
        assert!(!only2.0.is_empty());
        assert!(only2.0.iter().all(|(id, _)| item_backend(*id) == 2));
        // Scope admits exactly the subset of the unscoped result set.
        let from_all: Vec<_> =
            all.iter().copied().filter(|(id, _)| item_backend(*id) == 2).collect();
        assert_eq!(only2.0, from_all);
        let not2 = index.search_scoped_with_outcome(q, 60, &DiscoverScope::exclude([2]), |_| false);
        assert!(not2.0.iter().all(|(id, _)| item_backend(*id) != 2));
        // Pushdown: the scoped searches never scored out-of-scope items.
        let unscoped_outcome = index.search_with_outcome(q, 60, |_| false).1;
        assert!(only2.1.scored <= unscoped_outcome.scored);
        assert_eq!(only2.1.scored + not2.1.scored, unscoped_outcome.scored);
    }

    #[test]
    fn remove_backend_drops_exactly_one_namespace() {
        let (index, _) = federated(21);
        assert_eq!(index.len(), 60);
        assert_eq!(index.remove_backend(2), 20);
        assert_eq!(index.len(), 40);
        assert_eq!(index.remove_backend(2), 0, "second removal finds nothing");
        let (hits, _) =
            index.search_scoped_with_outcome(&vec![1.0; 64], 60, &DiscoverScope::All, |_| false);
        assert!(hits.iter().all(|(id, _)| item_backend(*id) != 2));
    }

    #[test]
    fn all_default_encode_with_backends_is_byte_identical_v1() {
        let (index, _) = populated(3, 80, 22);
        let mut v1 = Vec::new();
        index.encode(&mut v1);
        let mut via_backends = Vec::new();
        index.encode_with_backends(&mut via_backends, |_| unreachable!("no non-default ids"));
        assert_eq!(via_backends, v1, "all-default snapshots must stay v1 byte-identical");
    }

    #[test]
    fn federated_encode_round_trips_with_remap() {
        let (index, vectors) = federated(23);
        let mut buf = Vec::new();
        index.encode_with_backends(&mut buf, |bits| format!("wh{bits}"));

        // Plain decode must refuse: the frame names non-default backends.
        assert!(ShardedLshIndex::decode(&mut &buf[..], 4).is_err());

        // The loading process assigns different bits to the same names.
        let reassign = |name: &str| -> CodecResult<u16> {
            match name {
                "wh1" => Ok(9),
                "wh2" => Ok(4),
                "wh3" => Ok(7),
                other => Err(CodecError::Invalid(format!("unknown backend '{other}'"))),
            }
        };
        let mut r = &buf[..];
        let loaded = ShardedLshIndex::decode_with_backends(&mut r, 2, reassign).unwrap();
        assert!(r.is_empty());
        assert_eq!(loaded.len(), 60);
        // Old namespace 1 is now 9, with locals preserved.
        let q = &vectors[0];
        let want = index.search_scoped_with_outcome(q, 60, &DiscoverScope::include([1]), |_| false);
        let got = loaded.search_scoped_with_outcome(q, 60, &DiscoverScope::include([9]), |_| false);
        assert_eq!(want.0.len(), got.0.len());
        for ((a, sa), (b, sb)) in want.0.iter().zip(&got.0) {
            assert_eq!(item_local(*a), item_local(*b));
            assert_eq!(item_backend(*b), 9);
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn probes_propagate_to_all_shards() {
        let (index, _) = populated(4, 50, 9);
        assert_eq!(index.probes(), 0);
        index.set_probes(2);
        assert_eq!(index.probes(), 2);
        let mut rng = Xoshiro256pp::new(10);
        let q = random_unit(64, &mut rng);
        let (_, with_probes) = index.search_with_outcome(&q, 5, |_| false);
        index.set_probes(0);
        let (_, without) = index.search_with_outcome(&q, 5, |_| false);
        assert!(with_probes.candidates >= without.candidates);
    }
}
