//! The paged (beyond-RAM) vector tier: segment files, zone maps, and the
//! bounded block cache.
//!
//! A sealed **vector segment** holds `block_rows × dim` f32 blocks inside a
//! checksummed [`wg_util::segment::Segment`] container. Everything a search
//! needs *before* exact scoring — ids, signatures, per-row norms, and a
//! per-block [`ZoneMap`] — lives in the segment directory and stays
//! resident from `open`; the vector payloads themselves page in on demand
//! through a shared byte-budgeted LRU [`BlockCache`].
//!
//! Rows are sealed in **signature order** (lexicographic over the packed
//! SimHash words, ties by id), so rows that collide in the LSH buckets —
//! i.e. rows that are *similar* — land in the same blocks. That coherence
//! is what makes the zone maps sharp: each block's centroid/radius bound
//! (`dot(q,v) ≤ dot(q,c) + ‖q‖·r`) is tight when the block's rows hug
//! their centroid, and a block of near-duplicates has a tiny radius.
//!
//! Pruning contract: [`ZoneMap::cosine_upper_bound`] returns a value `≥`
//! the exact f32 cosine the re-ranker would compute for *any* row in the
//! block (the bound is evaluated in f64 and padded with [`UB_SLACK`] to
//! absorb the f32 kernel-dot rounding). The search path may therefore skip
//! a block only when the top-k heap is full **and** the bound is strictly
//! below the current threshold — every skipped row provably scores below
//! the final k-th result, so paged rankings are bit-identical to the
//! all-in-RAM path.

use parking_lot::Mutex;
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use wg_util::codec::{self, CodecResult};
use wg_util::segment::{atomic_write_bytes, Segment, SegmentBuilder, SegmentError};
use wg_util::FxHashMap;

use crate::simhash::Signature;
use crate::ItemId;

/// Dimensions per zone-map stripe: the directory stores component min/max
/// per 8-dim stripe instead of per dim, an 8× smaller footprint for a
/// slightly looser (still sound) bound.
pub const STRIPE_WIDTH: usize = 8;

/// Absolute slack added to every zone-map upper bound. The bound itself is
/// computed in f64 from exact f32 block statistics; the slack covers the
/// rounding of the f32 kernel dot it must dominate (≈ dim · ε ≈ 1.5e-5 at
/// dim 128 for unit vectors — 1e-3 dominates it by ~60×).
pub const UB_SLACK: f64 = 1e-3;

/// Per-block statistics proving what scores the block *cannot* reach.
#[derive(Debug, Clone)]
pub struct ZoneMap {
    /// Smallest stored row norm in the block.
    pub norm_min: f32,
    /// Largest stored row norm in the block.
    pub norm_max: f32,
    /// Mean of the block's rows (rounded to f32; the radius is measured
    /// against this stored value, so its rounding is already covered).
    pub centroid: Vec<f32>,
    /// Upper bound on `‖v − centroid‖` over the block's rows.
    pub radius: f32,
    /// Per-stripe component minimum over the block's rows.
    pub stripe_lo: Vec<f32>,
    /// Per-stripe component maximum over the block's rows.
    pub stripe_hi: Vec<f32>,
}

impl ZoneMap {
    /// Compute the zone map for a set of rows (each `dim` long) with their
    /// precomputed norms.
    pub fn build(dim: usize, rows: &[&[f32]], norms: &[f32]) -> ZoneMap {
        assert!(!rows.is_empty(), "zone map over an empty block");
        let stripes = dim.div_ceil(STRIPE_WIDTH);
        let mut norm_min = f32::INFINITY;
        let mut norm_max = f32::NEG_INFINITY;
        for &n in norms {
            norm_min = norm_min.min(n);
            norm_max = norm_max.max(n);
        }
        let mut mean = vec![0.0f64; dim];
        let mut stripe_lo = vec![f32::INFINITY; stripes];
        let mut stripe_hi = vec![f32::NEG_INFINITY; stripes];
        for row in rows {
            for (d, &x) in row.iter().enumerate() {
                mean[d] += x as f64;
                let s = d / STRIPE_WIDTH;
                stripe_lo[s] = stripe_lo[s].min(x);
                stripe_hi[s] = stripe_hi[s].max(x);
            }
        }
        let inv = 1.0 / rows.len() as f64;
        let centroid: Vec<f32> = mean.iter().map(|&m| (m * inv) as f32).collect();
        // Radius against the *stored* (f32-rounded) centroid, in f64, then
        // bumped before the f32 round so the stored value never undershoots.
        let mut r_sq = 0.0f64;
        for row in rows {
            let mut d_sq = 0.0f64;
            for (&x, &c) in row.iter().zip(&centroid) {
                let d = x as f64 - c as f64;
                d_sq += d * d;
            }
            r_sq = r_sq.max(d_sq);
        }
        let radius = (r_sq.sqrt() * (1.0 + 1e-6) + 1e-9) as f32;
        ZoneMap { norm_min, norm_max, centroid, radius, stripe_lo, stripe_hi }
    }

    /// An upper bound (in f64, [`UB_SLACK`]-padded, capped at 1.0) on the
    /// exact cosine any row of this block can score against `query`. Sound
    /// for the re-ranker's f32 arithmetic; degenerate norms fall back to
    /// the trivial bound 1.0 (never prune what we cannot bound).
    pub fn cosine_upper_bound(&self, query: &[f32], qnorm: f32) -> f64 {
        let qn = qnorm as f64;
        if qn <= f32::MIN_POSITIVE as f64 {
            return 1.0;
        }
        // Ball bound: dot(q, v) = dot(q, c) + dot(q, v − c) ≤ dot(q, c) + ‖q‖·r.
        let mut dot_c = 0.0f64;
        for (&q, &c) in query.iter().zip(&self.centroid) {
            dot_c += q as f64 * c as f64;
        }
        let ball = dot_c + qn * self.radius as f64;
        // Box bound: per-dim max of q_d·lo and q_d·hi with stripe extrema.
        let mut boxed = 0.0f64;
        for (d, &q) in query.iter().enumerate() {
            let s = d / STRIPE_WIDTH;
            let q = q as f64;
            boxed += (q * self.stripe_lo[s] as f64).max(q * self.stripe_hi[s] as f64);
        }
        let dot_ub = ball.min(boxed);
        // Dividing an upper bound needs the norm that *maximizes* the
        // quotient: the smallest norm when the bound is ≥ 0, the largest
        // when it is negative.
        let denom_norm = if dot_ub >= 0.0 { self.norm_min } else { self.norm_max };
        if denom_norm as f64 <= f32::MIN_POSITIVE as f64 {
            return 1.0;
        }
        (dot_ub / (qn * denom_norm as f64) + UB_SLACK).min(1.0)
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        codec::put_f32(buf, self.norm_min);
        codec::put_f32(buf, self.norm_max);
        codec::put_f32_slice(buf, &self.centroid);
        codec::put_f32(buf, self.radius);
        codec::put_f32_slice(buf, &self.stripe_lo);
        codec::put_f32_slice(buf, &self.stripe_hi);
    }

    fn decode(buf: &mut &[u8]) -> CodecResult<ZoneMap> {
        Ok(ZoneMap {
            norm_min: codec::get_f32(buf)?,
            norm_max: codec::get_f32(buf)?,
            centroid: codec::get_f32_vec(buf)?,
            radius: codec::get_f32(buf)?,
            stripe_lo: codec::get_f32_vec(buf)?,
            stripe_hi: codec::get_f32_vec(buf)?,
        })
    }
}

/// Point-in-time counters from a [`BlockCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Block fetches served from memory.
    pub hits: u64,
    /// Block fetches that went to disk.
    pub misses: u64,
    /// Blocks evicted to stay under budget (or dropped with a segment).
    pub evictions: u64,
    /// Blocks currently resident.
    pub resident_blocks: usize,
    /// Bytes currently resident.
    pub resident_bytes: usize,
    /// High-water mark of resident bytes.
    pub peak_resident_bytes: usize,
}

struct CacheEntry {
    data: Arc<Vec<f32>>,
    bytes: usize,
    stamp: u64,
}

struct CacheInner {
    map: FxHashMap<(u32, u32), CacheEntry>,
    tick: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    peak_bytes: usize,
}

/// A byte-budgeted LRU over `(segment, block)` payloads, shared by every
/// segment of a paged index (and across shards — the budget is global).
///
/// Admission is unconditional: the requested block is inserted, then the
/// least-recently-used *other* blocks are evicted until the budget holds
/// again. One block larger than the whole budget therefore stays resident
/// until the next admission — the alternative (refusing to cache it) would
/// re-read it on every query.
pub struct BlockCache {
    budget_bytes: usize,
    next_segment: AtomicU32,
    inner: Mutex<CacheInner>,
}

impl BlockCache {
    /// A cache admitting up to `budget_bytes` of payload (0 = unbounded).
    pub fn new(budget_bytes: usize) -> Arc<BlockCache> {
        Arc::new(BlockCache {
            budget_bytes,
            next_segment: AtomicU32::new(0),
            inner: Mutex::new(CacheInner {
                map: FxHashMap::default(),
                tick: 0,
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                peak_bytes: 0,
            }),
        })
    }

    /// The configured byte budget (0 = unbounded).
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Hand out a process-unique id for a segment about to share this
    /// cache; the id namespaces the segment's blocks in the key space.
    pub fn register_segment(&self) -> u32 {
        self.next_segment.fetch_add(1, Ordering::Relaxed)
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            resident_blocks: inner.map.len(),
            resident_bytes: inner.bytes,
            peak_resident_bytes: inner.peak_bytes,
        }
    }

    /// Fetch a block, loading and admitting it on miss.
    pub fn get_or_load(
        &self,
        key: (u32, u32),
        load: impl FnOnce() -> Result<Vec<f32>, SegmentError>,
    ) -> Result<Arc<Vec<f32>>, SegmentError> {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&key) {
            entry.stamp = tick;
            inner.hits += 1;
            return Ok(entry.data.clone());
        }
        // Load under the lock: correctness first (no double-load races),
        // and the search path is read-dominated once warm.
        let data = Arc::new(load()?);
        let bytes = data.len() * std::mem::size_of::<f32>();
        inner.misses += 1;
        inner.bytes += bytes;
        inner.map.insert(key, CacheEntry { data: data.clone(), bytes, stamp: tick });
        if self.budget_bytes > 0 {
            while inner.bytes > self.budget_bytes && inner.map.len() > 1 {
                let (&victim, _) = inner
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.stamp)
                    .expect("non-empty cache has an LRU entry");
                let evicted = inner.map.remove(&victim).expect("victim present");
                inner.bytes -= evicted.bytes;
                inner.evictions += 1;
            }
        }
        inner.peak_bytes = inner.peak_bytes.max(inner.bytes);
        Ok(data)
    }

    /// Drop every resident block of one segment (detach, re-seal).
    /// Returns how many blocks were dropped.
    pub fn evict_segment(&self, segment: u32) -> usize {
        let mut inner = self.inner.lock();
        let doomed: Vec<(u32, u32)> =
            inner.map.keys().copied().filter(|&(s, _)| s == segment).collect();
        for key in &doomed {
            let entry = inner.map.remove(key).expect("key just listed");
            inner.bytes -= entry.bytes;
            inner.evictions += 1;
        }
        doomed.len()
    }
}

/// One row headed into [`write_vector_segment`].
#[derive(Debug, Clone)]
pub struct SegmentRow {
    /// Item id.
    pub id: ItemId,
    /// SimHash signature (geometry must match the index that will attach
    /// the segment).
    pub signature: Signature,
    /// Precomputed L2 norm, exactly as the [`crate::VectorArena`] stores it
    /// — cold scoring must reproduce the hot path bit for bit.
    pub norm: f32,
    /// The vector itself.
    pub vector: Vec<f32>,
}

/// Directory-resident metadata for one block of a [`VectorSegment`].
#[derive(Debug, Clone)]
pub struct BlockMeta {
    /// Row ids, in row order.
    pub ids: Vec<ItemId>,
    /// Per-row norms, aligned with `ids`.
    pub norms: Vec<f32>,
    /// Packed signature words, `words_per_sig` per row.
    pub sig_words: Vec<u64>,
    /// The block's pruning statistics.
    pub zone: ZoneMap,
}

/// Seal rows into a segment file at `path` (written atomically).
///
/// Rows are sorted by (signature words, id) before blocking so LSH-similar
/// rows share blocks — see the module docs for why that makes the zone
/// maps effective. Returns the number of blocks written.
pub fn write_vector_segment(
    path: &Path,
    dim: usize,
    sig_bits: usize,
    block_rows: usize,
    mut rows: Vec<SegmentRow>,
) -> std::io::Result<usize> {
    assert!(dim > 0 && block_rows > 0, "segment geometry must be positive");
    for row in &rows {
        assert_eq!(row.vector.len(), dim, "row dimension mismatch");
        assert_eq!(row.signature.bits, sig_bits, "row signature width mismatch");
    }
    rows.sort_unstable_by(|a, b| a.signature.words.cmp(&b.signature.words).then(a.id.cmp(&b.id)));

    let mut header_meta = Vec::new();
    codec::put_u32(&mut header_meta, dim as u32);
    codec::put_u32(&mut header_meta, sig_bits as u32);
    codec::put_u32(&mut header_meta, block_rows as u32);
    let mut builder = SegmentBuilder::new(&header_meta);

    let mut n_blocks = 0usize;
    for chunk in rows.chunks(block_rows) {
        let views: Vec<&[f32]> = chunk.iter().map(|r| r.vector.as_slice()).collect();
        let norms: Vec<f32> = chunk.iter().map(|r| r.norm).collect();
        let zone = ZoneMap::build(dim, &views, &norms);
        let ids: Vec<ItemId> = chunk.iter().map(|r| r.id).collect();
        let mut sig_words = Vec::with_capacity(chunk.len() * chunk[0].signature.words.len());
        for r in chunk {
            sig_words.extend_from_slice(&r.signature.words);
        }
        let mut meta = Vec::new();
        codec::put_u32_slice(&mut meta, &ids);
        codec::put_f32_slice(&mut meta, &norms);
        codec::put_u64_slice(&mut meta, &sig_words);
        zone.encode(&mut meta);
        let mut payload = Vec::with_capacity(chunk.len() * dim * 4);
        for v in &views {
            for &x in *v {
                payload.extend_from_slice(&x.to_le_bytes());
            }
        }
        builder.push_block(&payload, &meta);
        n_blocks += 1;
    }
    atomic_write_bytes(path, &builder.finish())?;
    Ok(n_blocks)
}

/// An opened vector segment: directory metadata resident, payload blocks
/// fetched lazily through the shared [`BlockCache`].
pub struct VectorSegment {
    cache_id: u32,
    segment: Segment,
    dim: usize,
    sig_bits: usize,
    blocks: Vec<BlockMeta>,
    cache: Arc<BlockCache>,
}

impl std::fmt::Debug for VectorSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VectorSegment")
            .field("path", &self.segment.path())
            .field("blocks", &self.blocks.len())
            .field("dim", &self.dim)
            .finish()
    }
}

impl VectorSegment {
    /// Open a sealed segment, validating geometry and directory metadata.
    /// No payload block is read here — hydration is lazy.
    pub fn open(path: &Path, cache: Arc<BlockCache>) -> Result<VectorSegment, SegmentError> {
        let segment = Segment::open(path)?;
        let mut h = segment.header_meta();
        let dim = codec::get_u32(&mut h)? as usize;
        let sig_bits = codec::get_u32(&mut h)? as usize;
        let block_rows = codec::get_u32(&mut h)? as usize;
        if dim == 0 || sig_bits == 0 || block_rows == 0 {
            return Err(SegmentError::Corrupt("bad vector-segment geometry".into()));
        }
        let words_per_sig = sig_bits.div_ceil(64);
        let mut blocks = Vec::with_capacity(segment.block_count());
        for b in 0..segment.block_count() {
            let mut m = segment.block_meta(b);
            let ids = codec::get_u32_vec(&mut m)?;
            let norms = codec::get_f32_vec(&mut m)?;
            let sig_words = codec::get_u64_vec(&mut m)?;
            let zone = ZoneMap::decode(&mut m)?;
            let rows = ids.len();
            if rows == 0 || rows > block_rows {
                return Err(SegmentError::Corrupt(format!("block {b} has {rows} rows")));
            }
            if norms.len() != rows
                || sig_words.len() != rows * words_per_sig
                || zone.centroid.len() != dim
                || segment.block_payload_len(b) != rows * dim * 4
            {
                return Err(SegmentError::Corrupt(format!("block {b} metadata is inconsistent")));
            }
            blocks.push(BlockMeta { ids, norms, sig_words, zone });
        }
        let cache_id = cache.register_segment();
        Ok(VectorSegment { cache_id, segment, dim, sig_bits, blocks, cache })
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Signature width the rows were signed with.
    pub fn sig_bits(&self) -> usize {
        self.sig_bits
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total rows across blocks.
    pub fn row_count(&self) -> usize {
        self.blocks.iter().map(|b| b.ids.len()).sum()
    }

    /// Directory metadata for one block.
    pub fn block_meta(&self, block: usize) -> &BlockMeta {
        &self.blocks[block]
    }

    /// Reconstruct the signature of one row from the resident words.
    pub fn signature_of(&self, block: usize, row: usize) -> Signature {
        let words_per_sig = self.sig_bits.div_ceil(64);
        let start = row * words_per_sig;
        Signature {
            words: self.blocks[block].sig_words[start..start + words_per_sig].to_vec(),
            bits: self.sig_bits,
        }
    }

    /// Fetch one block's vectors through the cache (row-major,
    /// `rows × dim`), verifying the payload checksum on a cold read.
    pub fn block(&self, block: usize) -> Result<Arc<Vec<f32>>, SegmentError> {
        let rows = self.blocks[block].ids.len();
        let dim = self.dim;
        self.cache.get_or_load((self.cache_id, block as u32), || {
            let bytes = self.segment.read_block(block)?;
            if bytes.len() != rows * dim * 4 {
                return Err(SegmentError::Corrupt(format!(
                    "block {block} payload is {} bytes, expected {}",
                    bytes.len(),
                    rows * dim * 4
                )));
            }
            let mut out = Vec::with_capacity(rows * dim);
            for chunk in bytes.chunks_exact(4) {
                out.push(f32::from_le_bytes(chunk.try_into().expect("4 bytes")));
            }
            Ok(out)
        })
    }

    /// Drop this segment's cache-resident blocks; returns how many were
    /// resident.
    pub fn evict_from_cache(&self) -> usize {
        self.cache.evict_segment(self.cache_id)
    }

    /// The shared cache this segment pages through.
    pub fn cache(&self) -> &Arc<BlockCache> {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simhash::SimHasher;
    use wg_util::kernel;
    use wg_util::rng::{Rng64, Xoshiro256pp};

    fn unit(dim: usize, rng: &mut Xoshiro256pp) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_gaussian() as f32).collect();
        let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        for x in &mut v {
            *x /= n;
        }
        v
    }

    fn rows_for(dim: usize, n: usize, seed: u64) -> Vec<SegmentRow> {
        let mut rng = Xoshiro256pp::new(seed);
        let hasher = SimHasher::new(dim, 64, 7);
        (0..n)
            .map(|i| {
                let vector = unit(dim, &mut rng);
                SegmentRow {
                    id: i as ItemId,
                    signature: hasher.sign(&vector),
                    norm: kernel::norm_sq(&vector).sqrt(),
                    vector,
                }
            })
            .collect()
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wg-paged-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join("vectors.seg")
    }

    #[test]
    fn zone_map_bound_dominates_every_exact_score() {
        let dim = 32;
        let mut rng = Xoshiro256pp::new(11);
        for trial in 0..20 {
            let rows: Vec<Vec<f32>> = (0..16).map(|_| unit(dim, &mut rng)).collect();
            let views: Vec<&[f32]> = rows.iter().map(|v| v.as_slice()).collect();
            let norms: Vec<f32> = views.iter().map(|v| kernel::norm_sq(v).sqrt()).collect();
            let zone = ZoneMap::build(dim, &views, &norms);
            for _ in 0..50 {
                let q = unit(dim, &mut rng);
                let qnorm = kernel::norm_sq(&q).sqrt();
                let ub = zone.cosine_upper_bound(&q, qnorm);
                for (v, &n) in views.iter().zip(&norms) {
                    let denom = qnorm * n;
                    let score = if denom <= f32::MIN_POSITIVE {
                        0.0
                    } else {
                        (kernel::dot(&q, v) / denom).clamp(-1.0, 1.0)
                    };
                    assert!(score as f64 <= ub, "trial {trial}: score {score} exceeds bound {ub}");
                }
            }
        }
    }

    #[test]
    fn seal_open_roundtrip_preserves_rows_and_stays_lazy() {
        let dim = 16;
        let rows = rows_for(dim, 37, 3);
        let path = temp_path("roundtrip");
        let blocks = write_vector_segment(&path, dim, 64, 8, rows.clone()).expect("seal");
        assert_eq!(blocks, 37usize.div_ceil(8));

        let cache = BlockCache::new(0);
        let seg = VectorSegment::open(&path, cache.clone()).expect("open");
        assert_eq!(seg.row_count(), 37);
        assert_eq!(seg.dim(), dim);
        // Lazy: opening reads directory metadata only.
        assert_eq!(cache.stats().resident_blocks, 0);

        let by_id: FxHashMap<ItemId, &SegmentRow> = rows.iter().map(|r| (r.id, r)).collect();
        for b in 0..seg.block_count() {
            let meta = seg.block_meta(b).clone();
            let data = seg.block(b).expect("read block");
            for (r, &id) in meta.ids.iter().enumerate() {
                let want = by_id[&id];
                assert_eq!(&data[r * dim..(r + 1) * dim], want.vector.as_slice());
                assert_eq!(meta.norms[r], want.norm);
                assert_eq!(seg.signature_of(b, r), want.signature);
            }
        }
        assert!(cache.stats().resident_blocks > 0);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn cache_budget_bounds_residency_and_counts() {
        let dim = 16;
        let rows = rows_for(dim, 64, 4);
        let path = temp_path("budget");
        write_vector_segment(&path, dim, 64, 8, rows).expect("seal");
        // Budget of exactly two 8×16 f32 blocks.
        let block_bytes = 8 * dim * 4;
        let cache = BlockCache::new(2 * block_bytes);
        let seg = VectorSegment::open(&path, cache.clone()).expect("open");
        assert_eq!(seg.block_count(), 8);
        for round in 0..3 {
            for b in 0..seg.block_count() {
                seg.block(b).expect("read");
                let stats = cache.stats();
                assert!(
                    stats.resident_bytes <= 2 * block_bytes,
                    "round {round}: resident {} exceeds budget",
                    stats.resident_bytes
                );
                assert!(stats.resident_blocks <= 2);
            }
        }
        let stats = cache.stats();
        // A 2-block LRU scanned cyclically over 8 blocks never hits.
        assert_eq!(stats.misses, 24);
        assert_eq!(stats.evictions, 22);
        assert_eq!(stats.peak_resident_bytes, 2 * block_bytes);

        // Re-reading the most recent block is a pure hit.
        seg.block(7).expect("read");
        assert_eq!(cache.stats().hits, 1);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn evict_segment_drops_only_that_segment() {
        let dim = 8;
        let path_a = temp_path("evict-a");
        let path_b = temp_path("evict-b");
        write_vector_segment(&path_a, dim, 64, 4, rows_for(dim, 8, 5)).expect("seal a");
        write_vector_segment(&path_b, dim, 64, 4, rows_for(dim, 8, 6)).expect("seal b");
        let cache = BlockCache::new(0);
        let a = VectorSegment::open(&path_a, cache.clone()).expect("open a");
        let b = VectorSegment::open(&path_b, cache.clone()).expect("open b");
        for s in [&a, &b] {
            for blk in 0..s.block_count() {
                s.block(blk).expect("read");
            }
        }
        assert_eq!(cache.stats().resident_blocks, 4);
        assert_eq!(a.evict_from_cache(), 2);
        let stats = cache.stats();
        assert_eq!(stats.resident_blocks, 2);
        // B's blocks still hit.
        b.block(0).expect("read");
        assert_eq!(cache.stats().hits, 1);
        std::fs::remove_dir_all(path_a.parent().unwrap()).ok();
        std::fs::remove_dir_all(path_b.parent().unwrap()).ok();
    }

    #[test]
    fn oversized_block_stays_until_next_admission() {
        let dim = 16;
        let path = temp_path("oversized");
        write_vector_segment(&path, dim, 64, 8, rows_for(dim, 16, 7)).expect("seal");
        let cache = BlockCache::new(1); // budget smaller than any block
        let seg = VectorSegment::open(&path, cache.clone()).expect("open");
        seg.block(0).expect("read");
        assert_eq!(cache.stats().resident_blocks, 1, "sole block is pinned");
        seg.block(1).expect("read");
        let stats = cache.stats();
        assert_eq!(stats.resident_blocks, 1, "admission displaced the previous block");
        assert_eq!(stats.evictions, 1);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn open_rejects_mismatched_geometry_blobs() {
        let path = temp_path("badgeom");
        let mut header = Vec::new();
        codec::put_u32(&mut header, 0); // dim 0
        codec::put_u32(&mut header, 64);
        codec::put_u32(&mut header, 8);
        let builder = SegmentBuilder::new(&header);
        atomic_write_bytes(&path, &builder.finish()).expect("write");
        assert!(VectorSegment::open(&path, BlockCache::new(0)).is_err());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
