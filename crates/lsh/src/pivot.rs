//! Pivot-based block-and-verify search (paper §5.2.3, after Dong et al.,
//! ICDE'21).
//!
//! An *exact* top-k index that avoids most distance computations without
//! LSH's recall loss. A handful of pivot vectors are chosen; every stored
//! vector keeps its distance to each pivot. At query time the triangle
//! inequality gives a lower bound on the query–candidate distance from
//! pivot distances alone:
//!
//! ```text
//! d(q, x) ≥ max_p |d(q, p) − d(x, p)|
//! ```
//!
//! Candidates whose bound already exceeds the current k-th best distance
//! are *blocked*; only survivors are *verified* with a full distance
//! computation. For unit vectors, cosine order is Euclidean order
//! (`‖a−b‖² = 2 − 2·cos`), so results match [`crate::ExactIndex`] exactly.

use wg_util::rng::Rng64;
use wg_util::{SplitMix64, TopK};

use crate::ItemId;

/// Exact top-k cosine index with pivot-based pruning.
pub struct PivotIndex {
    dim: usize,
    num_pivots: usize,
    /// Pivot vectors, row-major (`num_pivots × dim`), unit length.
    pivots: Vec<f32>,
    ids: Vec<ItemId>,
    /// Stored unit vectors, row-major.
    data: Vec<f32>,
    /// Euclidean distance of each stored vector to each pivot
    /// (`ids.len() × num_pivots`).
    pivot_dists: Vec<f32>,
    /// Verification counter for the last search (diagnostics).
    last_verified: std::cell::Cell<usize>,
}

impl PivotIndex {
    /// Create an index with `num_pivots` random unit pivots derived from
    /// `seed`. 4–16 pivots is the useful range; more pivots tighten bounds
    /// but cost `O(num_pivots)` per candidate.
    pub fn new(dim: usize, num_pivots: usize, seed: u64) -> Self {
        assert!(dim > 0 && num_pivots > 0);
        let mut pivots = Vec::with_capacity(num_pivots * dim);
        for p in 0..num_pivots {
            let mut rng = SplitMix64::new(wg_util::hash::combine64(seed, p as u64));
            let start = pivots.len();
            for _ in 0..dim {
                pivots.push(rng.gen_gaussian() as f32);
            }
            let norm = pivots[start..].iter().map(|x| x * x).sum::<f32>().sqrt();
            for x in &mut pivots[start..] {
                *x /= norm;
            }
        }
        Self {
            dim,
            num_pivots,
            pivots,
            ids: Vec::new(),
            data: Vec::new(),
            pivot_dists: Vec::new(),
            last_verified: std::cell::Cell::new(0),
        }
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// How many candidates the last [`Self::search`] fully verified —
    /// the block-and-verify effectiveness measure.
    pub fn last_verified(&self) -> usize {
        self.last_verified.get()
    }

    fn normalize(v: &[f32]) -> Option<Vec<f32>> {
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm <= f32::MIN_POSITIVE {
            return None;
        }
        Some(v.iter().map(|x| x / norm).collect())
    }

    fn euclidean(a: &[f32], b: &[f32]) -> f32 {
        let mut s = 0.0f32;
        for (x, y) in a.iter().zip(b) {
            let d = x - y;
            s += d * d;
        }
        s.sqrt()
    }

    /// Insert a vector (normalized internally). Returns false for zero or
    /// mismatched input. Duplicate ids are replaced.
    pub fn insert(&mut self, id: ItemId, vector: &[f32]) -> bool {
        if vector.len() != self.dim {
            return false;
        }
        let Some(unit) = Self::normalize(vector) else {
            return false;
        };
        self.remove(id);
        for p in 0..self.num_pivots {
            let pivot = &self.pivots[p * self.dim..(p + 1) * self.dim];
            self.pivot_dists.push(Self::euclidean(&unit, pivot));
        }
        self.ids.push(id);
        self.data.extend_from_slice(&unit);
        true
    }

    /// Remove by id; true if present.
    pub fn remove(&mut self, id: ItemId) -> bool {
        let Some(pos) = self.ids.iter().position(|&x| x == id) else {
            return false;
        };
        let last = self.ids.len() - 1;
        self.ids.swap_remove(pos);
        if pos != last {
            // Move last vector + its pivot distances into the hole.
            let (head, tail) = self.data.split_at_mut(last * self.dim);
            head[pos * self.dim..(pos + 1) * self.dim].copy_from_slice(&tail[..self.dim]);
            let (phead, ptail) = self.pivot_dists.split_at_mut(last * self.num_pivots);
            phead[pos * self.num_pivots..(pos + 1) * self.num_pivots]
                .copy_from_slice(&ptail[..self.num_pivots]);
        }
        self.data.truncate(last * self.dim);
        self.pivot_dists.truncate(last * self.num_pivots);
        true
    }

    /// Exact top-k by cosine, with triangle-inequality blocking.
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        exclude: impl Fn(ItemId) -> bool,
    ) -> Vec<(ItemId, f32)> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let Some(q) = Self::normalize(query) else {
            self.last_verified.set(0);
            return Vec::new();
        };
        // Query-to-pivot distances, once.
        let q_pivot: Vec<f32> = (0..self.num_pivots)
            .map(|p| Self::euclidean(&q, &self.pivots[p * self.dim..(p + 1) * self.dim]))
            .collect();

        // Work in squared-distance-free cosine space at the heap, but block
        // in distance space: keep the k-th best distance upper bound.
        let mut topk: TopK<ItemId> = TopK::new(k);
        let mut verified = 0usize;
        for (i, &id) in self.ids.iter().enumerate() {
            if exclude(id) {
                continue;
            }
            // Lower bound on d(q, x) from pivots.
            let pd = &self.pivot_dists[i * self.num_pivots..(i + 1) * self.num_pivots];
            let mut bound = 0.0f32;
            for (qp, xp) in q_pivot.iter().zip(pd) {
                bound = bound.max((qp - xp).abs());
            }
            // Current k-th best cosine -> distance threshold.
            if let Some(worst_cos) = topk.threshold() {
                let worst_dist = (2.0 - 2.0 * worst_cos as f32).max(0.0).sqrt();
                if bound >= worst_dist {
                    continue; // blocked: cannot beat the current top-k
                }
            }
            verified += 1;
            let v = &self.data[i * self.dim..(i + 1) * self.dim];
            let mut dot = 0.0f32;
            for (x, y) in q.iter().zip(v) {
                dot += x * y;
            }
            topk.push(dot.clamp(-1.0, 1.0) as f64, id);
        }
        self.last_verified.set(verified);
        topk.into_sorted().into_iter().map(|(s, id)| (id, s as f32)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactIndex;
    use wg_util::rng::Xoshiro256pp;

    fn random_unit(dim: usize, rng: &mut Xoshiro256pp) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_gaussian() as f32).collect();
        let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter_mut().for_each(|x| *x /= n);
        v
    }

    #[test]
    fn matches_exact_index_results() {
        let mut rng = Xoshiro256pp::new(42);
        let dim = 64;
        let mut pivot = PivotIndex::new(dim, 8, 7);
        let mut exact = ExactIndex::new(dim);
        for id in 0..300u32 {
            let v = random_unit(dim, &mut rng);
            pivot.insert(id, &v);
            exact.insert(id, &v);
        }
        for _ in 0..20 {
            let q = random_unit(dim, &mut rng);
            let a: Vec<u32> = pivot.search(&q, 5, |_| false).into_iter().map(|(i, _)| i).collect();
            let b: Vec<u32> = exact.search(&q, 5, |_| false).into_iter().map(|(i, _)| i).collect();
            assert_eq!(a, b, "pivot pruning changed exact results");
        }
    }

    #[test]
    fn blocking_skips_work_on_clustered_data() {
        // Clustered vectors: most candidates are far from the query's
        // cluster, so the pivot bound blocks them.
        let mut rng = Xoshiro256pp::new(3);
        let dim = 64;
        let mut index = PivotIndex::new(dim, 16, 7);
        let center_a = random_unit(dim, &mut rng);
        let center_b: Vec<f32> = center_a.iter().map(|x| -x).collect();
        for id in 0..400u32 {
            let center = if id % 2 == 0 { &center_a } else { &center_b };
            // Tight clusters: the k-th-best distance shrinks quickly, so
            // the triangle bound can prune the far cluster.
            let mut v: Vec<f32> =
                center.iter().map(|x| x + 0.02 * rng.gen_gaussian() as f32).collect();
            let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            v.iter_mut().for_each(|x| *x /= n);
            index.insert(id, &v);
        }
        let hits = index.search(&center_a, 5, |_| false);
        assert_eq!(hits.len(), 5);
        assert!(hits.iter().all(|(id, _)| id % 2 == 0), "wrong cluster: {hits:?}");
        assert!(
            index.last_verified() < 300,
            "blocking ineffective: verified {}/400",
            index.last_verified()
        );
    }

    #[test]
    fn insert_remove_replace() {
        let mut index = PivotIndex::new(8, 4, 1);
        assert!(index.insert(1, &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]));
        assert!(index.insert(1, &[0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]));
        assert_eq!(index.len(), 1);
        assert!(!index.insert(2, &[0.0; 8]));
        assert!(!index.insert(2, &[1.0; 4]));
        assert!(index.remove(1));
        assert!(!index.remove(1));
        assert!(index.is_empty());
    }

    #[test]
    fn remove_keeps_pivot_distances_aligned() {
        let mut rng = Xoshiro256pp::new(5);
        let dim = 16;
        let mut index = PivotIndex::new(dim, 4, 9);
        let vectors: Vec<Vec<f32>> = (0..10).map(|_| random_unit(dim, &mut rng)).collect();
        for (id, v) in vectors.iter().enumerate() {
            index.insert(id as u32, v);
        }
        index.remove(0);
        // Every remaining vector must still be its own nearest neighbour.
        for (id, v) in vectors.iter().enumerate().skip(1) {
            let hits = index.search(v, 1, |_| false);
            assert_eq!(hits[0].0, id as u32, "alignment broken after remove");
            assert!(hits[0].1 > 0.999);
        }
    }

    #[test]
    fn zero_query_returns_nothing() {
        let mut index = PivotIndex::new(4, 2, 1);
        index.insert(1, &[1.0, 0.0, 0.0, 0.0]);
        assert!(index.search(&[0.0; 4], 3, |_| false).is_empty());
    }
}
