//! Brute-force cosine index.
//!
//! Same interface as the LSH index but scans every stored vector. Serves as
//! (a) the ANN-quality reference in ablations, and (b) the sensible choice
//! for tiny corpora where bucket bookkeeping costs more than it saves.

use wg_util::TopK;

use crate::ItemId;

/// A flat store of vectors searched by exhaustive cosine scan.
#[derive(Debug, Default, Clone)]
pub struct ExactIndex {
    dim: usize,
    ids: Vec<ItemId>,
    /// Vectors stored contiguously (`ids.len() × dim`) for scan locality.
    data: Vec<f32>,
    /// Pre-computed norms, one per vector.
    norms: Vec<f32>,
}

impl ExactIndex {
    /// Create an empty index for `dim`-dimensional vectors.
    pub fn new(dim: usize) -> Self {
        Self { dim, ids: Vec::new(), data: Vec::new(), norms: Vec::new() }
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Insert a vector (replaces an existing id). Returns false for zero or
    /// mismatched vectors.
    pub fn insert(&mut self, id: ItemId, vector: &[f32]) -> bool {
        if vector.len() != self.dim || vector.iter().all(|&x| x == 0.0) {
            return false;
        }
        self.remove(id);
        self.ids.push(id);
        self.data.extend_from_slice(vector);
        self.norms.push(vector.iter().map(|x| x * x).sum::<f32>().sqrt());
        true
    }

    /// Remove by id (swap-remove; order is not meaningful here).
    pub fn remove(&mut self, id: ItemId) -> bool {
        let Some(pos) = self.ids.iter().position(|&x| x == id) else {
            return false;
        };
        let last = self.ids.len() - 1;
        self.ids.swap_remove(pos);
        self.norms.swap_remove(pos);
        if pos != last {
            // Move the last vector's data into the vacated slot.
            let (head, tail) = self.data.split_at_mut(last * self.dim);
            head[pos * self.dim..(pos + 1) * self.dim].copy_from_slice(&tail[..self.dim]);
        }
        self.data.truncate(last * self.dim);
        true
    }

    /// Exhaustive top-k cosine search.
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        exclude: impl Fn(ItemId) -> bool,
    ) -> Vec<(ItemId, f32)> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let qnorm = query.iter().map(|x| x * x).sum::<f32>().sqrt();
        if qnorm <= f32::MIN_POSITIVE {
            return Vec::new();
        }
        let mut topk = TopK::new(k);
        for (i, &id) in self.ids.iter().enumerate() {
            if exclude(id) {
                continue;
            }
            let v = &self.data[i * self.dim..(i + 1) * self.dim];
            let mut dot = 0.0f32;
            for (x, y) in query.iter().zip(v) {
                dot += x * y;
            }
            let cos = (dot / (qnorm * self.norms[i])).clamp(-1.0, 1.0);
            topk.push(cos as f64, id);
        }
        topk.into_sorted().into_iter().map(|(s, id)| (id, s as f32)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_top1_is_exact() {
        let mut idx = ExactIndex::new(2);
        idx.insert(1, &[1.0, 0.0]);
        idx.insert(2, &[0.7, 0.7]);
        idx.insert(3, &[0.0, 1.0]);
        let hits = idx.search(&[1.0, 0.1], 2, |_| false);
        assert_eq!(hits[0].0, 1);
        assert_eq!(hits[1].0, 2);
    }

    #[test]
    fn insert_replace_remove() {
        let mut idx = ExactIndex::new(2);
        idx.insert(1, &[1.0, 0.0]);
        idx.insert(1, &[0.0, 1.0]);
        assert_eq!(idx.len(), 1);
        let hits = idx.search(&[0.0, 1.0], 1, |_| false);
        assert!(hits[0].1 > 0.999);
        assert!(idx.remove(1));
        assert!(idx.is_empty());
    }

    #[test]
    fn swap_remove_keeps_other_vectors_intact() {
        let mut idx = ExactIndex::new(2);
        idx.insert(1, &[1.0, 0.0]);
        idx.insert(2, &[0.0, 1.0]);
        idx.insert(3, &[-1.0, 0.0]);
        idx.remove(1);
        let hits = idx.search(&[0.0, 1.0], 1, |_| false);
        assert_eq!(hits[0].0, 2);
        let hits = idx.search(&[-1.0, 0.0], 1, |_| false);
        assert_eq!(hits[0].0, 3);
    }

    #[test]
    fn zero_query_returns_nothing() {
        let mut idx = ExactIndex::new(2);
        idx.insert(1, &[1.0, 0.0]);
        assert!(idx.search(&[0.0, 0.0], 3, |_| false).is_empty());
    }

    #[test]
    fn rejects_bad_inserts() {
        let mut idx = ExactIndex::new(3);
        assert!(!idx.insert(0, &[0.0; 3]));
        assert!(!idx.insert(0, &[1.0; 2]));
    }

    #[test]
    fn exclusion() {
        let mut idx = ExactIndex::new(2);
        idx.insert(1, &[1.0, 0.0]);
        idx.insert(2, &[0.9, 0.1]);
        let hits = idx.search(&[1.0, 0.0], 2, |id| id == 1);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 2);
    }
}
