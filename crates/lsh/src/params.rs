//! Banding parameter selection.
//!
//! A banded LSH index with `b` bands of `r` rows admits a pair as candidate
//! with probability `1 − (1 − p^r)^b`, where `p` is the per-bit collision
//! probability. For SimHash, `p = 1 − acos(s)/π` at cosine similarity `s`.
//! The S-curve's midpoint (`P = 0.5`) sits at `p* = (1 − 2^{-1/b})^{1/r}`;
//! [`LshParams::for_threshold`] picks the `(b, r)` whose midpoint similarity
//! is closest to the requested threshold within a bit budget — this is how
//! the paper's "similarity threshold of the SimHash LSH index = 0.7"
//! becomes concrete index geometry.

/// Banding geometry of an LSH index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LshParams {
    /// Number of bands.
    pub bands: usize,
    /// Rows (bits) per band; limited to 64 so a band packs into a `u64`.
    pub rows: usize,
}

impl LshParams {
    /// Total signature bits consumed.
    pub fn bits(&self) -> usize {
        self.bands * self.rows
    }

    /// Candidate probability at cosine similarity `s` (SimHash bit model).
    pub fn candidate_probability(&self, s: f64) -> f64 {
        let p = bit_collision_probability(s);
        1.0 - (1.0 - p.powi(self.rows as i32)).powi(self.bands as i32)
    }

    /// The similarity at which the S-curve crosses `P = 0.5`.
    pub fn midpoint_similarity(&self) -> f64 {
        let p_star = (1.0 - 0.5f64.powf(1.0 / self.bands as f64)).powf(1.0 / self.rows as f64);
        similarity_of_bit_probability(p_star)
    }

    /// Choose `(bands, rows)` for a target cosine `threshold` within a
    /// signature budget of `max_bits` (the chosen geometry may use fewer
    /// bits). Among geometries with midpoints within 0.02 of the best, the
    /// one using the most bits wins — more bits means a sharper S-curve.
    pub fn for_threshold(threshold: f64, max_bits: usize) -> LshParams {
        assert!((0.0..1.0).contains(&threshold), "threshold must be in [0,1)");
        assert!(max_bits >= 4);
        let mut best = LshParams { bands: 1, rows: 1 };
        let mut best_err = f64::INFINITY;
        for rows in 1..=64usize {
            for bands in 1..=max_bits {
                if bands * rows > max_bits {
                    break;
                }
                let cand = LshParams { bands, rows };
                let err = (cand.midpoint_similarity() - threshold).abs();
                let better =
                    err + 1e-9 < best_err || (err < best_err + 0.02 && cand.bits() > best.bits());
                if better {
                    // Only accept "more bits at similar error" if error does
                    // not regress past the tolerance band.
                    if err <= best_err + 0.02 {
                        best = cand;
                        best_err = best_err.min(err);
                    }
                }
            }
        }
        best
    }
}

impl Default for LshParams {
    /// Default: tuned for the paper's 0.7 threshold at 128 bits.
    fn default() -> Self {
        LshParams::for_threshold(0.7, 128)
    }
}

/// `P[one SimHash bit agrees]` at cosine similarity `s`.
pub fn bit_collision_probability(s: f64) -> f64 {
    1.0 - s.clamp(-1.0, 1.0).acos() / std::f64::consts::PI
}

/// Inverse of [`bit_collision_probability`].
pub fn similarity_of_bit_probability(p: f64) -> f64 {
    (std::f64::consts::PI * (1.0 - p.clamp(0.0, 1.0))).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_probability_endpoints() {
        assert!((bit_collision_probability(1.0) - 1.0).abs() < 1e-12);
        assert!((bit_collision_probability(-1.0)).abs() < 1e-12);
        assert!((bit_collision_probability(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probability_inverse_roundtrip() {
        for s in [-0.9, -0.3, 0.0, 0.4, 0.7, 0.95] {
            let p = bit_collision_probability(s);
            assert!((similarity_of_bit_probability(p) - s).abs() < 1e-9);
        }
    }

    #[test]
    fn candidate_probability_is_monotone_in_similarity() {
        let params = LshParams { bands: 16, rows: 8 };
        let mut last = -1.0;
        for i in 0..=20 {
            let s = -1.0 + 2.0 * i as f64 / 20.0;
            let p = params.candidate_probability(s);
            assert!(p >= last - 1e-12, "not monotone at s={s}");
            last = p;
        }
    }

    #[test]
    fn midpoint_is_where_probability_crosses_half() {
        let params = LshParams { bands: 16, rows: 8 };
        let mid = params.midpoint_similarity();
        assert!((params.candidate_probability(mid) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn more_rows_raises_midpoint() {
        let low = LshParams { bands: 16, rows: 4 }.midpoint_similarity();
        let high = LshParams { bands: 16, rows: 16 }.midpoint_similarity();
        assert!(high > low);
    }

    #[test]
    fn for_threshold_hits_target() {
        for (threshold, tol) in [(0.5, 0.08), (0.7, 0.05), (0.9, 0.05)] {
            let params = LshParams::for_threshold(threshold, 128);
            let mid = params.midpoint_similarity();
            assert!(
                (mid - threshold).abs() < tol,
                "threshold {threshold}: got midpoint {mid:.3} with {params:?}"
            );
            assert!(params.bits() <= 128);
        }
    }

    #[test]
    fn for_threshold_prefers_more_bits() {
        let params = LshParams::for_threshold(0.7, 128);
        // Should use a decent share of the budget for a sharp curve.
        assert!(params.bits() >= 64, "only {} bits used: {params:?}", params.bits());
    }

    #[test]
    fn default_matches_paper_setting() {
        let p = LshParams::default();
        assert!((p.midpoint_similarity() - 0.7).abs() < 0.05);
    }
}
