//! SimHash: random-hyperplane signatures for cosine similarity.
//!
//! Charikar's construction: draw `K` random hyperplanes (Gaussian normal
//! vectors); bit `i` of a vector's signature is the sign of its projection
//! onto hyperplane `i`. For two vectors at angle `θ`,
//! `P[bit agrees] = 1 − θ/π`, so the Hamming distance of two signatures is
//! an unbiased estimator of their angle.

use wg_util::hash::combine64;
use wg_util::kernel::{self, scratch};
use wg_util::rng::Rng64;
use wg_util::SplitMix64;

/// A `K`-bit signature packed into `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Packed bits, little-endian within words.
    pub words: Vec<u64>,
    /// Number of meaningful bits.
    pub bits: usize,
}

impl Signature {
    /// Bit `i` of the signature.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < self.bits);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Hamming distance to another signature of the same width.
    pub fn hamming(&self, other: &Signature) -> u32 {
        debug_assert_eq!(self.bits, other.bits);
        self.words.iter().zip(&other.words).map(|(a, b)| (a ^ b).count_ones()).sum()
    }

    /// Cosine similarity estimated from the Hamming distance:
    /// `cos(π · ham / bits)`.
    pub fn cosine_estimate(&self, other: &Signature) -> f64 {
        let ham = self.hamming(other) as f64;
        (std::f64::consts::PI * ham / self.bits as f64).cos()
    }

    /// The `rows` bits of band `band` packed into a `u64` key (rows ≤ 64).
    /// Used by the banded index to key buckets.
    pub fn band_key(&self, band: usize, rows: usize) -> u64 {
        let start = band * rows;
        let mut key = 0u64;
        for (j, i) in (start..start + rows).enumerate() {
            if self.bit(i) {
                key |= 1 << j;
            }
        }
        key
    }
}

/// Generates signatures with a fixed set of seeded hyperplanes.
#[derive(Debug, Clone)]
pub struct SimHasher {
    dim: usize,
    bits: usize,
    /// Hyperplanes stored **transposed** as one contiguous `dim × bits`
    /// row-major matrix: `planes_t[d * bits + b]` is component `d` of
    /// hyperplane `b`. This layout lets [`Self::sign`] compute all `bits`
    /// projections in a single blocked GEMV pass over the query (one pass
    /// over the data instead of one per plane).
    planes_t: Vec<f32>,
    seed: u64,
}

impl SimHasher {
    /// Create a hasher for `dim`-dimensional vectors with `bits` planes.
    /// Plane entries are streamed per-plane from seeded generators (the
    /// same streams as always), then stored transposed — the geometry a
    /// given seed produces is unchanged.
    pub fn new(dim: usize, bits: usize, seed: u64) -> Self {
        assert!(dim > 0 && bits > 0);
        let mut planes_t = vec![0.0f32; bits * dim];
        for b in 0..bits {
            let mut rng = SplitMix64::new(combine64(seed, b as u64));
            for d in 0..dim {
                planes_t[d * bits + b] = rng.gen_gaussian() as f32;
            }
        }
        Self { dim, bits, planes_t, seed }
    }

    /// Vector dimension this hasher expects.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Signature width in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The seed used to derive hyperplanes (persisted so a reloaded index
    /// reproduces identical signatures).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sign the vector. Panics on dimension mismatch.
    ///
    /// All `bits` projections come from one blocked [`kernel::gemv`] pass
    /// over the transposed plane matrix. Inserts and queries sign through
    /// this same kernel, so signatures are self-consistent; against the
    /// scalar reference ([`Self::project_scalar`]) the projections agree
    /// within float-reassociation tolerance, which can flip a bit only
    /// when a projection sits within that tolerance of zero (measure-zero
    /// for real embeddings — see DESIGN.md §8).
    pub fn sign(&self, v: &[f32]) -> Signature {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        let mut proj = scratch::take_f32(self.bits);
        kernel::gemv(v, &self.planes_t, self.bits, &mut proj);
        let mut words = vec![0u64; self.bits.div_ceil(64)];
        for (b, &d) in proj.iter().enumerate() {
            if d >= 0.0 {
                words[b / 64] |= 1 << (b % 64);
            }
        }
        scratch::put_f32(proj);
        Signature { words, bits: self.bits }
    }

    /// All `bits` hyperplane projections of `v` via the blocked kernel
    /// (the pre-sign values [`Self::sign`] thresholds).
    pub fn project(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        let mut proj = vec![0.0f32; self.bits];
        kernel::gemv(v, &self.planes_t, self.bits, &mut proj);
        proj
    }

    /// Scalar reference projections: one strict left-to-right pass per
    /// plane, the exact summation order of the pre-kernel implementation.
    /// Kept public for the parity property tests and perf baselines.
    pub fn project_scalar(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        let mut proj = vec![0.0f32; self.bits];
        kernel::reference::gemv(v, &self.planes_t, self.bits, &mut proj);
        proj
    }

    /// [`Self::sign`] computed from the scalar reference projections.
    pub fn sign_scalar(&self, v: &[f32]) -> Signature {
        let proj = self.project_scalar(v);
        let mut words = vec![0u64; self.bits.div_ceil(64)];
        for (b, &d) in proj.iter().enumerate() {
            if d >= 0.0 {
                words[b / 64] |= 1 << (b % 64);
            }
        }
        Signature { words, bits: self.bits }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_util::rng::{Rng64, Xoshiro256pp};

    fn random_unit(dim: usize, rng: &mut Xoshiro256pp) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_gaussian() as f32).collect();
        let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        for x in &mut v {
            *x /= n;
        }
        v
    }

    fn cosine(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x * y) as f64).sum()
    }

    #[test]
    fn identical_vectors_identical_signatures() {
        let h = SimHasher::new(32, 128, 7);
        let mut rng = Xoshiro256pp::new(1);
        let v = random_unit(32, &mut rng);
        let a = h.sign(&v);
        let b = h.sign(&v);
        assert_eq!(a, b);
        assert_eq!(a.hamming(&b), 0);
        assert!((a.cosine_estimate(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn opposite_vectors_flip_all_bits() {
        let h = SimHasher::new(16, 64, 7);
        let mut rng = Xoshiro256pp::new(2);
        let v = random_unit(16, &mut rng);
        let neg: Vec<f32> = v.iter().map(|x| -x).collect();
        let a = h.sign(&v);
        let b = h.sign(&neg);
        // Sign boundary (dot == 0) is measure-zero for random vectors.
        assert_eq!(a.hamming(&b), 64);
        assert!(a.cosine_estimate(&b) < -0.999);
    }

    #[test]
    fn estimate_tracks_true_cosine() {
        let h = SimHasher::new(64, 512, 42);
        let mut rng = Xoshiro256pp::new(3);
        for _ in 0..20 {
            let a = random_unit(64, &mut rng);
            // Interpolate to get a related vector with known-ish similarity.
            let b0 = random_unit(64, &mut rng);
            let alpha = rng.gen_f64() as f32;
            let mut b: Vec<f32> =
                a.iter().zip(&b0).map(|(x, y)| alpha * x + (1.0 - alpha) * y).collect();
            let n = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            for x in &mut b {
                *x /= n;
            }
            let truth = cosine(&a, &b);
            let est = h.sign(&a).cosine_estimate(&h.sign(&b));
            assert!((truth - est).abs() < 0.15, "estimate {est:.3} too far from truth {truth:.3}");
        }
    }

    #[test]
    fn band_key_extracts_bits() {
        let sig = Signature { words: vec![0b1011_0110], bits: 8 };
        // band 0, rows 4 -> bits 0..4 = 0110 -> key 0b0110
        assert_eq!(sig.band_key(0, 4), 0b0110);
        // band 1, rows 4 -> bits 4..8 = 1011 -> key 0b1011
        assert_eq!(sig.band_key(1, 4), 0b1011);
    }

    #[test]
    fn signatures_differ_across_seeds() {
        let mut rng = Xoshiro256pp::new(5);
        let v = random_unit(32, &mut rng);
        let a = SimHasher::new(32, 64, 1).sign(&v);
        let b = SimHasher::new(32, 64, 2).sign(&v);
        assert_ne!(a, b);
    }

    #[test]
    fn bit_accessor_matches_words() {
        let sig = Signature { words: vec![0b101], bits: 3 };
        assert!(sig.bit(0));
        assert!(!sig.bit(1));
        assert!(sig.bit(2));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        SimHasher::new(8, 16, 0).sign(&[0.0; 4]);
    }

    #[test]
    fn kernel_projections_track_scalar_reference() {
        let h = SimHasher::new(96, 128, 77);
        let mut rng = Xoshiro256pp::new(11);
        for _ in 0..10 {
            let v = random_unit(96, &mut rng);
            let fast = h.project(&v);
            let slow = h.project_scalar(&v);
            let (sig, sig_ref) = (h.sign(&v), h.sign_scalar(&v));
            for (b, (f, s)) in fast.iter().zip(&slow).enumerate() {
                let tol = 1e-4 * (1.0 + s.abs());
                assert!((f - s).abs() <= tol, "bit {b}: {f} vs {s}");
                // Away from the sign boundary the bits must agree exactly.
                if s.abs() > tol {
                    assert_eq!(sig.bit(b), sig_ref.bit(b), "bit {b} flipped at {s}");
                }
            }
        }
    }
}
