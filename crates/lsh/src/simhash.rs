//! SimHash: random-hyperplane signatures for cosine similarity.
//!
//! Charikar's construction: draw `K` random hyperplanes (Gaussian normal
//! vectors); bit `i` of a vector's signature is the sign of its projection
//! onto hyperplane `i`. For two vectors at angle `θ`,
//! `P[bit agrees] = 1 − θ/π`, so the Hamming distance of two signatures is
//! an unbiased estimator of their angle.

use wg_util::hash::combine64;
use wg_util::rng::Rng64;
use wg_util::SplitMix64;

/// A `K`-bit signature packed into `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Packed bits, little-endian within words.
    pub words: Vec<u64>,
    /// Number of meaningful bits.
    pub bits: usize,
}

impl Signature {
    /// Bit `i` of the signature.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < self.bits);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Hamming distance to another signature of the same width.
    pub fn hamming(&self, other: &Signature) -> u32 {
        debug_assert_eq!(self.bits, other.bits);
        self.words.iter().zip(&other.words).map(|(a, b)| (a ^ b).count_ones()).sum()
    }

    /// Cosine similarity estimated from the Hamming distance:
    /// `cos(π · ham / bits)`.
    pub fn cosine_estimate(&self, other: &Signature) -> f64 {
        let ham = self.hamming(other) as f64;
        (std::f64::consts::PI * ham / self.bits as f64).cos()
    }

    /// The `rows` bits of band `band` packed into a `u64` key (rows ≤ 64).
    /// Used by the banded index to key buckets.
    pub fn band_key(&self, band: usize, rows: usize) -> u64 {
        let start = band * rows;
        let mut key = 0u64;
        for (j, i) in (start..start + rows).enumerate() {
            if self.bit(i) {
                key |= 1 << j;
            }
        }
        key
    }
}

/// Generates signatures with a fixed set of seeded hyperplanes.
#[derive(Debug, Clone)]
pub struct SimHasher {
    dim: usize,
    bits: usize,
    /// Hyperplanes stored row-major: `bits × dim`.
    planes: Vec<f32>,
    seed: u64,
}

impl SimHasher {
    /// Create a hasher for `dim`-dimensional vectors with `bits` planes.
    pub fn new(dim: usize, bits: usize, seed: u64) -> Self {
        assert!(dim > 0 && bits > 0);
        let mut planes = Vec::with_capacity(bits * dim);
        for b in 0..bits {
            let mut rng = SplitMix64::new(combine64(seed, b as u64));
            for _ in 0..dim {
                planes.push(rng.gen_gaussian() as f32);
            }
        }
        Self { dim, bits, planes, seed }
    }

    /// Vector dimension this hasher expects.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Signature width in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The seed used to derive hyperplanes (persisted so a reloaded index
    /// reproduces identical signatures).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sign the vector. Panics on dimension mismatch.
    pub fn sign(&self, v: &[f32]) -> Signature {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        let mut words = vec![0u64; self.bits.div_ceil(64)];
        for b in 0..self.bits {
            let plane = &self.planes[b * self.dim..(b + 1) * self.dim];
            let mut dot = 0.0f32;
            for (x, p) in v.iter().zip(plane) {
                dot += x * p;
            }
            if dot >= 0.0 {
                words[b / 64] |= 1 << (b % 64);
            }
        }
        Signature { words, bits: self.bits }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_util::rng::{Rng64, Xoshiro256pp};

    fn random_unit(dim: usize, rng: &mut Xoshiro256pp) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_gaussian() as f32).collect();
        let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        for x in &mut v {
            *x /= n;
        }
        v
    }

    fn cosine(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x * y) as f64).sum()
    }

    #[test]
    fn identical_vectors_identical_signatures() {
        let h = SimHasher::new(32, 128, 7);
        let mut rng = Xoshiro256pp::new(1);
        let v = random_unit(32, &mut rng);
        let a = h.sign(&v);
        let b = h.sign(&v);
        assert_eq!(a, b);
        assert_eq!(a.hamming(&b), 0);
        assert!((a.cosine_estimate(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn opposite_vectors_flip_all_bits() {
        let h = SimHasher::new(16, 64, 7);
        let mut rng = Xoshiro256pp::new(2);
        let v = random_unit(16, &mut rng);
        let neg: Vec<f32> = v.iter().map(|x| -x).collect();
        let a = h.sign(&v);
        let b = h.sign(&neg);
        // Sign boundary (dot == 0) is measure-zero for random vectors.
        assert_eq!(a.hamming(&b), 64);
        assert!(a.cosine_estimate(&b) < -0.999);
    }

    #[test]
    fn estimate_tracks_true_cosine() {
        let h = SimHasher::new(64, 512, 42);
        let mut rng = Xoshiro256pp::new(3);
        for _ in 0..20 {
            let a = random_unit(64, &mut rng);
            // Interpolate to get a related vector with known-ish similarity.
            let b0 = random_unit(64, &mut rng);
            let alpha = rng.gen_f64() as f32;
            let mut b: Vec<f32> =
                a.iter().zip(&b0).map(|(x, y)| alpha * x + (1.0 - alpha) * y).collect();
            let n = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            for x in &mut b {
                *x /= n;
            }
            let truth = cosine(&a, &b);
            let est = h.sign(&a).cosine_estimate(&h.sign(&b));
            assert!((truth - est).abs() < 0.15, "estimate {est:.3} too far from truth {truth:.3}");
        }
    }

    #[test]
    fn band_key_extracts_bits() {
        let sig = Signature { words: vec![0b1011_0110], bits: 8 };
        // band 0, rows 4 -> bits 0..4 = 0110 -> key 0b0110
        assert_eq!(sig.band_key(0, 4), 0b0110);
        // band 1, rows 4 -> bits 4..8 = 1011 -> key 0b1011
        assert_eq!(sig.band_key(1, 4), 0b1011);
    }

    #[test]
    fn signatures_differ_across_seeds() {
        let mut rng = Xoshiro256pp::new(5);
        let v = random_unit(32, &mut rng);
        let a = SimHasher::new(32, 64, 1).sign(&v);
        let b = SimHasher::new(32, 64, 2).sign(&v);
        assert_ne!(a, b);
    }

    #[test]
    fn bit_accessor_matches_words() {
        let sig = Signature { words: vec![0b101], bits: 3 };
        assert!(sig.bit(0));
        assert!(!sig.bit(1));
        assert!(sig.bit(2));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        SimHasher::new(8, 16, 0).sign(&[0.0; 4]);
    }
}
