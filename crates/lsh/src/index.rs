//! The banded SimHash LSH index.
//!
//! Pipeline per query (paper Fig. 2): sign the query embedding, collect the
//! union of its band buckets (the "sub-universe" of §3.1.2), then re-rank
//! candidates by **exact cosine** against the stored vectors and keep the
//! top-k. Insertion and removal are incremental, which is what lets
//! WarpGate track CDWs with high update rates without rebuild storms.

use wg_util::codec::{self, CodecError, CodecResult};
use wg_util::kernel::{self, scratch};
use wg_util::{FxHashMap, TopK};

use crate::arena::VectorArena;
use crate::params::LshParams;
use crate::scope::DiscoverScope;
use crate::simhash::{Signature, SimHasher};
use crate::ItemId;

/// Magic and version of the serialized index frame (shared with
/// [`crate::ShardedLshIndex`], whose snapshot is the same frame).
pub(crate) const FRAME_MAGIC: [u8; 4] = *b"WGLX";
pub(crate) const FRAME_VERSION: u32 = 1;

/// Version of the federated frame: v1 plus a backend table mapping the
/// high bits of stored ids to backend names, written by
/// [`crate::ShardedLshIndex::encode_with_backends`] only when some item
/// lives outside the default namespace (all-default snapshots stay v1,
/// byte-identical to the legacy layout).
pub(crate) const FRAME_VERSION_FEDERATED: u32 = 2;

/// Diagnostics from one search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOutcome {
    /// Distinct candidates that came out of the band buckets.
    pub candidates: usize,
    /// How many survived the exclusion filter and were scored exactly.
    pub scored: usize,
}

/// An LSH index over unit vectors keyed by [`ItemId`].
pub struct SimHashLshIndex {
    hasher: SimHasher,
    params: LshParams,
    /// Extra single-bit-flip probes per band (0 = plain LSH).
    probes: usize,
    /// Stored vectors in one contiguous slab; exact re-ranking streams
    /// this in slot order.
    vectors: VectorArena,
    /// Stored signatures (needed for removal and persistence).
    signatures: FxHashMap<ItemId, Signature>,
    /// One bucket map per band: band key -> ids.
    bands: Vec<FxHashMap<u64, Vec<ItemId>>>,
}

impl SimHashLshIndex {
    /// Create an index for `dim`-dimensional vectors.
    pub fn new(dim: usize, params: LshParams, seed: u64) -> Self {
        assert!(params.rows <= 64, "rows per band must fit a u64");
        let hasher = SimHasher::new(dim, params.bits(), seed);
        Self {
            hasher,
            params,
            probes: 0,
            vectors: VectorArena::new(dim),
            signatures: FxHashMap::default(),
            bands: (0..params.bands).map(|_| FxHashMap::default()).collect(),
        }
    }

    /// Index tuned for the paper's setting: cosine threshold 0.7, 128-bit
    /// budget.
    pub fn for_threshold(dim: usize, threshold: f64, seed: u64) -> Self {
        Self::new(dim, LshParams::for_threshold(threshold, 128), seed)
    }

    /// Enable multi-probe: additionally probe every single-bit flip of each
    /// band key (`probes` is capped at `rows`). Raises recall near the
    /// threshold at the cost of more candidates.
    pub fn set_probes(&mut self, probes: usize) {
        self.probes = probes.min(self.params.rows);
    }

    /// Geometry in use.
    pub fn params(&self) -> LshParams {
        self.params
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.hasher.dim()
    }

    /// The hyperplane seed (see [`SimHasher::seed`]).
    pub fn seed(&self) -> u64 {
        self.hasher.seed()
    }

    /// Extra single-bit probes per band currently enabled.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// The signature generator. Shards of a [`crate::ShardedLshIndex`] are
    /// built with identical geometry, which lets callers sign a query once
    /// and probe every shard with the same signature.
    pub fn hasher(&self) -> &SimHasher {
        &self.hasher
    }

    /// Iterate over the stored `(id, vector)` pairs in arbitrary order.
    pub fn items(&self) -> impl Iterator<Item = (ItemId, &[f32])> {
        self.vectors.iter()
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when no items are stored.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Insert (or replace) an item. Zero vectors are rejected — they carry
    /// no signal and would collide with everything on the sign boundary.
    /// Returns false if the vector was zero or of the wrong dimension.
    pub fn insert(&mut self, id: ItemId, vector: &[f32]) -> bool {
        if vector.len() != self.dim() || vector.iter().all(|&x| x == 0.0) {
            return false;
        }
        let sig = self.hasher.sign(vector);
        self.insert_signed(id, vector, sig);
        true
    }

    /// Insert with a precomputed signature (must come from a hasher with
    /// this index's geometry and seed). Lets batched callers compute the
    /// expensive projection outside the index's lock; the remaining work is
    /// bucket pushes and map inserts. The vector must already be validated
    /// (non-zero, right dimension).
    pub fn insert_signed(&mut self, id: ItemId, vector: &[f32], sig: Signature) {
        debug_assert_eq!(vector.len(), self.dim());
        debug_assert_eq!(sig.bits, self.params.bits());
        self.remove(id);
        for (band, buckets) in self.bands.iter_mut().enumerate() {
            let key = sig.band_key(band, self.params.rows);
            buckets.entry(key).or_default().push(id);
        }
        self.vectors.insert(id, vector);
        self.signatures.insert(id, sig);
    }

    /// Remove an item; true if it was present.
    pub fn remove(&mut self, id: ItemId) -> bool {
        let Some(sig) = self.signatures.remove(&id) else {
            return false;
        };
        self.vectors.remove(id);
        for (band, buckets) in self.bands.iter_mut().enumerate() {
            let key = sig.band_key(band, self.params.rows);
            if let Some(ids) = buckets.get_mut(&key) {
                ids.retain(|&x| x != id);
                if ids.is_empty() {
                    buckets.remove(&key);
                }
            }
        }
        true
    }

    /// The stored vector for an id, if present.
    pub fn vector(&self, id: ItemId) -> Option<&[f32]> {
        self.vectors.get(id)
    }

    /// Collect the candidate set for a query vector (union of band buckets,
    /// plus multi-probe flips when enabled). Returns ids sorted ascending.
    pub fn candidates(&self, query: &[f32]) -> Vec<ItemId> {
        self.candidates_signed(&self.hasher.sign(query))
    }

    /// [`Self::candidates`] from a precomputed signature (must come from a
    /// hasher with this index's geometry and seed).
    pub fn candidates_signed(&self, sig: &Signature) -> Vec<ItemId> {
        let mut out = Vec::new();
        self.candidates_signed_into(sig, &mut out);
        out
    }

    /// [`Self::candidates_signed`] into a caller-provided buffer (cleared
    /// first): band-bucket hits are appended raw, then sorted and deduped
    /// in place — no per-query hash-set allocation. The search path feeds
    /// this a thread-local scratch buffer.
    pub fn candidates_signed_into(&self, sig: &Signature, out: &mut Vec<ItemId>) {
        self.candidates_signed_scoped_into(sig, &DiscoverScope::All, out);
    }

    /// [`Self::candidates_signed_into`] with a backend scope pushed into
    /// candidate generation: out-of-scope ids are dropped as the buckets
    /// are read, before the sort/dedup and before any exact scoring — an
    /// excluded backend contributes zero work past the bucket probe. The
    /// `All` scope takes the filter-free `extend_from_slice` path, so
    /// unscoped searches pay nothing for this seam.
    pub fn candidates_signed_scoped_into(
        &self,
        sig: &Signature,
        scope: &DiscoverScope,
        out: &mut Vec<ItemId>,
    ) {
        out.clear();
        let unscoped = scope.is_all();
        let gather = |ids: &[ItemId], out: &mut Vec<ItemId>| {
            if unscoped {
                out.extend_from_slice(ids);
            } else {
                out.extend(ids.iter().copied().filter(|&id| scope.admits(id)));
            }
        };
        for (band, buckets) in self.bands.iter().enumerate() {
            let key = sig.band_key(band, self.params.rows);
            if let Some(ids) = buckets.get(&key) {
                gather(ids, out);
            }
            for flip in 0..self.probes {
                let probe_key = key ^ (1u64 << flip);
                if let Some(ids) = buckets.get(&probe_key) {
                    gather(ids, out);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Top-k search: LSH candidate generation then exact cosine re-rank.
    /// `exclude` filters candidates (e.g. drop the query column itself and
    /// its table-mates). Results are `(id, cosine)` in descending cosine.
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        exclude: impl Fn(ItemId) -> bool,
    ) -> Vec<(ItemId, f32)> {
        self.search_with_outcome(query, k, exclude).0
    }

    /// [`Self::search`] plus candidate-set diagnostics.
    pub fn search_with_outcome(
        &self,
        query: &[f32],
        k: usize,
        exclude: impl Fn(ItemId) -> bool,
    ) -> (Vec<(ItemId, f32)>, SearchOutcome) {
        self.search_signed_with_outcome(query, &self.hasher.sign(query), k, exclude)
    }

    /// [`Self::search_with_outcome`] from a precomputed signature, so a
    /// sharded fan-out pays the signing cost once instead of per shard.
    ///
    /// Candidates collect into a reusable sorted-dedup scratch buffer,
    /// map to arena slots, and are scored in ascending-slot order so the
    /// exact re-rank streams the vector slab sequentially. The query norm
    /// is computed once; stored norms come precomputed from the arena.
    pub fn search_signed_with_outcome(
        &self,
        query: &[f32],
        sig: &Signature,
        k: usize,
        exclude: impl Fn(ItemId) -> bool,
    ) -> (Vec<(ItemId, f32)>, SearchOutcome) {
        self.search_signed_scoped_with_outcome(query, sig, k, &DiscoverScope::All, exclude)
    }

    /// [`Self::search_signed_with_outcome`] restricted to a backend scope.
    /// The scope filters during candidate generation (cheap, per-bucket);
    /// `exclude` filters the survivors (arbitrary caller predicate, e.g.
    /// same-table suppression).
    pub fn search_signed_scoped_with_outcome(
        &self,
        query: &[f32],
        sig: &Signature,
        k: usize,
        scope: &DiscoverScope,
        exclude: impl Fn(ItemId) -> bool,
    ) -> (Vec<(ItemId, f32)>, SearchOutcome) {
        let mut candidates = scratch::take_ids();
        self.candidates_signed_scoped_into(sig, scope, &mut candidates);
        let total = candidates.len();
        let qnorm = kernel::norm_sq(query).sqrt();
        let mut slots = scratch::take_ids();
        for &id in &candidates {
            if exclude(id) {
                continue;
            }
            slots.push(self.vectors.slot(id).expect("bucketed id must be stored"));
        }
        let scored = slots.len();
        slots.sort_unstable();
        let mut topk = TopK::new(k);
        for &slot in &slots {
            let id = self.vectors.id_at(slot).expect("live slot");
            topk.push(self.score_slot(query, qnorm, slot) as f64, id);
        }
        scratch::put_ids(slots);
        scratch::put_ids(candidates);
        let results = topk.into_sorted().into_iter().map(|(s, id)| (id, s as f32)).collect();
        (results, SearchOutcome { candidates: total, scored })
    }

    /// Exact search over *all* stored vectors (ignores the LSH buckets) —
    /// the ANN-quality reference used in ablations. Streams the arena in
    /// slot order.
    pub fn search_exact(
        &self,
        query: &[f32],
        k: usize,
        exclude: impl Fn(ItemId) -> bool,
    ) -> Vec<(ItemId, f32)> {
        let qnorm = kernel::norm_sq(query).sqrt();
        let mut topk = TopK::new(k);
        for slot in 0..self.vectors.slot_count() as u32 {
            let Some(id) = self.vectors.id_at(slot) else {
                continue;
            };
            if exclude(id) {
                continue;
            }
            topk.push(self.score_slot(query, qnorm, slot) as f64, id);
        }
        topk.into_sorted().into_iter().map(|(s, id)| (id, s as f32)).collect()
    }

    /// Exact cosine of the query against one arena slot: a single kernel
    /// dot over contiguous memory, divided by the precomputed norms.
    #[inline]
    fn score_slot(&self, query: &[f32], qnorm: f32, slot: u32) -> f32 {
        let denom = qnorm * self.vectors.norm_at(slot);
        if denom <= f32::MIN_POSITIVE {
            return 0.0;
        }
        (kernel::dot(query, self.vectors.vector_at(slot)) / denom).clamp(-1.0, 1.0)
    }

    /// Bucket-occupancy statistics: `(num_buckets, max_bucket, mean_bucket)`
    /// across all bands.
    pub fn bucket_stats(&self) -> (usize, usize, f64) {
        let mut buckets = 0usize;
        let mut max = 0usize;
        let mut total = 0usize;
        for band in &self.bands {
            for ids in band.values() {
                buckets += 1;
                max = max.max(ids.len());
                total += ids.len();
            }
        }
        let mean = if buckets == 0 { 0.0 } else { total as f64 / buckets as f64 };
        (buckets, max, mean)
    }

    /// Serialize the index (geometry, seed, vectors; signatures and buckets
    /// are rebuilt on load — they are derived data).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        codec::put_header(buf, FRAME_MAGIC, FRAME_VERSION);
        codec::put_u32(buf, self.dim() as u32);
        codec::put_u32(buf, self.params.bands as u32);
        codec::put_u32(buf, self.params.rows as u32);
        codec::put_u64(buf, self.hasher.seed());
        codec::put_u32(buf, self.probes as u32);
        codec::put_len(buf, self.vectors.len());
        // Deterministic output: sort by id. The byte layout is unchanged
        // across the HashMap → arena migration, so old snapshots load and
        // new snapshots load into old readers.
        let mut items: Vec<(ItemId, &[f32])> = self.vectors.iter().collect();
        items.sort_unstable_by_key(|(id, _)| *id);
        for (id, v) in items {
            codec::put_u32(buf, id);
            codec::put_f32_slice(buf, v);
        }
    }

    /// Deserialize; inverse of [`Self::encode`].
    pub fn decode(buf: &mut &[u8]) -> CodecResult<Self> {
        let version = codec::get_header(buf, FRAME_MAGIC)?;
        if version != FRAME_VERSION {
            return Err(CodecError::Invalid(format!("unsupported index version {version}")));
        }
        let dim = codec::get_u32(buf)? as usize;
        let bands = codec::get_u32(buf)? as usize;
        let rows = codec::get_u32(buf)? as usize;
        let seed = codec::get_u64(buf)?;
        let probes = codec::get_u32(buf)? as usize;
        if dim == 0 || bands == 0 || rows == 0 || rows > 64 {
            return Err(CodecError::Invalid("bad index geometry".into()));
        }
        let mut index = Self::new(dim, LshParams { bands, rows }, seed);
        index.probes = probes;
        let n = codec::get_len(buf)?;
        for _ in 0..n {
            let id = codec::get_u32(buf)?;
            let v = codec::get_f32_vec(buf)?;
            if v.len() != dim {
                return Err(CodecError::Invalid("vector length mismatch".into()));
            }
            index.insert(id, &v);
        }
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_util::rng::{Rng64, Xoshiro256pp};

    fn random_unit(dim: usize, rng: &mut Xoshiro256pp) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_gaussian() as f32).collect();
        let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        for x in &mut v {
            *x /= n;
        }
        v
    }

    fn perturb(v: &[f32], noise: f32, rng: &mut Xoshiro256pp) -> Vec<f32> {
        let mut out: Vec<f32> = v.iter().map(|x| x + noise * rng.gen_gaussian() as f32).collect();
        let n = out.iter().map(|x| x * x).sum::<f32>().sqrt();
        for x in &mut out {
            *x /= n;
        }
        out
    }

    #[test]
    fn finds_near_duplicates() {
        let mut rng = Xoshiro256pp::new(1);
        let mut index = SimHashLshIndex::for_threshold(64, 0.7, 9);
        let base = random_unit(64, &mut rng);
        index.insert(0, &perturb(&base, 0.05, &mut rng));
        for id in 1..200 {
            index.insert(id, &random_unit(64, &mut rng));
        }
        let hits = index.search(&base, 3, |_| false);
        assert_eq!(hits[0].0, 0, "nearest neighbour missed: {hits:?}");
        assert!(hits[0].1 > 0.9);
    }

    #[test]
    fn prunes_dissimilar_vectors() {
        let mut rng = Xoshiro256pp::new(2);
        let mut index = SimHashLshIndex::for_threshold(64, 0.7, 9);
        for id in 0..500 {
            index.insert(id, &random_unit(64, &mut rng));
        }
        let query = random_unit(64, &mut rng);
        let (_, outcome) = index.search_with_outcome(&query, 10, |_| false);
        // Random 64-d vectors have cosine ~N(0, 1/8); with a 0.7 threshold
        // nearly all 500 must be pruned before exact scoring.
        assert!(outcome.candidates < 100, "candidate pruning ineffective: {}", outcome.candidates);
    }

    #[test]
    fn search_results_sorted_descending() {
        let mut rng = Xoshiro256pp::new(3);
        let mut index = SimHashLshIndex::for_threshold(32, 0.5, 1);
        let base = random_unit(32, &mut rng);
        for id in 0..50 {
            index.insert(id, &perturb(&base, 0.2, &mut rng));
        }
        let hits = index.search(&base, 10, |_| false);
        assert!(!hits.is_empty());
        for w in hits.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn exclusion_filter_applies() {
        let mut rng = Xoshiro256pp::new(4);
        let mut index = SimHashLshIndex::for_threshold(32, 0.5, 1);
        let base = random_unit(32, &mut rng);
        index.insert(7, &base);
        index.insert(8, &perturb(&base, 0.05, &mut rng));
        let hits = index.search(&base, 5, |id| id == 7);
        assert!(hits.iter().all(|(id, _)| *id != 7));
        assert!(!hits.is_empty());
    }

    #[test]
    fn insert_replaces_and_remove_works() {
        let mut rng = Xoshiro256pp::new(5);
        let mut index = SimHashLshIndex::for_threshold(32, 0.5, 1);
        let a = random_unit(32, &mut rng);
        let b = random_unit(32, &mut rng);
        index.insert(1, &a);
        index.insert(1, &b);
        assert_eq!(index.len(), 1);
        let hits = index.search(&b, 1, |_| false);
        assert_eq!(hits[0].0, 1);
        assert!(hits[0].1 > 0.999);
        assert!(index.remove(1));
        assert!(!index.remove(1));
        assert!(index.is_empty());
        assert!(index.search(&b, 1, |_| false).is_empty());
    }

    #[test]
    fn rejects_zero_and_mismatched_vectors() {
        let mut index = SimHashLshIndex::for_threshold(8, 0.5, 1);
        assert!(!index.insert(0, &[0.0; 8]));
        assert!(!index.insert(1, &[1.0; 4]));
        assert!(index.is_empty());
    }

    #[test]
    fn lsh_recall_close_to_exact_above_threshold() {
        let mut rng = Xoshiro256pp::new(6);
        let mut index = SimHashLshIndex::for_threshold(64, 0.7, 11);
        let base = random_unit(64, &mut rng);
        // 20 neighbours well above the 0.7 threshold (noise 0.06 per dim on
        // 64 dims puts cosine ≈ 1/sqrt(1 + 0.06²·64) ≈ 0.9), 300 noise
        // vectors near cosine 0.
        for id in 0..20 {
            index.insert(id, &perturb(&base, 0.06, &mut rng));
        }
        for id in 20..320 {
            index.insert(id, &random_unit(64, &mut rng));
        }
        let lsh: wg_util::FxHashSet<ItemId> =
            index.search(&base, 20, |_| false).into_iter().map(|(id, _)| id).collect();
        let exact: Vec<ItemId> =
            index.search_exact(&base, 20, |_| false).into_iter().map(|(id, _)| id).collect();
        let recall = exact.iter().filter(|id| lsh.contains(id)).count() as f64 / exact.len() as f64;
        assert!(recall > 0.75, "ANN recall too low: {recall}");
    }

    #[test]
    fn multiprobe_does_not_reduce_candidates() {
        let mut rng = Xoshiro256pp::new(7);
        let mut plain = SimHashLshIndex::for_threshold(64, 0.7, 13);
        for id in 0..200 {
            plain.insert(id, &random_unit(64, &mut rng));
        }
        let query = random_unit(64, &mut rng);
        let before = plain.candidates(&query).len();
        plain.set_probes(2);
        let after = plain.candidates(&query).len();
        assert!(after >= before);
    }

    #[test]
    fn encode_decode_roundtrip_preserves_search() {
        let mut rng = Xoshiro256pp::new(8);
        let mut index = SimHashLshIndex::for_threshold(32, 0.7, 21);
        for id in 0..100 {
            index.insert(id, &random_unit(32, &mut rng));
        }
        let query = random_unit(32, &mut rng);
        let before = index.search(&query, 5, |_| false);
        let mut buf = Vec::new();
        index.encode(&mut buf);
        let mut r = &buf[..];
        let loaded = SimHashLshIndex::decode(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(loaded.len(), 100);
        assert_eq!(loaded.search(&query, 5, |_| false), before);
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut r: &[u8] = b"not an index";
        assert!(SimHashLshIndex::decode(&mut r).is_err());
    }

    #[test]
    fn bucket_stats_counts() {
        let mut rng = Xoshiro256pp::new(9);
        let mut index = SimHashLshIndex::for_threshold(16, 0.5, 1);
        for id in 0..50 {
            index.insert(id, &random_unit(16, &mut rng));
        }
        let (buckets, max, mean) = index.bucket_stats();
        assert!(buckets > 0);
        assert!(max >= 1);
        assert!(mean >= 1.0);
    }
}
