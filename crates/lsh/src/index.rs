//! The banded SimHash LSH index.
//!
//! Pipeline per query (paper Fig. 2): sign the query embedding, collect the
//! union of its band buckets (the "sub-universe" of §3.1.2), then re-rank
//! candidates by **exact cosine** against the stored vectors and keep the
//! top-k. Insertion and removal are incremental, which is what lets
//! WarpGate track CDWs with high update rates without rebuild storms.

use std::sync::Arc;
use wg_util::codec::{self, CodecError, CodecResult};
use wg_util::deadline::{Deadline, Phase};
use wg_util::kernel::{self, scratch};
use wg_util::{FxHashMap, TopK};

use crate::arena::VectorArena;
use crate::paged::{SegmentRow, VectorSegment};
use crate::params::LshParams;
use crate::scope::DiscoverScope;
use crate::simhash::{Signature, SimHasher};
use crate::{item_backend, ItemId};

/// Magic and version of the serialized index frame (shared with
/// [`crate::ShardedLshIndex`], whose snapshot is the same frame).
pub(crate) const FRAME_MAGIC: [u8; 4] = *b"WGLX";
pub(crate) const FRAME_VERSION: u32 = 1;

/// Version of the federated frame: v1 plus a backend table mapping the
/// high bits of stored ids to backend names, written by
/// [`crate::ShardedLshIndex::encode_with_backends`] only when some item
/// lives outside the default namespace (all-default snapshots stay v1,
/// byte-identical to the legacy layout).
pub(crate) const FRAME_VERSION_FEDERATED: u32 = 2;

/// Diagnostics from one search.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SearchOutcome {
    /// Distinct candidates that came out of the band buckets.
    pub candidates: usize,
    /// How many survived the exclusion filter and were scored exactly
    /// (zone-map-pruned cold rows are never scored and do not count).
    pub scored: usize,
    /// Cold blocks whose payload was fetched for exact scoring.
    pub blocks_read: usize,
    /// Cold blocks skipped because their zone map proved no row could
    /// reach the current top-k.
    pub blocks_pruned: usize,
}

/// Where a cold row lives: segment slot, block, row-in-block.
#[derive(Debug, Clone, Copy)]
struct ColdLoc {
    seg: u32,
    block: u32,
    row: u32,
}

/// The paged tier of one index: attached segments plus an id locator.
/// Signatures and band entries for cold rows live in the index's normal
/// maps (they are resident metadata); only vector payloads stay on disk.
struct ColdStore {
    /// Attached segments; detaching a backend can retire a slot to `None`
    /// without renumbering the `ColdLoc.seg` indexes of the survivors.
    segments: Vec<Option<Arc<VectorSegment>>>,
    locator: FxHashMap<ItemId, ColdLoc>,
}

/// An LSH index over unit vectors keyed by [`ItemId`].
pub struct SimHashLshIndex {
    hasher: SimHasher,
    params: LshParams,
    /// Extra single-bit-flip probes per band (0 = plain LSH).
    probes: usize,
    /// Stored vectors in one contiguous slab; exact re-ranking streams
    /// this in slot order.
    vectors: VectorArena,
    /// Stored signatures (needed for removal and persistence). Covers hot
    /// *and* cold items — removal works uniformly across tiers.
    signatures: FxHashMap<ItemId, Signature>,
    /// One bucket map per band: band key -> ids.
    bands: Vec<FxHashMap<u64, Vec<ItemId>>>,
    /// Paged tier, present once a segment has been attached.
    cold: Option<ColdStore>,
}

impl SimHashLshIndex {
    /// Create an index for `dim`-dimensional vectors.
    pub fn new(dim: usize, params: LshParams, seed: u64) -> Self {
        assert!(params.rows <= 64, "rows per band must fit a u64");
        let hasher = SimHasher::new(dim, params.bits(), seed);
        Self {
            hasher,
            params,
            probes: 0,
            vectors: VectorArena::new(dim),
            signatures: FxHashMap::default(),
            bands: (0..params.bands).map(|_| FxHashMap::default()).collect(),
            cold: None,
        }
    }

    /// Index tuned for the paper's setting: cosine threshold 0.7, 128-bit
    /// budget.
    pub fn for_threshold(dim: usize, threshold: f64, seed: u64) -> Self {
        Self::new(dim, LshParams::for_threshold(threshold, 128), seed)
    }

    /// Enable multi-probe: additionally probe every single-bit flip of each
    /// band key (`probes` is capped at `rows`). Raises recall near the
    /// threshold at the cost of more candidates.
    pub fn set_probes(&mut self, probes: usize) {
        self.probes = probes.min(self.params.rows);
    }

    /// Geometry in use.
    pub fn params(&self) -> LshParams {
        self.params
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.hasher.dim()
    }

    /// The hyperplane seed (see [`SimHasher::seed`]).
    pub fn seed(&self) -> u64 {
        self.hasher.seed()
    }

    /// Extra single-bit probes per band currently enabled.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// The signature generator. Shards of a [`crate::ShardedLshIndex`] are
    /// built with identical geometry, which lets callers sign a query once
    /// and probe every shard with the same signature.
    pub fn hasher(&self) -> &SimHasher {
        &self.hasher
    }

    /// Iterate over the **hot** (arena-resident) `(id, vector)` pairs in
    /// arbitrary order. Cold items are listed by [`Self::cold_items`].
    pub fn items(&self) -> impl Iterator<Item = (ItemId, &[f32])> {
        self.vectors.iter()
    }

    /// Number of stored items, hot and cold.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// True when no items are stored in either tier.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// Number of items served from the paged tier.
    pub fn cold_len(&self) -> usize {
        self.cold.as_ref().map_or(0, |c| c.locator.len())
    }

    /// Number of live (non-retired) attached segments.
    pub fn cold_segment_count(&self) -> usize {
        self.cold.as_ref().map_or(0, |c| c.segments.iter().flatten().count())
    }

    /// Insert (or replace) an item. Zero vectors are rejected — they carry
    /// no signal and would collide with everything on the sign boundary.
    /// Returns false if the vector was zero or of the wrong dimension.
    pub fn insert(&mut self, id: ItemId, vector: &[f32]) -> bool {
        if vector.len() != self.dim() || vector.iter().all(|&x| x == 0.0) {
            return false;
        }
        let sig = self.hasher.sign(vector);
        self.insert_signed(id, vector, sig);
        true
    }

    /// Insert with a precomputed signature (must come from a hasher with
    /// this index's geometry and seed). Lets batched callers compute the
    /// expensive projection outside the index's lock; the remaining work is
    /// bucket pushes and map inserts. The vector must already be validated
    /// (non-zero, right dimension).
    pub fn insert_signed(&mut self, id: ItemId, vector: &[f32], sig: Signature) {
        debug_assert_eq!(vector.len(), self.dim());
        debug_assert_eq!(sig.bits, self.params.bits());
        self.remove(id);
        self.index_into_bands(id, &sig);
        self.vectors.insert(id, vector);
        self.signatures.insert(id, sig);
    }

    /// Push `id` into its band buckets.
    fn index_into_bands(&mut self, id: ItemId, sig: &Signature) {
        for (band, buckets) in self.bands.iter_mut().enumerate() {
            let key = sig.band_key(band, self.params.rows);
            buckets.entry(key).or_default().push(id);
        }
    }

    /// Remove an item (from either tier); true if it was present. Removing
    /// a cold item drops its resident metadata and locator entry — the
    /// on-disk row becomes unreachable dead weight until the next seal.
    pub fn remove(&mut self, id: ItemId) -> bool {
        let Some(sig) = self.signatures.remove(&id) else {
            return false;
        };
        self.vectors.remove(id);
        if let Some(cold) = &mut self.cold {
            cold.locator.remove(&id);
        }
        for (band, buckets) in self.bands.iter_mut().enumerate() {
            let key = sig.band_key(band, self.params.rows);
            if let Some(ids) = buckets.get_mut(&key) {
                ids.retain(|&x| x != id);
                if ids.is_empty() {
                    buckets.remove(&key);
                }
            }
        }
        true
    }

    /// Remove every item whose id lives in one backend namespace, across
    /// both tiers, then retire attached segments left with zero live rows
    /// (their cache-resident blocks are dropped with them). Returns how
    /// many items were removed.
    pub fn remove_backend(&mut self, backend_bits: u16) -> usize {
        let doomed: Vec<ItemId> = self
            .signatures
            .keys()
            .copied()
            .filter(|&id| item_backend(id) == backend_bits)
            .collect();
        let removed = doomed.into_iter().filter(|&id| self.remove(id)).count();
        self.retire_dead_segments();
        removed
    }

    /// Drop one backend's **cold** items only: their band entries,
    /// signatures, and locator rows go, emptied segments retire, and the
    /// retired segments' cache-resident blocks are evicted. Hot
    /// (arena-resident) items of the backend are untouched. Returns how
    /// many cold items were dropped.
    pub fn drop_cold_backend(&mut self, backend_bits: u16) -> usize {
        let Some(cold) = &self.cold else {
            return 0;
        };
        let doomed: Vec<ItemId> =
            cold.locator.keys().copied().filter(|&id| item_backend(id) == backend_bits).collect();
        let removed = doomed.into_iter().filter(|&id| self.remove(id)).count();
        self.retire_dead_segments();
        removed
    }

    /// Retire segments no live cold row points into, evicting their
    /// cached blocks. Locator indexes of surviving segments are untouched
    /// (retirement leaves a `None` slot instead of renumbering).
    fn retire_dead_segments(&mut self) {
        let Some(cold) = &mut self.cold else {
            return;
        };
        let mut live = vec![false; cold.segments.len()];
        for loc in cold.locator.values() {
            live[loc.seg as usize] = true;
        }
        for (slot, seg) in cold.segments.iter_mut().enumerate() {
            if !live[slot] {
                if let Some(seg) = seg.take() {
                    seg.evict_from_cache();
                }
            }
        }
        if cold.locator.is_empty() {
            self.cold = None;
        }
    }

    /// Attach a sealed segment to the paged tier: every row `admit`
    /// accepts is indexed into the band buckets from its **resident**
    /// signature (no payload read — hydration stays lazy) and becomes
    /// searchable, served from disk through the block cache. Rows replace
    /// any same-id item already stored (newest attach wins). Returns how
    /// many rows were attached.
    pub fn attach_segment(
        &mut self,
        segment: Arc<VectorSegment>,
        admit: impl Fn(ItemId) -> bool,
    ) -> CodecResult<usize> {
        self.attach_segment_mapped(segment, |id| admit(id).then_some(id))
    }

    /// [`Self::attach_segment`] with id remapping: `map` returns the id a
    /// row is installed under (or `None` to skip it). Rows are located by
    /// position, never by stored id, so a loader whose backend-name
    /// interner assigned different bits than the sealing process can
    /// recompose ids without rewriting the segment file.
    pub fn attach_segment_mapped(
        &mut self,
        segment: Arc<VectorSegment>,
        map: impl Fn(ItemId) -> Option<ItemId>,
    ) -> CodecResult<usize> {
        if segment.dim() != self.dim() {
            return Err(CodecError::Invalid(format!(
                "segment dim {} does not match index dim {}",
                segment.dim(),
                self.dim()
            )));
        }
        if segment.sig_bits() != self.params.bits() {
            return Err(CodecError::Invalid(format!(
                "segment signature width {} does not match index width {}",
                segment.sig_bits(),
                self.params.bits()
            )));
        }
        let cold = self.cold.get_or_insert_with(|| ColdStore {
            segments: Vec::new(),
            locator: FxHashMap::default(),
        });
        let seg_slot = cold.segments.len() as u32;
        cold.segments.push(Some(segment.clone()));
        let mut attached = 0usize;
        for block in 0..segment.block_count() {
            let rows = segment.block_meta(block).ids.len();
            for row in 0..rows {
                let Some(id) = map(segment.block_meta(block).ids[row]) else {
                    continue;
                };
                let sig = segment.signature_of(block, row);
                self.remove(id);
                self.index_into_bands(id, &sig);
                self.signatures.insert(id, sig);
                self.cold
                    .as_mut()
                    .expect("cold store just created")
                    .locator
                    .insert(id, ColdLoc { seg: seg_slot, block: block as u32, row: row as u32 });
                attached += 1;
            }
        }
        if attached == 0 {
            // Nothing admitted: retire the slot immediately.
            self.retire_dead_segments();
        }
        Ok(attached)
    }

    /// The stored vector for an id, if **hot** (arena-resident). Cold
    /// items return `None` here; use [`Self::vector_owned`] to read
    /// through the paged tier.
    pub fn vector(&self, id: ItemId) -> Option<&[f32]> {
        self.vectors.get(id)
    }

    /// The stored vector for an id from either tier, cloned. Cold reads go
    /// through the block cache; a segment-level I/O failure here panics
    /// (segments were validated at open — losing one mid-flight is an
    /// environment failure the index cannot recover from).
    pub fn vector_owned(&self, id: ItemId) -> Option<Vec<f32>> {
        if let Some(v) = self.vectors.get(id) {
            return Some(v.to_vec());
        }
        let cold = self.cold.as_ref()?;
        let loc = cold.locator.get(&id)?;
        let seg = cold.segments[loc.seg as usize].as_ref().expect("locator points at live segment");
        let data = seg
            .block(loc.block as usize)
            .unwrap_or_else(|e| panic!("paged tier lost a sealed block: {e}"));
        let dim = self.dim();
        let start = loc.row as usize * dim;
        Some(data[start..start + dim].to_vec())
    }

    /// All cold `(id, vector)` pairs, reading each involved block once.
    /// Used by the persistence paths, which must include cold rows in
    /// snapshots; panics on segment I/O failure like [`Self::vector_owned`].
    pub fn cold_items(&self) -> Vec<(ItemId, Vec<f32>)> {
        let Some(cold) = &self.cold else {
            return Vec::new();
        };
        let dim = self.dim();
        let mut by_block: FxHashMap<(u32, u32), Vec<(u32, ItemId)>> = FxHashMap::default();
        for (&id, loc) in &cold.locator {
            by_block.entry((loc.seg, loc.block)).or_default().push((loc.row, id));
        }
        let mut out = Vec::with_capacity(cold.locator.len());
        for ((seg_slot, block), rows) in by_block {
            let seg =
                cold.segments[seg_slot as usize].as_ref().expect("locator points at live segment");
            let data = seg
                .block(block as usize)
                .unwrap_or_else(|e| panic!("paged tier lost a sealed block: {e}"));
            for (row, id) in rows {
                let start = row as usize * dim;
                out.push((id, data[start..start + dim].to_vec()));
            }
        }
        out
    }

    /// Export every stored row (hot and cold) with its signature and norm,
    /// ready for [`crate::paged::write_vector_segment`]. Cold rows read
    /// through the cache.
    pub fn export_rows(&self) -> Vec<SegmentRow> {
        let mut out = Vec::with_capacity(self.len());
        for (id, v) in self.vectors.iter() {
            let slot = self.vectors.slot(id).expect("iterated id is stored");
            out.push(SegmentRow {
                id,
                signature: self.signatures[&id].clone(),
                norm: self.vectors.norm_at(slot),
                vector: v.to_vec(),
            });
        }
        if let Some(cold) = &self.cold {
            for (id, vector) in self.cold_items() {
                let loc = cold.locator[&id];
                let seg = cold.segments[loc.seg as usize]
                    .as_ref()
                    .expect("locator points at live segment");
                let norm = seg.block_meta(loc.block as usize).norms[loc.row as usize];
                out.push(SegmentRow { id, signature: self.signatures[&id].clone(), norm, vector });
            }
        }
        out
    }

    /// Collect the candidate set for a query vector (union of band buckets,
    /// plus multi-probe flips when enabled). Returns ids sorted ascending.
    pub fn candidates(&self, query: &[f32]) -> Vec<ItemId> {
        self.candidates_signed(&self.hasher.sign(query))
    }

    /// [`Self::candidates`] from a precomputed signature (must come from a
    /// hasher with this index's geometry and seed).
    pub fn candidates_signed(&self, sig: &Signature) -> Vec<ItemId> {
        let mut out = Vec::new();
        self.candidates_signed_into(sig, &mut out);
        out
    }

    /// [`Self::candidates_signed`] into a caller-provided buffer (cleared
    /// first): band-bucket hits are appended raw, then sorted and deduped
    /// in place — no per-query hash-set allocation. The search path feeds
    /// this a thread-local scratch buffer.
    pub fn candidates_signed_into(&self, sig: &Signature, out: &mut Vec<ItemId>) {
        self.candidates_signed_scoped_into(sig, &DiscoverScope::All, out);
    }

    /// [`Self::candidates_signed_into`] with a backend scope pushed into
    /// candidate generation: out-of-scope ids are dropped as the buckets
    /// are read, before the sort/dedup and before any exact scoring — an
    /// excluded backend contributes zero work past the bucket probe. The
    /// `All` scope takes the filter-free `extend_from_slice` path, so
    /// unscoped searches pay nothing for this seam.
    pub fn candidates_signed_scoped_into(
        &self,
        sig: &Signature,
        scope: &DiscoverScope,
        out: &mut Vec<ItemId>,
    ) {
        out.clear();
        let unscoped = scope.is_all();
        let gather = |ids: &[ItemId], out: &mut Vec<ItemId>| {
            if unscoped {
                out.extend_from_slice(ids);
            } else {
                out.extend(ids.iter().copied().filter(|&id| scope.admits(id)));
            }
        };
        for (band, buckets) in self.bands.iter().enumerate() {
            let key = sig.band_key(band, self.params.rows);
            if let Some(ids) = buckets.get(&key) {
                gather(ids, out);
            }
            for flip in 0..self.probes {
                let probe_key = key ^ (1u64 << flip);
                if let Some(ids) = buckets.get(&probe_key) {
                    gather(ids, out);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Top-k search: LSH candidate generation then exact cosine re-rank.
    /// `exclude` filters candidates (e.g. drop the query column itself and
    /// its table-mates). Results are `(id, cosine)` in descending cosine.
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        exclude: impl Fn(ItemId) -> bool,
    ) -> Vec<(ItemId, f32)> {
        self.search_with_outcome(query, k, exclude).0
    }

    /// [`Self::search`] plus candidate-set diagnostics.
    pub fn search_with_outcome(
        &self,
        query: &[f32],
        k: usize,
        exclude: impl Fn(ItemId) -> bool,
    ) -> (Vec<(ItemId, f32)>, SearchOutcome) {
        self.search_signed_with_outcome(query, &self.hasher.sign(query), k, exclude)
    }

    /// [`Self::search_with_outcome`] from a precomputed signature, so a
    /// sharded fan-out pays the signing cost once instead of per shard.
    ///
    /// Candidates collect into a reusable sorted-dedup scratch buffer,
    /// map to arena slots, and are scored in ascending-slot order so the
    /// exact re-rank streams the vector slab sequentially. The query norm
    /// is computed once; stored norms come precomputed from the arena.
    pub fn search_signed_with_outcome(
        &self,
        query: &[f32],
        sig: &Signature,
        k: usize,
        exclude: impl Fn(ItemId) -> bool,
    ) -> (Vec<(ItemId, f32)>, SearchOutcome) {
        self.search_signed_scoped_with_outcome(query, sig, k, &DiscoverScope::All, exclude)
    }

    /// [`Self::search_signed_with_outcome`] restricted to a backend scope.
    /// The scope filters during candidate generation (cheap, per-bucket);
    /// `exclude` filters the survivors (arbitrary caller predicate, e.g.
    /// same-table suppression).
    pub fn search_signed_scoped_with_outcome(
        &self,
        query: &[f32],
        sig: &Signature,
        k: usize,
        scope: &DiscoverScope,
        exclude: impl Fn(ItemId) -> bool,
    ) -> (Vec<(ItemId, f32)>, SearchOutcome) {
        self.search_signed_scoped_deadline_with_outcome(
            query,
            sig,
            k,
            scope,
            Deadline::none(),
            exclude,
        )
        .expect("an unlimited deadline never expires")
    }

    /// [`Self::search_signed_scoped_with_outcome`] under a cooperative
    /// [`Deadline`]: the budget is checked before candidate generation,
    /// before the exact re-rank, and before *every cold block read* — an
    /// expired request stops without fetching another block from the
    /// paged tier. `Err(phase)` names the boundary the budget died at.
    pub fn search_signed_scoped_deadline_with_outcome(
        &self,
        query: &[f32],
        sig: &Signature,
        k: usize,
        scope: &DiscoverScope,
        deadline: Deadline,
        exclude: impl Fn(ItemId) -> bool,
    ) -> Result<(Vec<(ItemId, f32)>, SearchOutcome), Phase> {
        deadline.check(Phase::CandidateGen)?;
        let mut candidates = scratch::take_ids();
        self.candidates_signed_scoped_into(sig, scope, &mut candidates);
        let total = candidates.len();
        if let Err(phase) = deadline.check(Phase::Rerank) {
            scratch::put_ids(candidates);
            return Err(phase);
        }
        let qnorm = kernel::norm_sq(query).sqrt();
        let mut slots = scratch::take_ids();
        let mut cold_rows: Vec<(u32, u32, u32, ItemId)> = Vec::new();
        for &id in &candidates {
            if exclude(id) {
                continue;
            }
            match self.vectors.slot(id) {
                Some(slot) => slots.push(slot),
                None => {
                    let loc = self
                        .cold
                        .as_ref()
                        .and_then(|c| c.locator.get(&id))
                        .copied()
                        .expect("bucketed id must be stored");
                    cold_rows.push((loc.seg, loc.block, loc.row, id));
                }
            }
        }
        let mut scored = slots.len();
        slots.sort_unstable();
        // Hot pass first: the arena streams sequentially, and a full heap
        // raises the threshold before any cold block is considered.
        let mut topk = TopK::new(k);
        for &slot in &slots {
            let id = self.vectors.id_at(slot).expect("live slot");
            topk.push(self.score_slot(query, qnorm, slot) as f64, id);
        }
        scratch::put_ids(slots);
        scratch::put_ids(candidates);
        let (blocks_read, blocks_pruned) =
            self.score_cold_rows(query, qnorm, cold_rows, deadline, &mut topk, &mut scored)?;
        let results = topk.into_sorted().into_iter().map(|(s, id)| (id, s as f32)).collect();
        Ok((results, SearchOutcome { candidates: total, scored, blocks_read, blocks_pruned }))
    }

    /// Cold pass of the exact re-rank: group candidate rows by block,
    /// visit blocks in descending zone-map upper bound (tight blocks fill
    /// the heap early, raising the threshold for the rest), and skip any
    /// block whose bound falls strictly below a *full* heap's threshold.
    ///
    /// Correctness of the skip: the bound dominates every exact f32 score
    /// in the block (see [`crate::paged::ZoneMap::cosine_upper_bound`]) and
    /// the heap threshold only rises, so every skipped row scores strictly
    /// below the final k-th result — the returned top-k is bit-identical
    /// to scoring everything, by [`TopK`]'s push-order independence.
    fn score_cold_rows(
        &self,
        query: &[f32],
        qnorm: f32,
        mut cold_rows: Vec<(u32, u32, u32, ItemId)>,
        deadline: Deadline,
        topk: &mut TopK<ItemId>,
        scored: &mut usize,
    ) -> Result<(usize, usize), Phase> {
        if cold_rows.is_empty() {
            return Ok((0, 0));
        }
        let cold = self.cold.as_ref().expect("cold candidates imply a cold store");
        let dim = self.dim();
        cold_rows.sort_unstable();
        // Group boundaries over the (seg, block)-sorted rows, with the
        // zone-map bound for each group.
        let mut groups: Vec<(f64, usize, usize)> = Vec::new();
        let mut start = 0usize;
        while start < cold_rows.len() {
            let (seg_slot, block, ..) = cold_rows[start];
            let mut end = start + 1;
            while end < cold_rows.len() && cold_rows[end].0 == seg_slot && cold_rows[end].1 == block
            {
                end += 1;
            }
            let seg =
                cold.segments[seg_slot as usize].as_ref().expect("locator points at live segment");
            let ub = seg.block_meta(block as usize).zone.cosine_upper_bound(query, qnorm);
            groups.push((ub, start, end));
            start = end;
        }
        groups.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

        let mut blocks_read = 0usize;
        let mut blocks_pruned = 0usize;
        for (ub, start, end) in groups {
            if let Some(threshold) = topk.threshold() {
                if ub < threshold {
                    blocks_pruned += 1;
                    continue;
                }
            }
            // The budget check sits directly in front of the block fetch:
            // a cold read is the most expensive step a query can take, so
            // an expired request never starts another one.
            deadline.check(Phase::BlockRead)?;
            let (seg_slot, block, ..) = cold_rows[start];
            let seg =
                cold.segments[seg_slot as usize].as_ref().expect("locator points at live segment");
            let meta = seg.block_meta(block as usize);
            let data = seg
                .block(block as usize)
                .unwrap_or_else(|e| panic!("paged tier lost a sealed block: {e}"));
            blocks_read += 1;
            for &(_, _, row, id) in &cold_rows[start..end] {
                let row = row as usize;
                // Exact replica of `score_slot` over the paged row: same
                // kernel dot, same stored norm, same clamp — bit-identical
                // to the hot path.
                let denom = qnorm * meta.norms[row];
                let score = if denom <= f32::MIN_POSITIVE {
                    0.0
                } else {
                    (kernel::dot(query, &data[row * dim..(row + 1) * dim]) / denom).clamp(-1.0, 1.0)
                };
                topk.push(score as f64, id);
                *scored += 1;
            }
        }
        Ok((blocks_read, blocks_pruned))
    }

    /// Exact search over *all* stored vectors (ignores the LSH buckets) —
    /// the ANN-quality reference used in ablations. Streams the arena in
    /// slot order.
    pub fn search_exact(
        &self,
        query: &[f32],
        k: usize,
        exclude: impl Fn(ItemId) -> bool,
    ) -> Vec<(ItemId, f32)> {
        let qnorm = kernel::norm_sq(query).sqrt();
        let mut topk = TopK::new(k);
        for slot in 0..self.vectors.slot_count() as u32 {
            let Some(id) = self.vectors.id_at(slot) else {
                continue;
            };
            if exclude(id) {
                continue;
            }
            topk.push(self.score_slot(query, qnorm, slot) as f64, id);
        }
        if let Some(cold) = &self.cold {
            // The reference baseline must not prune: score every live cold
            // row through the cache.
            let mut rows: Vec<(u32, u32, u32, ItemId)> = cold
                .locator
                .iter()
                .filter(|(&id, _)| !exclude(id))
                .map(|(&id, loc)| (loc.seg, loc.block, loc.row, id))
                .collect();
            rows.sort_unstable();
            let dim = self.dim();
            let mut i = 0usize;
            while i < rows.len() {
                let (seg_slot, block, ..) = rows[i];
                let seg = cold.segments[seg_slot as usize]
                    .as_ref()
                    .expect("locator points at live segment");
                let meta = seg.block_meta(block as usize);
                let data = seg
                    .block(block as usize)
                    .unwrap_or_else(|e| panic!("paged tier lost a sealed block: {e}"));
                while i < rows.len() && rows[i].0 == seg_slot && rows[i].1 == block {
                    let (_, _, row, id) = rows[i];
                    let row = row as usize;
                    let denom = qnorm * meta.norms[row];
                    let score = if denom <= f32::MIN_POSITIVE {
                        0.0
                    } else {
                        (kernel::dot(query, &data[row * dim..(row + 1) * dim]) / denom)
                            .clamp(-1.0, 1.0)
                    };
                    topk.push(score as f64, id);
                    i += 1;
                }
            }
        }
        topk.into_sorted().into_iter().map(|(s, id)| (id, s as f32)).collect()
    }

    /// Exact cosine of the query against one arena slot: a single kernel
    /// dot over contiguous memory, divided by the precomputed norms.
    #[inline]
    fn score_slot(&self, query: &[f32], qnorm: f32, slot: u32) -> f32 {
        let denom = qnorm * self.vectors.norm_at(slot);
        if denom <= f32::MIN_POSITIVE {
            return 0.0;
        }
        (kernel::dot(query, self.vectors.vector_at(slot)) / denom).clamp(-1.0, 1.0)
    }

    /// Bucket-occupancy statistics: `(num_buckets, max_bucket, mean_bucket)`
    /// across all bands.
    pub fn bucket_stats(&self) -> (usize, usize, f64) {
        let mut buckets = 0usize;
        let mut max = 0usize;
        let mut total = 0usize;
        for band in &self.bands {
            for ids in band.values() {
                buckets += 1;
                max = max.max(ids.len());
                total += ids.len();
            }
        }
        let mean = if buckets == 0 { 0.0 } else { total as f64 / buckets as f64 };
        (buckets, max, mean)
    }

    /// Serialize the index (geometry, seed, vectors; signatures and buckets
    /// are rebuilt on load — they are derived data).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        codec::put_header(buf, FRAME_MAGIC, FRAME_VERSION);
        codec::put_u32(buf, self.dim() as u32);
        codec::put_u32(buf, self.params.bands as u32);
        codec::put_u32(buf, self.params.rows as u32);
        codec::put_u64(buf, self.hasher.seed());
        codec::put_u32(buf, self.probes as u32);
        codec::put_len(buf, self.len());
        // Deterministic output: sort by id. The byte layout is unchanged
        // across the HashMap → arena migration, so old snapshots load and
        // new snapshots load into old readers. Cold rows are hydrated
        // through the cache so the frame is complete regardless of tier.
        let mut ids: Vec<ItemId> = self.signatures.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            codec::put_u32(buf, id);
            match self.vectors.get(id) {
                Some(v) => codec::put_f32_slice(buf, v),
                None => {
                    let v = self.vector_owned(id).expect("stored id has a vector in some tier");
                    codec::put_f32_slice(buf, &v);
                }
            }
        }
    }

    /// Deserialize; inverse of [`Self::encode`].
    pub fn decode(buf: &mut &[u8]) -> CodecResult<Self> {
        let version = codec::get_header(buf, FRAME_MAGIC)?;
        if version != FRAME_VERSION {
            return Err(CodecError::Invalid(format!("unsupported index version {version}")));
        }
        let dim = codec::get_u32(buf)? as usize;
        let bands = codec::get_u32(buf)? as usize;
        let rows = codec::get_u32(buf)? as usize;
        let seed = codec::get_u64(buf)?;
        let probes = codec::get_u32(buf)? as usize;
        if dim == 0 || bands == 0 || rows == 0 || rows > 64 {
            return Err(CodecError::Invalid("bad index geometry".into()));
        }
        let mut index = Self::new(dim, LshParams { bands, rows }, seed);
        index.probes = probes;
        let n = codec::get_len(buf)?;
        for _ in 0..n {
            let id = codec::get_u32(buf)?;
            let v = codec::get_f32_vec(buf)?;
            if v.len() != dim {
                return Err(CodecError::Invalid("vector length mismatch".into()));
            }
            index.insert(id, &v);
        }
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_util::rng::{Rng64, Xoshiro256pp};

    fn random_unit(dim: usize, rng: &mut Xoshiro256pp) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_gaussian() as f32).collect();
        let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        for x in &mut v {
            *x /= n;
        }
        v
    }

    fn perturb(v: &[f32], noise: f32, rng: &mut Xoshiro256pp) -> Vec<f32> {
        let mut out: Vec<f32> = v.iter().map(|x| x + noise * rng.gen_gaussian() as f32).collect();
        let n = out.iter().map(|x| x * x).sum::<f32>().sqrt();
        for x in &mut out {
            *x /= n;
        }
        out
    }

    #[test]
    fn finds_near_duplicates() {
        let mut rng = Xoshiro256pp::new(1);
        let mut index = SimHashLshIndex::for_threshold(64, 0.7, 9);
        let base = random_unit(64, &mut rng);
        index.insert(0, &perturb(&base, 0.05, &mut rng));
        for id in 1..200 {
            index.insert(id, &random_unit(64, &mut rng));
        }
        let hits = index.search(&base, 3, |_| false);
        assert_eq!(hits[0].0, 0, "nearest neighbour missed: {hits:?}");
        assert!(hits[0].1 > 0.9);
    }

    #[test]
    fn prunes_dissimilar_vectors() {
        let mut rng = Xoshiro256pp::new(2);
        let mut index = SimHashLshIndex::for_threshold(64, 0.7, 9);
        for id in 0..500 {
            index.insert(id, &random_unit(64, &mut rng));
        }
        let query = random_unit(64, &mut rng);
        let (_, outcome) = index.search_with_outcome(&query, 10, |_| false);
        // Random 64-d vectors have cosine ~N(0, 1/8); with a 0.7 threshold
        // nearly all 500 must be pruned before exact scoring.
        assert!(outcome.candidates < 100, "candidate pruning ineffective: {}", outcome.candidates);
    }

    #[test]
    fn search_results_sorted_descending() {
        let mut rng = Xoshiro256pp::new(3);
        let mut index = SimHashLshIndex::for_threshold(32, 0.5, 1);
        let base = random_unit(32, &mut rng);
        for id in 0..50 {
            index.insert(id, &perturb(&base, 0.2, &mut rng));
        }
        let hits = index.search(&base, 10, |_| false);
        assert!(!hits.is_empty());
        for w in hits.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn exclusion_filter_applies() {
        let mut rng = Xoshiro256pp::new(4);
        let mut index = SimHashLshIndex::for_threshold(32, 0.5, 1);
        let base = random_unit(32, &mut rng);
        index.insert(7, &base);
        index.insert(8, &perturb(&base, 0.05, &mut rng));
        let hits = index.search(&base, 5, |id| id == 7);
        assert!(hits.iter().all(|(id, _)| *id != 7));
        assert!(!hits.is_empty());
    }

    #[test]
    fn insert_replaces_and_remove_works() {
        let mut rng = Xoshiro256pp::new(5);
        let mut index = SimHashLshIndex::for_threshold(32, 0.5, 1);
        let a = random_unit(32, &mut rng);
        let b = random_unit(32, &mut rng);
        index.insert(1, &a);
        index.insert(1, &b);
        assert_eq!(index.len(), 1);
        let hits = index.search(&b, 1, |_| false);
        assert_eq!(hits[0].0, 1);
        assert!(hits[0].1 > 0.999);
        assert!(index.remove(1));
        assert!(!index.remove(1));
        assert!(index.is_empty());
        assert!(index.search(&b, 1, |_| false).is_empty());
    }

    #[test]
    fn rejects_zero_and_mismatched_vectors() {
        let mut index = SimHashLshIndex::for_threshold(8, 0.5, 1);
        assert!(!index.insert(0, &[0.0; 8]));
        assert!(!index.insert(1, &[1.0; 4]));
        assert!(index.is_empty());
    }

    #[test]
    fn lsh_recall_close_to_exact_above_threshold() {
        let mut rng = Xoshiro256pp::new(6);
        let mut index = SimHashLshIndex::for_threshold(64, 0.7, 11);
        let base = random_unit(64, &mut rng);
        // 20 neighbours well above the 0.7 threshold (noise 0.06 per dim on
        // 64 dims puts cosine ≈ 1/sqrt(1 + 0.06²·64) ≈ 0.9), 300 noise
        // vectors near cosine 0.
        for id in 0..20 {
            index.insert(id, &perturb(&base, 0.06, &mut rng));
        }
        for id in 20..320 {
            index.insert(id, &random_unit(64, &mut rng));
        }
        let lsh: wg_util::FxHashSet<ItemId> =
            index.search(&base, 20, |_| false).into_iter().map(|(id, _)| id).collect();
        let exact: Vec<ItemId> =
            index.search_exact(&base, 20, |_| false).into_iter().map(|(id, _)| id).collect();
        let recall = exact.iter().filter(|id| lsh.contains(id)).count() as f64 / exact.len() as f64;
        assert!(recall > 0.75, "ANN recall too low: {recall}");
    }

    #[test]
    fn multiprobe_does_not_reduce_candidates() {
        let mut rng = Xoshiro256pp::new(7);
        let mut plain = SimHashLshIndex::for_threshold(64, 0.7, 13);
        for id in 0..200 {
            plain.insert(id, &random_unit(64, &mut rng));
        }
        let query = random_unit(64, &mut rng);
        let before = plain.candidates(&query).len();
        plain.set_probes(2);
        let after = plain.candidates(&query).len();
        assert!(after >= before);
    }

    #[test]
    fn encode_decode_roundtrip_preserves_search() {
        let mut rng = Xoshiro256pp::new(8);
        let mut index = SimHashLshIndex::for_threshold(32, 0.7, 21);
        for id in 0..100 {
            index.insert(id, &random_unit(32, &mut rng));
        }
        let query = random_unit(32, &mut rng);
        let before = index.search(&query, 5, |_| false);
        let mut buf = Vec::new();
        index.encode(&mut buf);
        let mut r = &buf[..];
        let loaded = SimHashLshIndex::decode(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(loaded.len(), 100);
        assert_eq!(loaded.search(&query, 5, |_| false), before);
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut r: &[u8] = b"not an index";
        assert!(SimHashLshIndex::decode(&mut r).is_err());
    }

    fn clustered(
        dim: usize,
        families: usize,
        members: usize,
        rng: &mut Xoshiro256pp,
    ) -> Vec<Vec<f32>> {
        let mut out = Vec::with_capacity(families * members);
        for _ in 0..families {
            let base = random_unit(dim, rng);
            for _ in 0..members {
                out.push(perturb(&base, 0.05, rng));
            }
        }
        out
    }

    fn seal_and_attach(
        source: &SimHashLshIndex,
        tag: &str,
        block_rows: usize,
        cache_budget: usize,
    ) -> (SimHashLshIndex, std::sync::Arc<crate::paged::BlockCache>, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("wg-index-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("seg.wgs");
        crate::paged::write_vector_segment(
            &path,
            source.dim(),
            source.params().bits(),
            block_rows,
            source.export_rows(),
        )
        .expect("seal");
        let cache = crate::paged::BlockCache::new(cache_budget);
        let seg = std::sync::Arc::new(
            crate::paged::VectorSegment::open(&path, cache.clone()).expect("open"),
        );
        let mut paged = SimHashLshIndex::new(source.dim(), source.params(), source.seed());
        paged.set_probes(source.probes());
        paged.attach_segment(seg, |_| true).expect("attach");
        (paged, cache, dir)
    }

    #[test]
    fn paged_tier_matches_hot_tier_bit_for_bit() {
        let mut rng = Xoshiro256pp::new(31);
        let mut hot = SimHashLshIndex::for_threshold(32, 0.7, 41);
        for (id, v) in clustered(32, 20, 10, &mut rng).into_iter().enumerate() {
            hot.insert(id as ItemId, &v);
        }
        let (paged, cache, dir) = seal_and_attach(&hot, "parity", 16, 0);
        assert_eq!(paged.len(), hot.len());
        assert_eq!(paged.cold_len(), hot.len());
        // Lazy hydration: attaching reads directory metadata only.
        assert_eq!(cache.stats().resident_blocks, 0);

        let mut read = 0usize;
        let mut pruned = 0usize;
        for q in 0..50 {
            let query = random_unit(32, &mut rng);
            let (a, oa) = hot.search_with_outcome(&query, 5, |id| id % 11 == 0);
            let (b, ob) = paged.search_with_outcome(&query, 5, |id| id % 11 == 0);
            assert_eq!(a, b, "query {q}: paged ranking diverged");
            assert_eq!(oa.candidates, ob.candidates);
            // Pruned rows are unscored; the hot path scored everything.
            assert!(ob.scored <= oa.scored);
            read += ob.blocks_read;
            pruned += ob.blocks_pruned;
        }
        assert!(read > 0, "cold blocks never hydrated");
        let _ = pruned;
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mixed_tiers_search_as_one_index() {
        let mut rng = Xoshiro256pp::new(33);
        let vectors = clustered(32, 12, 10, &mut rng);
        // Reference: everything hot.
        let mut reference = SimHashLshIndex::for_threshold(32, 0.7, 43);
        for (id, v) in vectors.iter().enumerate() {
            reference.insert(id as ItemId, v);
        }
        // Under test: even ids sealed cold, odd ids inserted hot.
        let mut cold_source = SimHashLshIndex::for_threshold(32, 0.7, 43);
        for (id, v) in vectors.iter().enumerate().filter(|(id, _)| id % 2 == 0) {
            cold_source.insert(id as ItemId, v);
        }
        let (mut mixed, _cache, dir) = seal_and_attach(&cold_source, "mixed", 8, 0);
        for (id, v) in vectors.iter().enumerate().filter(|(id, _)| id % 2 == 1) {
            mixed.insert(id as ItemId, v);
        }
        assert_eq!(mixed.len(), vectors.len());
        for _ in 0..30 {
            let query = random_unit(32, &mut rng);
            assert_eq!(reference.search(&query, 7, |_| false), mixed.search(&query, 7, |_| false));
        }
        // Re-inserting a cold id hot replaces it (newest wins).
        let replacement = random_unit(32, &mut rng);
        assert!(mixed.insert(0, &replacement));
        assert_eq!(mixed.len(), vectors.len());
        assert_eq!(mixed.vector_owned(0).as_deref(), Some(&replacement[..]));
        // Removing a cold id makes it unsearchable.
        assert!(mixed.remove(2));
        assert!(mixed.search(&vectors[2], vectors.len(), |_| false).iter().all(|(id, _)| *id != 2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_backend_retires_dead_segments() {
        let mut rng = Xoshiro256pp::new(35);
        let mut source = SimHashLshIndex::for_threshold(32, 0.7, 45);
        for i in 0..40u32 {
            let backend = (i % 2) as u16 + 1;
            let id = crate::compose_item_id(backend, i / 2);
            source.insert(id, &random_unit(32, &mut rng));
        }
        let (mut paged, cache, dir) = seal_and_attach(&source, "detach", 8, 0);
        // Warm the cache.
        let q = random_unit(32, &mut rng);
        let _ = paged.search(&q, 10, |_| false);
        assert_eq!(paged.cold_segment_count(), 1);

        assert_eq!(paged.remove_backend(1), 20);
        assert_eq!(paged.cold_len(), 20);
        assert_eq!(paged.cold_segment_count(), 1, "backend 2 still lives in the segment");
        assert_eq!(paged.remove_backend(2), 20);
        assert_eq!(paged.cold_len(), 0);
        assert_eq!(paged.cold_segment_count(), 0, "dead segment must retire");
        assert_eq!(cache.stats().resident_blocks, 0, "retirement drops cached blocks");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bucket_stats_counts() {
        let mut rng = Xoshiro256pp::new(9);
        let mut index = SimHashLshIndex::for_threshold(16, 0.5, 1);
        for id in 0..50 {
            index.insert(id, &random_unit(16, &mut rng));
        }
        let (buckets, max, mean) = index.bucket_stats();
        assert!(buckets > 0);
        assert!(max >= 1);
        assert!(mean >= 1.0);
    }
}
