//! Basic column statistics.

use wg_store::Column;

/// Summary statistics for one column (computed over whatever rows the
/// caller scanned — typically a sample).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Rows scanned.
    pub rows: usize,
    /// NULL rows among them.
    pub nulls: usize,
    /// Distinct non-null values.
    pub distinct: usize,
    /// Numeric summary, when the column is numeric.
    pub numeric: Option<NumericStats>,
    /// Mean rendered-string length of non-null values.
    pub avg_len: f64,
}

/// Moments and extrema of a numeric column.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericStats {
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl ColumnStats {
    /// Compute stats with a single pass (plus the column's dictionary for
    /// distinct counting).
    pub fn build(column: &Column) -> ColumnStats {
        let rows = column.len();
        let nulls = column.null_count();
        let distinct = column.distinct_count();

        let mut len_sum = 0usize;
        let mut n_nonnull = 0usize;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        let mut n_numeric = 0usize;
        for v in column.iter() {
            if v.is_null() {
                continue;
            }
            n_nonnull += 1;
            len_sum += v.to_string().chars().count();
            if let Some(x) = v.as_f64() {
                n_numeric += 1;
                min = min.min(x);
                max = max.max(x);
                sum += x;
                sumsq += x * x;
            }
        }
        let numeric = if n_numeric > 0 && column.dtype().is_numeric() {
            let mean = sum / n_numeric as f64;
            let var = (sumsq / n_numeric as f64 - mean * mean).max(0.0);
            Some(NumericStats { min, max, mean, std: var.sqrt() })
        } else {
            None
        };
        let avg_len = if n_nonnull == 0 { 0.0 } else { len_sum as f64 / n_nonnull as f64 };
        ColumnStats { rows, nulls, distinct, numeric, avg_len }
    }

    /// Uniqueness ratio: distinct over non-null rows (1.0 for key-like
    /// columns, used by baselines to spot candidate keys).
    pub fn uniqueness(&self) -> f64 {
        let non_null = self.rows - self.nulls;
        if non_null == 0 {
            0.0
        } else {
            self.distinct as f64 / non_null as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_store::Column;

    #[test]
    fn text_stats() {
        let c = Column::text_opt("c", [Some("aa"), None, Some("bbbb"), Some("aa")]);
        let s = ColumnStats::build(&c);
        assert_eq!(s.rows, 4);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.distinct, 2);
        assert!(s.numeric.is_none());
        assert!((s.avg_len - (2.0 + 4.0 + 2.0) / 3.0).abs() < 1e-12);
        assert!((s.uniqueness() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn numeric_stats() {
        let c = Column::ints("n", vec![1, 2, 3, 4]);
        let s = ColumnStats::build(&c);
        let n = s.numeric.unwrap();
        assert_eq!(n.min, 1.0);
        assert_eq!(n.max, 4.0);
        assert_eq!(n.mean, 2.5);
        assert!((n.std - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn unique_key_column() {
        let c = Column::ints("id", (0..100).collect());
        assert_eq!(ColumnStats::build(&c).uniqueness(), 1.0);
    }

    #[test]
    fn empty_column() {
        let c = Column::text("c", Vec::<String>::new());
        let s = ColumnStats::build(&c);
        assert_eq!(s.rows, 0);
        assert_eq!(s.uniqueness(), 0.0);
        assert_eq!(s.avg_len, 0.0);
    }
}
