//! Column-name q-grams (D3L evidence i; Aurum schema-similarity edges).
//!
//! Column names like `company_name` and `CompanyName` should compare as
//! near-identical. Names are lowercased, separators dropped, and padded
//! q-grams extracted; similarity is plain Jaccard over the q-gram sets.

use wg_util::FxHashSet;

/// Padded q-grams of a (normalized) column name. `q` is typically 3.
pub fn name_qgrams(name: &str, q: usize) -> FxHashSet<String> {
    debug_assert!(q >= 2);
    let normalized: String =
        name.chars().filter(|c| c.is_alphanumeric()).flat_map(|c| c.to_lowercase()).collect();
    let mut out = FxHashSet::default();
    if normalized.is_empty() {
        return out;
    }
    let padded: Vec<char> = std::iter::repeat_n('#', q - 1)
        .chain(normalized.chars())
        .chain(std::iter::repeat_n('#', q - 1))
        .collect();
    for w in padded.windows(q) {
        out.insert(w.iter().collect());
    }
    out
}

/// Jaccard similarity of two q-gram sets.
pub fn qgram_jaccard(a: &FxHashSet<String>, b: &FxHashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.iter().filter(|g| b.contains(*g)).count();
    inter as f64 / (a.len() + b.len() - inter) as f64
}

/// Convenience: q-gram Jaccard between two raw names (q = 3).
pub fn name_similarity(a: &str, b: &str) -> f64 {
    qgram_jaccard(&name_qgrams(a, 3), &name_qgrams(b, 3))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_names_score_one() {
        assert!((name_similarity("company", "company") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn case_and_separators_ignored() {
        assert!((name_similarity("company_name", "CompanyName") - 1.0).abs() < 1e-12);
        assert!((name_similarity("user id", "user-id") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn related_names_beat_unrelated() {
        let related = name_similarity("customer_id", "customer_key");
        let unrelated = name_similarity("customer_id", "price");
        assert!(related > unrelated + 0.2, "related {related} unrelated {unrelated}");
    }

    #[test]
    fn pkfk_style_names_are_similar() {
        // The D3L recall jump on Spider comes from exactly this: FK and PK
        // share most of their name.
        let s = name_similarity("singer_id", "singer_id");
        assert_eq!(s, 1.0);
        let s2 = name_similarity("singer_id", "id");
        assert!(s2 > 0.1);
    }

    #[test]
    fn empty_names() {
        assert_eq!(name_similarity("", ""), 0.0);
        assert_eq!(name_similarity("abc", ""), 0.0);
        assert_eq!(name_similarity("###", "###"), 0.0); // symbols strip to empty
    }

    #[test]
    fn qgrams_padded() {
        let g = name_qgrams("ab", 3);
        // padded "##ab##": ##a, #ab, ab#, b##
        assert_eq!(g.len(), 4);
        assert!(g.contains("#ab"));
    }
}
