//! The bundled column profile.

use wg_lsh::{MinHashSignature, MinHasher};
use wg_store::{Column, ColumnRef, DataType};
use wg_util::FxHashSet;

use crate::format::FormatProfile;
use crate::numeric_dist::NumericSketch;
use crate::qgram::name_qgrams;
use crate::stats::ColumnStats;

/// Everything a profile-based discovery system knows about one column.
#[derive(Debug, Clone)]
pub struct ColumnProfile {
    /// Fully-qualified address of the profiled column.
    pub reference: ColumnRef,
    /// Storage type.
    pub dtype: DataType,
    /// Row/null/distinct counts and numeric moments.
    pub stats: ColumnStats,
    /// MinHash signature of the distinct value set (content overlap).
    pub content_signature: MinHashSignature,
    /// Format-pattern histogram.
    pub format: FormatProfile,
    /// q-grams of the column *name*.
    pub name_grams: FxHashSet<String>,
    /// Numeric distribution sketch (empty for text columns).
    pub numeric: NumericSketch,
}

impl ColumnProfile {
    /// Profile a column (typically a sampled scan) with the given hasher.
    pub fn build(reference: ColumnRef, column: &Column, hasher: &MinHasher) -> ColumnProfile {
        let values = column.value_counts();
        let content_signature =
            hasher.sign(values.iter().map(|(v, _)| wg_util::stable_hash_str(v)));
        ColumnProfile {
            dtype: column.dtype(),
            stats: ColumnStats::build(column),
            content_signature,
            format: FormatProfile::build(column),
            name_grams: name_qgrams(&reference.column, 3),
            numeric: NumericSketch::build(column),
            reference,
        }
    }

    /// Estimated Jaccard overlap of distinct values with another profile.
    pub fn content_similarity(&self, other: &ColumnProfile) -> f64 {
        self.content_signature.jaccard_estimate(&other.content_signature)
    }

    /// Estimated containment of `self`'s values in `other`'s, derived from
    /// the Jaccard estimate and the two distinct counts:
    /// `|A∩B| ≈ J/(1+J) · (|A|+|B|)`, containment = `|A∩B| / |A|`.
    pub fn containment_estimate(&self, other: &ColumnProfile) -> f64 {
        let j = self.content_similarity(other);
        let a = self.stats.distinct as f64;
        let b = other.stats.distinct as f64;
        if a == 0.0 || j == 0.0 {
            return 0.0;
        }
        let inter = j / (1.0 + j) * (a + b);
        (inter / a).clamp(0.0, 1.0)
    }

    /// Column-name similarity (q-gram Jaccard).
    pub fn name_similarity(&self, other: &ColumnProfile) -> f64 {
        crate::qgram::qgram_jaccard(&self.name_grams, &other.name_grams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_store::Column;

    fn hasher() -> MinHasher {
        MinHasher::new(128, 42)
    }

    fn profile(name: &str, col: &Column) -> ColumnProfile {
        ColumnProfile::build(ColumnRef::new("db", "t", name), col, &hasher())
    }

    #[test]
    fn overlapping_columns_high_content_similarity() {
        let a =
            profile("a", &Column::text("a", (0..100).map(|i| format!("v{i}")).collect::<Vec<_>>()));
        let b =
            profile("b", &Column::text("b", (0..100).map(|i| format!("v{i}")).collect::<Vec<_>>()));
        let c = profile(
            "c",
            &Column::text("c", (1000..1100).map(|i| format!("v{i}")).collect::<Vec<_>>()),
        );
        assert!(a.content_similarity(&b) > 0.95);
        assert!(a.content_similarity(&c) < 0.05);
    }

    #[test]
    fn containment_estimate_for_fk_pk() {
        // FK (20 values) fully contained in PK (200 values): J = 0.1,
        // containment of FK in PK should estimate near 1.0.
        let pk = profile(
            "id",
            &Column::text("id", (0..200).map(|i| format!("k{i}")).collect::<Vec<_>>()),
        );
        let fk = profile(
            "ref_id",
            &Column::text("ref_id", (0..20).map(|i| format!("k{i}")).collect::<Vec<_>>()),
        );
        let c = fk.containment_estimate(&pk);
        assert!(c > 0.75, "containment estimate {c}");
        // And the reverse direction is small.
        assert!(pk.containment_estimate(&fk) < 0.3);
    }

    #[test]
    fn name_similarity_via_profiles() {
        let a = profile("customer_id", &Column::ints("x", vec![1]));
        let b = profile("CustomerID", &Column::ints("x", vec![2]));
        assert!((a.name_similarity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn numeric_sketch_present_only_for_numeric() {
        let n = profile("n", &Column::ints("n", vec![1, 2, 3]));
        assert!(!n.numeric.is_empty());
        let t = profile("t", &Column::text("t", ["x"]));
        assert!(t.numeric.is_empty());
    }

    #[test]
    fn profile_of_empty_column() {
        let e = profile("e", &Column::text("e", Vec::<String>::new()));
        assert_eq!(e.stats.rows, 0);
        assert_eq!(e.content_similarity(&e), 1.0); // all-MAX signatures agree
    }
}
