//! Column profiling.
//!
//! The systems WarpGate is evaluated against are *profile-based*: they scan
//! each column once, compute compact signatures, and decide relatedness by
//! comparing profiles (paper §6). This crate implements the profile
//! vocabulary those baselines need:
//!
//! * [`stats`] — row/null/distinct counts, numeric moments and quantiles;
//! * [`bloom`] — blocked profile storage with per-block q-gram bloom
//!   unions, so name-similarity scans skip blocks with provably zero
//!   overlap (mirrors the paged vector tier's zone maps);
//! * [`format`] — format-pattern histograms (D3L evidence iv);
//! * [`qgram`] — name q-gram sets (D3L evidence i, Aurum schema edges);
//! * [`numeric_dist`] — numeric domain-distribution similarity (D3L
//!   evidence v);
//! * [`profile`] — [`ColumnProfile`], bundling everything plus a MinHash
//!   signature of the distinct values (D3L evidence ii, Aurum content
//!   edges).

pub mod bloom;
pub mod format;
pub mod numeric_dist;
pub mod profile;
pub mod qgram;
pub mod stats;

pub use bloom::{ProfileStore, QGramBloom, ScanStats};
pub use format::FormatProfile;
pub use numeric_dist::NumericSketch;
pub use profile::ColumnProfile;
pub use qgram::{name_qgrams, qgram_jaccard};
pub use stats::ColumnStats;
