//! Blocked profile scans with q-gram bloom pruning (paper §6 baselines).
//!
//! Profile-based discovery systems answer "which columns have a related
//! *name*?" by comparing q-gram sets pairwise — O(corpus) set
//! intersections per query. This module blocks profiles the same way the
//! paged vector tier blocks embeddings, and attaches to each block the
//! **union bloom** of its columns' name q-grams. A scan consults the bloom
//! first: if *no* query gram can be present in a block, every profile in
//! that block has q-gram Jaccard exactly 0 with the query, so for any
//! positive similarity threshold the block is skipped without reading it.
//!
//! Blooms have no false negatives, so pruning is sound: a false positive
//! costs one block read, never a missed candidate. The
//! [`pruned scan == full scan`](ProfileStore::scan_names) invariant is
//! pinned by tests.

use wg_util::stable_hash64;
use wg_util::FxHashSet;

use crate::profile::ColumnProfile;
use crate::qgram::qgram_jaccard;

/// Bloom filter words per block (256 bits total).
const BLOOM_WORDS: usize = 4;
const BLOOM_BITS: u64 = (BLOOM_WORDS * 64) as u64;

/// A 256-bit bloom filter over name q-grams, k = 2.
///
/// Sized for block-level unions: a block of 64 columns contributes a few
/// hundred distinct trigrams, keeping the false-positive rate low enough
/// that pruning stays effective while the filter costs 32 bytes per block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QGramBloom {
    bits: [u64; BLOOM_WORDS],
}

impl QGramBloom {
    /// The empty filter (matches nothing).
    pub fn new() -> QGramBloom {
        QGramBloom::default()
    }

    /// Build a filter containing every gram in `grams`.
    pub fn from_grams<'a>(grams: impl IntoIterator<Item = &'a str>) -> QGramBloom {
        let mut b = QGramBloom::new();
        for g in grams {
            b.insert(g);
        }
        b
    }

    /// Two probe positions derived from one stable hash
    /// (Kirsch–Mitzenmacher): the low and high halves index independently.
    fn probes(gram: &str) -> (u64, u64) {
        let h = stable_hash64(gram.as_bytes());
        (h & 0xFFFF_FFFF, h >> 32)
    }

    fn set(&mut self, probe: u64) {
        let bit = probe % BLOOM_BITS;
        self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
    }

    fn get(&self, probe: u64) -> bool {
        let bit = probe % BLOOM_BITS;
        self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
    }

    /// Add one gram.
    pub fn insert(&mut self, gram: &str) {
        let (a, b) = Self::probes(gram);
        self.set(a);
        self.set(b);
    }

    /// `false` means the gram is *provably* absent; `true` means it may be
    /// present (no false negatives, bounded false positives).
    pub fn may_contain(&self, gram: &str) -> bool {
        let (a, b) = Self::probes(gram);
        self.get(a) && self.get(b)
    }

    /// Absorb every gram of `other` (bitwise or).
    pub fn union(&mut self, other: &QGramBloom) {
        for (w, o) in self.bits.iter_mut().zip(&other.bits) {
            *w |= o;
        }
    }

    /// True if nothing was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|w| *w == 0)
    }
}

/// Read/prune accounting for one or more [`ProfileStore`] scans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Blocks whose profiles were actually compared against the query.
    pub blocks_read: u64,
    /// Blocks skipped because the bloom proved zero q-gram overlap.
    pub blocks_pruned: u64,
}

struct ProfileBlock {
    profiles: Vec<ColumnProfile>,
    /// Union of `name_grams` over every profile in the block.
    name_bloom: QGramBloom,
}

/// Column profiles grouped into fixed-size blocks, each summarized by the
/// union bloom of its name q-grams so name-similarity scans can skip
/// blocks that provably cannot contribute a candidate.
pub struct ProfileStore {
    blocks: Vec<ProfileBlock>,
    len: usize,
}

impl ProfileStore {
    /// Seal `profiles` into blocks of up to `block_rows` profiles each.
    ///
    /// Profiles are ordered by fully-qualified reference first, so columns
    /// from the same table — which share naming conventions — land in the
    /// same block and the per-block gram vocabulary stays narrow.
    pub fn seal(mut profiles: Vec<ColumnProfile>, block_rows: usize) -> ProfileStore {
        assert!(block_rows > 0, "block_rows must be positive");
        profiles.sort_by(|a, b| a.reference.cmp(&b.reference));
        let len = profiles.len();
        let mut blocks = Vec::with_capacity(len.div_ceil(block_rows));
        let mut profiles = profiles.into_iter().peekable();
        while profiles.peek().is_some() {
            let chunk: Vec<ColumnProfile> = profiles.by_ref().take(block_rows).collect();
            let mut name_bloom = QGramBloom::new();
            for p in &chunk {
                for g in &p.name_grams {
                    name_bloom.insert(g);
                }
            }
            blocks.push(ProfileBlock { profiles: chunk, name_bloom });
        }
        ProfileStore { blocks, len }
    }

    /// Total profiles stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no profiles are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of sealed blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Every profile whose name q-gram Jaccard with `query_grams` is at
    /// least `min_similarity`, with the similarity attached.
    ///
    /// For `min_similarity > 0` a block is pruned when the bloom proves no
    /// query gram occurs anywhere in it — then every Jaccard in the block
    /// is 0 and cannot reach the threshold. A non-positive threshold (or
    /// an empty query) admits zero-overlap columns, so every block is
    /// read. Results are identical to a full scan either way.
    pub fn scan_names<'a>(
        &'a self,
        query_grams: &FxHashSet<String>,
        min_similarity: f64,
        stats: &mut ScanStats,
    ) -> Vec<(&'a ColumnProfile, f64)> {
        let can_prune = min_similarity > 0.0 && !query_grams.is_empty();
        let mut out = Vec::new();
        for block in &self.blocks {
            if can_prune && !query_grams.iter().any(|g| block.name_bloom.may_contain(g)) {
                stats.blocks_pruned += 1;
                continue;
            }
            stats.blocks_read += 1;
            for p in &block.profiles {
                let sim = qgram_jaccard(query_grams, &p.name_grams);
                if sim >= min_similarity {
                    out.push((p, sim));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qgram::name_qgrams;
    use wg_lsh::MinHasher;
    use wg_store::{Column, ColumnRef};

    fn profile(table: &str, name: &str) -> ColumnProfile {
        let col = Column::text(name, vec![format!("{name} v1"), format!("{name} v2")]);
        ColumnProfile::build(ColumnRef::new("db", table, name), &col, &MinHasher::new(16, 7))
    }

    #[test]
    fn bloom_never_forgets_an_inserted_gram() {
        let names = ["customer_id", "order_total", "ship_date", "warehouse_zone_code"];
        let mut bloom = QGramBloom::new();
        let mut all = Vec::new();
        for n in names {
            for g in name_qgrams(n, 3) {
                bloom.insert(&g);
                all.push(g);
            }
        }
        for g in &all {
            assert!(bloom.may_contain(g), "false negative for {g:?}");
        }
    }

    #[test]
    fn bloom_union_covers_both_sides_and_excludes_strangers() {
        let a = QGramBloom::from_grams(name_qgrams("customer_id", 3).iter().map(|s| s.as_str()));
        let b = QGramBloom::from_grams(name_qgrams("unit_price", 3).iter().map(|s| s.as_str()));
        let mut u = a;
        u.union(&b);
        for g in name_qgrams("customer_id", 3).iter().chain(&name_qgrams("unit_price", 3)) {
            assert!(u.may_contain(g));
        }
        // A disjoint vocabulary should be (almost entirely) excluded: with
        // ~30 grams in a 256-bit filter the per-probe fp rate is small.
        let stranger = name_qgrams("zzqxjvwk", 3);
        let hits = stranger.iter().filter(|g| u.may_contain(g)).count();
        assert!(hits < stranger.len() / 2, "{hits}/{} false positives", stranger.len());
        assert!(QGramBloom::new().is_empty());
        assert!(!u.is_empty());
    }

    /// A corpus where naming conventions cluster by table: `orders` and
    /// `invoices` share money vocabulary; `shelf` uses a letter set fully
    /// disjoint from it (even the padded boundary grams differ), so its
    /// block is provably prunable for money queries.
    fn clustered_profiles() -> Vec<ColumnProfile> {
        let mut out = Vec::new();
        for t in ["orders", "invoices"] {
            for c in ["amount_total", "amount_tax", "amount_due", "currency_code"] {
                out.push(profile(t, c));
            }
        }
        for c in ["xshelf", "yshelf", "zshelf", "shelfrow"] {
            out.push(profile("shelf", c));
        }
        out
    }

    #[test]
    fn pruned_scan_matches_full_scan_and_actually_prunes() {
        let profiles = clustered_profiles();
        let store = ProfileStore::seal(profiles.clone(), 4);
        assert_eq!(store.len(), profiles.len());
        assert_eq!(store.block_count(), 3);

        let query = name_qgrams("amount_paid", 3);
        let threshold = 0.2;
        let mut full: Vec<(ColumnRef, f64)> = profiles
            .iter()
            .filter_map(|p| {
                let sim = qgram_jaccard(&query, &p.name_grams);
                (sim >= threshold).then(|| (p.reference.clone(), sim))
            })
            .collect();
        full.sort_by(|a, b| a.0.cmp(&b.0));
        assert!(!full.is_empty(), "fixture must produce candidates");

        let mut stats = ScanStats::default();
        let mut pruned: Vec<(ColumnRef, f64)> = store
            .scan_names(&query, threshold, &mut stats)
            .into_iter()
            .map(|(p, sim)| (p.reference.clone(), sim))
            .collect();
        pruned.sort_by(|a, b| a.0.cmp(&b.0));

        assert_eq!(pruned, full, "bloom pruning changed the result set");
        assert_eq!(stats.blocks_read + stats.blocks_pruned, store.block_count() as u64);
        assert!(stats.blocks_pruned > 0, "the shelf block shares no grams and must be pruned");
    }

    #[test]
    fn zero_threshold_reads_every_block() {
        // Jaccard 0 passes a 0.0 threshold, so pruning would drop valid
        // results; the scan must fall back to reading everything.
        let store = ProfileStore::seal(clustered_profiles(), 4);
        let query = name_qgrams("amount_paid", 3);
        let mut stats = ScanStats::default();
        let hits = store.scan_names(&query, 0.0, &mut stats);
        assert_eq!(hits.len(), store.len(), "threshold 0 admits every column");
        assert_eq!(stats.blocks_pruned, 0);
        assert_eq!(stats.blocks_read, store.block_count() as u64);
    }

    #[test]
    fn empty_store_and_empty_query() {
        let store = ProfileStore::seal(Vec::new(), 8);
        assert!(store.is_empty());
        let mut stats = ScanStats::default();
        assert!(store.scan_names(&name_qgrams("x", 3), 0.5, &mut stats).is_empty());
        assert_eq!(stats, ScanStats::default());

        let store = ProfileStore::seal(clustered_profiles(), 4);
        let empty = FxHashSet::default();
        let hits = store.scan_names(&empty, 0.5, &mut stats);
        assert!(hits.is_empty(), "empty query matches nothing above 0");
        assert_eq!(stats.blocks_read, store.block_count() as u64, "no pruning without grams");
    }
}
