//! Format-pattern profiles (D3L evidence iv).
//!
//! Each value maps to a pattern string over character classes — `A` upper,
//! `a` lower, `9` digit, other runes kept verbatim — with runs collapsed
//! (`"Acme-42" → "Aa-9"`). A column's format profile is the normalized
//! histogram of its value patterns; two columns with the same *shape* of
//! data (phone numbers, tickers, zip codes) score high even with zero value
//! overlap.

use wg_util::FxHashMap;

use wg_store::Column;

/// Normalized histogram of format patterns.
#[derive(Debug, Clone, PartialEq)]
pub struct FormatProfile {
    /// Pattern → relative frequency (sums to 1 unless the column was empty).
    histogram: Vec<(String, f64)>,
}

/// The collapsed character-class pattern of one value.
pub fn pattern_of(value: &str) -> String {
    let mut out = String::new();
    let mut last: Option<char> = None;
    for ch in value.chars() {
        let class = if ch.is_ascii_digit() {
            '9'
        } else if ch.is_uppercase() {
            'A'
        } else if ch.is_lowercase() {
            'a'
        } else {
            ch
        };
        if last != Some(class) {
            out.push(class);
            last = Some(class);
        }
    }
    out
}

impl FormatProfile {
    /// Build from a column's distinct values (weighted by multiplicity).
    pub fn build(column: &Column) -> FormatProfile {
        let mut counts: FxHashMap<String, u64> = FxHashMap::default();
        let mut total = 0u64;
        for (value, count) in column.value_counts() {
            *counts.entry(pattern_of(&value)).or_insert(0) += count as u64;
            total += count as u64;
        }
        let mut histogram: Vec<(String, f64)> =
            counts.into_iter().map(|(p, c)| (p, c as f64 / total.max(1) as f64)).collect();
        histogram.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        FormatProfile { histogram }
    }

    /// Number of distinct patterns.
    pub fn num_patterns(&self) -> usize {
        self.histogram.len()
    }

    /// The dominant pattern, if any.
    pub fn top_pattern(&self) -> Option<&str> {
        self.histogram.first().map(|(p, _)| p.as_str())
    }

    /// Cosine similarity between two pattern histograms.
    pub fn similarity(&self, other: &FormatProfile) -> f64 {
        let map: FxHashMap<&str, f64> =
            other.histogram.iter().map(|(p, w)| (p.as_str(), *w)).collect();
        let mut dot = 0.0;
        for (p, w) in &self.histogram {
            if let Some(w2) = map.get(p.as_str()) {
                dot += w * w2;
            }
        }
        let na: f64 = self.histogram.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
        let nb: f64 = other.histogram.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            (dot / (na * nb)).clamp(0.0, 1.0)
        }
    }

    /// The patterns as a token set (fed into MinHash by D3L's index layer).
    pub fn pattern_set(&self) -> impl Iterator<Item = &str> + '_ {
        self.histogram.iter().map(|(p, _)| p.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_store::Column;

    #[test]
    fn pattern_collapses_runs() {
        assert_eq!(pattern_of("Acme-42"), "Aa-9");
        assert_eq!(pattern_of("ABC123"), "A9");
        assert_eq!(pattern_of("aa bb"), "a a");
        assert_eq!(pattern_of(""), "");
        assert_eq!(pattern_of("(555) 123-4567"), "(9) 9-9");
    }

    #[test]
    fn same_shape_high_similarity() {
        let phones_a = Column::text("p", ["(555) 123-4567", "(415) 555-0000"]);
        let phones_b = Column::text("p", ["(212) 867-5309"]);
        let names = Column::text("n", ["Alice Smith", "Bob Jones"]);
        let fa = FormatProfile::build(&phones_a);
        let fb = FormatProfile::build(&phones_b);
        let fn_ = FormatProfile::build(&names);
        assert!(fa.similarity(&fb) > 0.99);
        assert!(fa.similarity(&fn_) < 0.1);
    }

    #[test]
    fn histogram_is_normalized_and_sorted() {
        let c = Column::text("c", ["abc", "def", "XY"]);
        let f = FormatProfile::build(&c);
        let total: f64 = (0..f.num_patterns()).map(|i| f.histogram[i].1).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(f.top_pattern(), Some("a")); // two of three values are "a"
    }

    #[test]
    fn self_similarity_is_one() {
        let c = Column::text("c", ["x1", "y2", "zz9"]);
        let f = FormatProfile::build(&c);
        assert!((f.similarity(&f) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_column_zero_similarity() {
        let e = FormatProfile::build(&Column::text("c", Vec::<String>::new()));
        let c = FormatProfile::build(&Column::text("c", ["x"]));
        assert_eq!(e.similarity(&c), 0.0);
        assert_eq!(e.num_patterns(), 0);
    }
}
