//! Numeric domain-distribution similarity (D3L evidence v).
//!
//! Two numeric columns are related when their *value distributions* look
//! alike, even without exact overlap (e.g. two price columns from different
//! stores). The sketch stores the column's deciles; similarity combines a
//! range-overlap term with a quantile-shape term (1 − normalized L1 between
//! decile vectors), and a two-sample Kolmogorov–Smirnov statistic is
//! available for tests/ablations.

use wg_store::Column;

/// Number of quantile knots kept in a sketch (deciles + endpoints).
const KNOTS: usize = 11;

/// A compact sketch of a numeric column's distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericSketch {
    /// `KNOTS` evenly spaced quantiles from min to max (empty if the column
    /// had no numeric values).
    quantiles: Vec<f64>,
}

impl NumericSketch {
    /// Build from a column; non-numeric/NULL cells are ignored. Returns a
    /// sketch with no knots for columns without numeric content.
    pub fn build(column: &Column) -> NumericSketch {
        let mut values: Vec<f64> =
            column.iter().filter_map(|v| v.as_f64()).filter(|x| x.is_finite()).collect();
        if values.is_empty() {
            return NumericSketch { quantiles: Vec::new() };
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let quantiles = (0..KNOTS)
            .map(|i| {
                let rank =
                    ((i as f64 / (KNOTS - 1) as f64) * (values.len() - 1) as f64).round() as usize;
                values[rank]
            })
            .collect();
        NumericSketch { quantiles }
    }

    /// Whether the sketch carries any signal.
    pub fn is_empty(&self) -> bool {
        self.quantiles.is_empty()
    }

    /// Distribution similarity in `[0, 1]`.
    pub fn similarity(&self, other: &NumericSketch) -> f64 {
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        let (amin, amax) = (self.quantiles[0], self.quantiles[KNOTS - 1]);
        let (bmin, bmax) = (other.quantiles[0], other.quantiles[KNOTS - 1]);
        let span = (amax - amin).max(bmax - bmin).max(f64::MIN_POSITIVE);

        // Range overlap term.
        let overlap = (amax.min(bmax) - amin.max(bmin)).max(0.0) / span;

        // Shape term: L1 between quantile vectors, normalized by the span.
        let l1: f64 =
            self.quantiles.iter().zip(&other.quantiles).map(|(a, b)| (a - b).abs()).sum::<f64>()
                / KNOTS as f64;
        let shape = (1.0 - l1 / span).max(0.0);

        (0.5 * overlap + 0.5 * shape).clamp(0.0, 1.0)
    }
}

/// Two-sample Kolmogorov–Smirnov statistic (`sup |F_a − F_b|`); lower means
/// more similar. Returns 1.0 when either sample is empty.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).unwrap());
    sb.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / sa.len() as f64;
        let fb = j as f64 / sb.len() as f64;
        d = d.max((fa - fb).abs());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_store::Column;

    #[test]
    fn identical_distributions_score_one() {
        let a = NumericSketch::build(&Column::ints("a", (0..100).collect()));
        assert!((a.similarity(&a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn similar_ranges_beat_disjoint() {
        let a = NumericSketch::build(&Column::ints("a", (0..100).collect()));
        let b = NumericSketch::build(&Column::ints("b", (10..110).collect()));
        let c = NumericSketch::build(&Column::ints("c", (100_000..100_100).collect()));
        assert!(a.similarity(&b) > 0.7);
        assert!(a.similarity(&c) < 0.2);
        // Symmetry.
        assert!((a.similarity(&b) - b.similarity(&a)).abs() < 1e-12);
    }

    #[test]
    fn text_column_has_empty_sketch() {
        let s = NumericSketch::build(&Column::text("t", ["x", "y"]));
        assert!(s.is_empty());
        let n = NumericSketch::build(&Column::ints("n", vec![1]));
        assert_eq!(s.similarity(&n), 0.0);
    }

    #[test]
    fn ks_statistic_basics() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(ks_statistic(&a, &a), 0.0);
        let b: Vec<f64> = (1000..1100).map(|i| i as f64).collect();
        assert_eq!(ks_statistic(&a, &b), 1.0);
        let c: Vec<f64> = (50..150).map(|i| i as f64).collect();
        let d = ks_statistic(&a, &c);
        assert!((0.3..0.7).contains(&d), "partial overlap KS {d}");
        assert_eq!(ks_statistic(&a, &[]), 1.0);
    }

    #[test]
    fn skewed_vs_uniform_shapes_differ() {
        let uniform = NumericSketch::build(&Column::ints("u", (0..1000).collect()));
        let skewed = NumericSketch::build(&Column::ints(
            "s",
            (0..1000).map(|i: i64| i * i / 1000).collect(),
        ));
        let shifted = NumericSketch::build(&Column::ints("t", (0..1000).collect()));
        assert!(uniform.similarity(&shifted) > uniform.similarity(&skewed));
    }
}
