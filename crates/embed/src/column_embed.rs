//! Column-level embedding: aggregate value embeddings into one vector.
//!
//! WarpGate embeds *columns* (§3.1.1). We aggregate over the column's
//! **distinct values with multiplicities** — the dictionary the column
//! store maintains anyway — under one of three weighting schemes. The
//! scheme is an explicit design knob because the paper leaves aggregation
//! unspecified; `bench ablation_aggregation` compares them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use wg_store::Column;

use crate::model::EmbeddingModel;
use crate::tokenizer::tokenize;
use crate::vector::Vector;

/// How distinct-value embeddings combine into a column embedding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Aggregation {
    /// Unweighted mean over distinct values. Duplicates carry no weight, so
    /// a column that is 99% `"N/A"` is still described by its tail.
    MeanDistinct,
    /// Mean weighted by value frequency — equivalent to embedding every row.
    FrequencyWeighted,
    /// Smooth-inverse-frequency: weight `a / (a + p(v))` with `p(v)` the
    /// value's within-column relative frequency. Interpolates between the
    /// two extremes; very frequent filler values are damped, rare values
    /// are not over-trusted.
    Sif {
        /// Smoothing constant; typical `1e-2..1e-1` for column data.
        a: f32,
    },
}

impl Aggregation {
    /// Weight for a value occurring `count` times among `total` rows.
    fn weight(&self, count: u32, total: u64) -> f32 {
        match self {
            Aggregation::MeanDistinct => 1.0,
            Aggregation::FrequencyWeighted => count as f32,
            Aggregation::Sif { a } => {
                let p = count as f32 / total.max(1) as f32;
                a / (a + p)
            }
        }
    }

    /// Short name for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Aggregation::MeanDistinct => "mean-distinct",
            Aggregation::FrequencyWeighted => "freq-weighted",
            Aggregation::Sif { .. } => "sif",
        }
    }
}

impl Default for Aggregation {
    fn default() -> Self {
        Aggregation::Sif { a: 0.05 }
    }
}

/// Embeds columns using a model plus an aggregation scheme.
#[derive(Clone)]
pub struct ColumnEmbedder {
    model: Arc<dyn EmbeddingModel>,
    aggregation: Aggregation,
    /// Column/value-set embeddings computed so far. Shared across clones
    /// (`Arc`) so a system-wide counter survives pipeline fan-out; used by
    /// incremental-sync tests to prove only changed columns re-embed.
    embeds: Arc<AtomicU64>,
}

impl ColumnEmbedder {
    /// Pair a model with an aggregation scheme.
    pub fn new(model: Arc<dyn EmbeddingModel>, aggregation: Aggregation) -> Self {
        Self { model, aggregation, embeds: Arc::new(AtomicU64::new(0)) }
    }

    /// How many column/value-set embeddings this embedder (including its
    /// clones) has computed.
    pub fn embed_count(&self) -> u64 {
        self.embeds.load(Ordering::Relaxed)
    }

    /// Output dimension.
    pub fn dim(&self) -> usize {
        self.model.dim()
    }

    /// The underlying model.
    pub fn model(&self) -> &Arc<dyn EmbeddingModel> {
        &self.model
    }

    /// The aggregation scheme.
    pub fn aggregation(&self) -> Aggregation {
        self.aggregation
    }

    /// Embed a column (typically one that was already sampled by the CDW
    /// connector). Returns a unit vector, or the zero vector when the
    /// column has no embeddable content (all NULL / all symbols).
    pub fn embed_column(&self, column: &Column) -> Vector {
        self.embed_value_counts(&column.value_counts(), column.len() as u64)
    }

    /// Embed from pre-computed `(value, count)` pairs.
    pub fn embed_value_counts(&self, values: &[(String, u32)], total_rows: u64) -> Vector {
        self.embeds.fetch_add(1, Ordering::Relaxed);
        let mut acc = Vector::zeros(self.model.dim());
        let mut any = false;
        for (value, count) in values {
            let tokens = tokenize(value);
            if tokens.is_empty() {
                continue;
            }
            let v = self.model.embed_tokens(&tokens);
            if v.is_zero() {
                continue;
            }
            let w = self.aggregation.weight(*count, total_rows);
            acc.add_scaled(&v, w);
            any = true;
        }
        if any {
            acc.normalize();
        }
        acc
    }

    /// Embed a free-standing list of values (used for ad-hoc queries where
    /// the user pastes values rather than naming a warehouse column).
    pub fn embed_values<S: AsRef<str>>(&self, values: &[S]) -> Vector {
        let mut counts: Vec<(String, u32)> = Vec::new();
        let mut index = wg_util::fx_hash_map::<String, usize>();
        for v in values {
            let s = v.as_ref().to_string();
            match index.get(&s) {
                Some(&i) => counts[i].1 += 1,
                None => {
                    index.insert(s.clone(), counts.len());
                    counts.push((s, 1));
                }
            }
        }
        self.embed_value_counts(&counts, values.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::webtable::WebTableModel;
    use wg_store::Column;

    fn embedder(agg: Aggregation) -> ColumnEmbedder {
        ColumnEmbedder::new(Arc::new(WebTableModel::default_model()), agg)
    }

    #[test]
    fn joinable_columns_more_similar_than_unrelated() {
        let e = embedder(Aggregation::default());
        let companies_a = Column::text("name", ["Acme Corp", "Globex", "Initech", "Hooli"]);
        let companies_b = Column::text("company", ["ACME CORP", "GLOBEX", "INITECH", "Umbrella"]);
        let cities = Column::text("city", ["Austin", "Boston", "Chicago", "Denver"]);
        let sim_join = e.embed_column(&companies_a).cosine(&e.embed_column(&companies_b));
        let sim_unrelated = e.embed_column(&companies_a).cosine(&e.embed_column(&cities));
        assert!(sim_join > sim_unrelated + 0.3, "join {sim_join} vs unrelated {sim_unrelated}");
        // 3 of the 4 values are shared after tokenization, so the expected
        // cosine is around 3/4.
        assert!(sim_join > 0.6, "format variants should stay close: {sim_join}");
    }

    #[test]
    fn sampling_robustness_of_embedding() {
        // The §4.4 property in miniature: a 25% distinct-value sample stays
        // close to the full-column embedding.
        let e = embedder(Aggregation::default());
        let values: Vec<String> = (0..400).map(|i| format!("entity number {i}")).collect();
        let full = Column::text("c", values.clone());
        let sampled = Column::text("c", values.iter().take(100).cloned().collect::<Vec<_>>());
        let sim = e.embed_column(&full).cosine(&e.embed_column(&sampled));
        assert!(sim > 0.9, "sampled embedding drifted: {sim}");
    }

    #[test]
    fn mean_distinct_ignores_duplication() {
        let e = embedder(Aggregation::MeanDistinct);
        let balanced = Column::text("c", ["alpha", "beta"]);
        let mut skewed_vals = vec!["alpha"; 99];
        skewed_vals.push("beta");
        let skewed = Column::text("c", skewed_vals);
        let sim = e.embed_column(&balanced).cosine(&e.embed_column(&skewed));
        assert!(sim > 0.999, "distinct aggregation must ignore multiplicity: {sim}");
    }

    #[test]
    fn frequency_weighted_tracks_duplication() {
        let e = embedder(Aggregation::FrequencyWeighted);
        let mut skewed_vals = vec!["alpha"; 99];
        skewed_vals.push("beta");
        let skewed = Column::text("c", skewed_vals);
        let alpha_only = Column::text("c", ["alpha"]);
        let sim = e.embed_column(&skewed).cosine(&e.embed_column(&alpha_only));
        assert!(sim > 0.95, "frequency weighting should be dominated by alpha: {sim}");
    }

    #[test]
    fn sif_sits_between() {
        let sif = embedder(Aggregation::Sif { a: 0.05 });
        let freq = embedder(Aggregation::FrequencyWeighted);
        let mut skewed_vals = vec!["alpha"; 99];
        skewed_vals.push("beta");
        let skewed = Column::text("c", skewed_vals);
        let alpha_only = Column::text("c", ["alpha"]);
        let sim_sif = sif.embed_column(&skewed).cosine(&sif.embed_column(&alpha_only));
        let sim_freq = freq.embed_column(&skewed).cosine(&freq.embed_column(&alpha_only));
        assert!(sim_sif < sim_freq, "SIF must damp the dominant value");
    }

    #[test]
    fn empty_and_null_columns_are_zero() {
        let e = embedder(Aggregation::default());
        let empty = Column::text("c", Vec::<String>::new());
        assert!(e.embed_column(&empty).is_zero());
        let nulls = Column::text_opt("c", [None::<&str>, None]);
        assert!(e.embed_column(&nulls).is_zero());
    }

    #[test]
    fn numeric_columns_embed_via_rendering() {
        let e = embedder(Aggregation::default());
        let a = Column::ints("ids", vec![100, 200, 300]);
        let b = Column::text("ids_text", ["100", "200", "300"]);
        let sim = e.embed_column(&a).cosine(&e.embed_column(&b));
        assert!(sim > 0.999, "int column and its text rendering must agree: {sim}");
    }

    #[test]
    fn embed_values_matches_column() {
        let e = embedder(Aggregation::default());
        let vals = ["x", "y", "x"];
        let col = Column::text("c", vals);
        let a = e.embed_values(&vals);
        let b = e.embed_column(&col);
        assert!(a.cosine(&b) > 0.999);
    }

    #[test]
    fn embed_counter_shared_across_clones() {
        let e = embedder(Aggregation::default());
        assert_eq!(e.embed_count(), 0);
        e.embed_column(&Column::text("c", ["a", "b"]));
        let clone = e.clone();
        clone.embed_values(&["x", "y"]);
        assert_eq!(e.embed_count(), 2, "clones must share the counter");
    }

    #[test]
    fn weights_behave() {
        assert_eq!(Aggregation::MeanDistinct.weight(50, 100), 1.0);
        assert_eq!(Aggregation::FrequencyWeighted.weight(50, 100), 50.0);
        let sif = Aggregation::Sif { a: 0.05 };
        assert!(sif.weight(90, 100) < sif.weight(1, 100));
    }
}
