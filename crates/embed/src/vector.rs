//! Dense `f32` embedding vectors.
//!
//! A thin wrapper over `Vec<f32>` with the operations the pipelines need:
//! dot, L2 norm, cosine, in-place scaled accumulation and normalization.
//! All arithmetic routes through the shared `wg_util::kernel` layer, so
//! every caller gets the same 8-lane vectorized loops.

use wg_util::kernel;

/// A dense embedding vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector(pub Vec<f32>);

impl Vector {
    /// All-zero vector of the given dimension.
    pub fn zeros(dim: usize) -> Self {
        Vector(vec![0.0; dim])
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Borrow the raw components.
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Dot product. Panics on dimension mismatch (an embedding-space bug,
    /// not a data condition).
    pub fn dot(&self, other: &Vector) -> f32 {
        assert_eq!(self.dim(), other.dim(), "vector dimension mismatch");
        kernel::dot(&self.0, &other.0)
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        kernel::norm_sq(&self.0).sqrt()
    }

    /// Cosine similarity in `[-1, 1]`; zero vectors yield 0.0.
    pub fn cosine(&self, other: &Vector) -> f32 {
        let denom = self.norm() * other.norm();
        if denom <= f32::MIN_POSITIVE {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(-1.0, 1.0)
    }

    /// `self += weight * other`.
    pub fn add_scaled(&mut self, other: &Vector, weight: f32) {
        assert_eq!(self.dim(), other.dim(), "vector dimension mismatch");
        kernel::axpy(&mut self.0, weight, &other.0);
    }

    /// Scale all components in place.
    pub fn scale(&mut self, s: f32) {
        kernel::scale(&mut self.0, s);
    }

    /// Normalize to unit length in place; zero vectors are left unchanged.
    /// Returns whether normalization happened.
    pub fn normalize(&mut self) -> bool {
        let n = self.norm();
        if n <= f32::MIN_POSITIVE {
            return false;
        }
        self.scale(1.0 / n);
        true
    }

    /// Whether the vector is (approximately) unit length.
    pub fn is_normalized(&self) -> bool {
        (self.norm() - 1.0).abs() < 1e-3
    }

    /// True if every component is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&x| x == 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        let a = Vector(vec![3.0, 4.0]);
        assert_eq!(a.norm(), 5.0);
        let b = Vector(vec![1.0, 0.0]);
        assert_eq!(a.dot(&b), 3.0);
    }

    #[test]
    fn dot_handles_remainders() {
        // 11 elements: 1 chunk of 8 + 3 remainder.
        let a = Vector((1..=11).map(|i| i as f32).collect());
        let b = Vector(vec![1.0; 11]);
        assert_eq!(a.dot(&b), 66.0);
    }

    #[test]
    fn cosine_basics() {
        let a = Vector(vec![1.0, 0.0]);
        let b = Vector(vec![0.0, 1.0]);
        let c = Vector(vec![2.0, 0.0]);
        assert_eq!(a.cosine(&b), 0.0);
        assert_eq!(a.cosine(&c), 1.0);
        assert_eq!(a.cosine(&Vector(vec![-1.0, 0.0])), -1.0);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        let z = Vector::zeros(4);
        let a = Vector(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(z.cosine(&a), 0.0);
    }

    #[test]
    fn normalize_unit_length() {
        let mut a = Vector(vec![3.0, 4.0]);
        assert!(a.normalize());
        assert!(a.is_normalized());
        let mut z = Vector::zeros(2);
        assert!(!z.normalize());
        assert!(z.is_zero());
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut acc = Vector::zeros(3);
        acc.add_scaled(&Vector(vec![1.0, 2.0, 3.0]), 2.0);
        acc.add_scaled(&Vector(vec![1.0, 0.0, 0.0]), -1.0);
        assert_eq!(acc.0, vec![1.0, 4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dim_mismatch_panics() {
        let _ = Vector::zeros(2).dot(&Vector::zeros(3));
    }
}
