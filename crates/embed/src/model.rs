//! The embedding model abstraction.

use crate::tokenizer::Token;
use crate::vector::Vector;

/// An embedding model maps a token sequence (one cell value, typically) to
/// a fixed-dimension vector.
///
/// Implementations must be `Send + Sync` — the indexing pipeline embeds
/// columns from multiple threads — and deterministic: the same tokens must
/// produce bit-identical vectors in every process, or persisted indexes
/// would drift from fresh queries.
pub trait EmbeddingModel: Send + Sync {
    /// Output dimension.
    fn dim(&self) -> usize;

    /// Human-readable model name (reported in experiment tables).
    fn name(&self) -> &str;

    /// Embed one token sequence. Empty input returns the zero vector (the
    /// column aggregator skips zero value-vectors).
    fn embed_tokens(&self, tokens: &[Token]) -> Vector;

    /// Embed one raw cell (tokenize + embed). Provided for convenience.
    fn embed_text(&self, text: &str) -> Vector {
        self.embed_tokens(&crate::tokenizer::tokenize(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Stub;
    impl EmbeddingModel for Stub {
        fn dim(&self) -> usize {
            2
        }
        fn name(&self) -> &str {
            "stub"
        }
        fn embed_tokens(&self, tokens: &[Token]) -> Vector {
            Vector(vec![tokens.len() as f32, 1.0])
        }
    }

    #[test]
    fn embed_text_tokenizes() {
        let m = Stub;
        assert_eq!(m.embed_text("a b c").0[0], 3.0);
        assert_eq!(m.embed_text("").0[0], 0.0);
    }
}
