//! Cell tokenization.
//!
//! The tokenizer is where *syntactic variation collapses*: two columns that
//! store the same entities in different formats must produce overlapping
//! token streams, because everything downstream (hashing, aggregation,
//! cosine) only sees tokens. Rules:
//!
//! * split on any non-alphanumeric rune (`"Apple, Inc." → apple inc`);
//! * split letter/digit boundaries inside runs (`"CUST0042" → cust 0042`);
//! * lowercase;
//! * normalize digit runs by stripping leading zeros (`"0042" → 42`), so
//!   zero-padded identifiers match unpadded ones;
//! * date-ish cells fall out naturally: `2020-01-15` and `01/15/2020`
//!   produce the same token multiset.

/// A single normalized token. Plain `String` — tokens are short and cached
/// aggressively by the models.
pub type Token = String;

/// Tokenize one cell into normalized tokens.
pub fn tokenize(cell: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    // Track whether the current run is digits or letters to split on
    // letter/digit boundaries.
    let mut current_is_digit = false;

    let flush = |buf: &mut String, is_digit: bool, out: &mut Vec<Token>| {
        if buf.is_empty() {
            return;
        }
        if is_digit {
            let trimmed = buf.trim_start_matches('0');
            out.push(if trimmed.is_empty() { "0".to_string() } else { trimmed.to_string() });
        } else {
            out.push(buf.to_lowercase());
        }
        buf.clear();
    };

    for ch in cell.chars() {
        if ch.is_alphanumeric() {
            let is_digit = ch.is_ascii_digit();
            if !current.is_empty() && is_digit != current_is_digit {
                flush(&mut current, current_is_digit, &mut tokens);
            }
            current_is_digit = is_digit;
            current.push(ch);
        } else {
            flush(&mut current, current_is_digit, &mut tokens);
        }
    }
    flush(&mut current, current_is_digit, &mut tokens);
    tokens
}

/// Character n-grams of a token with boundary markers, fastText style:
/// `"cat"` with n=3 yields `<ca`, `cat`, `at>`. Tokens shorter than `n-2`
/// yield nothing for that n.
pub fn char_ngrams(token: &str, min_n: usize, max_n: usize) -> Vec<String> {
    debug_assert!(min_n >= 2 && max_n >= min_n);
    let bounded: Vec<char> =
        std::iter::once('<').chain(token.chars()).chain(std::iter::once('>')).collect();
    let mut out = Vec::new();
    for n in min_n..=max_n {
        if bounded.len() < n {
            break;
        }
        for w in bounded.windows(n) {
            out.push(w.iter().collect::<String>());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        assert_eq!(tokenize("Apple, Inc."), vec!["apple", "inc"]);
        assert_eq!(tokenize("  hello   world "), vec!["hello", "world"]);
    }

    #[test]
    fn case_variants_collapse() {
        assert_eq!(tokenize("ACME CORP"), tokenize("Acme Corp."));
    }

    #[test]
    fn splits_letter_digit_boundaries() {
        assert_eq!(tokenize("CUST0042"), vec!["cust", "42"]);
        assert_eq!(tokenize("CUST-0042"), vec!["cust", "42"]);
        assert_eq!(tokenize("42abc7"), vec!["42", "abc", "7"]);
    }

    #[test]
    fn zero_padding_collapses() {
        assert_eq!(tokenize("0042"), vec!["42"]);
        assert_eq!(tokenize("000"), vec!["0"]);
        assert_eq!(tokenize("0042"), tokenize("42"));
    }

    #[test]
    fn date_formats_share_tokens() {
        let mut a = tokenize("2020-01-15");
        let mut b = tokenize("01/15/2020");
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn unicode_is_kept() {
        assert_eq!(tokenize("Zürich"), vec!["zürich"]);
        assert_eq!(tokenize("naïve café"), vec!["naïve", "café"]);
    }

    #[test]
    fn empty_and_symbol_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- ///").is_empty());
    }

    #[test]
    fn ngrams_with_boundaries() {
        let g = char_ngrams("cat", 3, 3);
        assert_eq!(g, vec!["<ca", "cat", "at>"]);
    }

    #[test]
    fn ngrams_multiple_sizes() {
        let g = char_ngrams("ab", 3, 4);
        assert_eq!(g, vec!["<ab", "ab>", "<ab>"]);
    }

    #[test]
    fn ngrams_short_token() {
        // "a" bounded = "<a>": 3-grams = ["<a>"], 4-grams none.
        assert_eq!(char_ngrams("a", 3, 4), vec!["<a>"]);
    }

    #[test]
    fn similar_tokens_share_ngrams() {
        let a = char_ngrams("street", 3, 4);
        let b = char_ngrams("streets", 3, 4);
        let shared = a.iter().filter(|g| b.contains(g)).count();
        assert!(shared >= a.len() / 2, "shared {shared} of {}", a.len());
    }
}
