//! Column embedding models.
//!
//! WarpGate's core idea (§3.1.1) is to encode columns into a vector space
//! where joinable columns land near each other, and to prefer embedding
//! models (i) trained for tabular data, (ii) derived from large Web-table
//! corpora, and (iii) cheap enough for interactive inference. The paper uses
//! the pre-trained *Web Table Embeddings* of Günther et al. and compares
//! against BERT.
//!
//! Shipping pre-trained weights is impossible here, so this crate implements
//! the substitutions documented in `DESIGN.md`:
//!
//! * [`WebTableModel`] — a deterministic **hashed subword embedding**: a
//!   token's vector is the normalized sum of Gaussian vectors seeded by the
//!   hashes of the token and its character n-grams (the fastText hashing
//!   trick without learned weights). Identical tokens agree exactly across
//!   tables; format variants (casing, punctuation, zero-padding, date
//!   orderings) agree after tokenization; near-miss strings agree partially
//!   through shared n-grams.
//! * [`MiniBertModel`] — a real multi-layer transformer encoder over the
//!   same token vectors with deterministic near-identity initialization:
//!   effectiveness stays on par with the base model (the paper's finding)
//!   while inference genuinely costs an order of magnitude more.
//!
//! [`ColumnEmbedder`] turns a column into one vector by aggregating the
//! embeddings of its distinct values (uniform, frequency- or SIF-weighted).

pub mod column_embed;
pub mod context;
pub mod minibert;
pub mod model;
pub mod tokenizer;
pub mod vector;
pub mod webtable;

pub use column_embed::{Aggregation, ColumnEmbedder};
pub use context::{blend_context, context_vector, ColumnContext};
pub use minibert::{MiniBertConfig, MiniBertModel};
pub use model::EmbeddingModel;
pub use tokenizer::{char_ngrams, tokenize};
pub use vector::Vector;
pub use webtable::{WebTableConfig, WebTableModel};
