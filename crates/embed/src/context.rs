//! Contextual column embeddings (paper §5.2.1).
//!
//! The paper's future-work observation: profiles built from a column's
//! values alone ignore *context* — "other columns in the same table, user
//! activities, query logs" — that can disambiguate semantically related
//! candidates. This module implements the schema-context part: a context
//! vector is built from the column's own name, its table name, and its
//! sibling column names (all free catalog metadata — no billed scans), and
//! blended with the value embedding:
//!
//! ```text
//! e = normalize( (1 − β) · e_values  +  β · e_context )
//! ```
//!
//! β = 0 reproduces the paper's value-only embedding; small β (0.1–0.3)
//! separates columns with near-identical value sets but different roles
//! (e.g. `ship_city` vs `billing_city` tables) while keeping value overlap
//! dominant. The `ablation_aggregation` bench and the core config's
//! `context_weight` expose this knob.

use crate::model::EmbeddingModel;
use crate::tokenizer::tokenize;
use crate::vector::Vector;

/// Schema context of one column: everything embeddable without scanning.
#[derive(Debug, Clone, Default)]
pub struct ColumnContext {
    /// The column's own name.
    pub column_name: String,
    /// The owning table's name.
    pub table_name: String,
    /// Names of the sibling columns in the same table.
    pub siblings: Vec<String>,
}

impl ColumnContext {
    /// Context for a bare column name (no table information).
    pub fn name_only(column_name: impl Into<String>) -> Self {
        Self { column_name: column_name.into(), ..Default::default() }
    }
}

/// Compute the context vector for a column. Weights: the column's own name
/// counts double, table name once, each sibling at `1/√|siblings|` so wide
/// tables don't drown the local names. Returns a unit vector or zero when
/// nothing is embeddable.
pub fn context_vector(model: &dyn EmbeddingModel, context: &ColumnContext) -> Vector {
    let mut acc = Vector::zeros(model.dim());
    let mut any = false;
    let add = |text: &str, weight: f32, acc: &mut Vector, any: &mut bool| {
        let tokens = tokenize(text);
        if tokens.is_empty() {
            return;
        }
        let v = model.embed_tokens(&tokens);
        if !v.is_zero() {
            acc.add_scaled(&v, weight);
            *any = true;
        }
    };
    add(&context.column_name, 2.0, &mut acc, &mut any);
    add(&context.table_name, 1.0, &mut acc, &mut any);
    if !context.siblings.is_empty() {
        let w = 1.0 / (context.siblings.len() as f32).sqrt();
        for s in &context.siblings {
            add(s, w, &mut acc, &mut any);
        }
    }
    if any {
        acc.normalize();
    }
    acc
}

/// Blend a value embedding with a context vector at weight `beta`,
/// returning a unit vector. Degenerate inputs fall back gracefully: zero
/// context returns the value embedding (and vice versa).
pub fn blend_context(values: &Vector, context: &Vector, beta: f32) -> Vector {
    debug_assert!((0.0..=1.0).contains(&beta));
    if beta <= 0.0 || context.is_zero() {
        return values.clone();
    }
    if values.is_zero() {
        return context.clone();
    }
    let mut out = Vector::zeros(values.dim());
    out.add_scaled(values, 1.0 - beta);
    out.add_scaled(context, beta);
    out.normalize();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column_embed::{Aggregation, ColumnEmbedder};
    use crate::webtable::WebTableModel;
    use std::sync::Arc;
    use wg_store::Column;

    fn model() -> Arc<WebTableModel> {
        Arc::new(WebTableModel::default_model())
    }

    #[test]
    fn context_vector_is_unit_or_zero() {
        let m = model();
        let ctx = ColumnContext {
            column_name: "customer_id".into(),
            table_name: "orders".into(),
            siblings: vec!["amount".into(), "created_at".into()],
        };
        assert!(context_vector(m.as_ref(), &ctx).is_normalized());
        let empty = ColumnContext::default();
        assert!(context_vector(m.as_ref(), &empty).is_zero());
    }

    #[test]
    fn context_disambiguates_identical_value_sets() {
        // Two columns with the SAME values but different table contexts:
        // value-only embeddings are identical; context separates them.
        let m = model();
        let embedder = ColumnEmbedder::new(m.clone(), Aggregation::default());
        let values = Column::text("city", ["Austin", "Boston", "Chicago"]);
        let e_values = embedder.embed_column(&values);

        let shipping = ColumnContext {
            column_name: "ship_city".into(),
            table_name: "shipments".into(),
            siblings: vec!["carrier".into(), "weight".into()],
        };
        let billing = ColumnContext {
            column_name: "billing_city".into(),
            table_name: "invoices".into(),
            siblings: vec!["amount_due".into(), "tax".into()],
        };
        let a = blend_context(&e_values, &context_vector(m.as_ref(), &shipping), 0.3);
        let b = blend_context(&e_values, &context_vector(m.as_ref(), &billing), 0.3);
        let sim = a.cosine(&b);
        assert!(sim < 0.98, "context failed to separate: {sim}");
        // But both stay close to the value embedding: values dominate.
        assert!(a.cosine(&e_values) > 0.8);
        assert!(b.cosine(&e_values) > 0.8);
    }

    #[test]
    fn beta_zero_is_identity() {
        let m = model();
        let embedder = ColumnEmbedder::new(m.clone(), Aggregation::default());
        let e = embedder.embed_column(&Column::text("c", ["x", "y"]));
        let ctx = context_vector(m.as_ref(), &ColumnContext::name_only("c"));
        assert_eq!(blend_context(&e, &ctx, 0.0), e);
    }

    #[test]
    fn zero_context_falls_back_to_values() {
        let m = model();
        let embedder = ColumnEmbedder::new(m.clone(), Aggregation::default());
        let e = embedder.embed_column(&Column::text("c", ["x"]));
        let z = Vector::zeros(e.dim());
        assert_eq!(blend_context(&e, &z, 0.5), e);
    }

    #[test]
    fn zero_values_fall_back_to_context() {
        let m = model();
        let ctx = context_vector(m.as_ref(), &ColumnContext::name_only("price"));
        let z = Vector::zeros(ctx.dim());
        assert_eq!(blend_context(&z, &ctx, 0.5), ctx);
    }

    #[test]
    fn related_contexts_stay_similar() {
        // Similar contexts should give similar context vectors (the point
        // of using the same embedding space for names and values).
        let m = model();
        let a = context_vector(
            m.as_ref(),
            &ColumnContext {
                column_name: "customer_id".into(),
                table_name: "orders".into(),
                siblings: vec![],
            },
        );
        let b = context_vector(
            m.as_ref(),
            &ColumnContext {
                column_name: "customer_id".into(),
                table_name: "order_items".into(),
                siblings: vec![],
            },
        );
        let c = context_vector(
            m.as_ref(),
            &ColumnContext {
                column_name: "wind_speed".into(),
                table_name: "weather".into(),
                siblings: vec![],
            },
        );
        assert!(a.cosine(&b) > a.cosine(&c) + 0.2);
    }
}
